"""Validation of the minimal-sampling theorem (Theorem 3.5).

The theorem predicts that MFTI recovers a system of order ``n`` with
feed-through rank ``r_D`` from roughly ``(n + r_D)/min(m, p)`` sampled
matrices, whereas VFTI needs at least ``n`` samples.  The experiment

1. builds a known random system,
2. sweeps the number of sampled matrices for both methods,
3. records the recovery error at each count,
4. reports the smallest count that achieves the target accuracy, next to the
   theorem's prediction,
5. additionally records where the singular values of ``L`` and ``sL`` drop,
   which the paper uses as corroborating evidence (ranks ~ ``n`` and
   ``n + r_D`` respectively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core import mfti, vfti
from repro.core.sampling import minimal_sample_count
from repro.data import log_frequencies, sample_scattering
from repro.systems.random_systems import random_stable_system
from repro.utils.linalg import rank_from_gap

__all__ = ["MinimalSamplingResult", "minimal_sampling_experiment"]


@dataclass(frozen=True)
class MinimalSamplingResult:
    """Outcome of the Theorem-3.5 validation sweep.

    Attributes
    ----------
    system_order, feedthrough_rank, n_ports:
        Ground-truth properties of the benchmark system.
    predicted_mfti_samples:
        The theorem's empirical prediction for MFTI.
    predicted_vfti_samples:
        The ``order(Gamma)`` requirement of VFTI.
    mfti_errors, vfti_errors:
        Mapping from tried sample count to validation error.
    mfti_samples_needed, vfti_samples_needed:
        Smallest tried counts achieving the tolerance (``None`` if none did).
    loewner_rank, shifted_rank, pencil_rank:
        Detected singular-value drop positions of ``L``, ``sL`` and
        ``x0*L - sL`` at the largest tried MFTI sample count.
    tolerance:
        Recovery tolerance used for "needed" counts.
    """

    system_order: int
    feedthrough_rank: int
    n_ports: int
    predicted_mfti_samples: int
    predicted_vfti_samples: int
    mfti_errors: dict[int, float] = field(default_factory=dict)
    vfti_errors: dict[int, float] = field(default_factory=dict)
    mfti_samples_needed: Optional[int] = None
    vfti_samples_needed: Optional[int] = None
    loewner_rank: int = 0
    shifted_rank: int = 0
    pencil_rank: int = 0
    tolerance: float = 1e-6

    @property
    def saving_factor(self) -> float:
        """Measured ratio of VFTI to MFTI sample requirements (``inf`` when VFTI never recovers)."""
        if self.mfti_samples_needed is None:
            return float("nan")
        if self.vfti_samples_needed is None:
            return float("inf")
        return self.vfti_samples_needed / self.mfti_samples_needed


def minimal_sampling_experiment(
    *,
    order: int = 60,
    n_ports: int = 10,
    f_min_hz: float = 1e1,
    f_max_hz: float = 1e5,
    seed: int = 11,
    tolerance: float = 1e-6,
    mfti_counts: Optional[list[int]] = None,
    vfti_counts: Optional[list[int]] = None,
    n_validation: int = 80,
) -> MinimalSamplingResult:
    """Run the Theorem-3.5 sweep on a random stable benchmark system."""
    system = random_stable_system(
        order, n_ports,
        freq_min_hz=f_min_hz, freq_max_hz=f_max_hz,
        feedthrough=0.2, seed=seed,
    )
    d = np.asarray(system.D)
    rank_d = int(np.linalg.matrix_rank(d)) if d.size else 0
    estimate = minimal_sample_count(order, n_ports, n_ports, rank_d=rank_d)

    predicted = estimate.empirical + estimate.empirical % 2
    if mfti_counts is None:
        mfti_counts = sorted({max(2, predicted - 2), predicted, predicted + 2, predicted + 6})
    if vfti_counts is None:
        vfti_counts = sorted({order // 2, order, order + 2 * rank_d + 2,
                              2 * (order + rank_d) // 1})
    validation_freqs = log_frequencies(f_min_hz, f_max_hz, int(n_validation))
    reference = sample_scattering(system, validation_freqs, label="validation")

    def sweep(runner, counts):
        errors: dict[int, float] = {}
        needed = None
        for count in counts:
            count = int(count) + int(count) % 2
            data = sample_scattering(system, log_frequencies(f_min_hz, f_max_hz, count))
            result = runner(data)
            err = result.aggregate_error(reference)
            errors[count] = err
            if needed is None and err <= tolerance:
                needed = count
        return errors, needed

    mfti_errors, mfti_needed = sweep(mfti, mfti_counts)
    vfti_errors, vfti_needed = sweep(vfti, vfti_counts)

    # singular-value drop positions at the largest MFTI sample count
    largest = max(mfti_errors)
    data = sample_scattering(system, log_frequencies(f_min_hz, f_max_hz, largest))
    result = mfti(data)
    sv = result.singular_values
    return MinimalSamplingResult(
        system_order=order,
        feedthrough_rank=rank_d,
        n_ports=n_ports,
        predicted_mfti_samples=predicted,
        predicted_vfti_samples=order,
        mfti_errors=mfti_errors,
        vfti_errors=vfti_errors,
        mfti_samples_needed=mfti_needed,
        vfti_samples_needed=vfti_needed,
        loewner_rank=rank_from_gap(sv["loewner"]),
        shifted_rank=rank_from_gap(sv["shifted_loewner"]),
        pencil_rank=rank_from_gap(sv["pencil"]),
        tolerance=tolerance,
    )
