"""Example 2 of the paper: noisy interpolation of a 14-port PDN (Table 1).

Table 1 compares five algorithm settings on two sampling regimes of a 14-port
power-distribution network:

* **Test 1** -- 100 uniformly distributed frequency samples,
* **Test 2** -- 100 poorly distributed samples concentrated in the
  high-frequency band (ill-conditioned data),

for Vector Fitting (10 iterations, two pole counts), VFTI, MFTI-1 (Algorithm 1
with ``t_i = 2`` and ``t_i = 3``) and MFTI-2 (recursive Algorithm 2).  The
columns are the reduced model order, the CPU time and the relative error.

The measured INC-board data used in the paper is proprietary, so the workload
is the synthetic 14-port PDN of :mod:`repro.circuits.pdn` sampled over
1 MHz - 10 GHz with additive measurement noise (the substitution is documented
in ``DESIGN.md``).  Errors are reported both against the noisy measurement set
(the paper's metric) and against a dense noise-free validation sweep of the
underlying network, which is the fairer comparison when a ground-truth
simulator is available.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.batch.engine import BatchEngine
from repro.cache.fitcache import FitCache
from repro.batch.jobs import FitJob
from repro.circuits.pdn import PdnConfiguration, power_distribution_network
from repro.core.options import MftiOptions, RecursiveOptions, VftiOptions
from repro.data import (
    add_measurement_noise,
    clustered_frequencies,
    linear_frequencies,
    sample_scattering,
)
from repro.data.dataset import FrequencyData
from repro.metrics.errors import aggregate_error
from repro.vectorfitting import vector_fit

__all__ = [
    "Example2Config",
    "Table1Row",
    "Table1Data",
    "build_pdn_datasets",
    "loewner_table1_jobs",
    "table1_experiment",
]


@dataclass(frozen=True)
class Example2Config:
    """Parameters of the Example-2 (Table 1) reproduction.

    Attributes
    ----------
    pdn:
        Configuration of the synthetic PDN (defaults to the 14-port board).
    n_samples:
        Number of sampled frequencies per test (paper: 100).
    f_min_hz, f_max_hz:
        Measurement band.
    noise_level:
        Relative measurement-noise level injected into the samples.
    noise_seed:
        Seed of the noise realisation (kept fixed so both tests and all
        methods see identical noise).
    vf_pole_counts:
        The two Vector-Fitting pole counts of the table.
    vf_iterations:
        Pole-relocation iterations (paper: 10).
    mfti_block_sizes:
        The two MFTI-1 block sizes (paper: ``t_i = 2`` and ``t_i = 3``).
    rank_tolerance:
        Relative singular-value tolerance used by the Loewner realizations on
        this noisy data (the gap rule is not meaningful once the profile hits
        the noise floor).
    recursive:
        Options of the MFTI-2 run (threshold, block of samples per iteration).
    n_validation:
        Size of the dense noise-free validation sweep.
    """

    pdn: PdnConfiguration = field(default_factory=lambda: PdnConfiguration(
        grid_rows=6, grid_cols=6,
    ))
    n_samples: int = 100
    f_min_hz: float = 1e6
    f_max_hz: float = 2.5e9
    noise_level: float = 2e-4
    noise_seed: int = 77
    vf_pole_counts: tuple[int, ...] = (140, 280)
    vf_iterations: int = 10
    mfti_block_sizes: tuple[int, ...] = (2, 3)
    rank_tolerance: float = 2e-4
    recursive: RecursiveOptions = field(default_factory=lambda: RecursiveOptions(
        block_size=2,
        samples_per_iteration=8,
        initial_samples=16,
        error_threshold=1e-2,
        rank_method="tolerance",
        rank_tolerance=2e-4,
    ))
    n_validation: int = 300


@dataclass(frozen=True)
class Table1Row:
    """One row of (our reproduction of) Table 1."""

    algorithm: str
    test: str
    reduced_order: int
    time_seconds: float
    error_vs_measurement: float
    error_vs_truth: float


@dataclass(frozen=True)
class Table1Data:
    """All rows of the Table-1 reproduction plus the workloads used."""

    rows: tuple[Table1Row, ...]
    test1_data: FrequencyData = field(repr=False)
    test2_data: FrequencyData = field(repr=False)
    validation_data: FrequencyData = field(repr=False)

    def rows_for(self, test: str) -> tuple[Table1Row, ...]:
        """All rows belonging to ``"test1"`` or ``"test2"``."""
        return tuple(row for row in self.rows if row.test == test)

    def best_error(self, test: str) -> Table1Row:
        """The row with the smallest ground-truth error in the given test."""
        rows = self.rows_for(test)
        return min(rows, key=lambda r: r.error_vs_truth)


def build_pdn_datasets(config: Example2Config | None = None):
    """Build the Test-1 / Test-2 measurement sets and the clean validation sweep.

    Returns ``(test1, test2, validation)`` where the first two are noisy
    scattering data on the uniform / clustered grids and the third is a dense
    noise-free log sweep of the same network.
    """
    cfg = config or Example2Config()
    system = power_distribution_network(cfg.pdn)

    uniform = linear_frequencies(cfg.f_min_hz, cfg.f_max_hz, cfg.n_samples)
    clustered = clustered_frequencies(cfg.f_min_hz, cfg.f_max_hz, cfg.n_samples)
    validation_freqs = linear_frequencies(cfg.f_min_hz, cfg.f_max_hz, cfg.n_validation)

    test1_clean = sample_scattering(system, uniform, system_kind="Z", label="pdn test1")
    test2_clean = sample_scattering(system, clustered, system_kind="Z", label="pdn test2")
    validation = sample_scattering(system, validation_freqs, system_kind="Z",
                                   label="pdn validation")

    test1 = add_measurement_noise(test1_clean, relative_level=cfg.noise_level,
                                  seed=cfg.noise_seed)
    test2 = add_measurement_noise(test2_clean, relative_level=cfg.noise_level,
                                  seed=cfg.noise_seed + 1)
    return test1, test2, validation


def loewner_table1_jobs(
    cfg: Example2Config,
    test_name: str,
    data: FrequencyData,
    validation: FrequencyData,
) -> list[FitJob]:
    """The Loewner rows of Table 1 for one test, as a batch job grid.

    Both the driver below and ``benchmarks/bench_table1.py`` build their job
    grids here, so the interactive table and the benchmark sweep are the same
    workload by construction.
    """
    jobs = [FitJob(
        data,
        method="vfti",
        options=VftiOptions(rank_method="tolerance", rank_tolerance=cfg.rank_tolerance),
        label="VFTI",
        tags={"test": test_name, "algorithm": "VFTI"},
        reference=validation,
    )]
    for block in cfg.mfti_block_sizes:
        jobs.append(FitJob(
            data,
            method="mfti",
            options=MftiOptions(block_size=block, rank_method="tolerance",
                                rank_tolerance=cfg.rank_tolerance),
            label=f"MFTI-1 t={block}",
            tags={"test": test_name, "algorithm": f"MFTI-1 t={block}"},
            reference=validation,
        ))
    jobs.append(FitJob(
        data,
        method="mfti-recursive",
        options=cfg.recursive,
        label="MFTI-2 (recursive)",
        tags={"test": test_name, "algorithm": "MFTI-2 (recursive)"},
        reference=validation,
    ))
    return jobs


def _vf_row(
    algorithm: str,
    test: str,
    n_poles: int,
    n_iterations: int,
    data: FrequencyData,
    validation: FrequencyData,
) -> Table1Row:
    started = time.perf_counter()
    fit = vector_fit(data, n_poles, n_iterations=n_iterations)
    elapsed = time.perf_counter() - started
    response_fit = fit.frequency_response(data.frequencies_hz)
    response_val = fit.frequency_response(validation.frequencies_hz)
    return Table1Row(
        algorithm=algorithm,
        test=test,
        reduced_order=fit.n_poles,
        time_seconds=elapsed,
        error_vs_measurement=aggregate_error(response_fit, data.samples),
        error_vs_truth=aggregate_error(response_val, validation.samples),
    )


def table1_experiment(
    config: Example2Config | None = None,
    *,
    include_vector_fitting: bool = True,
    engine: BatchEngine | None = None,
    cache: Optional[FitCache] = None,
) -> Table1Data:
    """Run all algorithm settings of Table 1 on both tests and collect the rows.

    ``include_vector_fitting=False`` skips the (comparatively slow) VF rows,
    which is convenient for quick checks and for the test-suite.  All Loewner
    rows of both tests run as one batch through ``engine`` (default: the
    serial reference executor), so passing a pooled engine parallelises the
    whole table.  A shared ``cache`` makes repeated regenerations (parameter
    studies, re-runs of the benchmark suite) replay identical fits instead of
    recomputing them.
    """
    cfg = config or Example2Config()
    test1, test2, validation = build_pdn_datasets(cfg)
    datasets = {"test1": test1, "test2": test2}

    jobs = [
        job
        for test_name, data in datasets.items()
        for job in loewner_table1_jobs(cfg, test_name, data, validation)
    ]
    runner = engine or BatchEngine()
    if cache is not None:
        runner = replace(runner, cache=cache)
    batch = runner.run(jobs).raise_failures(context="Table-1 job")

    rows: list[Table1Row] = []
    for test_name, data in datasets.items():
        if include_vector_fitting:
            for n_poles in cfg.vf_pole_counts:
                rows.append(_vf_row(
                    f"VF ({cfg.vf_iterations} iterations) n={n_poles}",
                    test_name, n_poles, cfg.vf_iterations, data, validation,
                ))
        for record in batch.with_tag("test", test_name):
            rows.append(Table1Row(
                algorithm=record.label,
                test=test_name,
                reduced_order=record.order,
                time_seconds=record.result.elapsed_seconds,
                error_vs_measurement=record.error_vs_data,
                error_vs_truth=record.error_vs_reference,
            ))
    return Table1Data(
        rows=tuple(rows),
        test1_data=test1,
        test2_data=test2,
        validation_data=validation,
    )
