"""Plain-text reporting helpers shared by benchmarks and example scripts.

Everything in the reproduction is reported as text (aligned tables and simple
``x y1 y2 ...`` series dumps) so results can be inspected without any plotting
dependency and diffed between runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e4:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of rows; each row must have one entry per header.  Floats are
        formatted compactly (4 significant digits, scientific notation outside
        a readable range).
    title:
        Optional title line printed above the table.
    """
    headers = [str(h) for h in headers]
    text_rows = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} entries but there are {len(headers)} headers"
            )
        text_rows.append([_format_cell(v) for v in row])
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x, series: dict[str, np.ndarray], *, x_label: str = "x", title: str = "") -> str:
    """Render one or more series sharing an x axis as aligned text columns.

    Used to dump the Fig. 1 singular-value profiles and the Fig. 2 Bode curves
    in a form that can be plotted externally or compared numerically.
    """
    x = np.asarray(x)
    headers = [x_label] + list(series)
    rows = []
    for i in range(x.size):
        row = [float(x[i])]
        for name in series:
            values = np.asarray(series[name])
            row.append(float(values[i]) if i < values.size else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)
