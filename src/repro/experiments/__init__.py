"""Experiment drivers that regenerate every figure and table of the paper.

Each module corresponds to one evaluation artifact (see the per-experiment
index in ``DESIGN.md``):

* :mod:`repro.experiments.example1` -- Example 1: the under-sampled order-150,
  30-port system; singular-value profiles (Fig. 1), Bode comparison (Fig. 2)
  and the sample-requirement sweep behind the "~30x fewer samples" claim.
* :mod:`repro.experiments.example2` -- Example 2: the 14-port PDN workload and
  the noisy-data comparison of Table 1 (VF / VFTI / MFTI-1 / MFTI-2).
* :mod:`repro.experiments.minimal_sampling` -- the Theorem 3.5 validation.
* :mod:`repro.experiments.ablations` -- ablations over the design choices
  (block size ``t``, SVD mode, recursive parameters).
* :mod:`repro.experiments.reporting` -- plain-text table / series formatting
  shared by the benchmarks and the example scripts.
"""

from repro.experiments.example1 import (
    Example1Config,
    Figure1Data,
    Figure2Data,
    bode_experiment,
    sample_requirement_sweep,
    singular_value_experiment,
)
from repro.experiments.example2 import (
    Example2Config,
    Table1Data,
    Table1Row,
    build_pdn_datasets,
    table1_experiment,
)
from repro.experiments.minimal_sampling import (
    MinimalSamplingResult,
    minimal_sampling_experiment,
)
from repro.experiments.ablations import (
    recursive_parameter_ablation,
    svd_mode_ablation,
    weighting_ablation,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.workloads import (
    WORKLOADS,
    mixed_batch_jobs,
    monte_carlo_jobs,
    port_sweep_jobs,
    workload_jobs,
)

__all__ = [
    "Example1Config",
    "Figure1Data",
    "Figure2Data",
    "singular_value_experiment",
    "bode_experiment",
    "sample_requirement_sweep",
    "Example2Config",
    "Table1Row",
    "Table1Data",
    "build_pdn_datasets",
    "table1_experiment",
    "MinimalSamplingResult",
    "minimal_sampling_experiment",
    "weighting_ablation",
    "svd_mode_ablation",
    "recursive_parameter_ablation",
    "format_table",
    "format_series",
    "mixed_batch_jobs",
    "monte_carlo_jobs",
    "port_sweep_jobs",
    "WORKLOADS",
    "workload_jobs",
]
