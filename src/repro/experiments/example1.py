"""Example 1 of the paper: under-sampled recovery of an order-150, 30-port system.

The paper samples only 8 scattering matrices from an order-150 system with 30
ports and shows that

* the singular values of the VFTI Loewner pencil show no sharp drop (the data
  is insufficient for VFTI), while the MFTI profiles drop sharply at the
  underlying order (Fig. 1),
* the MFTI model matches the original Bode response while the VFTI model does
  not (Fig. 2),
* VFTI needs roughly ``min(m, p)`` times more samples (about 30x here / about
  180 matrix samples) to recover the same system, confirming Theorem 3.5.

The exact benchmark system of the paper is unpublished, so the experiment uses
the fixed seeded system of
:func:`repro.systems.random_systems.example1_system` (same order, same port
count, resonances over the same 10 Hz - 100 kHz band).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core import mfti, vfti
from repro.core.results import MacromodelResult
from repro.data import log_frequencies, sample_scattering
from repro.data.dataset import FrequencyData
from repro.metrics.errors import relative_error_per_frequency
from repro.systems.random_systems import EXAMPLE1_SEED, example1_system
from repro.systems.statespace import DescriptorSystem

__all__ = [
    "Example1Config",
    "Figure1Data",
    "Figure2Data",
    "SampleRequirement",
    "singular_value_experiment",
    "bode_experiment",
    "sample_requirement_sweep",
]


@dataclass(frozen=True)
class Example1Config:
    """Parameters of the Example-1 reproduction.

    The defaults reproduce the paper's setting: an order-150 system with 30
    ports, 8 sampled scattering matrices over the 10 Hz - 100 kHz band.
    Smaller settings (used by the test-suite to keep runtimes down) preserve
    the qualitative behaviour.
    """

    order: int = 150
    n_ports: int = 30
    n_samples: int = 8
    f_min_hz: float = 1e1
    f_max_hz: float = 1e5
    seed: int = EXAMPLE1_SEED

    def system(self) -> DescriptorSystem:
        """The (seeded) underlying benchmark system."""
        return example1_system(order=self.order, n_ports=self.n_ports, seed=self.seed)

    def sample_data(self, n_samples: Optional[int] = None) -> FrequencyData:
        """Sample ``n_samples`` scattering matrices over the configured band."""
        count = self.n_samples if n_samples is None else int(n_samples)
        freqs = log_frequencies(self.f_min_hz, self.f_max_hz, count)
        return sample_scattering(self.system(), freqs, label="example1")


@dataclass(frozen=True)
class Figure1Data:
    """Singular-value profiles of the VFTI and MFTI pencils (paper Fig. 1)."""

    vfti_singular_values: dict[str, np.ndarray]
    mfti_singular_values: dict[str, np.ndarray]
    vfti_detected_order: int
    mfti_detected_order: int
    true_order: int
    true_order_with_feedthrough: int

    def mfti_drop_ratio(self) -> float:
        """Ratio across the MFTI pencil's singular-value drop at the detected order."""
        s = self.mfti_singular_values["pencil"]
        idx = self.mfti_detected_order
        if not 0 < idx < s.size:
            return 1.0
        return float(s[idx - 1] / max(s[idx], np.finfo(float).tiny))

    def vfti_drop_ratio(self) -> float:
        """Ratio across the largest consecutive drop of the VFTI pencil profile."""
        s = self.vfti_singular_values["pencil"]
        if s.size < 2:
            return 1.0
        ratios = s[:-1] / np.maximum(s[1:], np.finfo(float).tiny)
        return float(np.max(ratios))


@dataclass(frozen=True)
class Figure2Data:
    """Bode magnitude of the original and the recovered systems (paper Fig. 2)."""

    frequencies_hz: np.ndarray
    original_magnitude: np.ndarray
    mfti_magnitude: np.ndarray
    vfti_magnitude: np.ndarray
    mfti_error: float
    vfti_error: float
    mfti_result: MacromodelResult = field(repr=False)
    vfti_result: MacromodelResult = field(repr=False)


@dataclass(frozen=True)
class SampleRequirement:
    """Result of the sample-count sweep for one method."""

    method: str
    samples_needed: Optional[int]
    error_at_requirement: float
    tolerance: float


def singular_value_experiment(config: Example1Config | None = None) -> Figure1Data:
    """Reproduce Fig. 1: VFTI vs MFTI singular-value patterns on 8 samples."""
    cfg = config or Example1Config()
    system = cfg.system()
    data = cfg.sample_data()

    mfti_result = mfti(data)
    vfti_result = vfti(data)

    d = np.asarray(system.D)
    rank_d = int(np.linalg.matrix_rank(d)) if d.size else 0
    return Figure1Data(
        vfti_singular_values=vfti_result.singular_values,
        mfti_singular_values=mfti_result.singular_values,
        vfti_detected_order=vfti_result.realization.order,
        mfti_detected_order=mfti_result.realization.order,
        true_order=system.order,
        true_order_with_feedthrough=system.order + rank_d,
    )


def bode_experiment(
    config: Example1Config | None = None,
    *,
    n_validation: int = 200,
    output_port: int = 0,
    input_port: int = 0,
) -> Figure2Data:
    """Reproduce Fig. 2: Bode magnitude (port 1 -> 1) of original vs recovered models."""
    cfg = config or Example1Config()
    system = cfg.system()
    data = cfg.sample_data()

    mfti_result = mfti(data)
    vfti_result = vfti(data)

    freqs = log_frequencies(cfg.f_min_hz, cfg.f_max_hz, int(n_validation))
    reference = sample_scattering(system, freqs, label="example1 validation")
    mfti_response = mfti_result.frequency_response(freqs)
    vfti_response = vfti_result.frequency_response(freqs)

    mfti_err = relative_error_per_frequency(mfti_response, reference.samples)
    vfti_err = relative_error_per_frequency(vfti_response, reference.samples)
    return Figure2Data(
        frequencies_hz=freqs,
        original_magnitude=np.abs(reference.samples[:, output_port, input_port]),
        mfti_magnitude=np.abs(mfti_response[:, output_port, input_port]),
        vfti_magnitude=np.abs(vfti_response[:, output_port, input_port]),
        mfti_error=float(np.linalg.norm(mfti_err) / math.sqrt(mfti_err.size)),
        vfti_error=float(np.linalg.norm(vfti_err) / math.sqrt(vfti_err.size)),
        mfti_result=mfti_result,
        vfti_result=vfti_result,
    )


def _recovery_error(result: MacromodelResult, reference: FrequencyData) -> float:
    errors = result.errors_against(reference)
    return float(np.linalg.norm(errors) / math.sqrt(errors.size))


def sample_requirement_sweep(
    config: Example1Config | None = None,
    *,
    tolerance: float = 1e-6,
    mfti_counts: Optional[list[int]] = None,
    vfti_counts: Optional[list[int]] = None,
    n_validation: int = 60,
) -> dict[str, SampleRequirement]:
    """Find how many samples each method needs to recover the system (Theorem 3.5).

    Returns a mapping ``{"mfti": ..., "vfti": ...}`` with the smallest tried
    sample count whose validation error falls below ``tolerance`` (``None``
    when no tried count suffices).  The default candidate counts bracket the
    theorem's prediction for MFTI and the ``order(Gamma)``-sample requirement
    for VFTI.
    """
    cfg = config or Example1Config()
    system = cfg.system()
    width = min(system.n_inputs, system.n_outputs)
    rank_d = int(np.linalg.matrix_rank(np.asarray(system.D))) if np.asarray(system.D).size else 0
    predicted = math.ceil((system.order + rank_d) / width)

    if mfti_counts is None:
        mfti_counts = sorted({max(2, predicted - 2), predicted, predicted + 2, predicted + 4})
    if vfti_counts is None:
        vfti_counts = sorted({system.order // 2, system.order, system.order + 2 * rank_d,
                              2 * (system.order + rank_d)})
    freqs = log_frequencies(cfg.f_min_hz, cfg.f_max_hz, int(n_validation))
    reference = sample_scattering(system, freqs, label="validation")

    results: dict[str, SampleRequirement] = {}
    for method, counts, runner in (("mfti", mfti_counts, mfti), ("vfti", vfti_counts, vfti)):
        needed = None
        err_at = float("nan")
        for count in counts:
            count = int(count) + (int(count) % 2)  # even counts split cleanly
            data = cfg.sample_data(count)
            result = runner(data)
            err = _recovery_error(result, reference)
            if err <= tolerance:
                needed = count
                err_at = err
                break
            err_at = err
        results[method] = SampleRequirement(
            method=method,
            samples_needed=needed,
            error_at_requirement=err_at,
            tolerance=tolerance,
        )
    return results
