"""Shared batch-workload builders (the *named grids* of the batch layer).

The batch layer's acceptance workload -- a mixed MFTI/VFTI job grid over the
noisy 14-port PDN of Example 2 and a lossy lumped transmission line -- is used
both by ``benchmarks/bench_batch_engine.py`` and by ``examples/batch_sweep.py``.
Building it here keeps the two in sync by construction (the same pattern as
:func:`repro.experiments.example2.loewner_table1_jobs` for Table 1).

Every builder in :data:`WORKLOADS` is a **shardable entry point**: it is
deterministic (same kwargs, bitwise-identical datasets -- all randomness is
seeded), so a shard manifest (:mod:`repro.batch.sharding`) only needs to
record the builder's name and kwargs for a worker machine to rebuild exactly
the planned jobs, verified by content fingerprint.  Keep new grids seeded
and JSON-safe in their kwargs to stay shardable.
"""

from __future__ import annotations

from typing import Callable

from repro.batch.jobs import FitJob
from repro.circuits.mna import netlist_to_descriptor
from repro.circuits.pdn import PdnConfiguration, power_distribution_network
from repro.circuits.rlc_networks import rlc_grid
from repro.circuits.transmission_line import lumped_transmission_line
from repro.core.options import MftiOptions, RecursiveOptions, VftiOptions
from repro.data import (
    add_measurement_noise,
    linear_frequencies,
    sample_impedance,
    sample_scattering,
)
from repro.experiments.example2 import Example2Config, build_pdn_datasets
from repro.metrics.timedomain import TimeDomainSpec
from repro.vectorfitting.enforcement import PassivitySpec

__all__ = ["mixed_batch_jobs", "monte_carlo_jobs", "port_sweep_jobs",
           "time_domain_jobs", "passive_macromodel_jobs", "WORKLOADS",
           "workload_jobs"]


def mixed_batch_jobs(
    *,
    pdn_samples: int = 140,
    pdn_validation: int = 160,
    line_sections: int = 40,
    line_samples: int = 100,
    line_validation: int = 200,
    mfti_block_sizes: tuple[int, ...] = (2, 3),
) -> list[FitJob]:
    """Mixed MFTI/VFTI jobs over a noisy PDN and a transmission-line dataset.

    With the defaults this is an 8-job grid: for each of the two workloads one
    VFTI job, one MFTI job per entry of ``mfti_block_sizes``, and one
    recursive-MFTI job -- every job with a clean dense validation sweep
    attached so records carry a ground-truth error.  Block sizes are clamped
    to each workload's port count, de-duplicated, and backfilled with unused
    smaller sizes, so the per-workload job count is preserved whenever the
    port count offers enough distinct sizes.
    """
    cfg = Example2Config(n_samples=pdn_samples, n_validation=pdn_validation)
    pdn_data, _, pdn_reference = build_pdn_datasets(cfg)

    line = netlist_to_descriptor(lumped_transmission_line(0.1, line_sections))
    line_data = add_measurement_noise(
        sample_scattering(line, linear_frequencies(1e6, 5e9, line_samples),
                          label="transmission line"),
        relative_level=1e-6, seed=5)
    line_reference = sample_scattering(
        line, linear_frequencies(1e6, 5e9, line_validation), label="tl validation")

    jobs: list[FitJob] = []
    for name, data, reference, tolerance in (
        ("pdn", pdn_data, pdn_reference, cfg.rank_tolerance),
        ("tline", line_data, line_reference, 1e-7),
    ):
        jobs.append(FitJob(data, method="vfti",
                           options=VftiOptions(rank_method="tolerance",
                                               rank_tolerance=tolerance),
                           label=f"{name}/vfti", tags={"workload": name},
                           reference=reference))
        # clamp the requested block sizes to the port count and de-duplicate
        # (a 2-port line would otherwise run t=2 twice, once labelled t=3),
        # then backfill with unused smaller sizes to preserve the job count
        # where the port count allows it
        blocks = list(dict.fromkeys(min(block, data.n_ports)
                                    for block in mfti_block_sizes))
        unused = [t for t in range(data.n_ports, 0, -1) if t not in blocks]
        while len(blocks) < len(mfti_block_sizes) and unused:
            blocks.insert(0, unused.pop())
        for block in blocks:
            jobs.append(FitJob(data, method="mfti",
                               options=MftiOptions(block_size=block,
                                                   rank_method="tolerance",
                                                   rank_tolerance=tolerance),
                               label=f"{name}/mfti-t{block}", tags={"workload": name},
                               reference=reference))
        jobs.append(FitJob(data, method="mfti-recursive",
                           options=RecursiveOptions(block_size=2,
                                                    samples_per_iteration=8,
                                                    initial_samples=16,
                                                    rank_method="tolerance",
                                                    rank_tolerance=tolerance),
                           label=f"{name}/mfti-recursive", tags={"workload": name},
                           reference=reference))
    return jobs


def monte_carlo_jobs(
    *,
    n_draws: int = 8,
    methods: tuple[str, ...] = ("mfti", "vfti"),
    pdn_samples: int = 80,
    pdn_validation: int = 120,
    noise_level: float = 2e-4,
    base_seed: int = 1000,
    mfti_block_size: int = 2,
    grid_rows: int = 6,
    grid_cols: int = 6,
) -> list[FitJob]:
    """Named Monte-Carlo noise-study grid over the 14-port PDN.

    One clean measurement sweep of the PDN is drawn once; every Monte-Carlo
    *draw* injects an independent but **seeded** noise realization
    (``seed = base_seed + draw``) into that sweep, and every method in
    ``methods`` fits every draw.  Each job carries a clean dense validation
    sweep as reference and is tagged with ``study="monte-carlo"``, the draw
    index, the noise seed and the method, so :class:`~repro.batch.results.
    BatchResult` filters (``with_tag``) slice the study along any axis.

    The grid is cache-friendly *by construction*: seeded draws make every
    dataset content-deterministic, so all methods fitting draw ``i`` share
    one dataset fingerprint, and re-running the study (or extending
    ``methods`` / ``n_draws``) replays every previously computed fit and
    evaluation from a shared :class:`~repro.cache.FitCache` instead of
    recomputing it.
    """
    if n_draws < 1:
        raise ValueError("n_draws must be >= 1")
    if not methods:
        raise ValueError("methods must name at least one registered front-end")
    cfg = Example2Config(
        pdn=PdnConfiguration(grid_rows=grid_rows, grid_cols=grid_cols),
        n_samples=pdn_samples,
        n_validation=pdn_validation,
        noise_level=noise_level,
    )
    system = power_distribution_network(cfg.pdn)
    measurement_freqs = linear_frequencies(cfg.f_min_hz, cfg.f_max_hz, cfg.n_samples)
    validation_freqs = linear_frequencies(cfg.f_min_hz, cfg.f_max_hz, cfg.n_validation)
    clean = sample_scattering(system, measurement_freqs, system_kind="Z",
                              label="pdn monte-carlo clean")
    reference = sample_scattering(system, validation_freqs, system_kind="Z",
                                  label="pdn monte-carlo validation")

    def options_for(method: str):
        if method == "mfti":
            return MftiOptions(block_size=mfti_block_size, rank_method="tolerance",
                               rank_tolerance=cfg.rank_tolerance)
        if method == "vfti":
            return VftiOptions(rank_method="tolerance",
                               rank_tolerance=cfg.rank_tolerance)
        if method == "mfti-recursive":
            return RecursiveOptions(block_size=2, samples_per_iteration=8,
                                    initial_samples=16, rank_method="tolerance",
                                    rank_tolerance=cfg.rank_tolerance)
        raise ValueError(f"no Monte-Carlo options preset for method {method!r}")

    jobs: list[FitJob] = []
    for draw in range(n_draws):
        seed = base_seed + draw
        noisy = add_measurement_noise(clean, relative_level=noise_level, seed=seed)
        for method in methods:
            jobs.append(FitJob(
                noisy,
                method=method,
                options=options_for(method),
                label=f"mc/draw{draw:02d}/{method}",
                tags={"study": "monte-carlo", "draw": draw, "seed": seed,
                      "workload": "pdn", "method": method},
                reference=reference,
            ))
    return jobs


def port_sweep_jobs(
    *,
    port_counts: tuple[int, ...] = (2, 4, 8),
    block_sizes: tuple[int, ...] = (1, 2, 3),
    order: int = 24,
    n_samples: int = 30,
    n_validation: int = 60,
    f_min_hz: float = 1e2,
    f_max_hz: float = 1e6,
    noise_level: float = 1e-6,
    base_seed: int = 400,
) -> list[FitJob]:
    """Named port-sweep grid: vary the port count and the direction count.

    The ROADMAP's second realistic named grid (after the Monte-Carlo study):
    how do accuracy, model order and cost move as the number of ports ``p``
    grows and as the tangential block size ``t`` (the per-sample *direction
    count*, the paper's central knob) sweeps from the VFTI information
    content (``t = 1``) towards full matrix interpolation?  For every port
    count one seeded random stable system is drawn
    (``seed = base_seed + p``), lightly noised samples are fitted with VFTI,
    one MFTI job per block size in ``block_sizes`` (clamped to ``p`` and
    de-duplicated, like :func:`mixed_batch_jobs`), and one full-information
    MFTI job (``block_size=None``); every job carries a clean dense
    validation sweep.

    Tags: ``study="port-sweep"``, ``n_ports``, ``directions`` (the effective
    ``t``; ``"full"`` for the unrestricted job) and ``method``, so
    :meth:`~repro.batch.results.BatchResult.with_tag` slices the sweep along
    either axis.  Deterministic by construction (seeded system and noise), so
    the grid is shardable and cache-stable across rebuilds.
    """
    from repro.systems.random_systems import random_stable_system

    if not port_counts:
        raise ValueError("port_counts must name at least one port count")
    if any(p < 1 for p in port_counts):
        raise ValueError("port counts must be >= 1")
    if not block_sizes:
        raise ValueError("block_sizes must name at least one direction count")

    jobs: list[FitJob] = []
    for n_ports in port_counts:
        seed = base_seed + n_ports
        system = random_stable_system(order=order, n_ports=n_ports,
                                      feedthrough=0.1, seed=seed)
        freqs = linear_frequencies(f_min_hz, f_max_hz, n_samples)
        data = add_measurement_noise(
            sample_scattering(system, freqs, label=f"port-sweep p={n_ports}"),
            relative_level=noise_level, seed=seed)
        reference = sample_scattering(
            system, linear_frequencies(f_min_hz, f_max_hz, n_validation),
            label=f"port-sweep p={n_ports} validation")

        common = {"study": "port-sweep", "n_ports": n_ports, "seed": seed}
        jobs.append(FitJob(data, method="vfti", options=VftiOptions(),
                           label=f"ports{n_ports}/vfti",
                           tags={**common, "method": "vfti", "directions": 1},
                           reference=reference))
        blocks = list(dict.fromkeys(min(block, n_ports) for block in block_sizes))
        for block in blocks:
            jobs.append(FitJob(data, method="mfti",
                               options=MftiOptions(block_size=block),
                               label=f"ports{n_ports}/mfti-t{block}",
                               tags={**common, "method": "mfti", "directions": block},
                               reference=reference))
        jobs.append(FitJob(data, method="mfti", options=MftiOptions(block_size=None),
                           label=f"ports{n_ports}/mfti-full",
                           tags={**common, "method": "mfti", "directions": "full"},
                           reference=reference))
    return jobs


def time_domain_jobs(
    *,
    system_orders: tuple[int, ...] = (12, 20),
    n_ports: int = 2,
    methods: tuple[str, ...] = ("mfti", "vfti"),
    n_samples: int = 60,
    n_validation: int = 120,
    f_min_hz: float = 1e2,
    f_max_hz: float = 1e6,
    noise_level: float = 1e-6,
    base_seed: int = 700,
    t_final: float = 2e-2,
    time_points: int = 128,
    oversample: int = 8,
) -> list[FitJob]:
    """Named time-domain validation grid over seeded random stable systems.

    For every order in ``system_orders`` one seeded random stable system is
    drawn (``seed = base_seed + order``), its lightly noised scattering sweep
    is fitted with every method in ``methods``, and each job carries a clean
    dense validation sweep **plus a** :class:`~repro.metrics.timedomain.
    TimeDomainSpec` -- so every record comes back with the spectral-pathway
    impulse/step error columns (:data:`~repro.metrics.timedomain.
    TIME_DOMAIN_METRIC_KEYS`) filled in, computed worker-side through the
    batched inverse-FFT path of :mod:`repro.systems.spectral`.

    The horizon defaults (``t_final``, ``time_points``, ``oversample``) are
    matched to the default band: ``t_final = 2e-2`` s covers many periods of
    the slowest default dynamics while the FFT grid's Nyquist rate stays well
    above ``f_max_hz``.  Tags: ``study="time-domain"``, ``order``, ``method``.
    Deterministic by construction (seeded system and noise, scalar spec
    kwargs), so the grid is shardable and cache-stable across rebuilds.
    """
    from repro.systems.random_systems import random_stable_system

    if not system_orders:
        raise ValueError("system_orders must name at least one model order")
    if not methods:
        raise ValueError("methods must name at least one registered front-end")
    spec = TimeDomainSpec(t_final=t_final, n_points=time_points,
                          oversample=oversample)

    def options_for(method: str):
        if method == "mfti":
            return MftiOptions(block_size=2)
        if method == "vfti":
            return VftiOptions()
        if method == "mfti-recursive":
            return RecursiveOptions(block_size=2, samples_per_iteration=8,
                                    initial_samples=16)
        raise ValueError(f"no time-domain options preset for method {method!r}")

    jobs: list[FitJob] = []
    for order in system_orders:
        seed = base_seed + order
        system = random_stable_system(order=order, n_ports=n_ports,
                                      feedthrough=0.1, seed=seed)
        freqs = linear_frequencies(f_min_hz, f_max_hz, n_samples)
        data = add_measurement_noise(
            sample_scattering(system, freqs, label=f"time-domain n={order}"),
            relative_level=noise_level, seed=seed)
        reference = sample_scattering(
            system, linear_frequencies(f_min_hz, f_max_hz, n_validation),
            label=f"time-domain n={order} validation")
        for method in methods:
            jobs.append(FitJob(
                data,
                method=method,
                options=options_for(method),
                label=f"td/n{order}/{method}",
                tags={"study": "time-domain", "order": order, "seed": seed,
                      "method": method},
                reference=reference,
                time_domain=spec,
            ))
    return jobs


def passive_macromodel_jobs(
    *,
    n_samples: int = 40,
    n_validation: int = 100,
    noise_levels: tuple[float, ...] = (1e-6, 3e-5),
    band_factors: tuple[float, ...] = (1.5, 1.25),
    n_check: int = 64,
    max_iterations: int = 25,
    max_error_growth: float = 5.0,
    holdout_oversample: int = 2,
    line_sections: int = 20,
    mesh_rows: int = 3,
    mesh_cols: int = 3,
    base_seed: int = 42,
) -> list[FitJob]:
    """Named scenario zoo feeding the passivity-enforcement pipeline.

    The ROADMAP's "production model" grid: every job fits a noisy sweep of a
    physical circuit and carries a :class:`~repro.vectorfitting.enforcement.
    PassivitySpec`, so every record comes back with a passing
    :class:`~repro.vectorfitting.enforcement.PassivityCertificate` (or fails
    loudly) -- the certified artifact a downstream SI/PI user would deploy.

    Scenarios span three circuit families times two representations: a small
    power-distribution network sampled both as scattering data (``"S"``,
    converted from its impedance-type MNA system via ``system_kind="Z"``) and
    as raw impedance data (``"Z"``, positive-real condition); a lossy lumped
    transmission line (S); and an RLC grid mesh (S).  ``noise_levels`` and
    ``band_factors`` are paired element-wise into noise x band regimes: higher
    measurement noise is checked over a tighter out-of-band guard band, which
    keeps the out-of-band extrapolation of the noisier fits inside what
    residue perturbation can repair.

    Tags: ``study="passive-macromodel"``, ``circuit``, ``representation``,
    ``noise``, ``band``, ``seed``.  Deterministic by construction (seeded
    noise, scalar spec kwargs), so the grid is shardable and cache-stable
    across rebuilds.
    """
    if not noise_levels:
        raise ValueError("noise_levels must name at least one noise level")
    if len(noise_levels) != len(band_factors):
        raise ValueError(
            "noise_levels and band_factors pair element-wise into regimes; "
            f"got {len(noise_levels)} noise level(s) for "
            f"{len(band_factors)} band factor(s)"
        )

    pdn = power_distribution_network(PdnConfiguration(
        n_ports=3, grid_rows=3, grid_cols=3, n_decaps=3, n_bulk_caps=1))
    tline = netlist_to_descriptor(lumped_transmission_line(0.1, line_sections))
    mesh = netlist_to_descriptor(rlc_grid(mesh_rows, mesh_cols))
    scenarios = (
        ("pdn", pdn, 1e6, 2.5e9, "S"),
        ("tline", tline, 1e6, 5e9, "S"),
        ("mesh", mesh, 1e6, 2e9, "S"),
        ("pdn", pdn, 1e6, 2.5e9, "Z"),
    )

    jobs: list[FitJob] = []
    for name, system, f_lo, f_hi, representation in scenarios:
        freqs = linear_frequencies(f_lo, f_hi, n_samples)
        validation_freqs = linear_frequencies(f_lo, f_hi, n_validation)
        # All three generators build impedance-type MNA/descriptor systems:
        # scattering data must be *converted* (system_kind="Z"), not sampled
        # raw, or the "S" sweep would carry impedance-scale entries.
        if representation == "S":
            clean = sample_scattering(system, freqs, system_kind="Z",
                                      label=f"passive {name}")
            reference = sample_scattering(system, validation_freqs,
                                          system_kind="Z",
                                          label=f"passive {name} validation")
        else:
            clean = sample_impedance(system, freqs, label=f"passive {name}")
            reference = sample_impedance(system, validation_freqs,
                                         label=f"passive {name} validation")
        for noise, band_factor in zip(noise_levels, band_factors):
            data = add_measurement_noise(clean, relative_level=noise,
                                         seed=base_seed)
            spec = PassivitySpec(
                representation=representation,
                n_check=n_check,
                band_factor=band_factor,
                max_iterations=max_iterations,
                max_error_growth=max_error_growth,
                holdout_oversample=holdout_oversample,
            )
            jobs.append(FitJob(
                data,
                method="mfti",
                options=MftiOptions(block_size=2, rank_method="tolerance",
                                    rank_tolerance=1e-7),
                label=(f"passive/{name}-{representation.lower()}"
                       f"/noise{noise:g}-band{band_factor:g}"),
                tags={"study": "passive-macromodel", "circuit": name,
                      "representation": representation, "noise": noise,
                      "band": band_factor, "seed": base_seed},
                reference=reference,
                passivity=spec,
            ))
    return jobs


#: The shardable named grids: every entry is deterministic for fixed kwargs,
#: which is what lets a shard manifest reference jobs by (name, kwargs) and a
#: worker machine rebuild them bit-exactly (``python -m repro.batch.shard``).
WORKLOADS: dict[str, Callable[..., list[FitJob]]] = {
    "mixed_batch_jobs": mixed_batch_jobs,
    "monte_carlo_jobs": monte_carlo_jobs,
    "port_sweep_jobs": port_sweep_jobs,
    "time_domain_jobs": time_domain_jobs,
    "passive_macromodel_jobs": passive_macromodel_jobs,
}


def workload_jobs(name: str, **kwargs) -> list[FitJob]:
    """Build the named workload grid (the CLI's entry point into the registry)."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known grids: {', '.join(sorted(WORKLOADS))}"
        ) from None
    return builder(**kwargs)
