"""Ablations over the design choices of MFTI.

The paper motivates three knobs without sweeping them exhaustively; these
drivers produce the corresponding ablation tables:

* **block size / weighting** -- how accuracy, model size and runtime move as
  ``t_i`` grows from 1 (which *is* VFTI) to ``min(m, p)`` (full matrix
  interpolation),
* **SVD realization** -- the paper's single-pencil SVD versus the two-sided
  ``[L, sL]`` / ``[L; sL]`` projection, and the effect of the shift ``x0``,
* **recursive parameters** -- the block of samples added per iteration
  (``k0``) and the stopping threshold (``Th``) of Algorithm 2.

Every sweep is expressed as a grid of :class:`~repro.batch.jobs.FitJob` and
executed through a :class:`~repro.batch.engine.BatchEngine`, so the ablation
drivers parallelise across configurations by passing an engine with a pooled
executor -- the default remains the serial reference executor.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.batch.engine import BatchEngine
from repro.batch.jobs import FitJob
from repro.batch.results import BatchResult
from repro.cache.fitcache import FitCache
from repro.core.options import MftiOptions, RecursiveOptions
from repro.data.dataset import FrequencyData

__all__ = [
    "AblationRow",
    "weighting_ablation",
    "svd_mode_ablation",
    "recursive_parameter_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration of an ablation sweep.

    Attributes
    ----------
    setting:
        Human-readable description of the swept configuration.
    order:
        Order of the recovered model.
    time_seconds:
        Wall-clock time of the run.
    error:
        Aggregate (``ERR``) error against the supplied reference data.
    extra:
        Sweep-specific detail (e.g. number of recursive iterations).
    """

    setting: str
    order: int
    time_seconds: float
    error: float
    extra: float = float("nan")

    def to_dict(self) -> dict:
        """JSON-safe row for the benchmarks' ``BENCH_*.json`` exports.

        ``extra`` is included only when the sweep recorded one, under the
        generic key ``"extra"`` (e.g. the recursive sweep's iteration count).
        """
        row = {
            "setting": self.setting,
            "order": int(self.order),
            "time_seconds": float(self.time_seconds),
            "error": float(self.error),
        }
        if not np.isnan(self.extra):
            row["extra"] = float(self.extra)
        return row


def _run_grid(
    jobs: Sequence[FitJob],
    engine: Optional[BatchEngine],
    cache: Optional[FitCache] = None,
) -> BatchResult:
    """Run an ablation grid, re-raising the first failure (sweeps expect clean runs)."""
    runner = engine or BatchEngine()
    if cache is not None:
        runner = dataclasses.replace(runner, cache=cache)
    return runner.run(jobs).raise_failures(context="ablation job")


def _rows(batch: BatchResult, *, extra=None) -> list[AblationRow]:
    """Convert batch records to ablation rows (times are the algorithm times)."""
    rows = []
    for record in batch.records:
        rows.append(AblationRow(
            setting=record.label,
            order=record.order,
            time_seconds=record.result.elapsed_seconds,
            error=record.error_vs_reference,
            extra=float("nan") if extra is None else extra(record),
        ))
    return rows


def weighting_ablation(
    data: FrequencyData,
    reference: FrequencyData,
    *,
    block_sizes: Optional[Sequence[int]] = None,
    rank_tolerance: float = 1e-5,
    engine: Optional[BatchEngine] = None,
    cache: Optional[FitCache] = None,
) -> list[AblationRow]:
    """Sweep the tangential block size ``t`` from 1 to ``min(m, p)``."""
    max_block = min(data.n_inputs, data.n_outputs)
    sizes = list(block_sizes) if block_sizes is not None else list(range(1, max_block + 1))
    jobs = [
        FitJob(
            data,
            method="mfti",
            options=MftiOptions(block_size=int(t), rank_method="tolerance",
                                rank_tolerance=rank_tolerance),
            label=f"t={t}",
            tags={"ablation": "weighting", "t": int(t)},
            reference=reference,
        )
        for t in sizes
    ]
    return _rows(_run_grid(jobs, engine, cache))


def svd_mode_ablation(
    data: FrequencyData,
    reference: FrequencyData,
    *,
    block_size: Optional[int] = None,
    rank_tolerance: float = 1e-9,
    engine: Optional[BatchEngine] = None,
    cache: Optional[FitCache] = None,
) -> list[AblationRow]:
    """Compare the pencil-SVD of Algorithm 1 against the two-sided projection.

    The pencil mode is run for several choices of the shift ``x0`` (first right
    point, first left point, largest sample point) because the paper leaves
    that choice open.
    """
    jobs = [
        FitJob(
            data,
            method="mfti",
            options=MftiOptions(block_size=block_size, svd_mode="two-sided",
                                rank_tolerance=rank_tolerance),
            label="two-sided [L sL]/[L; sL]",
            tags={"ablation": "svd", "mode": "two-sided"},
            reference=reference,
        )
    ]
    omegas = 2.0 * np.pi * data.frequencies_hz
    shifts = {
        "pencil, x0 = j*w_first": 1j * omegas[0],
        "pencil, x0 = j*w_mid": 1j * omegas[len(omegas) // 2],
        "pencil, x0 = j*w_last": 1j * omegas[-1],
    }
    for label, x0 in shifts.items():
        jobs.append(FitJob(
            data,
            method="mfti",
            options=MftiOptions(block_size=block_size, svd_mode="pencil", x0=complex(x0),
                                real_output=False, rank_tolerance=rank_tolerance),
            label=label,
            tags={"ablation": "svd", "mode": "pencil", "x0_imag": float(x0.imag)},
            reference=reference,
        ))
    return _rows(_run_grid(jobs, engine, cache))


def recursive_parameter_ablation(
    data: FrequencyData,
    reference: FrequencyData,
    *,
    samples_per_iteration: Sequence[int] = (2, 4, 8),
    thresholds: Sequence[float] = (1e-1, 1e-2, 1e-3),
    block_size: int = 2,
    rank_tolerance: float = 1e-5,
    engine: Optional[BatchEngine] = None,
    cache: Optional[FitCache] = None,
) -> list[AblationRow]:
    """Sweep ``k0`` and ``Th`` of the recursive Algorithm 2."""
    jobs = []
    for k0 in samples_per_iteration:
        for threshold in thresholds:
            jobs.append(FitJob(
                data,
                method="mfti-recursive",
                options=RecursiveOptions(
                    block_size=block_size,
                    samples_per_iteration=int(k0),
                    error_threshold=float(threshold),
                    rank_method="tolerance",
                    rank_tolerance=rank_tolerance,
                ),
                label=f"k0={k0}, Th={threshold:g}",
                tags={"ablation": "recursive", "k0": int(k0), "threshold": float(threshold)},
                reference=reference,
            ))
    return _rows(
        _run_grid(jobs, engine, cache),
        extra=lambda record: float(record.result.metadata["recursion"].n_iterations),
    )
