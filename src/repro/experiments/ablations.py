"""Ablations over the design choices of MFTI.

The paper motivates three knobs without sweeping them exhaustively; these
drivers produce the corresponding ablation tables:

* **block size / weighting** -- how accuracy, model size and runtime move as
  ``t_i`` grows from 1 (which *is* VFTI) to ``min(m, p)`` (full matrix
  interpolation),
* **SVD realization** -- the paper's single-pencil SVD versus the two-sided
  ``[L, sL]`` / ``[L; sL]`` projection, and the effect of the shift ``x0``,
* **recursive parameters** -- the block of samples added per iteration
  (``k0``) and the stopping threshold (``Th``) of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core import mfti, recursive_mfti
from repro.core.options import MftiOptions, RecursiveOptions
from repro.data.dataset import FrequencyData

__all__ = [
    "AblationRow",
    "weighting_ablation",
    "svd_mode_ablation",
    "recursive_parameter_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration of an ablation sweep.

    Attributes
    ----------
    setting:
        Human-readable description of the swept configuration.
    order:
        Order of the recovered model.
    time_seconds:
        Wall-clock time of the run.
    error:
        Aggregate (``ERR``) error against the supplied reference data.
    extra:
        Sweep-specific detail (e.g. number of recursive iterations).
    """

    setting: str
    order: int
    time_seconds: float
    error: float
    extra: float = float("nan")


def weighting_ablation(
    data: FrequencyData,
    reference: FrequencyData,
    *,
    block_sizes: Optional[Sequence[int]] = None,
    rank_tolerance: float = 1e-5,
) -> list[AblationRow]:
    """Sweep the tangential block size ``t`` from 1 to ``min(m, p)``."""
    max_block = min(data.n_inputs, data.n_outputs)
    sizes = list(block_sizes) if block_sizes is not None else list(range(1, max_block + 1))
    rows = []
    for t in sizes:
        options = MftiOptions(block_size=int(t), rank_method="tolerance",
                              rank_tolerance=rank_tolerance)
        result = mfti(data, options=options)
        rows.append(AblationRow(
            setting=f"t={t}",
            order=result.order,
            time_seconds=result.elapsed_seconds,
            error=result.aggregate_error(reference),
        ))
    return rows


def svd_mode_ablation(
    data: FrequencyData,
    reference: FrequencyData,
    *,
    block_size: Optional[int] = None,
    rank_tolerance: float = 1e-9,
) -> list[AblationRow]:
    """Compare the pencil-SVD of Algorithm 1 against the two-sided projection.

    The pencil mode is run for several choices of the shift ``x0`` (first right
    point, first left point, largest sample point) because the paper leaves
    that choice open.
    """
    rows = []
    two_sided = MftiOptions(block_size=block_size, svd_mode="two-sided",
                            rank_tolerance=rank_tolerance)
    result = mfti(data, options=two_sided)
    rows.append(AblationRow(
        setting="two-sided [L sL]/[L; sL]",
        order=result.order,
        time_seconds=result.elapsed_seconds,
        error=result.aggregate_error(reference),
    ))

    omegas = 2.0 * np.pi * data.frequencies_hz
    shifts = {
        "pencil, x0 = j*w_first": 1j * omegas[0],
        "pencil, x0 = j*w_mid": 1j * omegas[len(omegas) // 2],
        "pencil, x0 = j*w_last": 1j * omegas[-1],
    }
    for label, x0 in shifts.items():
        options = MftiOptions(block_size=block_size, svd_mode="pencil", x0=complex(x0),
                              real_output=False, rank_tolerance=rank_tolerance)
        result = mfti(data, options=options)
        rows.append(AblationRow(
            setting=label,
            order=result.order,
            time_seconds=result.elapsed_seconds,
            error=result.aggregate_error(reference),
        ))
    return rows


def recursive_parameter_ablation(
    data: FrequencyData,
    reference: FrequencyData,
    *,
    samples_per_iteration: Sequence[int] = (2, 4, 8),
    thresholds: Sequence[float] = (1e-1, 1e-2, 1e-3),
    block_size: int = 2,
    rank_tolerance: float = 1e-5,
) -> list[AblationRow]:
    """Sweep ``k0`` and ``Th`` of the recursive Algorithm 2."""
    rows = []
    for k0 in samples_per_iteration:
        for threshold in thresholds:
            options = RecursiveOptions(
                block_size=block_size,
                samples_per_iteration=int(k0),
                error_threshold=float(threshold),
                rank_method="tolerance",
                rank_tolerance=rank_tolerance,
            )
            result = recursive_mfti(data, options=options)
            recursion = result.metadata["recursion"]
            rows.append(AblationRow(
                setting=f"k0={k0}, Th={threshold:g}",
                order=result.order,
                time_seconds=result.elapsed_seconds,
                error=result.aggregate_error(reference),
                extra=float(recursion.n_iterations),
            ))
    return rows
