"""Network-parameter conversions: scattering, impedance and admittance.

Macromodeling data for multi-port interconnect come either as scattering
matrices (S-parameters, the form the paper uses), impedance matrices (Z) or
admittance matrices (Y).  The circuit substrate naturally produces Y or Z
(through modified nodal analysis); this module converts between the three
representations both *pointwise* (matrix-valued samples at a frequency) and at
the *system level* (descriptor-system realizations), so the benchmark
workloads can be expressed in whichever parameters the experiment needs.

Conventions
-----------
All conversions use a real, positive reference impedance ``z0`` (default
50 ohm), identical at every port:

``S = (Z - z0 I)(Z + z0 I)^{-1} = (I - z0 Y)(I + z0 Y)^{-1}``
"""

from __future__ import annotations

import numpy as np

from repro.systems.statespace import DescriptorSystem
from repro.utils.validation import check_square

__all__ = [
    "z_to_s",
    "s_to_z",
    "y_to_s",
    "s_to_y",
    "z_to_y",
    "y_to_z",
    "scattering_from_impedance",
    "scattering_from_admittance",
]


def _eye_like(matrix: np.ndarray) -> np.ndarray:
    return np.eye(matrix.shape[0], dtype=complex)


def z_to_s(z: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Convert an impedance matrix sample to a scattering matrix."""
    z = check_square(np.asarray(z, dtype=complex), "z")
    eye = _eye_like(z)
    return np.linalg.solve((z + z0 * eye).T, (z - z0 * eye).T).T


def s_to_z(s: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Convert a scattering matrix sample to an impedance matrix.

    Raises
    ------
    numpy.linalg.LinAlgError
        If ``I - S`` is singular (the network has an ideal open/short that has
        no impedance representation).
    """
    s = check_square(np.asarray(s, dtype=complex), "s")
    eye = _eye_like(s)
    return z0 * np.linalg.solve(eye - s, eye + s)


def y_to_s(y: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Convert an admittance matrix sample to a scattering matrix."""
    y = check_square(np.asarray(y, dtype=complex), "y")
    eye = _eye_like(y)
    return np.linalg.solve((eye + z0 * y).T, (eye - z0 * y).T).T


def s_to_y(s: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Convert a scattering matrix sample to an admittance matrix."""
    s = check_square(np.asarray(s, dtype=complex), "s")
    eye = _eye_like(s)
    return np.linalg.solve(z0 * (eye + s), eye - s)


def z_to_y(z: np.ndarray) -> np.ndarray:
    """Invert an impedance matrix sample into an admittance matrix."""
    z = check_square(np.asarray(z, dtype=complex), "z")
    return np.linalg.inv(z)


def y_to_z(y: np.ndarray) -> np.ndarray:
    """Invert an admittance matrix sample into an impedance matrix."""
    y = check_square(np.asarray(y, dtype=complex), "y")
    return np.linalg.inv(y)


def scattering_from_admittance(system: DescriptorSystem, z0: float = 50.0) -> DescriptorSystem:
    """System-level conversion of an admittance (Y-parameter) model to scattering parameters.

    Given a descriptor system realizing ``Y(s)``, the scattering transfer
    function is ``S(s) = (I - z0 Y)(I + z0 Y)^{-1}``.  With
    ``Y(s) = C (sE - A)^{-1} B + D`` the closed form is::

        F   = (I + z0 D)^{-1}
        A_s = A - z0 B F C          E_s = E
        B_s = z0 B F  * sqrt(2)... (scaled into B_s = B F)
        C_s = -2 z0 F C  ... combined below
        D_s = (I - z0 D) F

    The algebra below follows the standard bilinear feedback construction:
    ``S = I - 2 z0 (Y^{-1} + z0 I)^{-1}`` rewritten as a linear-fractional
    transform of the realization, and is verified against the pointwise
    conversion :func:`y_to_s` in the test-suite.

    Requires ``m = p`` (square system).
    """
    if system.n_inputs != system.n_outputs:
        raise ValueError("scattering conversion requires a square system")
    eye = np.eye(system.n_inputs)
    d = system.D
    f = np.linalg.inv(eye + z0 * d)
    a_s = system.A - z0 * system.B @ f @ system.C
    b_s = system.B @ f
    c_s = -2.0 * z0 * f @ system.C
    d_s = (eye - z0 * d) @ f
    return DescriptorSystem(system.E, a_s, b_s, c_s, d_s)


def scattering_from_impedance(system: DescriptorSystem, z0: float = 50.0) -> DescriptorSystem:
    """System-level conversion of an impedance (Z-parameter) model to scattering parameters.

    Given a realization of ``Z(s)``, the scattering transfer function is
    ``S(s) = (Z - z0 I)(Z + z0 I)^{-1}``.  The construction mirrors
    :func:`scattering_from_admittance` with the roles of the bilinear map's
    coefficients exchanged, and is likewise validated pointwise in the tests.
    """
    if system.n_inputs != system.n_outputs:
        raise ValueError("scattering conversion requires a square system")
    eye = np.eye(system.n_inputs)
    d = system.D
    g = np.linalg.inv(d + z0 * eye)
    a_s = system.A - system.B @ g @ system.C
    b_s = system.B @ g
    c_s = 2.0 * z0 * g @ system.C
    d_s = (d - z0 * eye) @ g
    return DescriptorSystem(system.E, a_s, b_s, c_s, d_s)
