"""Descriptor-system / state-space substrate.

This package implements the LTI modeling target of the paper (eq. 1):

``E x'(t) = A x(t) + B u(t)``, ``y(t) = C x(t) + D u(t)``

with possibly singular ``E`` (a *descriptor system*, DS).  It provides

* :class:`~repro.systems.statespace.DescriptorSystem` -- the central model
  class with transfer-function evaluation ``H(s) = C (sE - A)^{-1} B + D``,
* the shared vectorized sweep-evaluation kernel (batched stacked-pencil
  solves, the shift-invert eigendecomposition fast path and pole-residue
  Cauchy evaluation) in :mod:`repro.systems.evaluation`,
* system analysis (poles, stability, controllability/observability Gramians,
  Hankel singular values) in :mod:`repro.systems.analysis`,
* balanced truncation for reference reductions in :mod:`repro.systems.balanced`,
* time-domain simulation in :mod:`repro.systems.timedomain` (per-step
  trapezoidal integration) and the batched spectral (inverse-FFT) pathway in
  :mod:`repro.systems.spectral`,
* network-parameter conversions (impedance / admittance / scattering) in
  :mod:`repro.systems.interconnect`,
* system interconnection (series / parallel / feedback) in
  :mod:`repro.systems.composition`,
* generators of random benchmark systems (e.g. the order-150, 30-port system
  of the paper's Example 1) in :mod:`repro.systems.random_systems`.
"""

from repro.systems.statespace import DescriptorSystem, StateSpace
from repro.systems.evaluation import (
    EvaluationPlan,
    build_evaluation_plan,
    evaluate_cauchy,
    evaluate_descriptor,
    evaluate_pointwise,
)
from repro.systems.analysis import (
    controllability_gramian,
    hankel_singular_values,
    is_stable,
    observability_gramian,
    poles,
    spectral_abscissa,
)
from repro.systems.balanced import balanced_truncation
from repro.systems.composition import feedback, parallel, series
from repro.systems.interconnect import (
    s_to_y,
    s_to_z,
    scattering_from_admittance,
    scattering_from_impedance,
    y_to_s,
    z_to_s,
)
from repro.systems.random_systems import (
    example1_system,
    random_descriptor_system,
    random_port_map,
    random_stable_system,
)
from repro.systems.spectral import (
    SpectralGrid,
    batch_time_responses,
    build_spectral_grid,
    grid_nonuniform_spectrum,
    spectral_impulse_response,
    spectral_step_response,
)
from repro.systems.timedomain import impulse_response, simulate_lsim, step_response

__all__ = [
    "DescriptorSystem",
    "StateSpace",
    "EvaluationPlan",
    "build_evaluation_plan",
    "evaluate_descriptor",
    "evaluate_pointwise",
    "evaluate_cauchy",
    "controllability_gramian",
    "observability_gramian",
    "hankel_singular_values",
    "poles",
    "spectral_abscissa",
    "is_stable",
    "balanced_truncation",
    "series",
    "parallel",
    "feedback",
    "s_to_y",
    "s_to_z",
    "y_to_s",
    "z_to_s",
    "scattering_from_impedance",
    "scattering_from_admittance",
    "random_stable_system",
    "random_descriptor_system",
    "random_port_map",
    "example1_system",
    "impulse_response",
    "step_response",
    "simulate_lsim",
    "SpectralGrid",
    "build_spectral_grid",
    "spectral_impulse_response",
    "spectral_step_response",
    "batch_time_responses",
    "grid_nonuniform_spectrum",
]
