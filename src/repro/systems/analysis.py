"""System analysis: poles, stability, Gramians and Hankel singular values.

These routines serve two purposes in the reproduction:

* validating the substrates (the random benchmark systems and the circuits
  produced by the MNA engine must be stable before they are sampled), and
* characterising the models recovered by VFTI / MFTI (pole locations, order,
  stability of the identified descriptor system).

Everything works on :class:`~repro.systems.statespace.DescriptorSystem`
instances; Gramian-based analysis additionally requires an invertible ``E``
(it converts to explicit state-space form internally).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.systems.statespace import DescriptorSystem

__all__ = [
    "poles",
    "finite_poles",
    "spectral_abscissa",
    "is_stable",
    "controllability_gramian",
    "observability_gramian",
    "hankel_singular_values",
    "minimality_defect",
]

#: Magnitude above which a generalized eigenvalue is treated as "infinite"
#: (an algebraic constraint of the descriptor pencil rather than a dynamic pole).
_INFINITE_POLE_THRESHOLD = 1e12


def poles(system: DescriptorSystem) -> np.ndarray:
    """All generalized eigenvalues of the pencil ``(A, E)`` including infinite ones.

    Infinite eigenvalues are returned as ``numpy.inf`` (with arbitrary sign of
    the imaginary part suppressed).
    """
    alpha, beta = sla.eig(system.A, system.E, right=False, homogeneous_eigvals=True)
    alpha = np.asarray(alpha).ravel()
    beta = np.asarray(beta).ravel()
    vals = np.empty(alpha.size, dtype=complex)
    for i, (a, b) in enumerate(zip(alpha, beta)):
        if abs(b) <= abs(a) * 1e-14 or b == 0:
            vals[i] = np.inf
        else:
            vals[i] = a / b
    return vals


def finite_poles(system: DescriptorSystem, *, threshold: float = _INFINITE_POLE_THRESHOLD) -> np.ndarray:
    """Finite generalized eigenvalues of ``(A, E)`` -- the dynamic poles of the system."""
    vals = poles(system)
    finite = vals[np.isfinite(vals)]
    return finite[np.abs(finite) < threshold]


def spectral_abscissa(system: DescriptorSystem) -> float:
    """Largest real part among the finite poles (``-inf`` for a static system)."""
    p = finite_poles(system)
    if p.size == 0:
        return float("-inf")
    return float(np.max(p.real))


def is_stable(system: DescriptorSystem, *, margin: float = 0.0) -> bool:
    """True when every finite pole satisfies ``Re(pole) < -margin``."""
    return spectral_abscissa(system) < -margin


def _explicit(system: DescriptorSystem) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(A, B, C)`` of the explicit form ``E^{-1}A, E^{-1}B, C``."""
    a = np.linalg.solve(system.E, system.A)
    b = np.linalg.solve(system.E, system.B)
    return a, b, np.array(system.C)


def controllability_gramian(system: DescriptorSystem) -> np.ndarray:
    """Controllability Gramian ``P`` solving ``A P + P A* + B B* = 0``.

    Requires an invertible ``E`` and a (Hurwitz) stable system.
    """
    a, b, _ = _explicit(system)
    if np.max(np.real(np.linalg.eigvals(a))) >= 0:
        raise ValueError("controllability Gramian requires a stable system")
    return sla.solve_lyapunov(a, -b @ b.conj().T)


def observability_gramian(system: DescriptorSystem) -> np.ndarray:
    """Observability Gramian ``Q`` solving ``A* Q + Q A + C* C = 0``."""
    a, _, c = _explicit(system)
    if np.max(np.real(np.linalg.eigvals(a))) >= 0:
        raise ValueError("observability Gramian requires a stable system")
    return sla.solve_lyapunov(a.conj().T, -c.conj().T @ c)


def hankel_singular_values(system: DescriptorSystem) -> np.ndarray:
    """Hankel singular values (square roots of the eigenvalues of ``P Q``), sorted descending."""
    p = controllability_gramian(system)
    q = observability_gramian(system)
    eigvals = np.linalg.eigvals(p @ q)
    eigvals = np.clip(eigvals.real, 0.0, None)
    return np.sort(np.sqrt(eigvals))[::-1]


def minimality_defect(system: DescriptorSystem, *, rtol: float = 1e-9) -> int:
    """Number of Hankel singular values that are numerically zero.

    A defect of zero indicates a (numerically) minimal realization; the
    Loewner realization of Lemma 3.1/3.4 is minimal by construction, and the
    tests use this to verify it.
    """
    hsv = hankel_singular_values(system)
    if hsv.size == 0:
        return 0
    threshold = rtol * float(hsv[0]) if hsv[0] > 0 else 0.0
    return int(np.count_nonzero(hsv <= threshold))
