"""Time-domain simulation of descriptor systems.

The macromodels produced by MFTI/VFTI are ultimately consumed by circuit or
signal-integrity simulators in the time domain, so the reproduction includes a
small simulation layer: impulse and step responses and general linear
simulation (`lsim`-style) with zero-order-hold discretisation.  Systems with a
singular ``E`` are handled by regularising the pencil through the implicit
trapezoidal discretisation, which only needs ``(E - h/2 A)`` to be invertible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.systems.statespace import DescriptorSystem
from repro.utils.validation import ensure_1d, ensure_2d

__all__ = ["simulate_lsim", "impulse_response", "step_response"]


def simulate_lsim(
    system: DescriptorSystem,
    inputs: np.ndarray,
    time: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Simulate the response of ``system`` to a sampled input signal.

    The descriptor equation ``E x' = A x + B u`` is integrated with the
    trapezoidal rule (implicit, A-stable), which handles singular ``E``
    provided the pencil ``E - (h/2) A`` is invertible (true for any regular
    pencil and small enough step).

    Parameters
    ----------
    system:
        The descriptor system to simulate.
    inputs:
        Array of shape ``(len(time), m)`` (or ``(len(time),)`` for SISO input).
    time:
        Strictly increasing, uniformly spaced time grid.
    x0:
        Optional initial state (defaults to zero).

    Returns
    -------
    numpy.ndarray
        Output samples of shape ``(len(time), p)``.
    """
    time = ensure_1d(time, "time", dtype=float)
    if time.size < 2:
        raise ValueError("time grid must contain at least two points")
    steps = np.diff(time)
    h = float(steps[0])
    if h <= 0 or not np.allclose(steps, h, rtol=1e-8, atol=0.0):
        raise ValueError("time grid must be uniformly spaced and increasing")

    if np.iscomplexobj(inputs):
        raise TypeError(
            "inputs must be real-valued: the integrator simulates the real "
            "time-domain system, and a silent complex->float cast would drop "
            "the imaginary part"
        )
    u = np.asarray(inputs, dtype=float)
    if u.ndim == 1:
        u = u.reshape(-1, 1)
    u = ensure_2d(u, "inputs")
    if u.shape != (time.size, system.n_inputs):
        raise ValueError(f"inputs must have shape {(time.size, system.n_inputs)}, got {u.shape}")

    n = system.order
    if x0 is not None and np.iscomplexobj(x0):
        raise TypeError(
            "x0 must be real-valued: a silent complex->float cast would drop "
            "the imaginary part of the initial state"
        )
    x = np.zeros(n) if x0 is None else ensure_1d(x0, "x0", dtype=float)
    if x.size != n:
        raise ValueError(f"x0 must have length {n}, got {x.size}")

    e, a, b, c, d = (
        np.asarray(m, dtype=float) for m in (system.E, system.A, system.B, system.C, system.D)
    )
    left = e - 0.5 * h * a
    right = e + 0.5 * h * a
    # one LU factorization reused every step: backward-stable where the
    # explicit inverse (the former np.linalg.inv here) loses digits on
    # ill-conditioned pencils E - (h/2) A
    lu_piv = lu_factor(left)
    y = np.empty((time.size, system.n_outputs))
    y[0] = c @ x + d @ u[0]
    for k in range(time.size - 1):
        rhs = right @ x + 0.5 * h * b @ (u[k] + u[k + 1])
        x = lu_solve(lu_piv, rhs)
        y[k + 1] = c @ x + d @ u[k + 1]
    return y


def impulse_response(
    system: DescriptorSystem,
    t_final: float,
    n_points: int = 500,
    *,
    input_index: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate impulse response from the selected input to all outputs.

    The Dirac impulse is approximated by a single-sample pulse at ``t = 0``
    whose height is chosen so the trapezoidal quadrature used by the
    integrator assigns it unit area (``2/h``); the result converges to the
    true impulse response as the grid is refined.

    Returns ``(time, outputs)`` with ``outputs`` of shape ``(n_points, p)``.
    """
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    if n_points < 2:
        raise ValueError(f"n_points must be at least 2 to span a time grid, got {n_points}")
    if not 0 <= input_index < system.n_inputs:
        raise ValueError(f"input_index must lie in [0, {system.n_inputs})")
    time = np.linspace(0.0, float(t_final), int(n_points))
    h = time[1] - time[0]
    u = np.zeros((time.size, system.n_inputs))
    u[0, input_index] = 2.0 / h
    return time, simulate_lsim(system, u, time)


def step_response(
    system: DescriptorSystem,
    t_final: float,
    n_points: int = 500,
    *,
    input_index: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Unit step response from the selected input to all outputs.

    Returns ``(time, outputs)`` with ``outputs`` of shape ``(n_points, p)``.
    """
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    if n_points < 2:
        raise ValueError(f"n_points must be at least 2 to span a time grid, got {n_points}")
    if not 0 <= input_index < system.n_inputs:
        raise ValueError(f"input_index must lie in [0, {system.n_inputs})")
    time = np.linspace(0.0, float(t_final), int(n_points))
    u = np.zeros((time.size, system.n_inputs))
    u[:, input_index] = 1.0
    return time, simulate_lsim(system, u, time)
