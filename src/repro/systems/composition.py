"""Interconnection of descriptor systems: series, parallel and feedback.

The experiments occasionally need composite reference models (for example a
package model cascaded with an on-board network, or a plant with termination
feedback).  These constructions keep everything in descriptor form so the
result can be sampled and interpolated exactly like any other system.
"""

from __future__ import annotations

import numpy as np

from repro.systems.statespace import DescriptorSystem
from repro.utils.linalg import block_diag

__all__ = ["series", "parallel", "feedback"]


def series(first: DescriptorSystem, second: DescriptorSystem) -> DescriptorSystem:
    """Cascade two systems: output of ``first`` feeds the input of ``second``.

    The resulting transfer function is ``H(s) = H_second(s) @ H_first(s)``.
    """
    if first.n_outputs != second.n_inputs:
        raise ValueError(
            "series connection requires first.n_outputs == second.n_inputs, "
            f"got {first.n_outputs} and {second.n_inputs}"
        )
    n1, n2 = first.order, second.order
    e = block_diag([first.E, second.E])
    a = block_diag([first.A, second.A])
    a[n1:, :n1] = second.B @ first.C
    b = np.vstack([first.B, second.B @ first.D])
    c = np.hstack([second.D @ first.C, second.C])
    d = second.D @ first.D
    return DescriptorSystem(e, a, b, c, d)


def parallel(first: DescriptorSystem, second: DescriptorSystem) -> DescriptorSystem:
    """Sum of two systems sharing inputs and outputs: ``H = H_first + H_second``."""
    if first.n_inputs != second.n_inputs or first.n_outputs != second.n_outputs:
        raise ValueError("parallel connection requires matching input/output dimensions")
    e = block_diag([first.E, second.E])
    a = block_diag([first.A, second.A])
    b = np.vstack([first.B, second.B])
    c = np.hstack([first.C, second.C])
    d = first.D + second.D
    return DescriptorSystem(e, a, b, c, d)


def feedback(plant: DescriptorSystem, controller: DescriptorSystem, *, sign: float = -1.0) -> DescriptorSystem:
    """Close a feedback loop ``u = r + sign * H_controller(y)`` around ``plant``.

    With the default ``sign = -1`` this is standard negative feedback and the
    closed-loop transfer function from ``r`` to ``y`` is
    ``(I - sign * H_p H_c)^{-1} H_p``.

    Both feed-through matrices must make ``I - sign * D_p D_c`` invertible.
    """
    if plant.n_inputs != controller.n_outputs or plant.n_outputs != controller.n_inputs:
        raise ValueError("feedback requires plant and controller with compatible port counts")
    dp, dc = plant.D, controller.D
    eye = np.eye(plant.n_inputs)
    gamma = eye - sign * dc @ dp
    try:
        gamma_inv = np.linalg.inv(gamma)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise ValueError("algebraic loop: I - sign*Dc*Dp is singular") from exc

    n_p, n_c = plant.order, controller.order
    e = block_diag([plant.E, controller.E])
    a = block_diag([plant.A, controller.A])
    # plant input: u = r + sign * (Cc xc + Dc y); y = Cp xp + Dp u
    # => u = gamma_inv (r + sign Cc xc + sign Dc Cp xp)
    bp, bc = plant.B, controller.B
    cp, cc = plant.C, controller.C
    a[:n_p, :n_p] += sign * bp @ gamma_inv @ dc @ cp
    a[:n_p, n_p:] = sign * bp @ gamma_inv @ cc
    a[n_p:, :n_p] = bc @ (np.eye(plant.n_outputs) + sign * dp @ gamma_inv @ dc) @ cp
    a[n_p:, n_p:] += sign * bc @ dp @ gamma_inv @ cc
    b = np.vstack([bp @ gamma_inv, bc @ dp @ gamma_inv])
    c = np.hstack([(np.eye(plant.n_outputs) + sign * dp @ gamma_inv @ dc) @ cp,
                   sign * dp @ gamma_inv @ cc])
    d = dp @ gamma_inv
    return DescriptorSystem(e, a, b, c, d)
