"""Shared vectorized sweep-evaluation kernel.

Every layer of the library ultimately evaluates a transfer function over a
set of complex points: sampling circuits into datasets, computing error
norms against measurement/validation grids, the recursive front-end's
hold-out residuals, and pole-residue model sweeps.  This module is the one
implementation all of them share.  Three evaluation strategies are provided
for descriptor systems ``H(s) = C (sE - A)^{-1} B + D``:

``pointwise``
    The reference per-point loop: one dense ``(sE - A)`` solve per point,
    falling back to a least-squares solve when the pencil is exactly
    singular at a point.  This is the semantics every other strategy is
    measured against (and what the pre-kernel code implemented four times).

``solve``
    Batched stacked-pencil solves: the pencils are assembled as a
    ``(chunk, n, n)`` array and handed to ``np.linalg.solve`` in one gufunc
    call per chunk.  The per-slice LAPACK calls are identical to the loop's,
    so the results are **bitwise identical** to ``pointwise`` -- this is the
    strategy used wherever bit-stable reproducibility matters (dataset
    generation, content-addressed fingerprints).  A chunk containing a
    singular pencil transparently degrades to the per-point reference.

``diag``
    The eigendecomposition fast path.  A spectral shift ``sigma`` turns the
    (possibly singular-``E``) pencil into the ordinary eigenproblem of
    ``K = (A - sigma E)^{-1} E``; with ``K = V diag(lambda) V^{-1}``,

    ``(sE - A)^{-1} = V diag(1 / ((s - sigma) lambda_i - 1)) V^{-1} (A - sigma E)^{-1}``

    so after an O(n^3) plan (:class:`EvaluationPlan`) every point costs only
    ``O(n m + p n m)`` -- the same Cauchy-kernel algebra as a pole-residue
    model, eq. ``H(s) = Ctilde (sI - Lambda)^{-1} Btilde + D`` in
    diagonalized coordinates.  Plans are verified against the direct solve
    at probe points and rejected (per-system fallback to ``solve``) when the
    pencil is non-diagonalizable or too ill-conditioned; points where the
    pencil is singular are repaired through the pointwise reference.

``auto`` picks ``diag`` when the sweep is long enough to amortize the plan
and the plan verifies, and ``solve`` otherwise.  Pole-residue (Cauchy)
models are served by :func:`evaluate_cauchy`, which is the same vectorized
weights-times-residues contraction the ``diag`` plan uses internally.

The batched strategies accept a ``backend=`` argument (or pick up the
active :func:`repro.backends.use_backend` scope) and run their inner array
ops on the selected :mod:`repro.backends` backend, transferring only at
kernel entry/exit.  The ``numpy`` backend executes the identical call
sequence as before the shim (bitwise-pinned); plan *construction*
(``eig``, one-time O(n^3)) and the ``pointwise`` reference/repair path
deliberately stay on the host, where the bit-stability contract lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import resolve_backend

__all__ = [
    "EvaluationPlan",
    "build_evaluation_plan",
    "verify_evaluation_plan",
    "evaluate_descriptor",
    "evaluate_pointwise",
    "evaluate_cauchy",
    "point_solve",
    "FAST_PATH_MIN_POINTS",
    "PLAN_GUARD_TOLERANCE",
    "SINGULAR_DENOMINATOR_RTOL",
    "SOLVE_CHUNK",
]

#: Minimum number of points for which ``auto`` tries the ``diag`` fast path;
#: shorter sweeps cannot amortize the O(n^3) plan.
FAST_PATH_MIN_POINTS = 8

#: Relative agreement (vs the direct solve, at probe points) a plan must
#: achieve before the fast path is trusted for a system.
PLAN_GUARD_TOLERANCE = 1e-7

#: Points per stacked ``np.linalg.solve`` call; bounds the transient
#: ``(chunk, n, n)`` pencil array to a cache-friendly size.
SOLVE_CHUNK = 64

#: Relative cancellation threshold below which a Cauchy-weight denominator
#: ``(s - sigma) lambda - 1`` marks the pencil (near-)singular at a point.
#: Rounding rarely makes the denominator *exactly* zero at a singular point,
#: so an ``isfinite`` check alone would let ~1e15-magnitude garbage through;
#: such points are repaired via the dense per-point reference instead.
SINGULAR_DENOMINATOR_RTOL = 1e-8

_METHODS = ("auto", "solve", "diag", "pointwise")


def point_solve(E: np.ndarray, A: np.ndarray, B: np.ndarray, s: complex) -> np.ndarray:
    """``(sE - A)^{-1} B`` at one point; least-squares on a singular pencil.

    This is the shared singular-pencil repair every consumer routes
    through (the pointwise reference loop here and
    :meth:`DescriptorSystem.transfer_function
    <repro.systems.statespace.DescriptorSystem.transfer_function>`); it
    stays host-NumPy on purpose -- it *is* the bit-stability reference.
    """
    pencil = s * E - A
    try:
        return np.linalg.solve(pencil, B)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(pencil, B, rcond=None)[0]


#: Backwards-compatible alias for :func:`point_solve`.
_point_solve = point_solve


def evaluate_pointwise(E, A, B, C, D, points) -> np.ndarray:
    """Reference per-point loop: ``H(s_i) = C (s_i E - A)^{-1} B + D``.

    This is the semantics the vectorized strategies replicate; it is kept
    (and exported) as the comparison baseline for the equivalence tests and
    the ``bench_eval_kernel`` speedup measurements.
    """
    pts = np.asarray(points, dtype=complex).ravel()
    b = B.astype(complex)
    out = np.empty((pts.size, C.shape[0], B.shape[1]), dtype=complex)
    for i, s in enumerate(pts):
        out[i] = C @ _point_solve(E, A, b, complex(s)) + D
    return out


def _evaluate_solve(
    E, A, B, C, D, pts: np.ndarray, *, chunk: int = SOLVE_CHUNK, backend=None
) -> np.ndarray:
    """Batched stacked-pencil solves; on ``numpy``, bitwise identical to the loop."""
    bk = resolve_backend(backend)
    xp = bk.xp
    b_host = B.astype(complex)
    e_dev, a_dev = bk.asarray(E), bk.asarray(A)
    b_dev = bk.asarray(b_host)
    c_dev, d_dev = bk.asarray(C), bk.asarray(D)
    pts_dev = bk.asarray(pts)
    out = xp.empty((pts.size, C.shape[0], B.shape[1]), dtype=complex)
    for lo in range(0, pts.size, chunk):
        block = pts_dev[lo : lo + chunk]
        n_block = block.shape[0]
        pencils = block[:, xp.newaxis, xp.newaxis] * e_dev - a_dev
        try:
            x = bk.solve(pencils, xp.broadcast_to(b_dev, (n_block,) + b_host.shape))
        except bk.LinAlgError:
            # a singular pencil inside the chunk: degrade to the per-point
            # reference, which resolves exactly the singular points via lstsq
            out[lo : lo + n_block] = bk.asarray(
                evaluate_pointwise(E, A, B, C, D, pts[lo : lo + chunk])
            )
            continue
        out[lo : lo + n_block] = xp.matmul(c_dev, x) + d_dev
    return bk.to_numpy(out)


def evaluate_cauchy(poles, residues, d, points, *, backend=None) -> np.ndarray:
    """Vectorized pole-residue (Cauchy) evaluation ``sum_n R_n / (s - a_n) + D``.

    Parameters
    ----------
    poles:
        Complex pole array of length ``n``.
    residues:
        Residue matrices, shape ``(n, p, m)``.
    d:
        Constant term ``(p, m)``.
    points:
        Complex evaluation points (used verbatim).

    Returns
    -------
    numpy.ndarray
        ``(k, p, m)`` stacked evaluations.
    """
    bk = resolve_backend(backend)
    xp = bk.xp
    pts = np.asarray(points, dtype=complex).ravel()
    poles = np.asarray(poles, dtype=complex).ravel()
    pts_dev = bk.asarray(pts)
    poles_dev = bk.asarray(poles)
    res_dev = bk.asarray(np.asarray(residues))
    d_dev = bk.asarray(np.asarray(d))
    weights = 1.0 / (pts_dev[:, xp.newaxis] - poles_dev[xp.newaxis, :])  # (k, n)
    response = xp.tensordot(weights, res_dev, axes=(1, 0))  # (k, p, m)
    return bk.to_numpy(response + d_dev[xp.newaxis, :, :])


@dataclass(frozen=True)
class EvaluationPlan:
    """Precomputed shift-invert diagonalization of one descriptor system.

    Attributes
    ----------
    sigma:
        The spectral shift used to regularise the pencil (chosen from the
        probe points; any value that is not a generalized eigenvalue works).
    eigenvalues:
        Eigenvalues ``lambda_i`` of ``K = (A - sigma E)^{-1} E``.  Infinite
        generalized eigenvalues of ``(A, E)`` map to ``lambda_i = 0`` and are
        handled exactly -- singular ``E`` needs no special casing.
    b_tilde:
        ``V^{-1} (A - sigma E)^{-1} B`` (``n x m``).
    c_tilde:
        ``C V`` (``p x n``).
    d:
        Feed-through term ``(p, m)``.
    """

    sigma: complex
    eigenvalues: np.ndarray
    b_tilde: np.ndarray
    c_tilde: np.ndarray
    d: np.ndarray

    def evaluate(self, points, *, backend=None) -> np.ndarray:
        """Evaluate the transfer function at ``points`` (``(k, p, m)``).

        Points where the pencil is (near-)singular produce non-finite or
        cancellation-polluted values; use :func:`evaluate_descriptor` for
        the guarded version that repairs them through the pointwise
        reference (see :meth:`suspect_points`).
        """
        bk = resolve_backend(backend)
        xp = bk.xp
        pts = np.asarray(points, dtype=complex).ravel()
        pts_dev = bk.asarray(pts)
        eig_dev = bk.asarray(self.eigenvalues)
        b_dev = bk.asarray(self.b_tilde)
        c_dev = bk.asarray(self.c_tilde)
        d_dev = bk.asarray(self.d)
        with bk.errstate(divide="ignore", invalid="ignore"):
            weights = 1.0 / (
                (pts_dev[:, xp.newaxis] - self.sigma) * eig_dev[xp.newaxis, :] - 1.0
            )
            scaled = weights[:, xp.newaxis, :] * c_dev[xp.newaxis, :, :]  # (k, p, n)
            return bk.to_numpy(xp.matmul(scaled, b_dev) + d_dev)

    def suspect_points(self, points) -> np.ndarray:
        """Boolean mask of points where the pencil is (near-)singular.

        A weight denominator ``(s - sigma) lambda_i - 1`` that nearly
        cancels means ``s`` sits (numerically) on a generalized eigenvalue
        of the pencil: the fast path loses up to every significant digit
        there, usually *without* overflowing to inf.  Those points must be
        evaluated through the dense reference instead.
        """
        pts = np.asarray(points, dtype=complex).ravel()
        z = (pts[:, np.newaxis] - self.sigma) * self.eigenvalues[np.newaxis, :]
        return np.any(
            np.abs(z - 1.0) <= SINGULAR_DENOMINATOR_RTOL * (np.abs(z) + 1.0), axis=1
        )


def _choose_sigma(pts: np.ndarray) -> complex:
    """A real spectral shift on the scale of the requested points."""
    scale = float(np.median(np.abs(pts))) if pts.size else 0.0
    return complex(scale if scale > 0.0 else 1.0)


def _probe_indices(n_points: int, n_probes: int = 3) -> np.ndarray:
    """Deterministic probe positions spread over the requested sweep."""
    if n_points <= n_probes:
        return np.arange(n_points)
    return np.unique(np.linspace(0, n_points - 1, n_probes).astype(int))


def verify_evaluation_plan(
    plan: EvaluationPlan, E, A, B, C, D, probe_points, *,
    guard_tolerance: float = PLAN_GUARD_TOLERANCE,
) -> bool:
    """Whether the plan reproduces the direct solve at probe points.

    Probes where the pencil is (near-)singular are excluded -- the guarded
    evaluation repairs those through the reference anyway, so they say
    nothing about the plan's quality elsewhere.
    """
    pts = np.asarray(probe_points, dtype=complex).ravel()
    probes = pts[_probe_indices(pts.size)]
    probes = probes[~plan.suspect_points(probes)]
    if not probes.size:
        return True
    fast = plan.evaluate(probes)
    direct = _evaluate_solve(E, A, B, C, D, probes)
    scale = np.linalg.norm(direct.reshape(probes.size, -1), axis=1)
    mismatch = np.linalg.norm((fast - direct).reshape(probes.size, -1), axis=1)
    return bool(np.all(
        mismatch <= guard_tolerance * np.maximum(scale, np.finfo(float).tiny)
    ))


def build_evaluation_plan(
    E, A, B, C, D, probe_points, *, sigma=None, guard_tolerance: float = PLAN_GUARD_TOLERANCE
):
    """Build and verify a :class:`EvaluationPlan`, or return ``None``.

    The plan is checked against the direct dense solve at a few probe points
    drawn from ``probe_points``; a relative disagreement beyond
    ``guard_tolerance`` (ill-conditioned eigenvectors, non-diagonalizable
    pencil) rejects the plan so callers fall back to the ``solve`` strategy
    for this system.  Callers that later reuse a cached plan on sweeps
    outside the band it was verified on should re-check it with
    :func:`verify_evaluation_plan` (as
    :meth:`DescriptorSystem.evaluate_many <repro.systems.statespace.DescriptorSystem.evaluate_many>`
    does).
    """
    pts = np.asarray(probe_points, dtype=complex).ravel()
    shift = _choose_sigma(pts) if sigma is None else complex(sigma)
    try:
        factor = A - shift * E
        k_mat = np.linalg.solve(factor, E)
        eigenvalues, vectors = np.linalg.eig(k_mat)
        b_tilde = np.linalg.solve(vectors, np.linalg.solve(factor, B.astype(complex)))
        c_tilde = C @ vectors
    except np.linalg.LinAlgError:
        return None
    if not (np.all(np.isfinite(eigenvalues)) and np.all(np.isfinite(b_tilde))
            and np.all(np.isfinite(c_tilde))):
        return None
    plan = EvaluationPlan(
        sigma=shift,
        eigenvalues=eigenvalues,
        b_tilde=b_tilde,
        c_tilde=c_tilde,
        d=np.asarray(D),
    )
    if not verify_evaluation_plan(plan, E, A, B, C, D, pts,
                                  guard_tolerance=guard_tolerance):
        return None
    return plan


def _evaluate_with_plan(
    plan: EvaluationPlan, E, A, B, C, D, pts: np.ndarray, *, backend=None
) -> np.ndarray:
    """Fast-path evaluation with (near-)singular points repaired via the reference."""
    out = plan.evaluate(pts, backend=backend)
    bad = plan.suspect_points(pts) | ~np.isfinite(out).all(axis=(1, 2))
    if np.any(bad):
        out[bad] = evaluate_pointwise(E, A, B, C, D, pts[bad])
    return out


def evaluate_descriptor(
    E, A, B, C, D, points, *,
    method: str = "auto", plan: EvaluationPlan | None = None, backend=None,
) -> np.ndarray:
    """Evaluate ``H(s) = C (sE - A)^{-1} B + D`` at many points.

    Parameters
    ----------
    E, A, B, C, D:
        The descriptor quintuple (``E`` may be singular).
    points:
        Complex points, used verbatim.
    method:
        ``"auto"`` (fast path when profitable and valid), ``"solve"``
        (batched, bitwise identical to the loop), ``"diag"`` (force the
        eigendecomposition path; raises :exc:`numpy.linalg.LinAlgError` when
        no valid plan exists), or ``"pointwise"`` (the reference loop).
    plan:
        Optional pre-built :class:`EvaluationPlan` (e.g. the one cached on a
        :class:`~repro.systems.statespace.DescriptorSystem`).
    backend:
        :mod:`repro.backends` backend (name or instance) the batched
        strategies run on; ``None`` resolves the active
        :func:`~repro.backends.use_backend` scope, then
        ``REPRO_ARRAY_BACKEND``, then ``numpy`` (bitwise-pinned).

    Returns
    -------
    numpy.ndarray
        ``(k, p, m)`` stacked evaluations.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    pts = np.asarray(points, dtype=complex).ravel()
    if pts.size == 0:
        return np.empty((0, C.shape[0], B.shape[1]), dtype=complex)
    if method == "pointwise":
        return evaluate_pointwise(E, A, B, C, D, pts)
    if method == "solve":
        return _evaluate_solve(E, A, B, C, D, pts, backend=backend)
    if method == "diag":
        if plan is None:
            plan = build_evaluation_plan(E, A, B, C, D, pts)
        if plan is None:
            raise np.linalg.LinAlgError(
                "no valid diagonalization fast path for this system "
                "(non-diagonalizable or ill-conditioned pencil)"
            )
        return _evaluate_with_plan(plan, E, A, B, C, D, pts, backend=backend)
    # auto
    if plan is None and pts.size >= FAST_PATH_MIN_POINTS:
        plan = build_evaluation_plan(E, A, B, C, D, pts)
    if plan is not None:
        return _evaluate_with_plan(plan, E, A, B, C, D, pts, backend=backend)
    return _evaluate_solve(E, A, B, C, D, pts, backend=backend)
