"""Batched spectral (FFT) time-domain pathway for fitted macromodels.

The per-step trapezoidal integrator (:mod:`repro.systems.timedomain`) costs
one back-substitution per time step *per model*; validating a whole batch of
fitted macromodels in the time domain that way is the batch layer's last
per-model loop.  This module provides the spectral alternative, following the
scale / zero-pad / batched-FFT / crop-and-scale recipe of NUFFT gridders:

1. **Evaluate** ``H(j omega)`` on a conjugate-symmetric uniform frequency
   grid through the shared sweep-evaluation kernel
   (:mod:`repro.systems.evaluation` -- this is its second large-batch
   consumer after the frequency-sweep consumers of PR 3).
2. **Zero-pad / oversample**: the grid is the rfft grid of an oversampled
   time axis (next power of two above ``oversample * n_points``), so the
   periodization window is much longer than the requested horizon and
   time-domain aliasing of slowly decaying impulse tails is pushed below the
   truncation error.
3. **One batched** ``np.fft.irfft`` across *all* models of a batch (the FFT
   cost is shared, and the transform is the only O(N log N) step).
4. **Crop** to the requested ``n_points`` samples and **scale** by ``1/dt``
   (the continuous-time inverse Fourier integral's measure).

Feed-through is handled analytically: ``H(infinity) = D`` contributes
``D delta(t)`` to the impulse response, which no sampled spectrum can
represent, so the strictly proper part ``H - D`` is transformed and ``D`` is
re-added where it belongs (as the instantaneous term of the *step*
response).  At ``t = 0`` the spectral impulse carries the half-jump value
``h(0+)/2`` (Fourier inversion converges to the jump midpoint), so
comparisons against the integrator skip the first sample.

Non-uniform frequency samples -- exactly what the minimal-sampling
experiments produce -- enter the same pipeline through NUFFT-style gridding
(:func:`grid_nonuniform_spectrum`): each uniform grid point gathers from its
neighbouring samples with linear-kernel weights, the band edge is tapered
with a raised cosine to avoid a hard truncation edge, and the result is the
same conjugate-symmetric spectrum the exact evaluation path feeds to the
batched inverse FFT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.backends import resolve_backend

__all__ = [
    "SpectralGrid",
    "build_spectral_grid",
    "evaluate_spectrum",
    "spectral_window",
    "impulse_from_spectrum",
    "step_from_impulse",
    "spectral_impulse_response",
    "spectral_step_response",
    "batch_time_responses",
    "grid_nonuniform_spectrum",
    "spectral_energy",
    "impulse_energy",
    "DEFAULT_OVERSAMPLE",
    "DEFAULT_TAPER_FRACTION",
    "DEFAULT_WINDOW",
]

#: Default ratio between the FFT periodization window and the requested time
#: horizon.  8x pushes wrap-around (time-aliasing) of impulse tails that have
#: decayed to ``exp(-a 8 T)`` of their peak below typical truncation error.
DEFAULT_OVERSAMPLE = 8

#: Fraction of the gridded band over which a raised-cosine taper rolls the
#: highest non-uniform samples off to zero (see :func:`grid_nonuniform_spectrum`).
DEFAULT_TAPER_FRACTION = 0.1

#: Spectral window applied by the high-level response functions.  An impulse
#: response jumps from 0 to ``h(0+)`` at ``t = 0``, so the plain truncated
#: inverse transform rings (Gibbs: a fixed ~9 % overshoot next to the jump
#: that refinement moves but never shrinks).  The Lanczos sigma factors
#: ``sinc(k / k_max)`` damp exactly those oscillations -- on a decaying test
#: pole they cut the error away from the jump by ~3 orders of magnitude --
#: while leaving the Parseval-exact raw transform available via
#: ``window="none"``.
DEFAULT_WINDOW = "lanczos"

_WINDOWS = ("none", "lanczos")


def _feedthrough(model) -> np.ndarray:
    """The model's feed-through matrix (``D`` for systems, ``d`` for rationals)."""
    for name in ("D", "d"):
        value = getattr(model, name, None)
        if value is not None:
            return np.asarray(value)
    raise TypeError(
        f"{type(model).__name__} exposes neither 'D' nor 'd'; cannot split off "
        "the feed-through term for the spectral transform"
    )


@dataclass(frozen=True)
class SpectralGrid:
    """The paired time/frequency grids of one spectral transform.

    Attributes
    ----------
    time:
        The requested (cropped) output time axis, ``n_points`` uniform
        samples from ``0`` to ``t_final``.
    dt:
        Time step ``t_final / (n_points - 1)``.
    n_fft:
        Length of the oversampled (zero-padded) transform; a power of two
        at least ``oversample * n_points``.
    oversample:
        The requested oversampling factor (kept for reporting).
    """

    time: np.ndarray
    dt: float
    n_fft: int
    oversample: int

    @property
    def n_points(self) -> int:
        """Number of cropped output samples."""
        return int(self.time.size)

    @property
    def frequencies_hz(self) -> np.ndarray:
        """The conjugate-symmetric (rfft) frequency grid, in Hz.

        ``n_fft // 2 + 1`` uniform samples from DC to the Nyquist frequency
        ``1 / (2 dt)``; the negative half-axis is implied by Hermitian
        symmetry of real impulse responses.
        """
        return np.fft.rfftfreq(self.n_fft, d=self.dt)

    @property
    def df(self) -> float:
        """Frequency resolution ``1 / (n_fft * dt)`` of the oversampled grid."""
        return 1.0 / (self.n_fft * self.dt)


def build_spectral_grid(
    t_final: float, n_points: int, *, oversample: int = DEFAULT_OVERSAMPLE
) -> SpectralGrid:
    """Build the paired time/frequency grids for a spectral transform.

    Parameters
    ----------
    t_final:
        End of the requested time horizon (must be positive).
    n_points:
        Number of output time samples (at least 2, like the integrator).
    oversample:
        Periodization window as a multiple of the horizon (at least 1); the
        FFT length is the next power of two of ``oversample * n_points``.
    """
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    if int(n_points) != n_points or n_points < 2:
        raise ValueError(f"n_points must be an integer >= 2, got {n_points!r}")
    if int(oversample) != oversample or oversample < 1:
        raise ValueError(f"oversample must be an integer >= 1, got {oversample!r}")
    n_points = int(n_points)
    dt = float(t_final) / (n_points - 1)
    n_fft = 1 << int(np.ceil(np.log2(int(oversample) * n_points)))
    time = dt * np.arange(n_points)
    return SpectralGrid(time=time, dt=dt, n_fft=n_fft, oversample=int(oversample))


def evaluate_spectrum(model, grid: SpectralGrid, *, method: str = "auto") -> np.ndarray:
    """The strictly proper spectrum ``H(j 2 pi f) - D`` on the grid's rfft axis.

    Evaluation runs through the model's ``frequency_response`` -- i.e. the
    shared vectorized sweep kernel (:mod:`repro.systems.evaluation`) for
    descriptor systems and the vectorized Cauchy contraction for
    pole-residue models -- so the dense conjugate-symmetric grid is exactly
    the kind of large batch the kernel was built for.

    Returns the ``(n_freq, p, m)`` spectrum with the feed-through already
    subtracted (see the module docstring for why).
    """
    response = np.asarray(model.frequency_response(grid.frequencies_hz, method=method))
    return response - _feedthrough(model)[np.newaxis, :, :]


def spectral_window(grid: SpectralGrid, kind: str = DEFAULT_WINDOW) -> np.ndarray:
    """Window weights over the rfft grid (``(n_freq,)``; all-ones for ``"none"``).

    ``"lanczos"`` returns the sigma-approximation factors ``sinc(k / k_max)``
    that suppress Gibbs ringing of jump discontinuities (see
    :data:`DEFAULT_WINDOW`).
    """
    if kind not in _WINDOWS:
        raise ValueError(f"window must be one of {_WINDOWS}, got {kind!r}")
    n_freq = grid.n_fft // 2 + 1
    if kind == "none":
        return np.ones(n_freq)
    return np.sinc(np.arange(n_freq) / (n_freq - 1))


def _windowed(spectrum: np.ndarray, grid: SpectralGrid, window: str) -> np.ndarray:
    if window == "none":
        return spectrum
    return spectrum * spectral_window(grid, window)[:, np.newaxis, np.newaxis]


def impulse_from_spectrum(
    spectrum: np.ndarray, grid: SpectralGrid, *, crop: bool = True, backend=None
) -> np.ndarray:
    """Inverse-transform rfft-grid spectra to impulse responses.

    ``spectrum`` has shape ``(..., n_freq, p, m)`` with
    ``n_freq = n_fft // 2 + 1``; any number of leading batch axes is allowed
    and the single :func:`numpy.fft.irfft` call is batched across all of
    them.  The result approximates the continuous inverse Fourier integral
    ``h(t) = (1 / 2 pi) int H(j w) e^{j w t} dw``: the inverse DFT is scaled
    by ``1 / dt`` (the quadrature measure ``dw / 2 pi = df = 1 / (N dt)``
    against the DFT's ``1 / N`` normalisation) and cropped to the grid's
    requested ``n_points`` unless ``crop=False`` (the Parseval identity of
    :func:`impulse_energy` needs the full periodization window).

    The transform runs on the selected :mod:`repro.backends` backend
    (``backend=`` or the active :func:`~repro.backends.use_backend`
    scope); the ``numpy`` backend is the bitwise-pinned ``np.fft.irfft``
    call this function always made.
    """
    bk = resolve_backend(backend)
    spectrum = np.asarray(spectrum)
    n_freq = grid.n_fft // 2 + 1
    if spectrum.ndim < 3 or spectrum.shape[-3] != n_freq:
        raise ValueError(
            f"spectrum must have shape (..., {n_freq}, p, m) for n_fft={grid.n_fft}, "
            f"got {spectrum.shape}"
        )
    transformed = bk.irfft(bk.asarray(spectrum), n=grid.n_fft, axis=-3)
    impulse = bk.to_numpy(transformed) / grid.dt
    if crop:
        n_out = grid.n_points
        impulse = impulse[..., :n_out, :, :]
    return impulse


def step_from_impulse(
    impulse: np.ndarray, grid: SpectralGrid, *, feedthrough: Optional[np.ndarray] = None
) -> np.ndarray:
    """Step responses by cumulative trapezoidal quadrature of impulse responses.

    ``s(t) = D + int_0^t h(tau) dtau`` -- the feed-through's ``D delta(t)``
    term integrates to the instantaneous step ``D`` (added when given), and
    the strictly proper part is integrated with the trapezoidal rule on the
    grid, vectorized over any leading batch axes of ``impulse``.
    """
    impulse = np.asarray(impulse)
    steps = np.zeros_like(impulse)
    if impulse.shape[-3] > 1:
        increments = 0.5 * grid.dt * (impulse[..., 1:, :, :] + impulse[..., :-1, :, :])
        steps[..., 1:, :, :] = np.cumsum(increments, axis=-3)
    if feedthrough is not None:
        steps = steps + np.asarray(feedthrough)[np.newaxis, :, :]
    return steps


def spectral_impulse_response(
    model,
    t_final: float,
    n_points: int = 500,
    *,
    oversample: int = DEFAULT_OVERSAMPLE,
    method: str = "auto",
    window: str = DEFAULT_WINDOW,
) -> tuple[np.ndarray, np.ndarray]:
    """Impulse response of one model via the oversampled-IFFT pathway.

    Returns ``(time, impulse)`` with ``impulse`` of shape
    ``(n_points, p, m)`` -- all input/output pairs at once, unlike the
    integrator's per-input columns.  The returned response is the strictly
    proper part; the feed-through's ``D delta(t)`` is not representable on a
    sampled grid (see the module docstring) and the ``t = 0`` sample carries
    the half-jump value ``h(0+) / 2``.
    """
    grid = build_spectral_grid(t_final, n_points, oversample=oversample)
    spectrum = _windowed(evaluate_spectrum(model, grid, method=method), grid, window)
    return grid.time, impulse_from_spectrum(spectrum, grid)


def spectral_step_response(
    model,
    t_final: float,
    n_points: int = 500,
    *,
    oversample: int = DEFAULT_OVERSAMPLE,
    method: str = "auto",
    window: str = DEFAULT_WINDOW,
) -> tuple[np.ndarray, np.ndarray]:
    """Step response of one model via the oversampled-IFFT pathway.

    Returns ``(time, step)`` with ``step`` of shape ``(n_points, p, m)``:
    the cumulative integral of the spectral impulse response plus the
    instantaneous feed-through term ``D``.
    """
    grid = build_spectral_grid(t_final, n_points, oversample=oversample)
    spectrum = _windowed(evaluate_spectrum(model, grid, method=method), grid, window)
    impulse = impulse_from_spectrum(spectrum, grid)
    return grid.time, step_from_impulse(impulse, grid, feedthrough=_feedthrough(model))


def batch_time_responses(
    models: Sequence,
    grid: SpectralGrid,
    *,
    method: str = "auto",
    window: str = DEFAULT_WINDOW,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Impulse and step responses of many models through one batched IFFT.

    All models must share one transfer-function shape ``(p, m)``.  Each
    model's strictly proper spectrum is evaluated through the shared sweep
    kernel, the spectra are stacked into a ``(n_models, n_freq, p, m)``
    array, and a *single* ``np.fft.irfft`` call transforms the whole batch
    (step 3 of the module recipe); the cumulative step integration is
    likewise one vectorized pass.

    Returns ``(impulse, step)``, each of shape
    ``(n_models, n_points, p, m)``.
    """
    models = list(models)
    if not models:
        raise ValueError("batch_time_responses needs at least one model")
    shapes = {_feedthrough(model).shape for model in models}
    if len(shapes) != 1:
        raise ValueError(f"models must share one (p, m) shape, got {sorted(shapes)}")
    spectra = np.stack([evaluate_spectrum(model, grid, method=method) for model in models])
    spectra = _windowed(spectra, grid, window)
    feedthroughs = np.stack([_feedthrough(model) for model in models])
    impulse = impulse_from_spectrum(spectra, grid, backend=backend)
    step = step_from_impulse(impulse, grid) + feedthroughs[:, np.newaxis, :, :]
    return impulse, step


def grid_nonuniform_spectrum(
    frequencies_hz,
    samples,
    grid: SpectralGrid,
    *,
    feedthrough: Optional[np.ndarray] = None,
    taper_fraction: float = DEFAULT_TAPER_FRACTION,
) -> np.ndarray:
    """NUFFT-style gridding of non-uniform frequency samples onto the rfft grid.

    The minimal-sampling experiments (and any measured Touchstone sweep)
    produce samples ``H(j 2 pi f_i)`` at non-uniform ``f_i``; this routine
    interpolates them onto the uniform conjugate-symmetric grid so they can
    ride the same batched inverse FFT as exactly evaluated models:

    * each uniform grid point inside the sampled band gathers from its two
      neighbouring samples with linear-kernel weights (the classic
      triangular gridding kernel),
    * below the lowest sample the first sample is held (DC extrapolation),
    * above the highest sample the spectrum rolls off to zero over a raised
      cosine spanning ``taper_fraction`` of the band, avoiding the hard
      truncation edge that would ring through the transform,
    * when ``feedthrough`` is given it is subtracted from the samples first
      (the strictly proper convention of :func:`evaluate_spectrum`), so the
      gridded spectrum plugs into :func:`impulse_from_spectrum` /
      :func:`step_from_impulse` unchanged.

    Returns the ``(n_freq, p, m)`` gridded spectrum.
    """
    freqs = np.asarray(frequencies_hz, dtype=float).ravel()
    values = np.asarray(samples, dtype=complex)
    if values.ndim == 2:
        values = values[:, np.newaxis, :]
    if values.ndim != 3 or values.shape[0] != freqs.size:
        raise ValueError(
            f"samples must have shape (k, p, m) matching {freqs.size} frequencies, "
            f"got {values.shape}"
        )
    if freqs.size < 2:
        raise ValueError("gridding needs at least two non-uniform samples")
    if np.any(np.diff(freqs) <= 0):
        order = np.argsort(freqs, kind="stable")
        freqs = freqs[order]
        values = values[order]
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("non-uniform frequencies must be distinct")
    if not 0.0 <= taper_fraction < 1.0:
        raise ValueError(f"taper_fraction must lie in [0, 1), got {taper_fraction}")
    if feedthrough is not None:
        values = values - np.asarray(feedthrough)[np.newaxis, :, :]

    target = grid.frequencies_hz
    spectrum = np.zeros((target.size,) + values.shape[1:], dtype=complex)

    f_lo, f_hi = float(freqs[0]), float(freqs[-1])
    in_band = target <= f_hi
    if np.any(in_band):
        pts = np.minimum(np.maximum(target[in_band], f_lo), f_hi)
        # linear-kernel gather: locate each grid point between its two
        # neighbouring samples and blend them with triangular weights
        hi = np.searchsorted(freqs, pts, side="left")
        hi = np.clip(hi, 1, freqs.size - 1)
        lo = hi - 1
        span = freqs[hi] - freqs[lo]
        weight = (pts - freqs[lo]) / span
        spectrum[in_band] = (
            (1.0 - weight)[:, np.newaxis, np.newaxis] * values[lo]
            + weight[:, np.newaxis, np.newaxis] * values[hi]
        )
        if taper_fraction > 0.0:
            # raised-cosine roll-off over the top taper_fraction of the band
            # (half-cosine from 1 at the knee to 0 at the band edge)
            knee = f_hi - taper_fraction * (f_hi - f_lo)
            tapered = in_band & (target > knee)
            if np.any(tapered):
                phase = (target[tapered] - knee) / (f_hi - knee)
                window = 0.5 * (1.0 + np.cos(np.pi * phase))
                spectrum[tapered] *= window[:, np.newaxis, np.newaxis]
    return spectrum


def spectral_energy(spectrum: np.ndarray, grid: SpectralGrid) -> np.ndarray:
    """Frequency-domain signal energy per (output, input) pair.

    The rfft-grid Parseval sum ``df * (|S_0|^2 + 2 sum_k |S_k|^2 +
    |S_nyq|^2)`` -- the discrete counterpart of
    ``int |H(j 2 pi f)|^2 df`` over both half-axes.  Matches
    :func:`impulse_energy` of the same spectrum's transform up to rounding
    (exactly the module's Parseval consistency property).
    """
    spectrum = np.asarray(spectrum)
    weights = np.full(spectrum.shape[-3], 2.0)
    weights[0] = 1.0
    if grid.n_fft % 2 == 0:
        weights[-1] = 1.0
    # irfft's implicit Hermitian symmetrization keeps only the real part of
    # the DC and Nyquist bins; mirror that here so the identity is exact
    magnitude2 = np.abs(spectrum) ** 2
    magnitude2[..., 0, :, :] = spectrum[..., 0, :, :].real ** 2
    if grid.n_fft % 2 == 0:
        magnitude2[..., -1, :, :] = spectrum[..., -1, :, :].real ** 2
    return grid.df * np.einsum("...kpm,k->...pm", magnitude2, weights)


def impulse_energy(impulse: np.ndarray, grid: SpectralGrid) -> np.ndarray:
    """Time-domain signal energy ``dt * sum_n h[n]^2`` per (output, input) pair.

    Pass the *uncropped* impulse (``impulse_from_spectrum(..., crop=False)``)
    for the exact Parseval counterpart of :func:`spectral_energy`.
    """
    impulse = np.asarray(impulse)
    return grid.dt * np.sum(impulse**2, axis=-3)
