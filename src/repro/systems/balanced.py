"""Balanced truncation -- a classical projection-based reference reduction.

Balanced truncation is *not* part of the paper's algorithm, but it plays two
roles in the reproduction:

* it provides an independent, well-understood way to compress the high-order
  substrate models (the synthetic PDN) to a given order, which the ablation
  benchmarks use as a sanity reference for "how small can an accurate model
  of this data be", and
* its Hankel-singular-value machinery doubles as a minimality check on the
  models produced by the Loewner realizations.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.systems.analysis import controllability_gramian, observability_gramian
from repro.systems.statespace import DescriptorSystem, StateSpace

__all__ = ["balanced_truncation"]


def balanced_truncation(
    system: DescriptorSystem,
    order: int,
    *,
    return_error_bound: bool = False,
):
    """Reduce ``system`` to the requested order by balanced truncation.

    Parameters
    ----------
    system:
        A stable system with invertible ``E`` (converted internally to
        explicit form).
    order:
        Target reduced order ``r``; must satisfy ``1 <= r <= n``.
    return_error_bound:
        When true, also return the classical twice-the-tail H-infinity error
        bound ``2 * sum(hsv[r:])``.

    Returns
    -------
    StateSpace or (StateSpace, float)
        The reduced model (and optionally the error bound).
    """
    n = system.order
    order = int(order)
    if not 1 <= order <= n:
        raise ValueError(f"order must lie in [1, {n}], got {order}")

    p = controllability_gramian(system)
    q = observability_gramian(system)
    # square-root method: P = Lp Lp^T, Q = Lq Lq^T (Cholesky with jitter fallback)
    lp = _safe_cholesky(p)
    lq = _safe_cholesky(q)
    u, s, vh = np.linalg.svd(lq.conj().T @ lp, full_matrices=False)
    hsv = s
    s_r = np.maximum(s[:order], np.finfo(float).tiny)
    t_right = lp @ vh[:order, :].conj().T @ np.diag(s_r ** -0.5)
    t_left = lq @ u[:, :order] @ np.diag(s_r ** -0.5)

    a_exp = np.linalg.solve(system.E, system.A)
    b_exp = np.linalg.solve(system.E, system.B)
    a_r = t_left.conj().T @ a_exp @ t_right
    b_r = t_left.conj().T @ b_exp
    c_r = system.C @ t_right
    reduced = StateSpace(a_r.real, b_r.real, c_r.real, np.array(system.D, dtype=float))
    if return_error_bound:
        bound = 2.0 * float(np.sum(hsv[order:]))
        return reduced, bound
    return reduced


def _safe_cholesky(matrix: np.ndarray) -> np.ndarray:
    """Cholesky factor of a (numerically) positive semi-definite matrix.

    Gramians computed from Lyapunov equations can have tiny negative
    eigenvalues from round-off; a scaled jitter restores positive
    definiteness without visibly perturbing the factorization.
    """
    matrix = 0.5 * (matrix + matrix.conj().T)
    scale = max(np.max(np.abs(matrix)), 1.0)
    jitter = 0.0
    for _ in range(8):
        try:
            return sla.cholesky(matrix + jitter * np.eye(matrix.shape[0]), lower=True)
        except np.linalg.LinAlgError:
            jitter = max(jitter * 10.0, 1e-14 * scale)
    raise np.linalg.LinAlgError("Gramian is not positive semi-definite")
