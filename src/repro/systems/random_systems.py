"""Random benchmark-system generators.

The paper's Example 1 samples scattering matrices from a known *order-150
system with 30 ports* and then studies how many samples each interpolation
flavour needs to recover it.  The authors do not publish that system, so this
module generates random stable MIMO (descriptor) systems with controllable
order, port count, damping and frequency range -- the properties that matter
for the experiment -- and exposes :func:`example1_system` as the fixed,
seeded stand-in used by the Example-1 reproduction.

The generated systems have poles placed as damped complex-conjugate pairs
spread log-uniformly over a configurable frequency band, which mimics the
resonance structure of interconnect/package models far better than an i.i.d.
Gaussian ``A`` matrix would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.systems.statespace import DescriptorSystem, StateSpace
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_integer

__all__ = [
    "random_stable_system",
    "random_descriptor_system",
    "random_port_map",
    "example1_system",
]


def _pole_block(omega: float, zeta: float) -> np.ndarray:
    """Real 2x2 block realizing the conjugate pole pair ``-zeta*omega +/- j*omega*sqrt(1-zeta^2)``."""
    real = -zeta * omega
    imag = omega * np.sqrt(max(0.0, 1.0 - zeta * zeta))
    return np.array([[real, imag], [-imag, real]])


def random_port_map(order: int, n_ports: int, rng: np.random.Generator,
                    *, scale: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Random input/output maps ``(B, C)`` for a system of the given order and port count.

    The entries are Gaussian with unit variance scaled by ``scale / sqrt(order)``
    so that the overall transfer-function magnitude stays O(1) independent of
    the order, keeping the scattering-like data in a realistic range.
    """
    order = check_positive_integer(order, "order")
    n_ports = check_positive_integer(n_ports, "n_ports")
    sigma = scale / np.sqrt(order)
    b = rng.normal(scale=sigma, size=(order, n_ports))
    c = rng.normal(scale=sigma, size=(n_ports, order))
    return b, c


def random_stable_system(
    order: int,
    n_ports: int,
    *,
    freq_min_hz: float = 1e1,
    freq_max_hz: float = 1e5,
    damping_min: float = 0.005,
    damping_max: float = 0.15,
    feedthrough: Optional[float] = 0.1,
    gain_scale: float = 1.0,
    seed: RandomState = None,
) -> StateSpace:
    """Generate a random stable MIMO state-space system with resonant dynamics.

    Parameters
    ----------
    order:
        State dimension.  Odd orders get one additional real pole.
    n_ports:
        Number of inputs = number of outputs (square system, as for S-parameters).
    freq_min_hz, freq_max_hz:
        Band over which the resonance (natural) frequencies are spread
        log-uniformly.
    damping_min, damping_max:
        Range of damping ratios (uniform) for the complex pole pairs.
    feedthrough:
        Standard deviation of the random ``D`` matrix; ``None`` or ``0`` for
        no direct feed-through.
    gain_scale:
        Overall scale of the ``B``/``C`` maps.
    seed:
        Seed / generator for reproducibility.

    Returns
    -------
    StateSpace
        A real, stable system with ``order`` states and ``n_ports`` ports.
    """
    order = check_positive_integer(order, "order")
    n_ports = check_positive_integer(n_ports, "n_ports")
    if freq_min_hz <= 0 or freq_max_hz <= freq_min_hz:
        raise ValueError("require 0 < freq_min_hz < freq_max_hz")
    if not 0 < damping_min <= damping_max < 1:
        raise ValueError("require 0 < damping_min <= damping_max < 1")
    rng = ensure_rng(seed)

    n_pairs = order // 2
    blocks = []
    state_weights = np.zeros(order)
    if n_pairs:
        log_lo, log_hi = np.log10(freq_min_hz), np.log10(freq_max_hz)
        freqs = 10.0 ** rng.uniform(log_lo, log_hi, size=n_pairs)
        zetas = rng.uniform(damping_min, damping_max, size=n_pairs)
        blocks = [_pole_block(2.0 * np.pi * f, z) for f, z in zip(freqs, zetas)]
    a = np.zeros((order, order))
    pos = 0
    for i, blk in enumerate(blocks):
        a[pos : pos + 2, pos : pos + 2] = blk
        # weight chosen so each mode's resonant peak is O(1):
        # peak ~ ||c_mode|| * ||b_mode|| / (zeta * omega) and the Gaussian
        # port maps give ||b_mode|| ~ sqrt(n_ports) * weight
        omega = 2.0 * np.pi * freqs[i]
        state_weights[pos : pos + 2] = np.sqrt(zetas[i] * omega / n_ports)
        pos += 2
    if pos < order:
        # one leftover real pole for odd orders, placed mid-band
        zeta = rng.uniform(damping_min, damping_max)
        omega = 2.0 * np.pi * np.sqrt(freq_min_hz * freq_max_hz) * zeta
        a[pos, pos] = -omega
        state_weights[pos] = np.sqrt(omega / n_ports)

    b = rng.normal(size=(order, n_ports))
    c = rng.normal(size=(n_ports, order))
    b = gain_scale * b * state_weights[:, np.newaxis]
    c = c * state_weights[np.newaxis, :]

    if feedthrough:
        d = rng.normal(scale=float(feedthrough), size=(n_ports, n_ports))
    else:
        d = np.zeros((n_ports, n_ports))
    return StateSpace(a, b, c, d)


def random_descriptor_system(
    order: int,
    n_ports: int,
    *,
    e_condition: float = 10.0,
    seed: RandomState = None,
    **kwargs,
) -> DescriptorSystem:
    """Generate a random stable descriptor system with a non-trivial (but invertible) ``E``.

    The system is obtained from :func:`random_stable_system` by an equivalence
    transform ``(E, A, B, C) -> (T E, T A, T B, C)`` with a well-conditioned
    random ``T`` whose condition number is approximately ``e_condition``.  The
    transfer function is unchanged, but ``E`` is no longer the identity, which
    exercises the descriptor-aware code paths of the samplers and the
    interpolation core.
    """
    rng = ensure_rng(seed)
    base = random_stable_system(order, n_ports, seed=rng, **kwargs)
    n = base.order
    # random orthogonal factors with prescribed singular-value spread
    q1, _ = np.linalg.qr(rng.normal(size=(n, n)))
    q2, _ = np.linalg.qr(rng.normal(size=(n, n)))
    sv = np.logspace(0.0, np.log10(max(e_condition, 1.0)), n)
    t = q1 @ np.diag(sv) @ q2
    return DescriptorSystem(t @ base.E, t @ base.A, t @ base.B, base.C, base.D)


#: Seed used for the fixed Example-1 benchmark system so every run of the
#: experiments, tests and benchmarks sees exactly the same system.
EXAMPLE1_SEED = 20100613  # DAC 2010 opened on June 13, 2010


def example1_system(
    *,
    order: int = 150,
    n_ports: int = 30,
    seed: RandomState = EXAMPLE1_SEED,
) -> StateSpace:
    """The fixed order-150, 30-port benchmark system of the paper's Example 1.

    The paper samples 8 scattering matrices from "an order-150 system with 30
    ports"; the exact system is not published, so this function returns a
    seeded random stable system with those dimensions, a modest direct
    feed-through (so that ``rank(D0) > 0`` and Theorem 3.5's
    ``order + rank(D0)`` bound is exercised), and resonances across the
    10 Hz - 100 kHz band shown in the paper's Fig. 2.
    """
    return random_stable_system(
        order,
        n_ports,
        freq_min_hz=1e1,
        freq_max_hz=1e5,
        damping_min=0.02,
        damping_max=0.3,
        feedthrough=0.05,
        seed=seed,
    )
