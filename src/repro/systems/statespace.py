"""Descriptor-system and state-space model classes.

The class hierarchy is intentionally small:

* :class:`DescriptorSystem` holds the quintuple ``(E, A, B, C, D)`` of eq. (1)
  of the paper and knows how to evaluate its transfer function
  ``H(s) = C (sE - A)^{-1} B + D`` at scalar points, along a frequency grid,
  and at matrices of points.  ``E`` may be singular -- that is precisely the
  form the Loewner framework produces.
* :class:`StateSpace` is the convenience subclass with ``E = I`` (a standard
  state-space model), used by the vector-fitting baseline and the circuit
  substrate when the mass matrix happens to be invertible.

Both classes are immutable value objects: all matrices are copied and
read-only, which makes them safe to share between experiments and tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.systems.evaluation import (
    FAST_PATH_MIN_POINTS,
    build_evaluation_plan,
    evaluate_descriptor,
    point_solve,
    verify_evaluation_plan,
)
from repro.utils.validation import check_finite, ensure_2d

__all__ = ["DescriptorSystem", "StateSpace"]


def _as_readonly(array: np.ndarray) -> np.ndarray:
    out = np.array(array, copy=True)
    out.setflags(write=False)
    return out


#: Sentinel stored in the plan cache when the fast path was tried and rejected.
_PLAN_UNAVAILABLE = object()

#: How far (multiplicatively) a sweep may leave the plan's verified
#: point-magnitude band before the cached plan is re-verified against the
#: dense solve on the new sweep's probe points.
_PLAN_BAND_MARGIN = 16.0


class DescriptorSystem:
    """Linear time-invariant descriptor system ``E x' = A x + B u``, ``y = C x + D u``.

    Parameters
    ----------
    E, A:
        Square ``n x n`` matrices.  ``E`` may be singular.
    B:
        ``n x m`` input matrix.
    C:
        ``p x n`` output matrix.
    D:
        Optional ``p x m`` feed-through matrix; defaults to zero.

    Notes
    -----
    The matrices may be real or complex.  Models recovered by the Loewner
    interpolation core are complex before the real transform of Lemma 3.2 and
    real afterwards; both are represented by this class.
    """

    def __init__(self, E, A, B, C, D=None):
        A = ensure_2d(A, "A")
        n = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be square, got shape {A.shape}")
        if E is None:
            E = np.eye(n)
        E = ensure_2d(E, "E")
        if E.shape != A.shape:
            raise ValueError(f"E shape {E.shape} must match A shape {A.shape}")
        B = ensure_2d(B, "B")
        if B.ndim == 2 and B.shape[0] != n and B.shape[1] == n and B.shape[0] != n:
            raise ValueError(f"B must have {n} rows, got shape {B.shape}")
        if B.shape[0] != n:
            raise ValueError(f"B must have {n} rows, got shape {B.shape}")
        C = ensure_2d(C, "C")
        if C.shape[1] != n:
            raise ValueError(f"C must have {n} columns, got shape {C.shape}")
        p, m = C.shape[0], B.shape[1]
        if D is None:
            D = np.zeros((p, m))
        D = ensure_2d(D, "D")
        if D.shape != (p, m):
            raise ValueError(f"D must have shape {(p, m)}, got {D.shape}")
        for name, mat in (("E", E), ("A", A), ("B", B), ("C", C), ("D", D)):
            check_finite(mat, name)
        self._E = _as_readonly(E)
        self._A = _as_readonly(A)
        self._B = _as_readonly(B)
        self._C = _as_readonly(C)
        self._D = _as_readonly(D)
        # lazily built evaluation fast path (shared sweep-evaluation kernel);
        # safe to cache because the matrices are immutable.  The band records
        # the point-magnitude range the plan has been verified on.
        self._eval_plan = None
        self._eval_plan_band = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def E(self) -> np.ndarray:
        """Descriptor (mass) matrix ``E``."""
        return self._E

    @property
    def A(self) -> np.ndarray:
        """State matrix ``A``."""
        return self._A

    @property
    def B(self) -> np.ndarray:
        """Input matrix ``B``."""
        return self._B

    @property
    def C(self) -> np.ndarray:
        """Output matrix ``C``."""
        return self._C

    @property
    def D(self) -> np.ndarray:
        """Feed-through matrix ``D``."""
        return self._D

    @property
    def order(self) -> int:
        """State dimension ``n`` (the size of ``A``)."""
        return self._A.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of inputs ``m``."""
        return self._B.shape[1]

    @property
    def n_outputs(self) -> int:
        """Number of outputs ``p``."""
        return self._C.shape[0]

    @property
    def n_ports(self) -> int:
        """Number of ports for square systems; raises when ``m != p``."""
        if self.n_inputs != self.n_outputs:
            raise ValueError(
                "n_ports is only defined for square systems "
                f"(m={self.n_inputs}, p={self.n_outputs})"
            )
        return self.n_inputs

    @property
    def is_real(self) -> bool:
        """True when every system matrix is (numerically) real-valued."""
        return not any(
            np.iscomplexobj(mat) and np.max(np.abs(mat.imag)) > 0
            for mat in (self._E, self._A, self._B, self._C, self._D)
        )

    @property
    def shape(self) -> tuple[int, int]:
        """``(p, m)`` -- the shape of the transfer-function matrix."""
        return (self.n_outputs, self.n_inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "real" if self.is_real else "complex"
        return (
            f"{type(self).__name__}(order={self.order}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs}, {kind})"
        )

    def __getstate__(self):
        # the plan cache may hold an identity-based sentinel; rebuild lazily
        # on the other side instead of shipping it across pickle boundaries
        state = self.__dict__.copy()
        state["_eval_plan"] = None
        state["_eval_plan_band"] = None
        return state

    # ------------------------------------------------------------------ #
    # transfer-function evaluation
    # ------------------------------------------------------------------ #
    def transfer_function(self, s: complex) -> np.ndarray:
        """Evaluate ``H(s) = C (sE - A)^{-1} B + D`` at a single complex point."""
        x = point_solve(self._E, self._A, self._B.astype(complex), complex(s))
        return self._C @ x + self._D

    def __call__(self, s: complex) -> np.ndarray:
        """Alias for :meth:`transfer_function`."""
        return self.transfer_function(s)

    @staticmethod
    def _point_band(points: np.ndarray) -> tuple[float, float]:
        magnitudes = np.abs(points)
        tiny = float(np.finfo(float).tiny)
        return (max(float(np.min(magnitudes)), tiny),
                max(float(np.max(magnitudes)), tiny))

    def _evaluation_plan(self, probe_points: np.ndarray):
        """The cached fast-path plan, building (and verifying) it on first use.

        The plan's probe verification only covers the point band it was
        built on; a later sweep that leaves that band (beyond a fixed
        margin) triggers a cheap re-verification against the dense solve at
        the new sweep's probes.  Success extends the recorded band; failure
        falls back to the batched solve for that sweep without discarding
        the plan for in-band use.
        """
        if self._eval_plan is None:
            plan = build_evaluation_plan(
                self._E, self._A, self._B, self._C, self._D, probe_points
            )
            # publish the band before the plan: concurrent readers on a
            # shared system must never observe a plan without its band
            if plan is not None:
                self._eval_plan_band = self._point_band(probe_points)
            self._eval_plan = _PLAN_UNAVAILABLE if plan is None else plan
        plan = self._eval_plan
        if plan is _PLAN_UNAVAILABLE:
            return None
        lo, hi = self._eval_plan_band
        new_lo, new_hi = self._point_band(probe_points)
        if new_lo >= lo / _PLAN_BAND_MARGIN and new_hi <= hi * _PLAN_BAND_MARGIN:
            return plan
        if verify_evaluation_plan(plan, self._E, self._A, self._B, self._C,
                                  self._D, probe_points):
            self._eval_plan_band = (min(lo, new_lo), max(hi, new_hi))
            return plan
        return None

    def prime_evaluation_plan(self, frequencies_hz: Iterable[float]) -> None:
        """Pin the cached fast-path plan to the state a sweep over
        ``frequencies_hz`` would leave behind, without running the sweep.

        The lazily-built plan's spectral shift comes from the points that
        first built it, so two objects with identical content can produce
        bitwise-different (round-off apart) sweeps if their *first*
        evaluations ran on different grids.  Callers that may skip this
        object's first sweep -- the cross-job response cache, where a hit
        on the fit grid leaves the plan to be seeded by whichever later
        grid misses -- prime from the canonical first grid instead, so
        every subsequent evaluation is independent of which sweeps were
        skipped.  A no-op when the sweep is too short for the fast path
        or a plan was already built.
        """
        freqs = np.asarray(list(frequencies_hz), dtype=float)
        pts = 1j * 2.0 * np.pi * freqs
        if pts.size >= FAST_PATH_MIN_POINTS:
            self._evaluation_plan(pts)

    def frequency_response(
        self, frequencies_hz: Iterable[float], *, method: str = "auto"
    ) -> np.ndarray:
        """Evaluate the transfer function at ``s = j 2 pi f`` for every frequency.

        Parameters
        ----------
        frequencies_hz:
            Iterable of frequencies in Hz.
        method:
            Evaluation strategy of the shared sweep kernel
            (:mod:`repro.systems.evaluation`): ``"auto"`` (default),
            ``"solve"`` (bitwise equal to the per-point reference),
            ``"diag"`` or ``"pointwise"``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(k, p, m)`` with ``H(j 2 pi f_i)`` stacked along
            the first axis.
        """
        freqs = np.asarray(list(frequencies_hz), dtype=float)
        return self.evaluate_many(1j * 2.0 * np.pi * freqs, method=method)

    def evaluate_many(self, points: Iterable[complex], *, method: str = "auto") -> np.ndarray:
        """Evaluate the transfer function at arbitrary complex points.

        Unlike :meth:`frequency_response` the points are used verbatim (no
        ``j 2 pi f`` mapping), which is what the interpolation core needs when
        it works with the ``lambda_i`` / ``mu_i`` sample points directly.
        The evaluation runs through the shared vectorized kernel
        (:mod:`repro.systems.evaluation`): ``method="auto"`` uses the cached
        eigendecomposition fast path when the sweep is long enough to
        amortize it (and the plan verifies for this system), and the
        batched stacked-pencil solve -- bitwise identical to the per-point
        reference loop -- otherwise.
        """
        pts = np.asarray(list(points), dtype=complex)
        plan = None
        if method == "auto" and pts.size >= FAST_PATH_MIN_POINTS:
            plan = self._evaluation_plan(pts)
            if plan is None:
                method = "solve"
        return evaluate_descriptor(
            self._E, self._A, self._B, self._C, self._D, pts, method=method, plan=plan
        )

    def dc_gain(self) -> np.ndarray:
        """Transfer function at ``s = 0`` (``-C A^{-1} B + D``)."""
        return self.transfer_function(0.0)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def to_real(self, *, rtol: float = 1e-8) -> "DescriptorSystem":
        """Drop negligible imaginary parts and return a real-valued system.

        Raises
        ------
        ValueError
            If any matrix has an imaginary part larger than ``rtol`` times its
            magnitude -- that indicates the model is genuinely complex (e.g.
            the Loewner realization before the Lemma-3.2 transform) and cannot
            be converted by simply truncating.
        """
        mats = []
        for name, mat in (("E", self._E), ("A", self._A), ("B", self._B),
                          ("C", self._C), ("D", self._D)):
            if np.iscomplexobj(mat):
                scale = np.max(np.abs(mat)) if mat.size else 0.0
                if scale > 0 and np.max(np.abs(mat.imag)) > rtol * scale:
                    raise ValueError(
                        f"matrix {name} has significant imaginary part; "
                        "apply the real transform (Lemma 3.2) before calling to_real()"
                    )
                mats.append(mat.real.copy())
            else:
                mats.append(mat.copy())
        return DescriptorSystem(*mats)

    def transformed(self, left: np.ndarray, right: np.ndarray) -> "DescriptorSystem":
        """Apply a two-sided projection ``(left* E right, left* A right, left* B, C right)``.

        This is the operation used both by the SVD realization of Lemma 3.4
        and by reduction methods; ``D`` is left untouched.
        """
        left = ensure_2d(left, "left")
        right = ensure_2d(right, "right")
        lh = left.conj().T
        return DescriptorSystem(
            lh @ self._E @ right,
            lh @ self._A @ right,
            lh @ self._B,
            self._C @ right,
            self._D,
        )

    def with_feedthrough(self, D: np.ndarray) -> "DescriptorSystem":
        """Return a copy of the system with the feed-through matrix replaced."""
        return DescriptorSystem(self._E, self._A, self._B, self._C, D)

    def to_statespace(self) -> "StateSpace":
        """Convert to an explicit state-space model by inverting ``E``.

        Raises
        ------
        numpy.linalg.LinAlgError
            If ``E`` is singular; descriptor systems with singular ``E`` have
            no explicit state-space form of the same order.
        """
        e_inv_a = np.linalg.solve(self._E, self._A)
        e_inv_b = np.linalg.solve(self._E, self._B)
        return StateSpace(e_inv_a, e_inv_b, self._C, self._D)

    def copy(self) -> "DescriptorSystem":
        """Return an independent copy of the system."""
        return DescriptorSystem(self._E, self._A, self._B, self._C, self._D)

    def subsystem(self, outputs: Optional[Iterable[int]] = None,
                  inputs: Optional[Iterable[int]] = None) -> "DescriptorSystem":
        """Select a subset of inputs/outputs (port sub-block of the transfer function)."""
        out_idx = np.arange(self.n_outputs) if outputs is None else np.asarray(list(outputs), dtype=int)
        in_idx = np.arange(self.n_inputs) if inputs is None else np.asarray(list(inputs), dtype=int)
        return DescriptorSystem(
            self._E,
            self._A,
            self._B[:, in_idx],
            self._C[out_idx, :],
            self._D[np.ix_(out_idx, in_idx)],
        )


class StateSpace(DescriptorSystem):
    """Standard state-space model ``x' = A x + B u``, ``y = C x + D u`` (``E = I``)."""

    def __init__(self, A, B, C, D=None):
        A = ensure_2d(A, "A")
        super().__init__(np.eye(A.shape[0]), A, B, C, D)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateSpace(order={self.order}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs})"
        )
