"""Circuit substrate: elements, netlists, MNA and multi-port benchmark networks.

The paper's workloads are multi-port interconnect structures (packages,
boards, power-distribution networks) whose frequency responses are either
measured or computed by EM/circuit solvers.  This package supplies the
"circuit solver" half of that pipeline:

* passive elements (R, L, C, mutual inductance) and port definitions
  (:mod:`repro.circuits.elements`),
* a :class:`~repro.circuits.netlist.Netlist` container with consistency
  checking (:mod:`repro.circuits.netlist`),
* modified nodal analysis (MNA) that assembles a netlist into a descriptor
  system whose transfer function is the multi-port admittance or impedance
  matrix (:mod:`repro.circuits.mna`),
* parametrised generators of realistic benchmark networks: RLC ladders,
  coupled transmission lines and plane-pair grids
  (:mod:`repro.circuits.rlc_networks`,
  :mod:`repro.circuits.transmission_line`),
* the synthetic 14-port power-distribution network that substitutes for the
  measured INC-board data of the paper's Example 2
  (:mod:`repro.circuits.pdn`).
"""

from repro.circuits.elements import (
    Capacitor,
    CurrentProbePort,
    Inductor,
    MutualInductance,
    Port,
    Resistor,
)
from repro.circuits.netlist import Netlist
from repro.circuits.mna import MnaSystem, assemble_mna, netlist_to_descriptor
from repro.circuits.rlc_networks import (
    coupled_rlc_lines,
    rc_ladder,
    rlc_grid,
    rlc_ladder,
)
from repro.circuits.transmission_line import lumped_transmission_line, multiconductor_line
from repro.circuits.pdn import PdnConfiguration, power_distribution_network

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualInductance",
    "Port",
    "CurrentProbePort",
    "Netlist",
    "MnaSystem",
    "assemble_mna",
    "netlist_to_descriptor",
    "rc_ladder",
    "rlc_ladder",
    "rlc_grid",
    "coupled_rlc_lines",
    "lumped_transmission_line",
    "multiconductor_line",
    "PdnConfiguration",
    "power_distribution_network",
]
