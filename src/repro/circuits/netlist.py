"""Netlist container with validation and convenient builder methods.

A :class:`Netlist` is an ordered collection of circuit elements plus the
port declarations.  It performs the bookkeeping the MNA assembler relies on:
unique element names, consistent node usage, resolution of ground aliases, and
index maps for nodes, inductor branches and ports.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.circuits.elements import (
    GROUND_NAMES,
    Capacitor,
    CircuitElement,
    CurrentProbePort,
    Inductor,
    MutualInductance,
    Port,
    Resistor,
)

__all__ = ["Netlist"]


class Netlist:
    """Ordered, validated collection of circuit elements and ports.

    Elements can be supplied at construction time or added incrementally with
    the ``add_*`` helpers, which also auto-generate unique names when none is
    given -- convenient for the programmatic network generators.
    """

    def __init__(self, elements: Iterable[CircuitElement] = (), *, title: str = "netlist"):
        self.title = str(title)
        self._elements: list[CircuitElement] = []
        self._names: set[str] = set()
        self._counters: dict[str, int] = {}
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[CircuitElement]:
        return iter(self._elements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist(title={self.title!r}, elements={len(self._elements)}, "
            f"nodes={len(self.nodes)}, ports={len(self.ports)})"
        )

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def add(self, element: CircuitElement) -> CircuitElement:
        """Add an element, enforcing unique names."""
        if not isinstance(element, CircuitElement):
            raise TypeError(f"expected a CircuitElement, got {type(element).__name__}")
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._elements.append(element)
        self._names.add(element.name)
        return element

    def _auto_name(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0)
        while True:
            count += 1
            name = f"{prefix}{count}"
            if name not in self._names:
                self._counters[prefix] = count
                return name

    def add_resistor(self, node_a: str, node_b: str, value: float, name: str | None = None) -> Resistor:
        """Add a resistor of ``value`` ohms between two nodes."""
        return self.add(Resistor(name or self._auto_name("R"), node_a, node_b, value))

    def add_capacitor(self, node_a: str, node_b: str, value: float, name: str | None = None) -> Capacitor:
        """Add a capacitor of ``value`` farads between two nodes."""
        return self.add(Capacitor(name or self._auto_name("C"), node_a, node_b, value))

    def add_inductor(self, node_a: str, node_b: str, value: float, name: str | None = None) -> Inductor:
        """Add an inductor of ``value`` henries between two nodes."""
        return self.add(Inductor(name or self._auto_name("L"), node_a, node_b, value))

    def add_mutual(self, inductor_a: str, inductor_b: str, coupling: float,
                   name: str | None = None) -> MutualInductance:
        """Couple two existing inductors with coupling coefficient ``coupling``."""
        return self.add(MutualInductance(name or self._auto_name("K"), inductor_a, inductor_b, coupling))

    def add_port(self, node_pos: str, node_neg: str = "0", *, reference_impedance: float = 50.0,
                 name: str | None = None) -> Port:
        """Declare a current-driven, voltage-sensed port (impedance-parameter port)."""
        return self.add(Port(name or self._auto_name("P"), node_pos, node_neg,
                             reference_impedance))

    def add_probe_port(self, node_pos: str, node_neg: str = "0", *,
                       reference_impedance: float = 50.0, name: str | None = None) -> CurrentProbePort:
        """Declare a voltage-driven, current-sensed port (admittance-parameter port)."""
        return self.add(CurrentProbePort(name or self._auto_name("PP"), node_pos, node_neg,
                                         reference_impedance))

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def elements(self) -> tuple[CircuitElement, ...]:
        """All elements in insertion order."""
        return tuple(self._elements)

    @property
    def ports(self) -> tuple[Port, ...]:
        """All port declarations (both flavours) in insertion order."""
        return tuple(e for e in self._elements if isinstance(e, Port))

    @property
    def inductors(self) -> tuple[Inductor, ...]:
        """All inductors in insertion order."""
        return tuple(e for e in self._elements if isinstance(e, Inductor))

    @property
    def mutuals(self) -> tuple[MutualInductance, ...]:
        """All mutual-inductance couplings."""
        return tuple(e for e in self._elements if isinstance(e, MutualInductance))

    @property
    def nodes(self) -> tuple[str, ...]:
        """All non-ground node names in first-appearance order."""
        seen: dict[str, None] = {}
        for element in self._elements:
            for node in element.nodes:
                if node not in GROUND_NAMES and node not in seen:
                    seen[node] = None
        return tuple(seen)

    @property
    def n_ports(self) -> int:
        """Number of declared ports."""
        return len(self.ports)

    def node_index(self) -> dict[str, int]:
        """Map from non-ground node name to its MNA row index."""
        return {node: i for i, node in enumerate(self.nodes)}

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural consistency; raise :class:`ValueError` on problems.

        Checks performed:

        * at least one port is declared,
        * every mutual inductance refers to two existing inductors,
        * every port terminal node is actually used by some element (a port on
          a floating node would make the MNA pencil singular).
        """
        if not self.ports:
            raise ValueError("netlist declares no ports")
        inductor_names = {ind.name for ind in self.inductors}
        for mutual in self.mutuals:
            for ref in (mutual.inductor_a, mutual.inductor_b):
                if ref not in inductor_names:
                    raise ValueError(
                        f"mutual inductance {mutual.name!r} refers to unknown inductor {ref!r}"
                    )
        connected_nodes = set()
        for element in self._elements:
            if not isinstance(element, Port):
                connected_nodes.update(element.nodes)
        for port in self.ports:
            for node in (port.node_pos, port.node_neg):
                if node in GROUND_NAMES:
                    continue
                if node not in connected_nodes:
                    raise ValueError(
                        f"port {port.name!r} terminal {node!r} is not connected to any element"
                    )

    def summary(self) -> str:
        """Human-readable one-paragraph summary (element and node counts)."""
        kinds: dict[str, int] = {}
        for element in self._elements:
            kinds[type(element).__name__] = kinds.get(type(element).__name__, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"{self.title}: {len(self.nodes)} nodes, {parts}"
