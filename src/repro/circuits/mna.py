"""Modified nodal analysis (MNA): netlist -> descriptor system.

MNA is the standard formulation used by circuit simulators: unknowns are the
node voltages plus one branch current per inductor (and per voltage-driven
port), the conservation equations are Kirchhoff's current law at every
non-ground node, and energy-storage elements contribute to the descriptor
(mass) matrix ``E``.  The paper explicitly targets "MNA circuits" as the class
of systems with equal input and output counts for which MFTI interpolates the
full sample matrices (Lemma 3.1), so this module is the bridge between the
circuit benchmarks and the interpolation core.

Formulation
-----------
State vector ``x = [v; i_L; i_V]`` with

* ``v``   -- node voltages at the non-ground nodes,
* ``i_L`` -- inductor branch currents,
* ``i_V`` -- branch currents of voltage-driven (:class:`CurrentProbePort`) ports.

Current-driven ports (:class:`Port`) inject their input current directly into
the node equations and read the port voltage, so an all-``Port`` netlist
realizes the impedance matrix ``Z(s)``; an all-``CurrentProbePort`` netlist
realizes the admittance matrix ``Y(s)``; mixtures yield hybrid parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.elements import (
    GROUND_NAMES,
    Capacitor,
    CurrentProbePort,
    Port,
    Resistor,
)
from repro.circuits.netlist import Netlist
from repro.systems.statespace import DescriptorSystem

__all__ = ["MnaSystem", "assemble_mna", "netlist_to_descriptor"]


@dataclass(frozen=True)
class MnaSystem:
    """Result of an MNA assembly.

    Attributes
    ----------
    system:
        The assembled :class:`~repro.systems.statespace.DescriptorSystem`.
    node_names:
        Names of the non-ground nodes, in state order.
    inductor_names:
        Names of the inductors contributing branch currents, in state order.
    port_names:
        Names of the ports, in input/output order.
    port_kinds:
        Parallel tuple of ``"Z"`` (current-driven) / ``"Y"`` (voltage-driven)
        markers describing which parameter each port row represents.
    """

    system: DescriptorSystem
    node_names: tuple[str, ...]
    inductor_names: tuple[str, ...]
    port_names: tuple[str, ...]
    port_kinds: tuple[str, ...]

    @property
    def parameter_kind(self) -> str:
        """``"Z"``, ``"Y"`` or ``"hybrid"`` depending on the port mix."""
        kinds = set(self.port_kinds)
        if kinds == {"Z"}:
            return "Z"
        if kinds == {"Y"}:
            return "Y"
        return "hybrid"

    def sample(
        self,
        frequencies_hz,
        *,
        as_scattering: bool = False,
        reference_impedance: float = 50.0,
        label: str = "",
    ):
        """Sweep the assembled circuit into a :class:`~repro.data.dataset.FrequencyData`.

        The sweep runs through the shared vectorized evaluation kernel (one
        batched factorization pass instead of one dense factorization per
        frequency) with the bit-stable ``"solve"`` strategy, so sampled
        datasets fingerprint reproducibly.  ``as_scattering`` converts the
        assembled Z/Y parameters to scattering parameters; it requires a
        homogeneous port mix (:attr:`parameter_kind` not ``"hybrid"``).
        """
        from repro.data.sampler import sample_scattering, sample_system

        kind = self.parameter_kind
        if as_scattering:
            if kind == "hybrid":
                raise ValueError(
                    "scattering conversion needs a homogeneous port mix "
                    "(all current-driven or all voltage-driven ports)"
                )
            return sample_scattering(
                self.system, frequencies_hz, system_kind=kind,
                reference_impedance=reference_impedance, label=label,
            )
        return sample_system(
            self.system, frequencies_hz, kind="H" if kind == "hybrid" else kind,
            reference_impedance=reference_impedance, label=label,
        )


def _node_idx(index: dict[str, int], node: str) -> int | None:
    if node in GROUND_NAMES:
        return None
    return index[node]


def assemble_mna(netlist: Netlist) -> MnaSystem:
    """Assemble a validated netlist into a descriptor system.

    Returns an :class:`MnaSystem`; use :func:`netlist_to_descriptor` when only
    the system object is needed.
    """
    netlist.validate()
    node_index = netlist.node_index()
    n_nodes = len(node_index)
    inductors = netlist.inductors
    n_ind = len(inductors)
    ind_index = {ind.name: i for i, ind in enumerate(inductors)}
    ports = netlist.ports
    vports = [p for p in ports if isinstance(p, CurrentProbePort)]
    vport_index = {p.name: i for i, p in enumerate(vports)}
    n_vp = len(vports)

    n = n_nodes + n_ind + n_vp
    m = len(ports)
    e = np.zeros((n, n))
    a = np.zeros((n, n))
    b = np.zeros((n, m))
    c = np.zeros((m, n))
    d = np.zeros((m, m))

    def stamp_conductance(na: str, nb: str, g: float) -> None:
        ia, ib = _node_idx(node_index, na), _node_idx(node_index, nb)
        # KCL written as E x' = A x + ... so conductance enters A with a minus sign
        if ia is not None:
            a[ia, ia] -= g
        if ib is not None:
            a[ib, ib] -= g
        if ia is not None and ib is not None:
            a[ia, ib] += g
            a[ib, ia] += g

    def stamp_capacitance(na: str, nb: str, cap: float) -> None:
        ia, ib = _node_idx(node_index, na), _node_idx(node_index, nb)
        if ia is not None:
            e[ia, ia] += cap
        if ib is not None:
            e[ib, ib] += cap
        if ia is not None and ib is not None:
            e[ia, ib] -= cap
            e[ib, ia] -= cap

    for element in netlist:
        if isinstance(element, Resistor):
            stamp_conductance(element.node_a, element.node_b, 1.0 / element.value)
        elif isinstance(element, Capacitor):
            stamp_capacitance(element.node_a, element.node_b, element.value)

    # inductor branch equations: L_mat d(i_L)/dt = (v_a - v_b) per branch,
    # node equations receive -i_L at node_a and +i_L at node_b.
    for k, inductor in enumerate(inductors):
        row = n_nodes + k
        e[row, row] = inductor.value
        ia, ib = _node_idx(node_index, inductor.node_a), _node_idx(node_index, inductor.node_b)
        if ia is not None:
            a[row, ia] += 1.0
            a[ia, row] -= 1.0
        if ib is not None:
            a[row, ib] -= 1.0
            a[ib, row] += 1.0

    for mutual in netlist.mutuals:
        ka = ind_index[mutual.inductor_a]
        kb = ind_index[mutual.inductor_b]
        la = inductors[ka].value
        lb = inductors[kb].value
        m_val = mutual.coupling * np.sqrt(la * lb)
        e[n_nodes + ka, n_nodes + kb] += m_val
        e[n_nodes + kb, n_nodes + ka] += m_val

    # ports
    for j, port in enumerate(ports):
        ip, ineg = _node_idx(node_index, port.node_pos), _node_idx(node_index, port.node_neg)
        if isinstance(port, CurrentProbePort):
            # voltage-driven: branch current unknown i_p (delivered into node_pos),
            # KVL row reads v_pos - v_neg - u_j = 0
            row = n_nodes + n_ind + vport_index[port.name]
            if ip is not None:
                a[row, ip] += 1.0
                a[ip, row] += 1.0
            if ineg is not None:
                a[row, ineg] -= 1.0
                a[ineg, row] -= 1.0
            b[row, j] = -1.0
            # output is the current delivered *into* the port by the source
            c[j, row] = 1.0
        else:
            # current-driven: input current enters node_pos, leaves node_neg
            if ip is not None:
                b[ip, j] += 1.0
            if ineg is not None:
                b[ineg, j] -= 1.0
            # output is the port voltage
            if ip is not None:
                c[j, ip] += 1.0
            if ineg is not None:
                c[j, ineg] -= 1.0

    system = DescriptorSystem(e, a, b, c, d)
    return MnaSystem(
        system=system,
        node_names=tuple(netlist.nodes),
        inductor_names=tuple(ind.name for ind in inductors),
        port_names=tuple(p.name for p in ports),
        port_kinds=tuple("Y" if isinstance(p, CurrentProbePort) else "Z" for p in ports),
    )


def netlist_to_descriptor(netlist: Netlist) -> DescriptorSystem:
    """Convenience wrapper returning only the assembled descriptor system."""
    return assemble_mna(netlist).system
