"""Passive circuit elements and port declarations.

Elements are small frozen dataclasses; they carry only their connectivity
(node names) and value, and know how to *stamp* themselves into the modified
nodal analysis matrices (see :mod:`repro.circuits.mna`).  Node ``"0"`` (or
``"gnd"``) is the global reference.

The supported elements cover everything needed for the benchmark networks of
the reproduction: resistors, capacitors, self inductances, mutual inductive
coupling between two inductors, and ports (the terminals at which the
multi-port transfer function is defined).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GROUND_NAMES",
    "CircuitElement",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualInductance",
    "Port",
    "CurrentProbePort",
]

#: Node names treated as the global reference (0 V) node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


@dataclass(frozen=True)
class CircuitElement:
    """Base class for all circuit elements.

    Attributes
    ----------
    name:
        Unique element identifier (used in error messages and netlist dumps).
    """

    name: str

    @property
    def nodes(self) -> tuple[str, ...]:
        """Names of the nodes this element connects to (excluding implicit ground)."""
        return ()


@dataclass(frozen=True)
class _TwoTerminal(CircuitElement):
    node_a: str = "0"
    node_b: str = "0"
    value: float = 0.0

    def __post_init__(self):
        if self.node_a == self.node_b:
            raise ValueError(f"element {self.name!r} connects a node to itself")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_a, self.node_b)


@dataclass(frozen=True)
class Resistor(_TwoTerminal):
    """Resistor of ``value`` ohms between ``node_a`` and ``node_b``."""

    def __post_init__(self):
        super().__post_init__()
        if self.value <= 0:
            raise ValueError(f"resistor {self.name!r} must have positive resistance")


@dataclass(frozen=True)
class Capacitor(_TwoTerminal):
    """Capacitor of ``value`` farads between ``node_a`` and ``node_b``."""

    def __post_init__(self):
        super().__post_init__()
        if self.value <= 0:
            raise ValueError(f"capacitor {self.name!r} must have positive capacitance")


@dataclass(frozen=True)
class Inductor(_TwoTerminal):
    """Inductor of ``value`` henries between ``node_a`` and ``node_b``.

    Each inductor introduces one branch-current unknown in the MNA
    formulation, which is what makes the assembled system a *descriptor*
    system in general.
    """

    def __post_init__(self):
        super().__post_init__()
        if self.value <= 0:
            raise ValueError(f"inductor {self.name!r} must have positive inductance")


@dataclass(frozen=True)
class MutualInductance(CircuitElement):
    """Mutual inductive coupling between two named inductors.

    Attributes
    ----------
    inductor_a, inductor_b:
        Names of the two coupled :class:`Inductor` elements (must exist in the
        netlist).
    coupling:
        Coupling coefficient ``k`` in ``(0, 1)``; the mutual inductance is
        ``M = k * sqrt(L_a * L_b)``.
    """

    inductor_a: str = ""
    inductor_b: str = ""
    coupling: float = 0.0

    def __post_init__(self):
        if self.inductor_a == self.inductor_b:
            raise ValueError(f"mutual inductance {self.name!r} must couple two distinct inductors")
        if not 0.0 < self.coupling < 1.0:
            raise ValueError(
                f"mutual inductance {self.name!r} needs a coupling coefficient in (0, 1)"
            )


@dataclass(frozen=True)
class Port(CircuitElement):
    """Current-driven / voltage-sensed port between ``node_pos`` and ``node_neg``.

    With this convention the assembled multi-port transfer function is the
    *impedance* matrix ``Z(s)`` (inject unit current, observe voltage).  Use
    :func:`repro.systems.interconnect.scattering_from_impedance` (or sample
    and convert pointwise) to obtain scattering parameters.

    Attributes
    ----------
    node_pos, node_neg:
        Port terminal nodes; ``node_neg`` defaults to ground.
    reference_impedance:
        Reference impedance recorded for later S-parameter conversion.
    """

    node_pos: str = "0"
    node_neg: str = "0"
    reference_impedance: float = 50.0

    def __post_init__(self):
        if self.node_pos == self.node_neg:
            raise ValueError(f"port {self.name!r} terminals must be distinct nodes")
        if self.reference_impedance <= 0:
            raise ValueError(f"port {self.name!r} needs a positive reference impedance")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_pos, self.node_neg)


@dataclass(frozen=True)
class CurrentProbePort(Port):
    """Port variant that senses current instead of voltage.

    Mixed formulations (some ports voltage-sensed, some current-sensed) are
    occasionally convenient for hybrid-parameter workloads; the MNA assembler
    supports them, and the tests exercise the option.
    """
