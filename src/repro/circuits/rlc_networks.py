"""Parametrised RLC benchmark networks.

These generators build the structured multi-port circuits that the
experiments and tests use as known, physically meaningful reference models:
RC and RLC ladders (on-chip interconnect style), inductively/capacitively
coupled parallel lines (crosstalk workloads) and 2-D RLC grids (plane / mesh
structures).  Every generator returns a :class:`~repro.circuits.netlist.Netlist`
so the caller can inspect or extend the circuit before assembling it through
:func:`repro.circuits.mna.assemble_mna`.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.utils.validation import check_positive_integer

__all__ = ["rc_ladder", "rlc_ladder", "coupled_rlc_lines", "rlc_grid"]


def rc_ladder(
    n_sections: int,
    *,
    resistance: float = 10.0,
    capacitance: float = 1e-12,
    load_resistance: float | None = None,
    two_port: bool = True,
) -> Netlist:
    """RC ladder (distributed RC interconnect model).

    ``n_sections`` series resistors with shunt capacitors at every internal
    node.  With ``two_port=True`` ports are placed at the near and far ends
    (a classic driver/receiver pair); otherwise only the near-end port is
    declared.
    """
    n_sections = check_positive_integer(n_sections, "n_sections")
    if resistance <= 0 or capacitance <= 0:
        raise ValueError("resistance and capacitance must be positive")
    net = Netlist(title=f"rc_ladder_{n_sections}")
    for k in range(n_sections):
        a = "in" if k == 0 else f"n{k}"
        b = f"n{k + 1}" if k < n_sections - 1 else "out"
        net.add_resistor(a, b, resistance)
        net.add_capacitor(b, "0", capacitance)
    if load_resistance:
        net.add_resistor("out", "0", load_resistance)
    net.add_port("in", "0")
    if two_port:
        net.add_port("out", "0")
    return net


def rlc_ladder(
    n_sections: int,
    *,
    resistance: float = 1.0,
    inductance: float = 1e-9,
    capacitance: float = 1e-12,
    conductance: float = 1e-6,
    two_port: bool = True,
) -> Netlist:
    """Lossy RLC ladder: series R-L sections with shunt C and leakage G.

    This is the lumped RLGC model of a transmission line; the shunt leakage
    conductance keeps the network strictly stable (no poles on the imaginary
    axis) so the sampling and interpolation layers see a well-posed system.
    """
    n_sections = check_positive_integer(n_sections, "n_sections")
    for name, value in (("resistance", resistance), ("inductance", inductance),
                        ("capacitance", capacitance), ("conductance", conductance)):
        if value <= 0:
            raise ValueError(f"{name} must be positive")
    net = Netlist(title=f"rlc_ladder_{n_sections}")
    for k in range(n_sections):
        a = "in" if k == 0 else f"n{k}"
        mid = f"m{k + 1}"
        b = f"n{k + 1}" if k < n_sections - 1 else "out"
        net.add_resistor(a, mid, resistance)
        net.add_inductor(mid, b, inductance)
        net.add_capacitor(b, "0", capacitance)
        net.add_resistor(b, "0", 1.0 / conductance)
    net.add_port("in", "0")
    if two_port:
        net.add_port("out", "0")
    return net


def coupled_rlc_lines(
    n_lines: int,
    n_sections: int,
    *,
    resistance: float = 2.0,
    inductance: float = 2e-9,
    capacitance: float = 0.5e-12,
    coupling_capacitance: float = 0.1e-12,
    inductive_coupling: float = 0.3,
    conductance: float = 1e-6,
) -> Netlist:
    """Bundle of ``n_lines`` parallel coupled RLC lines (crosstalk benchmark).

    Adjacent lines are coupled both capacitively (coupling capacitors between
    same-section nodes) and inductively (mutual coupling between same-section
    inductors).  Ports are placed at the near and far ends of every line, so
    the network has ``2 * n_lines`` ports -- a convenient way to scale the
    port count of the interpolation workloads.
    """
    n_lines = check_positive_integer(n_lines, "n_lines")
    n_sections = check_positive_integer(n_sections, "n_sections")
    if not 0.0 <= inductive_coupling < 1.0:
        raise ValueError("inductive_coupling must lie in [0, 1)")
    net = Netlist(title=f"coupled_lines_{n_lines}x{n_sections}")
    inductor_names: dict[tuple[int, int], str] = {}
    for line in range(n_lines):
        for k in range(n_sections):
            a = f"l{line}_in" if k == 0 else f"l{line}_n{k}"
            mid = f"l{line}_m{k + 1}"
            b = f"l{line}_n{k + 1}" if k < n_sections - 1 else f"l{line}_out"
            net.add_resistor(a, mid, resistance)
            ind = net.add_inductor(mid, b, inductance)
            inductor_names[(line, k)] = ind.name
            net.add_capacitor(b, "0", capacitance)
            net.add_resistor(b, "0", 1.0 / conductance)
    # inter-line coupling between adjacent lines, section by section
    for line in range(n_lines - 1):
        for k in range(n_sections):
            upper = f"l{line}_n{k + 1}" if k < n_sections - 1 else f"l{line}_out"
            lower = f"l{line + 1}_n{k + 1}" if k < n_sections - 1 else f"l{line + 1}_out"
            if coupling_capacitance > 0:
                net.add_capacitor(upper, lower, coupling_capacitance)
            if inductive_coupling > 0:
                net.add_mutual(inductor_names[(line, k)], inductor_names[(line + 1, k)],
                               inductive_coupling)
    for line in range(n_lines):
        net.add_port(f"l{line}_in", "0")
        net.add_port(f"l{line}_out", "0")
    return net


def rlc_grid(
    rows: int,
    cols: int,
    *,
    resistance: float = 0.05,
    inductance: float = 0.5e-9,
    capacitance: float = 2e-12,
    leakage_resistance: float = 1e4,
    port_nodes: list[tuple[int, int]] | None = None,
) -> Netlist:
    """2-D grid of series R-L branches with shunt C at every node (plane mesh).

    The grid is the canonical lumped model of a power/ground plane pair: each
    cell boundary is a lossy inductive branch and each cell holds the
    plane-to-plane capacitance.  Ports default to the four corners; pass
    ``port_nodes`` (a list of ``(row, col)`` tuples) to place them elsewhere.
    """
    rows = check_positive_integer(rows, "rows")
    cols = check_positive_integer(cols, "cols")
    net = Netlist(title=f"rlc_grid_{rows}x{cols}")

    def node(r: int, c: int) -> str:
        return f"g{r}_{c}"

    for r in range(rows):
        for c in range(cols):
            net.add_capacitor(node(r, c), "0", capacitance)
            net.add_resistor(node(r, c), "0", leakage_resistance)

    def branch(na: str, nb: str) -> None:
        mid = f"b_{na}_{nb}"
        net.add_resistor(na, mid, resistance)
        net.add_inductor(mid, nb, inductance)

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                branch(node(r, c), node(r, c + 1))
            if r + 1 < rows:
                branch(node(r, c), node(r + 1, c))

    if port_nodes is None:
        port_nodes = [(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)]
    for r, c in port_nodes:
        if not (0 <= r < rows and 0 <= c < cols):
            raise ValueError(f"port node ({r}, {c}) lies outside the {rows}x{cols} grid")
        net.add_port(node(r, c), "0")
    return net
