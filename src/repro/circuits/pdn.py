"""Synthetic 14-port power-distribution network (PDN).

The paper's Example 2 interpolates *measured* scattering data of a 14-port
power-distribution network of an "INC board" (Min, Georgia Tech PhD thesis,
2004).  Those measurements are not publicly available, so -- per the
substitution policy recorded in ``DESIGN.md`` -- this module builds a
physically structured synthetic PDN with the same observable characteristics:

* a power/ground plane pair modeled as a lossy L/C grid (many closely spaced
  plane resonances across the band),
* port connections through via inductances and spreading resistances at 14
  locations spread over the plane,
* decoupling capacitors (with ESL/ESR) and bulk capacitors at several
  locations, producing the anti-resonance structure typical of PDN impedance
  profiles,
* a voltage-regulator-module (VRM) branch that fixes the low-frequency
  behaviour and keeps the DC impedance finite.

The resulting descriptor system has a few hundred states and strong coupling
between ports, i.e. exactly the kind of "order unknown, noisy, possibly
ill-conditioned sampling" workload Table 1 of the paper stresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna import MnaSystem, assemble_mna
from repro.circuits.netlist import Netlist
from repro.systems.statespace import DescriptorSystem
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_integer

__all__ = ["PdnConfiguration", "build_pdn_netlist", "power_distribution_network"]


@dataclass(frozen=True)
class PdnConfiguration:
    """Parameters of the synthetic PDN generator.

    The defaults produce a 14-port network on an 6 x 7 plane grid whose
    impedance profile spans roughly 1 MHz - 10 GHz, which is the band in
    which board-level PDN measurements are typically taken.

    Attributes
    ----------
    n_ports:
        Number of observation ports placed on the plane.
    grid_rows, grid_cols:
        Size of the plane-pair grid model.
    plane_inductance, plane_resistance:
        Per-branch series inductance / resistance of the plane mesh.
    cell_capacitance:
        Plane-to-plane capacitance per grid cell.
    dielectric_loss_resistance:
        Shunt resistance per cell modeling dielectric loss (also keeps the
        pencil well conditioned).
    via_inductance, via_resistance:
        Parasitics connecting each port to its plane node.
    n_decaps:
        Number of decoupling-capacitor sites (placed round-robin over the grid).
    decap_capacitance, decap_esl, decap_esr:
        Decap value and its equivalent series inductance / resistance.
    n_bulk_caps, bulk_capacitance, bulk_esl, bulk_esr:
        Same for the bulk (electrolytic) capacitors.
    vrm_resistance, vrm_inductance:
        VRM branch connecting the supply node to ground at low frequency.
    value_spread:
        Relative log-uniform spread applied to every component value so the
        network is not perfectly regular (measured boards never are).
    seed:
        Seed controlling the randomised placement and value spread.
    """

    n_ports: int = 14
    grid_rows: int = 6
    grid_cols: int = 7
    plane_inductance: float = 0.12e-9
    plane_resistance: float = 2.5e-3
    cell_capacitance: float = 120e-12
    dielectric_loss_resistance: float = 2.0e3
    via_inductance: float = 0.4e-9
    via_resistance: float = 8e-3
    n_decaps: int = 10
    decap_capacitance: float = 100e-9
    decap_esl: float = 0.6e-9
    decap_esr: float = 20e-3
    n_bulk_caps: int = 2
    bulk_capacitance: float = 47e-6
    bulk_esl: float = 4e-9
    bulk_esr: float = 15e-3
    vrm_resistance: float = 1.5e-3
    vrm_inductance: float = 25e-9
    value_spread: float = 0.25
    seed: RandomState = 2004  # year of the INC-board thesis the paper cites

    def __post_init__(self):
        check_positive_integer(self.n_ports, "n_ports")
        check_positive_integer(self.grid_rows, "grid_rows")
        check_positive_integer(self.grid_cols, "grid_cols")
        if self.n_ports > self.grid_rows * self.grid_cols:
            raise ValueError("n_ports cannot exceed the number of grid nodes")
        if not 0.0 <= self.value_spread < 1.0:
            raise ValueError("value_spread must lie in [0, 1)")


def _spread(rng: np.random.Generator, value: float, spread: float) -> float:
    """Log-uniform perturbation of a nominal component value."""
    if spread <= 0:
        return value
    factor = np.exp(rng.uniform(np.log(1.0 - spread), np.log(1.0 + spread)))
    return float(value * factor)


def build_pdn_netlist(config: PdnConfiguration | None = None) -> Netlist:
    """Build the PDN netlist described by ``config`` (defaults to the 14-port board)."""
    cfg = config or PdnConfiguration()
    rng = ensure_rng(cfg.seed)
    net = Netlist(title=f"pdn_{cfg.n_ports}port")

    rows, cols = cfg.grid_rows, cfg.grid_cols

    def node(r: int, c: int) -> str:
        return f"p{r}_{c}"

    # plane-pair grid: cell capacitance + dielectric loss at every node,
    # lossy inductive branches between neighbours
    for r in range(rows):
        for c in range(cols):
            net.add_capacitor(node(r, c), "0", _spread(rng, cfg.cell_capacitance, cfg.value_spread))
            net.add_resistor(node(r, c), "0",
                             _spread(rng, cfg.dielectric_loss_resistance, cfg.value_spread))
    for r in range(rows):
        for c in range(cols):
            for (rr, cc) in ((r, c + 1), (r + 1, c)):
                if rr < rows and cc < cols:
                    mid = f"br_{r}_{c}_{rr}_{cc}"
                    net.add_resistor(node(r, c), mid,
                                     _spread(rng, cfg.plane_resistance, cfg.value_spread))
                    net.add_inductor(mid, node(rr, cc),
                                     _spread(rng, cfg.plane_inductance, cfg.value_spread))

    # choose distinct grid nodes for ports, decaps and bulk caps
    all_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    order = rng.permutation(len(all_nodes))
    port_sites = [all_nodes[i] for i in order[: cfg.n_ports]]
    decap_sites = [all_nodes[i] for i in order[cfg.n_ports : cfg.n_ports + cfg.n_decaps]]
    remaining = order[cfg.n_ports + cfg.n_decaps :]
    bulk_sites = [all_nodes[i] for i in remaining[: cfg.n_bulk_caps]]

    # ports connect through via parasitics
    for k, (r, c) in enumerate(port_sites):
        pad = f"port_pad{k}"
        net.add_resistor(node(r, c), pad, _spread(rng, cfg.via_resistance, cfg.value_spread))
        net.add_inductor(pad, f"port_node{k}", _spread(rng, cfg.via_inductance, cfg.value_spread))
        # small pad capacitance so the port node is not dynamically floating
        net.add_capacitor(f"port_node{k}", "0", 1e-13)
        net.add_port(f"port_node{k}", "0", name=f"PORT{k + 1}")

    # decoupling capacitors: C + ESL + ESR in series to ground
    for k, (r, c) in enumerate(decap_sites):
        a, b = f"dc{k}_a", f"dc{k}_b"
        net.add_resistor(node(r, c), a, _spread(rng, cfg.decap_esr, cfg.value_spread))
        net.add_inductor(a, b, _spread(rng, cfg.decap_esl, cfg.value_spread))
        net.add_capacitor(b, "0", _spread(rng, cfg.decap_capacitance, cfg.value_spread))

    # bulk capacitors
    for k, (r, c) in enumerate(bulk_sites if cfg.n_bulk_caps else []):
        a, b = f"bulk{k}_a", f"bulk{k}_b"
        net.add_resistor(node(r, c), a, _spread(rng, cfg.bulk_esr, cfg.value_spread))
        net.add_inductor(a, b, _spread(rng, cfg.bulk_esl, cfg.value_spread))
        net.add_capacitor(b, "0", _spread(rng, cfg.bulk_capacitance, cfg.value_spread))

    # VRM branch at grid corner: series R-L to ground fixes the DC impedance
    vrm_node = node(0, 0)
    net.add_resistor(vrm_node, "vrm_mid", cfg.vrm_resistance)
    net.add_inductor("vrm_mid", "vrm_out", cfg.vrm_inductance)
    net.add_resistor("vrm_out", "0", 1e-3)
    return net


def power_distribution_network(
    config: PdnConfiguration | None = None,
    *,
    return_mna: bool = False,
) -> DescriptorSystem | MnaSystem:
    """Assemble the synthetic PDN into a descriptor system (impedance parameters).

    Parameters
    ----------
    config:
        Optional :class:`PdnConfiguration`; the default reproduces the fixed
        14-port board used by the Example-2 experiments.
    return_mna:
        When true, return the full :class:`~repro.circuits.mna.MnaSystem`
        (with node/port name metadata) instead of just the system.

    Returns
    -------
    DescriptorSystem or MnaSystem
        The multi-port impedance model ``Z(s)``; convert to scattering
        parameters with :func:`repro.systems.interconnect.z_to_s` when
        sampling, or at the system level with
        :func:`repro.systems.interconnect.scattering_from_impedance`.
    """
    netlist = build_pdn_netlist(config)
    mna = assemble_mna(netlist)
    return mna if return_mna else mna.system
