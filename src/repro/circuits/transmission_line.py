"""Lumped transmission-line models.

Package and board traces are distributed structures; the standard way to
represent them in an MNA-compatible netlist is to chop the line into many
RLGC sections whose per-section values come from the per-unit-length
parameters.  These builders produce single lines and multiconductor bundles
directly from physical per-unit-length data, which gives the experiments
benchmark systems whose frequency responses have the delay-like, many-pole
character the paper's motivation (signal integrity of high-speed links)
cares about.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.utils.validation import check_positive_integer

__all__ = ["lumped_transmission_line", "multiconductor_line"]


def lumped_transmission_line(
    length_m: float,
    n_sections: int,
    *,
    resistance_per_m: float = 5.0,
    inductance_per_m: float = 250e-9,
    capacitance_per_m: float = 100e-12,
    conductance_per_m: float = 1e-5,
    name_prefix: str = "tl",
) -> Netlist:
    """Single lossy transmission line as a cascade of RLGC pi-sections.

    Parameters
    ----------
    length_m:
        Physical line length in metres.
    n_sections:
        Number of lumped sections; the model is accurate up to roughly
        ``n_sections / 10`` times the line's quarter-wave frequency.
    resistance_per_m, inductance_per_m, capacitance_per_m, conductance_per_m:
        Per-unit-length RLGC parameters (ohm/m, H/m, F/m, S/m).
    name_prefix:
        Prefix for the generated node names, so multiple lines can coexist in
        a larger netlist.

    Returns
    -------
    Netlist
        Two-port netlist with ports at the near and far ends.
    """
    n_sections = check_positive_integer(n_sections, "n_sections")
    if length_m <= 0:
        raise ValueError("length_m must be positive")
    if min(resistance_per_m, inductance_per_m, capacitance_per_m, conductance_per_m) <= 0:
        raise ValueError("per-unit-length parameters must be positive")
    dx = length_m / n_sections
    r_sec = resistance_per_m * dx
    l_sec = inductance_per_m * dx
    c_sec = capacitance_per_m * dx
    g_sec = conductance_per_m * dx

    net = Netlist(title=f"{name_prefix}_line_{n_sections}")
    # pi topology: half the shunt admittance at each section boundary
    first = f"{name_prefix}_in"
    net.add_capacitor(first, "0", c_sec / 2.0)
    net.add_resistor(first, "0", 2.0 / g_sec)
    for k in range(n_sections):
        a = first if k == 0 else f"{name_prefix}_n{k}"
        mid = f"{name_prefix}_m{k + 1}"
        b = f"{name_prefix}_n{k + 1}" if k < n_sections - 1 else f"{name_prefix}_out"
        net.add_resistor(a, mid, r_sec)
        net.add_inductor(mid, b, l_sec)
        shunt_c = c_sec if k < n_sections - 1 else c_sec / 2.0
        shunt_g = g_sec if k < n_sections - 1 else g_sec / 2.0
        net.add_capacitor(b, "0", shunt_c)
        net.add_resistor(b, "0", 1.0 / shunt_g)
    net.add_port(f"{name_prefix}_in", "0")
    net.add_port(f"{name_prefix}_out", "0")
    return net


def multiconductor_line(
    n_conductors: int,
    length_m: float,
    n_sections: int,
    *,
    resistance_per_m: float = 5.0,
    inductance_per_m: float = 250e-9,
    capacitance_per_m: float = 100e-12,
    mutual_capacitance_per_m: float = 20e-12,
    inductive_coupling: float = 0.35,
    conductance_per_m: float = 1e-5,
) -> Netlist:
    """Coupled multiconductor transmission line (MTL) bundle.

    Adjacent conductors share mutual capacitance and inductive coupling in
    every section.  The resulting netlist has ``2 * n_conductors`` ports (near
    and far end of every conductor), which makes it a convenient "massive
    port" workload of tunable size for the interpolation experiments.
    """
    n_conductors = check_positive_integer(n_conductors, "n_conductors")
    n_sections = check_positive_integer(n_sections, "n_sections")
    if length_m <= 0:
        raise ValueError("length_m must be positive")
    if not 0.0 <= inductive_coupling < 1.0:
        raise ValueError("inductive_coupling must lie in [0, 1)")
    dx = length_m / n_sections
    r_sec = resistance_per_m * dx
    l_sec = inductance_per_m * dx
    c_sec = capacitance_per_m * dx
    cm_sec = mutual_capacitance_per_m * dx
    g_sec = conductance_per_m * dx

    net = Netlist(title=f"mtl_{n_conductors}x{n_sections}")
    inductor_names: dict[tuple[int, int], str] = {}
    for cond in range(n_conductors):
        prefix = f"c{cond}"
        for k in range(n_sections):
            a = f"{prefix}_in" if k == 0 else f"{prefix}_n{k}"
            mid = f"{prefix}_m{k + 1}"
            b = f"{prefix}_n{k + 1}" if k < n_sections - 1 else f"{prefix}_out"
            net.add_resistor(a, mid, r_sec)
            ind = net.add_inductor(mid, b, l_sec)
            inductor_names[(cond, k)] = ind.name
            net.add_capacitor(b, "0", c_sec)
            net.add_resistor(b, "0", 1.0 / g_sec)
    for cond in range(n_conductors - 1):
        for k in range(n_sections):
            upper = f"c{cond}_n{k + 1}" if k < n_sections - 1 else f"c{cond}_out"
            lower = f"c{cond + 1}_n{k + 1}" if k < n_sections - 1 else f"c{cond + 1}_out"
            if cm_sec > 0:
                net.add_capacitor(upper, lower, cm_sec)
            if inductive_coupling > 0:
                net.add_mutual(inductor_names[(cond, k)], inductor_names[(cond + 1, k)],
                               inductive_coupling)
    for cond in range(n_conductors):
        net.add_port(f"c{cond}_in", "0")
        net.add_port(f"c{cond}_out", "0")
    return net
