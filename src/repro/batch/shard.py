"""``python -m repro.batch.shard`` -- plan / run / merge a sharded batch.

The command-line face of :mod:`repro.batch.sharding`, driving the full
cross-machine cycle over the named workload grids of
:data:`repro.experiments.workloads.WORKLOADS`:

1. **plan** (once, anywhere)::

       python -m repro.batch.shard plan --workload mixed_batch_jobs \\
           --shards 4 --out-dir sharded/ --cache-dir /shared/fit-cache

   builds the grid, assigns jobs to shards deterministically and writes one
   ``shard-XXX-of-YYY.manifest.json`` per shard.

2. **run** (once per shard, on any machine that sees the manifest)::

       python -m repro.batch.shard run sharded/shard-000-of-004.manifest.json \\
           --executor process

   rebuilds the grid from the manifest's workload entry, verifies it against
   the planned job fingerprints, executes the shard's subset through a
   :class:`~repro.batch.engine.BatchEngine` and writes the shard result
   archive next to the manifest (override with ``--out``).

3. **merge** (once, anywhere that sees all shard results)::

       python -m repro.batch.shard merge sharded/*.result.npz --out merged.json

   validates the shard files against each other and writes the reassembled
   :class:`~repro.batch.results.BatchResult` JSON export -- identical in
   record order and payloads to a single-process run of the same grid.

Exit codes: 0 on success, 2 on a validation failure (:class:`ShardError`),
argparse's usual 2 on bad usage.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
from typing import Optional

from repro.backends import BACKEND_NAMES
from repro.batch.engine import EXECUTORS, BatchEngine
from repro.batch.sharding import (
    ShardError,
    ShardPlan,
    load_manifest,
    merge_shard_results,
    run_shard,
    shard_result_name,
    write_manifests,
    write_shard_result,
)

__all__ = ["main", "cli_subprocess", "register_shard_commands"]


def cli_subprocess(*args: str, timeout: float = 600,
                   module: str = "repro.batch.shard") -> subprocess.CompletedProcess:
    """Invoke a repro CLI module in a fresh subprocess, exactly as an operator would.

    The one shared harness behind the differential tests and the CI sharded
    smoke (``benchmarks/bench_shard_merge.py``): it prepends this package's
    ``src`` root to ``PYTHONPATH`` so the child resolves the same ``repro``
    build regardless of how the parent was launched, and captures text
    output.  Keeping it here means the PYTHONPATH handling can never drift
    between the call sites.  ``module`` defaults to this (deprecated alias)
    module so existing callers keep exercising the alias path; pass
    ``module="repro"`` to drive the umbrella CLI.
    """
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_root, env.get("PYTHONPATH")) if part)
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def _workload_kwargs(raw: Optional[str]) -> dict:
    """Parse the ``--workload-args`` JSON object (kwargs of the named grid)."""
    if not raw:
        return {}
    try:
        kwargs = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ShardError(f"--workload-args must be a JSON object: {exc}") from exc
    if not isinstance(kwargs, dict):
        raise ShardError(
            f"--workload-args must be a JSON object, got {type(kwargs).__name__}"
        )
    return kwargs


def _build_jobs(name: str, kwargs: dict):
    from repro.experiments.workloads import workload_jobs

    try:
        return workload_jobs(name, **kwargs)
    except (TypeError, ValueError) as exc:
        raise ShardError(f"cannot build workload {name!r}: {exc}") from exc


def cmd_plan(args: argparse.Namespace) -> int:
    kwargs = _workload_kwargs(args.workload_args)
    jobs = _build_jobs(args.workload, kwargs)
    plan = ShardPlan.from_jobs(jobs, args.shards)
    paths = write_manifests(
        plan,
        jobs,
        args.out_dir,
        workload=args.workload,
        workload_kwargs=kwargs,
        cache_dir=args.cache_dir,
    )
    print(f"plan {plan.fingerprint[:16]}...: {plan.n_jobs} jobs "
          f"({args.workload}) over {plan.n_shards} shards")
    for shard, path in enumerate(paths):
        print(f"  shard {shard}: {len(plan.indices_for(shard))} jobs -> {path}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.manifest)
    workload = manifest.get("workload")
    if not workload:
        raise ShardError(
            "manifest carries no workload entry point; in-memory batches must "
            "be run through repro.batch.sharding.run_shard() directly"
        )
    jobs = _build_jobs(workload["name"], workload.get("kwargs") or {})
    # REPRO_BATCH_EXECUTOR / _WORKERS / _CHUNK apply like everywhere else in
    # the batch layer; explicit CLI flags override the environment
    try:
        engine = BatchEngine.from_env()
        overrides = {}
        if args.executor is not None:
            overrides["executor"] = args.executor
        if args.workers is not None:
            overrides["max_workers"] = args.workers
        if args.chunk_size is not None:
            overrides["chunk_size"] = args.chunk_size
        if args.backend is not None:
            overrides["backend"] = args.backend
        if args.shared_memory:
            overrides["shared_memory"] = True
        if overrides:
            engine = dataclasses.replace(engine, **overrides)
    except ValueError as exc:
        raise ShardError(f"invalid engine configuration: {exc}") from exc
    result = run_shard(manifest, jobs, engine=engine)
    out = args.out or os.path.join(
        os.path.dirname(os.path.abspath(args.manifest)),
        shard_result_name(manifest["shard_index"], manifest["n_shards"]),
    )
    write_shard_result(out, manifest, result)
    counters = (f", cache hits={result.n_cache_hits}/{result.n_jobs}"
                if result.used_cache else "")
    print(f"shard {manifest['shard_index']}/{manifest['n_shards']}: "
          f"{result.n_ok}/{result.n_jobs} ok, executor={result.executor}, "
          f"wall={result.wall_seconds:.3f}s{counters} -> {out}")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    merged = merge_shard_results(args.shard_results)
    if args.out:
        merged.save_json(args.out)
    print(merged.summary_table(title=(
        f"merged {merged.executor}: {merged.n_ok}/{merged.n_jobs} ok"
        + (f", cache hits={merged.n_cache_hits}/{merged.n_jobs}"
           if merged.used_cache else "")
        + (f" -> {args.out}" if args.out else "")
    )))
    if args.fail_on_job_errors and merged.n_failed:
        print(f"error: {merged.n_failed} job(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_dispatch(args: argparse.Namespace) -> int:
    from repro.serve.dispatcher import SubprocessLauncher, dispatch_workload

    merged = dispatch_workload(
        args.workload,
        args.shards,
        args.out_dir,
        workload_kwargs=_workload_kwargs(args.workload_args),
        cache_dir=args.cache_dir,
        launcher=SubprocessLauncher(executor=args.executor, workers=args.workers,
                                    chunk_size=args.chunk_size,
                                    backend=args.backend,
                                    shared_memory=args.shared_memory),
        timeout=args.timeout,
        max_retries=args.max_retries,
        backoff_seconds=args.backoff,
        bench_weights=args.bench_weights,
    )
    if args.out:
        merged.save_json(args.out)
    print(merged.summary_table(title=(
        f"dispatched {merged.executor}: {merged.n_ok}/{merged.n_jobs} ok"
        + (f", cache hits={merged.n_cache_hits}/{merged.n_jobs}"
           if merged.used_cache else "")
        + (f" -> {args.out}" if args.out else "")
    )))
    if args.fail_on_job_errors and merged.n_failed:
        print(f"error: {merged.n_failed} job(s) failed", file=sys.stderr)
        return 1
    return 0


def register_shard_commands(commands) -> None:
    """Attach the ``plan`` / ``run`` / ``merge`` / ``dispatch`` subcommands.

    Shared between the ``python -m repro shard`` umbrella CLI
    (:mod:`repro.cli`) and this module's deprecated direct entry point, so
    the two can never drift apart.
    """
    plan = commands.add_parser(
        "plan", help="assign a named workload grid to N shard manifests")
    plan.add_argument("--workload", required=True,
                      help="named grid from repro.experiments.workloads.WORKLOADS")
    plan.add_argument("--workload-args", default=None,
                      help="JSON object of kwargs for the workload builder")
    plan.add_argument("--shards", type=int, required=True,
                      help="number of shards to plan")
    plan.add_argument("--out-dir", required=True,
                      help="directory the shard manifests are written to")
    plan.add_argument("--cache-dir", default=None,
                      help="shared DiskStore directory every shard runner attaches")
    plan.set_defaults(handler=cmd_plan)

    run = commands.add_parser(
        "run", help="execute one shard manifest and write its result archive")
    run.add_argument("manifest", help="path to a shard manifest")
    run.add_argument("--executor", default=None, choices=EXECUTORS,
                     help="batch executor (default: REPRO_BATCH_EXECUTOR or serial)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker count for the pooled executors "
                          "(default: REPRO_BATCH_WORKERS or the CPU count)")
    run.add_argument("--chunk-size", type=int, default=None,
                     help="jobs per engine chunk "
                          "(default: REPRO_BATCH_CHUNK or automatic)")
    run.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                     help="array backend for the kernel modules "
                          "(default: REPRO_ARRAY_BACKEND or numpy)")
    run.add_argument("--shared-memory", action="store_true",
                     help="ship process-executor chunk datasets through "
                          "multiprocessing.shared_memory (default: "
                          "REPRO_BATCH_SHM or off)")
    run.add_argument("--out", default=None,
                     help="shard result path (default: next to the manifest)")
    run.set_defaults(handler=cmd_run)

    merge = commands.add_parser(
        "merge", help="validate and merge shard result archives")
    merge.add_argument("shard_results", nargs="+",
                       help="shard result .npz files (all shards of one plan)")
    merge.add_argument("--out", default=None,
                       help="write the merged BatchResult JSON export here")
    merge.add_argument("--fail-on-job-errors", action="store_true",
                       help="exit 1 when any merged record has status 'failed'")
    merge.set_defaults(handler=cmd_merge)

    dispatch = commands.add_parser(
        "dispatch",
        help="plan + launch shard runner subprocesses + retry + merge, one call")
    dispatch.add_argument("--workload", required=True,
                          help="named grid from repro.experiments.workloads.WORKLOADS")
    dispatch.add_argument("--workload-args", default=None,
                          help="JSON object of kwargs for the workload builder")
    dispatch.add_argument("--shards", type=int, required=True,
                          help="number of shards to dispatch")
    dispatch.add_argument("--out-dir", required=True,
                          help="directory for manifests and shard results")
    dispatch.add_argument("--cache-dir", default=None,
                          help="shared DiskStore directory every shard runner attaches")
    dispatch.add_argument("--executor", default=None, choices=EXECUTORS,
                          help="engine executor forwarded to every shard runner")
    dispatch.add_argument("--workers", type=int, default=None,
                          help="worker count forwarded to every shard runner")
    dispatch.add_argument("--chunk-size", type=int, default=None,
                          help="chunk size forwarded to every shard runner")
    dispatch.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                          help="array backend forwarded to every shard runner")
    dispatch.add_argument("--shared-memory", action="store_true",
                          help="forward --shared-memory to every shard runner")
    dispatch.add_argument("--timeout", type=float, default=None,
                          help="per-shard wall-clock budget per attempt (seconds)")
    dispatch.add_argument("--max-retries", type=int, default=2,
                          help="extra attempts per shard after the first")
    dispatch.add_argument("--backoff", type=float, default=0.25,
                          help="base retry backoff in seconds (doubles per retry)")
    dispatch.add_argument("--bench-weights", default=None,
                          help="BENCH_*.json whose per-label timings balance the plan")
    dispatch.add_argument("--out", default=None,
                          help="write the merged BatchResult JSON export here")
    dispatch.add_argument("--fail-on-job-errors", action="store_true",
                          help="exit 1 when any merged record has status 'failed'")
    dispatch.set_defaults(handler=cmd_dispatch)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.batch.shard",
        description=__doc__.splitlines()[0],
    )
    register_shard_commands(parser.add_subparsers(dest="command", required=True))
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated alias: forward to ``python -m repro shard ...``.

    Kept so existing scripts and docs don't break; the umbrella CLI
    (:mod:`repro.cli`) is the supported entry point.
    """
    print(
        "warning: 'python -m repro.batch.shard' is deprecated; "
        "use 'python -m repro shard' instead",
        file=sys.stderr,
    )
    from repro.cli import main as cli_main

    arguments = list(sys.argv[1:] if argv is None else argv)
    return cli_main(["shard", *arguments])


if __name__ == "__main__":
    raise SystemExit(main())
