"""Cross-machine sharding of batch runs: plan, manifest, shard results, merge.

The batch engine's chunk layer is already deterministic -- a batch is a list
of independent :class:`~repro.batch.jobs.FitJob` whose records only depend on
job content, never on scheduling.  This module scales that property across
machines:

* :class:`ShardPlan` -- a deterministic assignment of jobs to ``n`` shards.
  Jobs are identified by content (:func:`job_fingerprint`, built on the cache
  fingerprints), ordered by that hash and split into contiguous chunks with
  the engine's own :func:`~repro.batch.engine.contiguous_chunks`, so the
  assignment is stable under permutation of the submitted job list and
  roughly balanced without any coordination.
* **Shard manifests** -- one versioned JSON document per shard
  (:func:`write_manifests`): the plan fingerprint, the shard's job specs
  (method, canonical options serialization, dataset/reference fingerprints,
  label, tags) and the shared cache directory.  A manifest is everything a
  worker machine needs to know *which* jobs to run and to verify it rebuilt
  exactly those jobs.
* **Shard runner** -- :func:`run_shard` validates the rebuilt jobs against
  the manifest (any drift in workload builders or options encoding is an
  error, never silent corruption) and executes the shard's subset through a
  regular :class:`~repro.batch.engine.BatchEngine` -- any executor, cache
  attached -- with every record kept at its *original* batch index.
* **Shard result files** -- :func:`write_shard_result` /
  :func:`read_shard_result` persist a shard's :class:`BatchResult` as one
  ``.npz`` file (numerical payloads via the cache serialization, bitwise
  round-trip; scalar errors as exact ``float.hex`` tokens).
* :func:`merge_shard_results` -- validates the shard files against each
  other (same plan fingerprint, same schema, no missing / duplicate jobs)
  and reassembles one :class:`BatchResult` whose record order and numerical
  payloads are identical to the single-process run of the same batch.

Datasets deliberately never travel inside manifests: shards rebuild their
jobs from a *named workload grid* (:data:`repro.experiments.workloads.
WORKLOADS`), which is deterministic by construction, and the manifest's job
fingerprints prove the rebuild reproduced the planned content.  With a
shared-filesystem :class:`~repro.cache.DiskStore` as ``cache_dir``, shards
additionally reuse each other's fits for free.

The ``python -m repro.batch.shard`` CLI (:mod:`repro.batch.shard`) drives
the plan / run / merge cycle from the command line; see the README's
"Sharding across machines" section for the workflow.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from repro.batch.engine import BatchEngine, contiguous_chunks
from repro.batch.jobs import FitJob, JobRecord
from repro.batch.results import BatchResult
from repro.cache.fingerprint import (
    combined_fingerprint,
    dataset_fingerprint,
    options_fingerprint,
)
from repro.cache.fitcache import FitCache
from repro.cache.serialization import (
    PAYLOAD_SCHEMA_VERSION,
    payload_to_result,
    result_to_payload,
)
from repro.core.options import canonical_token

__all__ = [
    "ShardError",
    "ShardPlan",
    "ShardResult",
    "job_fingerprint",
    "plan_fingerprint",
    "plan_shards",
    "write_manifests",
    "load_manifest",
    "validate_manifest",
    "manifest_name",
    "shard_result_name",
    "run_shard",
    "write_shard_result",
    "read_shard_result",
    "merge_shard_results",
    "MANIFEST_FORMAT",
    "SHARD_RESULT_FORMAT",
    "SHARD_SCHEMA_VERSION",
]

#: ``format`` marker of manifest documents (rejects arbitrary JSON files).
MANIFEST_FORMAT = "repro-shard-manifest"
#: ``format`` marker of shard result files.
SHARD_RESULT_FORMAT = "repro-shard-result"
#: Bump whenever the manifest or shard-result layout changes; mixing schema
#: versions across machines is a validation error, never silent corruption.
SHARD_SCHEMA_VERSION = 1

#: Key of the JSON metadata blob inside a shard-result ``.npz`` archive.
_META_KEY = "__shard_meta__"
#: Per-record array-name prefix inside a shard-result archive.
_RECORD_PREFIX = "record"


class ShardError(ValueError):
    """A manifest or shard result failed validation (wrong plan, schema, jobs)."""


# --------------------------------------------------------------------------- #
# job identity and the plan
# --------------------------------------------------------------------------- #
def _tags_token(tags: dict[str, Any]) -> str:
    """Canonical encoding of a job's tag dict (sorted, exact scalar tokens)."""
    items = []
    for key in sorted(tags):
        items.append(f"{canonical_token(key)}={canonical_token(tags[key])}")
    return "{" + ",".join(items) + "}"


def job_fingerprint(job: FitJob) -> str:
    """Content-addressed identity of one job, reusing the cache fingerprints.

    Covers everything that shapes the job's record: the dataset and optional
    reference (by numerical fingerprint), the method + canonical options
    serialization, the label and the tags.  Two jobs get the same fingerprint
    iff an engine run would produce interchangeable records for them -- which
    is exactly the identity a shard plan must be stable under.

    Raises
    ------
    TypeError
        If the options or a tag value has no canonical encoding (e.g. a live
        ``numpy.random.Generator``); such jobs cannot be planned for a
        cross-machine run.
    """
    return combined_fingerprint("shard-job", [
        "data:" + dataset_fingerprint(job.data),
        "method:" + canonical_token(job.method),
        "options:" + options_fingerprint(job.method, job.options),
        "label:" + canonical_token(job.label),
        "tags:" + _tags_token(job.tags),
        "reference:" + (
            dataset_fingerprint(job.reference) if job.reference is not None else "none"
        ),
        # appended only when set, so every pre-existing job keeps the
        # fingerprint it had before time-domain specs existed
        *(
            ["timedomain:{"
             + ",".join(f"{k}={v}" for k, v in job.time_domain.canonical_items())
             + "}"]
            if job.time_domain is not None
            else []
        ),
        # same append-only-when-set rule for the passivity spec
        *(
            ["passivity:{"
             + ",".join(f"{k}={v}" for k, v in job.passivity.canonical_items())
             + "}"]
            if job.passivity is not None
            else []
        ),
    ])


def plan_fingerprint(job_ids: Sequence[str], n_shards: int) -> str:
    """Digest pinning one shard plan: schema, shard count and the ordered jobs.

    The *submission order* of the job ids is part of the digest -- merging
    reassembles records in exactly this order, so two plans over the same
    jobs in different orders are different plans (while the shard
    *assignment* itself is order-independent, see :class:`ShardPlan`).
    """
    return combined_fingerprint("shard-plan", [
        f"schema:{SHARD_SCHEMA_VERSION}",
        f"shards:{int(n_shards)}",
        *job_ids,
    ])


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic assignment of a batch's jobs to ``n_shards`` shards.

    Attributes
    ----------
    n_shards:
        Number of shards the batch is split into (shards may be empty when
        there are fewer jobs than shards).
    job_ids:
        One :func:`job_fingerprint` per job, in submission order.
    assignments:
        The shard index of every job, in submission order.
    fingerprint:
        :func:`plan_fingerprint` of this plan; manifests and shard results
        carry it, and :func:`merge_shard_results` refuses to mix documents
        with different fingerprints.

    The assignment rule is *hash-ordered contiguous chunking*: jobs are
    sorted by their content fingerprint (ties broken by submission index,
    which only ever applies to identical jobs) and the sorted list is split
    into ``ceil(n_jobs / n_shards)``-sized contiguous chunks with the
    engine's :func:`~repro.batch.engine.contiguous_chunks`.  Consequences:

    * every job lands in exactly one shard,
    * permuting the submitted job list never changes which shard a given
      job's *content* lands in (the sort erases submission order),
    * shard sizes differ by at most the chunk size, with no coordination.
    """

    n_shards: int
    job_ids: tuple[str, ...]
    assignments: tuple[int, ...]
    fingerprint: str

    @classmethod
    def from_job_ids(cls, job_ids: Iterable[str], n_shards: int) -> "ShardPlan":
        """Build a plan from precomputed job fingerprints."""
        ids = tuple(str(job_id) for job_id in job_ids)
        if n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {n_shards}")
        order = sorted(range(len(ids)), key=lambda index: (ids[index], index))
        chunk = max(1, -(-len(ids) // n_shards))
        assignments = [0] * len(ids)
        for shard, members in enumerate(contiguous_chunks(order, chunk)):
            for index in members:
                assignments[index] = shard
        return cls(
            n_shards=int(n_shards),
            job_ids=ids,
            assignments=tuple(assignments),
            fingerprint=plan_fingerprint(ids, n_shards),
        )

    @classmethod
    def from_jobs(cls, jobs: Sequence[FitJob], n_shards: int) -> "ShardPlan":
        """Fingerprint ``jobs`` and build the plan over them."""
        return cls.from_job_ids([job_fingerprint(job) for job in jobs], n_shards)

    @property
    def n_jobs(self) -> int:
        """Number of planned jobs."""
        return len(self.job_ids)

    def indices_for(self, shard: int) -> tuple[int, ...]:
        """Submission indices of the jobs assigned to ``shard`` (ascending)."""
        if not 0 <= shard < self.n_shards:
            raise ShardError(f"shard index must be in [0, {self.n_shards}), got {shard}")
        return tuple(
            index for index, assigned in enumerate(self.assignments) if assigned == shard
        )

    def shard_of(self, job_id: str) -> int:
        """The shard the given job fingerprint is assigned to."""
        try:
            return self.assignments[self.job_ids.index(job_id)]
        except ValueError:
            raise ShardError(f"job id {job_id!r} is not part of this plan") from None


def plan_shards(
    jobs: Sequence[FitJob],
    n_shards: int,
    *,
    weights: Optional[dict[str, float]] = None,
) -> ShardPlan:
    """Plan ``jobs`` onto ``n_shards`` shards, optionally runtime-weighted.

    Without ``weights`` this is exactly :meth:`ShardPlan.from_jobs` -- the
    hash-ordered contiguous split.  With ``weights`` (estimated cost per job
    *label*, e.g. measured ``elapsed_seconds`` from a previous ``BENCH_*.json``
    run) the assignment switches to deterministic longest-processing-time
    greedy: jobs are ordered by descending cost (ties broken by content
    fingerprint, then submission index) and each is placed on the currently
    lightest shard (ties broken by shard index).  Labels absent from
    ``weights`` cost the mean of the provided weights, so a partial benchmark
    file still improves the balance of the jobs it covers.

    Either way the plan carries the same :func:`plan_fingerprint` -- only the
    ordered job ids and the shard count are pinned, not the assignment -- so
    manifests, shard results and :func:`merge_shard_results` are oblivious to
    how the balancing was done.
    """
    import heapq

    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    ids = tuple(job_fingerprint(job) for job in jobs)
    if not weights:
        return ShardPlan.from_job_ids(ids, n_shards)
    for label, weight in weights.items():
        if not (float(weight) >= 0.0):
            raise ShardError(f"weight for {label!r} must be >= 0, got {weight!r}")
    default = sum(float(w) for w in weights.values()) / len(weights)
    costs = [float(weights.get(job.label, default)) for job in jobs]
    order = sorted(range(len(jobs)),
                   key=lambda index: (-costs[index], ids[index], index))
    heap = [(0.0, shard) for shard in range(int(n_shards))]
    heapq.heapify(heap)
    assignments = [0] * len(jobs)
    for index in order:
        load, shard = heapq.heappop(heap)
        assignments[index] = shard
        heapq.heappush(heap, (load + costs[index], shard))
    return ShardPlan(
        n_shards=int(n_shards),
        job_ids=ids,
        assignments=tuple(assignments),
        fingerprint=plan_fingerprint(ids, n_shards),
    )


# --------------------------------------------------------------------------- #
# manifests
# --------------------------------------------------------------------------- #
def manifest_name(shard: int, n_shards: int) -> str:
    """Canonical file name of one shard manifest."""
    return f"shard-{shard:03d}-of-{n_shards:03d}.manifest.json"


def shard_result_name(shard: int, n_shards: int) -> str:
    """Canonical file name of one shard result archive."""
    return f"shard-{shard:03d}-of-{n_shards:03d}.result.npz"


def _job_spec(index: int, job: FitJob, job_id: str) -> dict[str, Any]:
    """The manifest entry describing one planned job."""
    from repro.core._pipeline import frontend_spec

    options = job.options
    if options is None:
        options = frontend_spec(job.method).options_type()
    return {
        "index": index,
        "job_id": job_id,
        "label": job.label,
        "method": job.method,
        "dataset_fingerprint": dataset_fingerprint(job.data),
        "reference_fingerprint": (
            dataset_fingerprint(job.reference) if job.reference is not None else None
        ),
        "tags": dict(job.tags),
        "options": {
            "type": type(options).__name__,
            "items": [list(item) for item in options.canonical_items()],
        },
        "time_domain": (
            job.time_domain.to_dict() if job.time_domain is not None else None
        ),
        "passivity": (
            job.passivity.to_dict() if job.passivity is not None else None
        ),
    }


def write_manifests(
    plan: ShardPlan,
    jobs: Sequence[FitJob],
    out_dir: Union[str, os.PathLike],
    *,
    workload: Optional[str] = None,
    workload_kwargs: Optional[dict[str, Any]] = None,
    cache_dir: Optional[str] = None,
) -> list[str]:
    """Write one manifest per shard under ``out_dir``; returns the paths.

    ``workload`` / ``workload_kwargs`` name the entry point of
    :data:`repro.experiments.workloads.WORKLOADS` the jobs were built from,
    so the CLI's ``run`` step can rebuild them on another machine (kwargs
    must be JSON-safe).  ``cache_dir`` is recorded verbatim; point it at a
    shared filesystem and every shard runner attaches the same
    :class:`~repro.cache.DiskStore`.
    """
    if len(jobs) != plan.n_jobs:
        raise ShardError(f"plan covers {plan.n_jobs} jobs, got {len(jobs)}")
    for index, job in enumerate(jobs):
        if job_fingerprint(job) != plan.job_ids[index]:
            raise ShardError(
                f"job {index} ({job.label!r}) does not match the plan fingerprint; "
                "was the job list modified after planning?"
            )
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for shard in range(plan.n_shards):
        manifest = {
            "format": MANIFEST_FORMAT,
            "schema_version": SHARD_SCHEMA_VERSION,
            "plan_fingerprint": plan.fingerprint,
            "shard_index": shard,
            "n_shards": plan.n_shards,
            "n_jobs_total": plan.n_jobs,
            "workload": (
                {"name": workload, "kwargs": dict(workload_kwargs or {})}
                if workload
                else None
            ),
            "cache_dir": cache_dir,
            "jobs": [
                _job_spec(index, jobs[index], plan.job_ids[index])
                for index in plan.indices_for(shard)
            ],
        }
        path = os.path.join(out_dir, manifest_name(shard, plan.n_shards))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def validate_manifest(manifest: dict) -> dict:
    """Structural validation of one manifest document; returns it unchanged.

    Raises
    ------
    ShardError
        On wrong format markers, schema mismatches, out-of-range shard or
        job indices, or duplicate job indices within the manifest.
    """
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise ShardError(f"not a shard manifest (format marker {MANIFEST_FORMAT!r} missing)")
    version = manifest.get("schema_version")
    if version != SHARD_SCHEMA_VERSION:
        raise ShardError(
            f"manifest uses schema {version!r}, this build supports {SHARD_SCHEMA_VERSION}"
        )
    for key in ("plan_fingerprint", "shard_index", "n_shards", "n_jobs_total", "jobs"):
        if key not in manifest:
            raise ShardError(f"manifest is missing required key {key!r}")
    n_shards, n_total = manifest["n_shards"], manifest["n_jobs_total"]
    if not 0 <= manifest["shard_index"] < n_shards:
        raise ShardError(
            f"shard_index {manifest['shard_index']} out of range for {n_shards} shards"
        )
    seen: set[int] = set()
    for spec in manifest["jobs"]:
        for key in ("index", "job_id", "method"):
            if key not in spec:
                raise ShardError(f"manifest job spec is missing required key {key!r}")
        index = spec["index"]
        if not 0 <= index < n_total:
            raise ShardError(f"job index {index} out of range for {n_total} jobs")
        if index in seen:
            raise ShardError(f"manifest lists job index {index} twice")
        seen.add(index)
    return manifest


def load_manifest(path: Union[str, os.PathLike]) -> dict:
    """Read and validate one manifest file."""
    try:
        with open(os.fspath(path), encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise ShardError(f"cannot read manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ShardError(f"manifest {path} is not valid JSON: {exc}") from exc
    return validate_manifest(manifest)


# --------------------------------------------------------------------------- #
# the per-shard runner
# --------------------------------------------------------------------------- #
def run_shard(
    manifest: dict,
    jobs: Sequence[FitJob],
    *,
    engine: Optional[BatchEngine] = None,
    cache: Optional[FitCache] = None,
) -> BatchResult:
    """Execute one manifest's jobs through a :class:`BatchEngine`.

    ``jobs`` is the *full* rebuilt batch (e.g. from the named workload grid
    the manifest references); the runner selects the manifest's subset and
    verifies each selected job's :func:`job_fingerprint` against its spec --
    a drifted workload builder or options encoding fails loudly here instead
    of merging corrupt results later.  Records keep their original batch
    indices, which is what makes the eventual merge order-exact.

    The cache is resolved in precedence order: explicit ``cache`` argument,
    then the engine's own cache, then the manifest's ``cache_dir`` (attached
    as a :class:`~repro.cache.DiskStore`-backed cache).
    """
    validate_manifest(manifest)
    if len(jobs) != manifest["n_jobs_total"]:
        raise ShardError(
            f"manifest plans {manifest['n_jobs_total']} jobs, rebuilt batch has {len(jobs)}"
        )
    engine = engine if engine is not None else BatchEngine()
    if cache is None and engine.cache is None and manifest.get("cache_dir"):
        cache = FitCache.on_disk(manifest["cache_dir"])
    if cache is not None:
        engine = dataclasses.replace(engine, cache=cache)

    indices, subset = [], []
    for spec in manifest["jobs"]:
        index = spec["index"]
        job = jobs[index]
        actual = job_fingerprint(job)
        if actual != spec["job_id"]:
            raise ShardError(
                f"rebuilt job {index} ({job.label!r}) does not match its manifest spec "
                f"({actual[:12]}... != {spec['job_id'][:12]}...); the workload grid "
                "drifted since the plan was written"
            )
        indices.append(index)
        subset.append(job)
    return engine.run(subset, indices=indices)


# --------------------------------------------------------------------------- #
# shard result files
# --------------------------------------------------------------------------- #
def _hex_float(value: float) -> str:
    """Exact textual round-trip for a float (NaN included)."""
    return float(value).hex()


def _record_meta(record: JobRecord) -> dict[str, Any]:
    """JSON-safe half of one record; arrays travel separately in the archive."""
    meta: dict[str, Any] = {
        "index": record.index,
        "label": record.label,
        "method": record.method,
        "tags": dict(record.tags),
        "status": record.status,
        "order": record.order,
        "elapsed_seconds": record.elapsed_seconds,
        "error_vs_data": _hex_float(record.error_vs_data),
        "error_vs_reference": _hex_float(record.error_vs_reference),
        "time_domain": {
            key: _hex_float(value) for key, value in record.time_domain.items()
        },
        "passivity": {
            key: _hex_float(value) for key, value in record.passivity.items()
        },
        "cache_status": record.cache_status,
        "response_hits": int(record.response_hits),
        "response_misses": int(record.response_misses),
        "error_type": record.error_type,
        "error_message": record.error_message,
        "error_traceback": record.error_traceback,
        "result_meta": None,
    }
    return meta


@dataclass(frozen=True)
class ShardResult:
    """One shard's :class:`BatchResult` plus the plan identity it belongs to."""

    plan_fingerprint: str
    shard_index: int
    n_shards: int
    n_jobs_total: int
    result: BatchResult


def write_shard_result(
    path: Union[str, os.PathLike], manifest: dict, result: BatchResult
) -> str:
    """Persist one shard's result as a single ``.npz`` archive; returns ``path``.

    The archive holds the JSON metadata blob (plan identity, per-record
    scalars with exact ``float.hex`` error encoding) plus every successful
    record's numerical payload through the cache serialization
    (:func:`repro.cache.result_to_payload`), so a read-back record is
    bitwise-identical in everything the batch layer compares.  The write is
    atomic (temp file + ``os.replace``), matching the disk-cache discipline.

    Raises
    ------
    ShardError
        If the result's records do not match the manifest's job indices.
    repro.cache.UncacheableResultError
        If a record's result holds metadata without a faithful
        serialization -- such a result cannot ship across machines.
    """
    validate_manifest(manifest)
    planned = sorted(spec["index"] for spec in manifest["jobs"])
    actual = sorted(record.index for record in result.records)
    if planned != actual:
        raise ShardError(
            f"shard result covers indices {actual}, manifest plans {planned}"
        )
    arrays: dict[str, np.ndarray] = {}
    records_meta = []
    for record in result.records:
        meta = _record_meta(record)
        if record.result is not None:
            payload_arrays, payload_meta = result_to_payload(record.result)
            meta["result_meta"] = payload_meta
            for name, array in payload_arrays.items():
                arrays[f"{_RECORD_PREFIX}{record.index:06d}__{name}"] = array
        records_meta.append(meta)
    document = {
        "format": SHARD_RESULT_FORMAT,
        "schema_version": SHARD_SCHEMA_VERSION,
        "payload_schema_version": PAYLOAD_SCHEMA_VERSION,
        "plan_fingerprint": manifest["plan_fingerprint"],
        "shard_index": manifest["shard_index"],
        "n_shards": manifest["n_shards"],
        "n_jobs_total": manifest["n_jobs_total"],
        "executor": result.executor,
        "n_workers": result.n_workers,
        "chunk_size": result.chunk_size,
        "wall_seconds": result.wall_seconds,
        "records": records_meta,
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(document, sort_keys=True).encode(), dtype=np.uint8
    )
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        dir=directory, prefix=os.path.basename(path) + ".tmp", delete=False
    )
    try:
        with handle:
            np.savez_compressed(handle, **arrays)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def _record_from_meta(meta: dict[str, Any], arrays: dict[str, np.ndarray]) -> JobRecord:
    """Rebuild one :class:`JobRecord` from its metadata + payload arrays."""
    result = None
    if meta.get("result_meta") is not None:
        # the shipped payload pins the options by fingerprint, not by object,
        # so the reconstructed result carries no ``metadata["options"]`` entry
        result = payload_to_result(arrays, meta["result_meta"], options=None)
    return JobRecord(
        index=int(meta["index"]),
        label=meta["label"],
        method=meta["method"],
        tags=dict(meta["tags"]),
        status=meta["status"],
        result=result,
        order=meta["order"],
        elapsed_seconds=float(meta["elapsed_seconds"]),
        error_vs_data=float.fromhex(meta["error_vs_data"]),
        error_vs_reference=float.fromhex(meta["error_vs_reference"]),
        time_domain={
            key: float.fromhex(value)
            for key, value in meta.get("time_domain", {}).items()
        },
        passivity={
            key: float.fromhex(value)
            for key, value in meta.get("passivity", {}).items()
        },
        cache_status=meta["cache_status"],
        # absent in archives written before the response cache landed
        response_hits=int(meta.get("response_hits", 0)),
        response_misses=int(meta.get("response_misses", 0)),
        error_type=meta["error_type"],
        error_message=meta["error_message"],
        error_traceback=meta["error_traceback"],
    )


def read_shard_result(path: Union[str, os.PathLike]) -> ShardResult:
    """Load one shard result archive written by :func:`write_shard_result`.

    Unlike the disk cache -- where an unreadable entry is just a miss -- a
    shard result is the *only* copy of that shard's work, so every defect
    (missing metadata, wrong format marker, schema or payload-schema
    mismatch) raises :class:`ShardError`.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as exc:
        raise ShardError(f"cannot read shard result {path}: {exc}") from exc
    if _META_KEY not in arrays:
        raise ShardError(f"shard result {path} has no {_META_KEY} metadata blob")
    try:
        document = json.loads(arrays.pop(_META_KEY).tobytes().decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardError(f"shard result {path} holds corrupt metadata: {exc}") from exc
    if document.get("format") != SHARD_RESULT_FORMAT:
        raise ShardError(f"{path} is not a shard result (format marker missing)")
    if document.get("schema_version") != SHARD_SCHEMA_VERSION:
        raise ShardError(
            f"shard result {path} uses schema {document.get('schema_version')!r}, "
            f"this build supports {SHARD_SCHEMA_VERSION}"
        )
    if document.get("payload_schema_version") != PAYLOAD_SCHEMA_VERSION:
        raise ShardError(
            f"shard result {path} carries payload schema "
            f"{document.get('payload_schema_version')!r}, "
            f"this build supports {PAYLOAD_SCHEMA_VERSION}"
        )

    per_record: dict[int, dict[str, np.ndarray]] = {}
    for name, array in arrays.items():
        prefix, sep, payload_name = name.partition("__")
        try:
            index = int(prefix[len(_RECORD_PREFIX):]) if (
                sep and prefix.startswith(_RECORD_PREFIX)) else None
        except ValueError:
            index = None
        if index is None:
            raise ShardError(f"shard result {path} holds unexpected array {name!r}")
        per_record.setdefault(index, {})[payload_name] = array

    records = []
    for meta in document["records"]:
        try:
            records.append(_record_from_meta(meta, per_record.get(int(meta["index"]), {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(
                f"shard result {path} record {meta.get('index')!r} is corrupt: {exc}"
            ) from exc
    records.sort(key=lambda record: record.index)
    return ShardResult(
        plan_fingerprint=document["plan_fingerprint"],
        shard_index=int(document["shard_index"]),
        n_shards=int(document["n_shards"]),
        n_jobs_total=int(document["n_jobs_total"]),
        result=BatchResult(
            records=tuple(records),
            executor=document["executor"],
            n_workers=int(document["n_workers"]),
            chunk_size=int(document["chunk_size"]),
            wall_seconds=float(document["wall_seconds"]),
        ),
    )


# --------------------------------------------------------------------------- #
# the merge step
# --------------------------------------------------------------------------- #
def merge_shard_results(
    shards: Iterable[Union[ShardResult, str, os.PathLike]],
) -> BatchResult:
    """Reassemble one :class:`BatchResult` from every shard of a planned run.

    Accepts :class:`ShardResult` objects or paths to shard result files, in
    any order.  Validation before any merging happens:

    * all shards must carry the same plan fingerprint, shard count and total
      job count (mixing runs of different plans is the classic silent-merge
      corruption this layer exists to prevent),
    * no shard index may appear twice,
    * the union of record indices must be exactly ``0 .. n_jobs_total - 1``
      -- a missing or duplicated job is an error, never a shorter result.

    The merged result's records are ordered by their original batch index,
    so record order and numerical payloads match the unsharded run exactly;
    the execution envelope reports ``executor="sharded(<n>)"``, the summed
    worker count, and the slowest shard's wall clock (shards run on
    different machines, so the batch finishes when the last one does).
    """
    loaded = [
        shard if isinstance(shard, ShardResult) else read_shard_result(shard)
        for shard in shards
    ]
    if not loaded:
        raise ShardError("no shard results to merge")
    reference = loaded[0]
    seen_shards: set[int] = set()
    for shard in loaded:
        if shard.plan_fingerprint != reference.plan_fingerprint:
            raise ShardError(
                "cannot merge shard results from different plans: "
                f"{shard.plan_fingerprint[:12]}... != {reference.plan_fingerprint[:12]}..."
            )
        if (shard.n_shards, shard.n_jobs_total) != (
            reference.n_shards,
            reference.n_jobs_total,
        ):
            raise ShardError(
                "shard results disagree on the plan shape: "
                f"({shard.n_shards} shards, {shard.n_jobs_total} jobs) vs "
                f"({reference.n_shards} shards, {reference.n_jobs_total} jobs)"
            )
        if shard.shard_index in seen_shards:
            raise ShardError(f"shard index {shard.shard_index} appears twice")
        seen_shards.add(shard.shard_index)

    records: dict[int, JobRecord] = {}
    for shard in loaded:
        for record in shard.result.records:
            if record.index in records:
                raise ShardError(f"job index {record.index} appears in two shards")
            records[record.index] = record
    missing = sorted(set(range(reference.n_jobs_total)) - set(records))
    if missing:
        raise ShardError(
            f"merged run is missing job indices {missing}; "
            f"got {len(loaded)}/{reference.n_shards} shards"
        )
    extra = sorted(set(records) - set(range(reference.n_jobs_total)))
    if extra:
        raise ShardError(f"shard results carry out-of-plan job indices {extra}")
    ordered = tuple(records[index] for index in sorted(records))
    return BatchResult(
        records=ordered,
        executor=f"sharded({reference.n_shards})",
        n_workers=sum(shard.result.n_workers for shard in loaded),
        chunk_size=0,
        wall_seconds=max(shard.result.wall_seconds for shard in loaded),
    )
