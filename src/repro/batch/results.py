"""Aggregated results of a batch run: tables, selection helpers, JSON export.

The :class:`BatchResult` is the store every batch consumer works against: the
benchmarks render its summary table, the CI artifact step serialises it with
:meth:`BatchResult.save_json`, and sweep analyses filter records by tag.  The
JSON schema (``schema_version`` 5: version 4 plus the per-record
``responses`` hit/miss tally and the batch-level response-cache counters;
version 4 added the per-record ``passivity`` certificate dict; version 3 the
``time_domain`` metric dict) is deliberately small and stable -- per-record
scalars plus batch-level aggregates -- so perf-regression gates can diff
exports across commits.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.batch.jobs import JobRecord

__all__ = ["BatchResult", "numerical_differences", "comparable_dict", "comparable_json"]

SCHEMA_VERSION = 5


def _json_safe(value):
    """Map non-finite floats (e.g. inf-valued tags) to ``None`` recursively.

    Keeps the export strictly RFC-valid: ``json.dumps`` would otherwise emit
    bare ``NaN`` / ``Infinity`` tokens that downstream parsers reject.
    """
    if isinstance(value, dict):
        return {key: _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def numerical_differences(reference: "BatchResult", other: "BatchResult") -> list[str]:
    """Describe every numerical-payload mismatch between two batch runs.

    This is the engine's cross-executor determinism contract made executable:
    an empty list means the two runs are bitwise-identical in everything but
    timing (record identity/order, model order, system matrices, reference
    errors).  The tests and benchmarks both enforce equivalence through this
    one helper so the contract cannot drift between them.
    """
    if len(reference.records) != len(other.records):
        return [f"record count differs: {len(reference.records)} vs {len(other.records)}"]
    diffs = []
    for a, b in zip(reference.records, other.records):
        if (a.index, a.label, a.status) != (b.index, b.label, b.status):
            diffs.append(f"record identity differs: {(a.index, a.label, a.status)} "
                         f"vs {(b.index, b.label, b.status)}")
            continue
        if a.order != b.order:
            diffs.append(f"{a.label}: order {a.order} vs {b.order}")
        if a.ok and b.ok:
            for attribute in ("E", "A", "B", "C", "D"):
                if not np.array_equal(getattr(a.result.system, attribute),
                                      getattr(b.result.system, attribute)):
                    diffs.append(f"{a.label}: system matrix {attribute} differs")
        for field in ("error_vs_data", "error_vs_reference"):
            err_a, err_b = getattr(a, field), getattr(b, field)
            if not (math.isnan(err_a) and math.isnan(err_b)) and err_a != err_b:
                diffs.append(f"{a.label}: {field} {err_a!r} vs {err_b!r}")
        if a.time_domain != b.time_domain:
            diffs.append(
                f"{a.label}: time_domain {a.time_domain!r} vs {b.time_domain!r}"
            )
        if a.passivity != b.passivity:
            diffs.append(
                f"{a.label}: passivity {a.passivity!r} vs {b.passivity!r}"
            )
    return diffs


def comparable_dict(result: "BatchResult") -> dict[str, Any]:
    """The :meth:`BatchResult.to_dict` export with execution metadata normalised.

    Two equivalent batch runs can never agree on wall-clock times, and a
    merged sharded run legitimately reports a different executor / worker
    count / chunk size than the single-process reference -- those fields
    describe *how* the batch ran, not *what* it computed.  This helper zeroes
    exactly that volatile envelope (``executor``, ``n_workers``,
    ``chunk_size``, ``wall_seconds``, ``total_fit_seconds``, the per-job
    ``elapsed_seconds`` and the response-cache hit/miss tallies -- a serial
    run shares one response cache batch-wide while each process worker holds
    its own, so the hit/miss *split* depends on scheduling even though the
    values never do) and keeps everything else byte-comparable: record
    identity and order, model orders, error values, cache hit/miss statuses
    and counters.  The sharding differential tests and the CI sharded-smoke
    step compare runs through :func:`comparable_json`, so "the merged JSON
    export is identical to the unsharded one" is a single string equality.
    """
    document = result.to_dict()
    document["executor"] = ""
    document["n_workers"] = 0
    document["chunk_size"] = 0
    document["wall_seconds"] = 0.0
    document["total_fit_seconds"] = 0.0
    document["n_response_hits"] = 0
    document["n_response_misses"] = 0
    for job in document["jobs"]:
        job["elapsed_seconds"] = 0.0
        job["responses"] = {"hits": 0, "misses": 0}
    return document


def comparable_json(result: "BatchResult") -> str:
    """The normalised export of :func:`comparable_dict` as canonical JSON."""
    return json.dumps(_json_safe(comparable_dict(result)), indent=2, sort_keys=True,
                      allow_nan=False)


@dataclass(frozen=True)
class BatchResult:
    """Records of one batch run plus how it was executed.

    Attributes
    ----------
    records:
        One :class:`~repro.batch.jobs.JobRecord` per submitted job, in
        submission order.
    executor, n_workers, chunk_size:
        How the batch was run (see :class:`~repro.batch.engine.BatchEngine`).
    wall_seconds:
        End-to-end wall-clock time of the batch.
    """

    records: tuple[JobRecord, ...]
    executor: str = "serial"
    n_workers: int = 1
    chunk_size: int = 0
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    @property
    def n_jobs(self) -> int:
        """Number of submitted jobs."""
        return len(self.records)

    @property
    def ok_records(self) -> tuple[JobRecord, ...]:
        """Records of the jobs that succeeded."""
        return tuple(record for record in self.records if record.ok)

    @property
    def failures(self) -> tuple[JobRecord, ...]:
        """Records of the jobs that failed."""
        return tuple(record for record in self.records if not record.ok)

    @property
    def n_ok(self) -> int:
        """Number of successful jobs."""
        return len(self.ok_records)

    @property
    def n_failed(self) -> int:
        """Number of failed jobs."""
        return len(self.failures)

    @property
    def total_fit_seconds(self) -> float:
        """Sum of the per-job times (the serial-equivalent cost of the batch)."""
        return float(sum(record.elapsed_seconds for record in self.records))

    @property
    def n_cache_hits(self) -> int:
        """Jobs replayed from the fit cache (0 when the batch ran uncached)."""
        return sum(1 for record in self.records if record.cache_status == "hit")

    @property
    def n_cache_misses(self) -> int:
        """Jobs that consulted the fit cache but had to compute."""
        return sum(1 for record in self.records if record.cache_status == "miss")

    @property
    def used_cache(self) -> bool:
        """Whether any job of this batch went through a fit cache."""
        return any(record.cache_status is not None for record in self.records)

    @property
    def n_response_hits(self) -> int:
        """Cross-job response-cache hits summed over the records."""
        return sum(record.response_hits for record in self.records)

    @property
    def n_response_misses(self) -> int:
        """Cross-job response-cache misses summed over the records."""
        return sum(record.response_misses for record in self.records)

    @property
    def used_responses(self) -> bool:
        """Whether any job of this batch consulted a response cache."""
        return any(
            record.response_hits or record.response_misses for record in self.records
        )

    def raise_failures(self, *, context: str = "batch job") -> "BatchResult":
        """Fail-fast helper: raise on the first failed record, else return ``self``.

        The error message carries the captured exception type, message and
        full worker-side traceback, so sweeps that expect clean runs (the
        experiment drivers) keep the debugging context per-job capture saved.
        """
        if self.n_failed:
            failure = self.failures[0]
            tags = f" {dict(failure.tags)}" if failure.tags else ""
            raise RuntimeError(
                f"{context} {failure.label!r}{tags} failed: "
                f"{failure.error_type}: {failure.error_message}\n"
                f"{failure.error_traceback}"
            )
        return self

    def record_for(self, label: str) -> JobRecord:
        """The first record with the given label."""
        for record in self.records:
            if record.label == label:
                return record
        raise KeyError(f"no record labelled {label!r}")

    def with_tag(self, key: str, value: Any = None) -> tuple[JobRecord, ...]:
        """Records whose tags contain ``key`` (and equal ``value`` when given)."""
        return tuple(
            record
            for record in self.records
            if key in record.tags and (value is None or record.tags[key] == value)
        )

    def best(
        self, key: Callable[[JobRecord], float] = lambda r: r.error_vs_reference
    ) -> JobRecord:
        """The successful record minimising ``key`` (default: reference error)."""
        candidates = [r for r in self.ok_records if not math.isnan(key(r))]
        if not candidates:
            raise ValueError("no successful record with a finite key value")
        return min(candidates, key=key)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary_table(self, *, title: str = "") -> str:
        """Aligned plain-text table of every record (the batch report)."""
        # imported here: repro.experiments (the package) consumes repro.batch
        from repro.experiments.reporting import format_table

        with_cache = self.used_cache
        with_time_domain = any(record.time_domain for record in self.records)
        with_passivity = any(record.passivity for record in self.records)
        rows = []
        for record in self.records:
            row = [
                record.index,
                record.label,
                record.method,
                record.status,
                record.order if record.order is not None else "-",
                record.elapsed_seconds,
                record.error_vs_reference
                if not math.isnan(record.error_vs_reference)
                else "-",
            ]
            if with_time_domain:
                row.append(record.time_domain.get("impulse_l2", "-"))
                row.append(record.time_domain.get("ringing_ratio", "-"))
            if with_passivity:
                row.append(record.passivity.get("worst_margin", "-"))
                row.append(record.passivity.get("perturbation_norm", "-"))
            if with_cache:
                row.append(record.cache_status or "-")
            rows.append(row)
        heading = title or (
            f"batch: {self.n_ok}/{self.n_jobs} ok, executor={self.executor} "
            f"(workers={self.n_workers}), wall={self.wall_seconds:.3f}s"
            + (f", cache hits={self.n_cache_hits}/{self.n_jobs}" if with_cache else "")
            + (
                f", response hits={self.n_response_hits}/"
                f"{self.n_response_hits + self.n_response_misses}"
                if self.used_responses
                else ""
            )
        )
        columns = ["#", "job", "method", "status", "order", "time (s)", "error vs reference"]
        if with_time_domain:
            columns.extend(["impulse L2", "ringing"])
        if with_passivity:
            columns.extend(["passivity margin", "perturbation"])
        if with_cache:
            columns.append("cache")
        return format_table(columns, rows, title=heading)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary of the whole batch."""
        return {
            "schema_version": SCHEMA_VERSION,
            "executor": self.executor,
            "n_workers": self.n_workers,
            "chunk_size": self.chunk_size,
            "n_jobs": self.n_jobs,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_cache_hits": self.n_cache_hits,
            "n_cache_misses": self.n_cache_misses,
            "n_response_hits": self.n_response_hits,
            "n_response_misses": self.n_response_misses,
            "wall_seconds": self.wall_seconds,
            "total_fit_seconds": self.total_fit_seconds,
            "jobs": [record.to_dict() for record in self.records],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The :meth:`to_dict` payload serialised as strict (RFC-valid) JSON."""
        return json.dumps(_json_safe(self.to_dict()), indent=indent, sort_keys=True,
                          allow_nan=False)

    def save_json(self, path: str) -> str:
        """Write the JSON export to ``path`` (directories created) and return it."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path
