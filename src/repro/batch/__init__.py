"""Batch macromodeling engine.

Every production workload in the ROADMAP -- port sweeps, Monte-Carlo noise
studies, netlist families, ablation grids -- fits many datasets with many
method configurations.  This package turns such a sweep into data:

* :class:`~repro.batch.jobs.FitJob` -- one fit, described declaratively
  (dataset + method + options + tags), picklable so it can ship to workers,
* :class:`~repro.batch.engine.BatchEngine` -- runs a job list through a
  pluggable executor (``serial`` / ``thread`` / ``process``) with
  deterministic chunking and per-job error capture,
* :class:`~repro.batch.results.BatchResult` -- ordered records with aggregate
  tables and a stable JSON export for CI artifacts and regression gates.

The engine dispatches through :func:`repro.core.run_fit`, the same entry
point the single-fit path uses, so batch and interactive fits are guaranteed
to run identical code::

    from repro.batch import BatchEngine, FitJob

    jobs = [FitJob(data, method="mfti", options=MftiOptions(block_size=t),
                   tags={"t": t}, reference=validation)
            for t in (1, 2, 3)]
    result = BatchEngine(executor="process", max_workers=4).run(jobs)
    print(result.summary_table())
    result.save_json("sweep.json")

Pass a shared :class:`~repro.cache.FitCache` (``BatchEngine(cache=...)``) and
repeated jobs -- across chunks, executors and whole re-runs -- replay from
the content-addressed fit cache instead of recomputing; per-job hit/miss
statuses land on the records and the batch-level counters in the table
heading and the JSON export.

Batches also scale *across machines*: :mod:`repro.batch.sharding` plans a
deterministic assignment of jobs to shards (:class:`ShardPlan`), ships each
shard as a versioned JSON manifest, runs it through a regular engine on any
machine, and merges the shard results back into one :class:`BatchResult`
that is bitwise-identical to the single-process run.  The
``python -m repro.batch.shard`` CLI drives the plan / run / merge cycle.
"""

from repro.batch.engine import EXECUTORS, BatchEngine, contiguous_chunks
from repro.batch.jobs import FitJob, JobRecord, run_job
from repro.batch.results import (
    BatchResult,
    comparable_dict,
    comparable_json,
    numerical_differences,
)
from repro.batch.sharding import (
    ShardError,
    ShardPlan,
    ShardResult,
    job_fingerprint,
    load_manifest,
    merge_shard_results,
    read_shard_result,
    run_shard,
    write_manifests,
    write_shard_result,
)

__all__ = [
    "EXECUTORS",
    "BatchEngine",
    "contiguous_chunks",
    "FitJob",
    "JobRecord",
    "run_job",
    "BatchResult",
    "numerical_differences",
    "comparable_dict",
    "comparable_json",
    "ShardError",
    "ShardPlan",
    "ShardResult",
    "job_fingerprint",
    "load_manifest",
    "merge_shard_results",
    "read_shard_result",
    "run_shard",
    "write_manifests",
    "write_shard_result",
]
