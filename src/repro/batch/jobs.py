"""Job specifications and per-job execution for the batch layer.

A :class:`FitJob` is a self-contained description of one macromodel fit --
dataset, method name, options, free-form tags -- that can be shipped to a
worker process (everything it holds is picklable).  :func:`run_job` executes
one job through the shared :func:`repro.core.run_fit` entry point and folds
the outcome, successful or not, into a :class:`JobRecord`: a failing job
yields a record carrying the exception instead of raising, so one bad netlist
never kills a sweep.
"""

from __future__ import annotations

import math
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.cache.interning import ResponseTally
from repro.core._pipeline import frontend_spec, run_fit
from repro.core.options import InterpolationOptions
from repro.core.results import MacromodelResult
from repro.data.dataset import FrequencyData
from repro.metrics.errors import model_aggregate_error
from repro.metrics.timedomain import TimeDomainSpec, time_domain_metrics
from repro.vectorfitting.enforcement import PassivitySpec, passivity_metrics

__all__ = ["FitJob", "JobRecord", "run_job"]


@dataclass(frozen=True)
class FitJob:
    """One unit of batch work: fit one dataset with one method configuration.

    Attributes
    ----------
    data:
        The frequency samples to interpolate.
    method:
        Registered front-end name (``"mfti"``, ``"vfti"``, ``"mfti-recursive"``).
    options:
        Options object matching the method; ``None`` uses the method defaults.
    label:
        Human-readable identifier used in reports (defaults to the method name
        plus the dataset label).
    tags:
        Free-form key/value metadata carried through to the record and the
        JSON export (e.g. ``{"workload": "pdn", "test": "test1"}``).
    reference:
        Optional validation data; when given, the record includes the model's
        aggregate error against it.
    time_domain:
        Optional :class:`~repro.metrics.timedomain.TimeDomainSpec`; when given
        (a reference is then required), the record carries the spectral
        time-domain validation metrics computed worker-side.
    passivity:
        Optional :class:`~repro.vectorfitting.enforcement.PassivitySpec`;
        when given (a reference is then required, for the certificate's
        hold-out error delta), the fitted model is passivity-enforced
        worker-side and the record carries the certificate columns.  A model
        that cannot be certified fails the job loudly
        (:class:`~repro.vectorfitting.enforcement.EnforcementFailed` in the
        record) instead of emitting an uncertified row.
    """

    data: FrequencyData
    method: str = "mfti"
    options: Optional[InterpolationOptions] = None
    label: str = ""
    tags: dict[str, Any] = field(default_factory=dict)
    reference: Optional[FrequencyData] = None
    time_domain: Optional[TimeDomainSpec] = None
    passivity: Optional[PassivitySpec] = None

    def __post_init__(self):
        spec = frontend_spec(self.method)  # raises on unknown method names
        if self.options is not None and not isinstance(self.options, spec.options_type):
            raise TypeError(
                f"method {self.method!r} expects {spec.options_type.__name__} options, "
                f"got {type(self.options).__name__}"
            )
        if isinstance(getattr(self.options, "direction_seed", None), np.random.Generator):
            # a live generator's state advances as jobs consume it, and each
            # executor partitions that consumption differently (serial: one
            # stream; process: one snapshot per chunk; thread: racy shared
            # mutation) -- silently breaking cross-executor determinism
            raise TypeError(
                "FitJob options must carry an integer direction_seed (or None), "
                "not a live numpy.random.Generator: shared generator state would "
                "make results depend on the executor"
            )
        if self.time_domain is not None:
            if not isinstance(self.time_domain, TimeDomainSpec):
                raise TypeError(
                    f"time_domain must be a TimeDomainSpec, got "
                    f"{type(self.time_domain).__name__}"
                )
            if self.reference is None:
                raise ValueError(
                    "time_domain metrics compare the model against validation "
                    "data: a job with a time_domain spec needs a reference"
                )
        if self.passivity is not None:
            if not isinstance(self.passivity, PassivitySpec):
                raise TypeError(
                    f"passivity must be a PassivitySpec, got "
                    f"{type(self.passivity).__name__}"
                )
            if self.reference is None:
                raise ValueError(
                    "the passivity certificate's error delta is measured "
                    "against validation data: a job with a passivity spec "
                    "needs a reference"
                )
        if not self.label:
            suffix = f" [{self.data.label}]" if self.data.label else ""
            object.__setattr__(self, "label", f"{self.method}{suffix}")


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one :class:`FitJob`, successful or failed.

    Attributes
    ----------
    index:
        Position of the job in the submitted batch (records are returned in
        this order regardless of executor scheduling).
    label, method, tags:
        Copied from the job.
    status:
        ``"ok"`` or ``"failed"``.
    result:
        The :class:`~repro.core.results.MacromodelResult` (``None`` on failure).
    order:
        Order of the recovered model (``None`` on failure).
    elapsed_seconds:
        Wall-clock time spent on this job (including the failure path).
    error_vs_data:
        Aggregate error of the model against the job's own (possibly noisy)
        measurement data -- the paper's "error vs measurement" column
        (``nan`` on failure).
    error_vs_reference:
        Aggregate error against ``job.reference`` (``nan`` when no reference
        was given or the job failed).
    time_domain:
        Spectral time-domain validation columns
        (:data:`~repro.metrics.timedomain.TIME_DOMAIN_METRIC_KEYS`) when the
        job carried a :class:`~repro.metrics.timedomain.TimeDomainSpec`;
        empty otherwise (and on failure).
    passivity:
        Passivity-certificate columns
        (:data:`~repro.vectorfitting.enforcement.PASSIVITY_METRIC_KEYS`)
        when the job carried a
        :class:`~repro.vectorfitting.enforcement.PassivitySpec`; empty
        otherwise (and on failure).
    cache_status:
        ``"hit"`` / ``"miss"`` / ``"skipped"`` when the batch ran with a
        :class:`~repro.cache.FitCache`, ``None`` otherwise.  Carried on the
        record (not only on the cache object) so the counters survive the
        process executor, whose workers hold private cache copies.
    response_hits, response_misses:
        Cross-job response-cache consultations made while evaluating this
        job (reference-norm SVDs and model sweeps; zero when the batch ran
        without a response cache).  The *values* never depend on these
        counters -- a hit returns exactly what the miss computed -- and the
        split between hits and misses depends on executor scheduling, so
        comparable exports zero them like the timing envelope.
    error_type, error_message, error_traceback:
        Exception details of a failed job (``None`` on success).

    Both errors are computed worker-side by :func:`run_job`, so pooled
    executors parallelise the model evaluations along with the fits.
    """

    index: int
    label: str
    method: str
    tags: dict[str, Any]
    status: str
    result: Optional[MacromodelResult] = None
    order: Optional[int] = None
    elapsed_seconds: float = 0.0
    error_vs_data: float = float("nan")
    error_vs_reference: float = float("nan")
    time_domain: dict[str, float] = field(default_factory=dict)
    passivity: dict[str, float] = field(default_factory=dict)
    cache_status: Optional[str] = None
    response_hits: int = 0
    response_misses: int = 0
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    error_traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the fit succeeded."""
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary of this record (numerical payloads excluded)."""
        return {
            "index": self.index,
            "label": self.label,
            "method": self.method,
            "tags": dict(self.tags),
            "status": self.status,
            "order": self.order,
            "elapsed_seconds": self.elapsed_seconds,
            "error_vs_data": (
                None if math.isnan(self.error_vs_data) else self.error_vs_data
            ),
            "error_vs_reference": (
                None if math.isnan(self.error_vs_reference) else self.error_vs_reference
            ),
            "time_domain": dict(self.time_domain),
            "passivity": dict(self.passivity),
            "cache": self.cache_status,
            "responses": {"hits": self.response_hits, "misses": self.response_misses},
            "error": (
                None
                if self.ok
                else {"type": self.error_type, "message": self.error_message}
            ),
        }


def run_job(index: int, job: FitJob, cache=None, *, backend=None, responses=None) -> JobRecord:
    """Execute one job, capturing any exception into the returned record.

    This is a module-level function so the process backend can pickle it; it
    is the only place batch work actually calls into the fitting code.  With
    a :class:`~repro.cache.FitCache` the fit dispatches through the cached
    path and the record carries the per-job hit/miss status; a failing job
    never populates the cache.

    ``backend`` installs a :func:`repro.backends.use_backend` scope around
    the job's execution so every kernel call resolves it without signature
    changes in the fit front-ends; an unavailable backend fails the job
    (captured in the record) rather than the batch.  The backend never
    enters the job fingerprint: it is an execution detail.

    ``responses`` optionally supplies a batch-shared
    :class:`~repro.cache.ResponseCache`: the model sweep and the
    reference-norm SVDs behind ``error_vs_data``/``error_vs_reference``,
    ``time_domain`` and the passivity certificate are then memoized across
    jobs by ``(system fingerprint, grid fingerprint)`` / dataset
    fingerprint, and the record carries this job's hit/miss tally.  Cached
    values are what the direct computation produces, so results are
    bitwise-identical with or without it.
    """
    from repro.backends import use_backend

    started = time.perf_counter()
    cache_status: Optional[str] = None
    tally = ResponseTally(responses) if responses is not None else None
    try:
        with use_backend(backend):
            fit_key: Optional[str] = None
            if cache is not None:
                from repro.cache.fitcache import fit_with_cache

                result, cache_status, fit_key = fit_with_cache(
                    job.data, method=job.method, options=job.options, cache=cache
                )
            else:
                result = run_fit(job.data, method=job.method, options=job.options)

            if tally is not None and hasattr(result.system, "prime_evaluation_plan"):
                # Cached sweep values must be pure functions of (system
                # fingerprint, grid fingerprint): a hit on the fit-grid sweep
                # would otherwise leave this system's lazily-built evaluation
                # plan to be seeded by whichever grid misses next, and the
                # plan's shift depends on the seeding grid.  Pinning the plan
                # to the fit grid -- what the first uncached sweep would have
                # built -- keeps miss computations bitwise identical no
                # matter which hits preceded them (or on which worker).
                result.system.prime_evaluation_plan(job.data.frequencies_hz)

            def evaluate(data):
                """Aggregate error vs ``data``, via the response cache if on."""
                if tally is None:
                    return result.aggregate_error(data)
                return model_aggregate_error(
                    result.system,
                    data,
                    response=tally.model_sweep(result.system, data),
                    norms=tally.reference_norms(data),
                )

            if fit_key is not None:
                # memoized evaluations: on warm sweeps the error evaluations
                # dominate the wall clock, not the (skipped) fits.  The
                # response-cache sweep only runs on an evaluation-memo miss.
                error_vs_data = cache.cached_aggregate_error(
                    fit_key, result, job.data, compute=lambda: evaluate(job.data)
                )
                error_vs_reference = (
                    cache.cached_aggregate_error(
                        fit_key, result, job.reference, compute=lambda: evaluate(job.reference)
                    )
                    if job.reference is not None
                    else float("nan")
                )
            else:
                error_vs_data = evaluate(job.data)
                error_vs_reference = (
                    evaluate(job.reference) if job.reference is not None else float("nan")
                )
            time_domain = (
                time_domain_metrics(
                    result.system,
                    job.reference,
                    job.time_domain,
                    model_samples=(
                        tally.model_sweep(result.system, job.reference)
                        if tally is not None
                        else None
                    ),
                )
                if job.time_domain is not None
                else {}
            )
            passivity = (
                passivity_metrics(
                    result.system,
                    job.data,
                    job.passivity,
                    reference=job.reference,
                    responses=tally,
                )
                if job.passivity is not None
                else {}
            )
        return JobRecord(
            index=index,
            label=job.label,
            method=job.method,
            tags=dict(job.tags),
            status="ok",
            result=result,
            order=result.order,
            elapsed_seconds=time.perf_counter() - started,
            error_vs_data=error_vs_data,
            error_vs_reference=error_vs_reference,
            time_domain=time_domain,
            passivity=passivity,
            cache_status=cache_status,
            response_hits=tally.hits if tally is not None else 0,
            response_misses=tally.misses if tally is not None else 0,
        )
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        return JobRecord(
            index=index,
            label=job.label,
            method=job.method,
            tags=dict(job.tags),
            status="failed",
            elapsed_seconds=time.perf_counter() - started,
            cache_status=cache_status,
            response_hits=tally.hits if tally is not None else 0,
            response_misses=tally.misses if tally is not None else 0,
            error_type=type(exc).__name__,
            error_message=str(exc),
            error_traceback=traceback.format_exc(),
        )
