"""The batch engine: run many fit jobs through a pluggable executor.

All ROADMAP-scale workloads -- port sweeps, Monte-Carlo noise studies, netlist
families, ablation grids -- are embarrassingly parallel across datasets, so
the engine's job is simple and strict:

* **pluggable executors** -- ``"serial"`` (plain loop, the reference),
  ``"thread"`` (``ThreadPoolExecutor``; the heavy lifting is BLAS/LAPACK,
  which releases the GIL) and ``"process"`` (``ProcessPoolExecutor``; full
  isolation, jobs and results travel by pickle),
* **deterministic chunking** -- jobs are split into contiguous chunks in
  submission order and records are re-assembled in that order, so the output
  is identical (bitwise, for the numerical payload) no matter which executor
  ran the batch or in which order chunks finished.  The guarantee holds for
  deterministic jobs; :class:`~repro.batch.jobs.FitJob` therefore rejects
  live ``numpy.random.Generator`` seeds (use an integer seed), and jobs with
  ``direction_kind="random"`` and ``direction_seed=None`` are nondeterministic
  on *every* backend, serial included,
* **per-job error capture** -- a failing job is recorded, never raised, so one
  bad dataset cannot abort the sweep.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.backends import BACKEND_NAMES, ENV_VARIABLE
from repro.batch.jobs import FitJob, JobRecord, run_job
from repro.batch.results import BatchResult
from repro.cache.fitcache import FitCache
from repro.cache.interning import DatasetPool, JobTable, ResponseCache, SharedDatasetArena
from repro.cache.stores import MemoryStore

__all__ = ["BatchEngine", "EXECUTORS", "contiguous_chunks"]

EXECUTORS = ("serial", "thread", "process")


def contiguous_chunks(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into contiguous chunks of at most ``size`` elements.

    The one deterministic split rule of the batch layer: the engine chunks
    (index, job) pairs for its executors through it, and the shard planner
    (:mod:`repro.batch.sharding`) chunks the hash-ordered job list into
    per-machine shards through the very same function -- so "a shard" is by
    construction nothing more than a coarser engine chunk.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [list(items[start:start + size]) for start in range(0, len(items), size)]


def _run_chunk(
    chunk: Sequence[tuple[int, FitJob]], cache=None, backend=None, responses=None
) -> list[JobRecord]:
    """Run one contiguous chunk of (index, job) pairs (worker-side entry point).

    ``backend`` travels as a *name* (picklable for process workers) and is
    installed per job by :func:`~repro.batch.jobs.run_job`, so thread/process
    workers resolve it in their own context.  ``responses`` is the
    batch-shared :class:`~repro.cache.ResponseCache` (serial and thread
    executors share one across chunks; process workers hold worker-local
    ones set up by the pool initializer).
    """
    return [
        run_job(index, job, cache, backend=backend, responses=responses)
        for index, job in chunk
    ]


#: Per-worker state for the process executor, installed once per worker by
#: :func:`_pool_initializer` instead of travelling with every chunk: the
#: (stripped) fit cache and backend name, a worker-persistent
#: :class:`~repro.cache.DatasetPool` (later chunks resolve dataset refs
#: without reconstructing) and the worker's :class:`~repro.cache.ResponseCache`.
_WORKER_STATE: dict = {}


def _pool_initializer(cache, backend, use_responses: bool) -> None:
    """One-time process-worker setup (runs in the worker, once per worker)."""
    _WORKER_STATE["cache"] = cache
    _WORKER_STATE["backend"] = backend
    _WORKER_STATE["pool"] = DatasetPool()
    _WORKER_STATE["responses"] = ResponseCache() if use_responses else None


def _run_packed_chunk(table: JobTable) -> list[JobRecord]:
    """Worker-side entry point for the process executor.

    The chunk arrives as a :class:`~repro.cache.JobTable` -- unique datasets
    once (pickled or as shared-memory descriptors), jobs as fingerprint
    refs -- and everything else comes from the worker state installed by
    :func:`_pool_initializer`.
    """
    chunk = table.unpack(pool=_WORKER_STATE.get("pool"))
    return _run_chunk(
        chunk,
        _WORKER_STATE.get("cache"),
        _WORKER_STATE.get("backend"),
        _WORKER_STATE.get("responses"),
    )


@dataclass(frozen=True)
class BatchEngine:
    """Runs a batch of :class:`~repro.batch.jobs.FitJob` through an executor.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Worker count for the pooled executors; ``None`` uses the CPU count.
    chunk_size:
        Jobs per submitted chunk; ``None`` picks ``ceil(n / (4 * workers))``
        so each worker sees a few chunks (cheap load balancing) while keeping
        per-chunk overhead low.  Chunking is deterministic: the same jobs and
        chunk size always produce the same chunks.
    cache:
        Optional shared :class:`~repro.cache.FitCache`: every job dispatches
        through the cached fit path, so repeated jobs -- across chunks,
        executors and whole re-runs -- replay instead of recomputing.  Use a
        :class:`~repro.cache.DiskStore`-backed cache with the ``process``
        executor (workers hold private copies of a memory store); per-job
        hit/miss statuses come back on the records either way.
    backend:
        Optional :mod:`repro.backends` array-backend name the kernel
        modules run on while executing jobs (``"numpy"``, ``"cupy"``,
        ``"torch"``).  ``None`` lets kernels resolve ``REPRO_ARRAY_BACKEND``
        then ``numpy``.  The backend is an execution detail: it never enters
        job fingerprints or serve request keys, and the ``numpy`` backend is
        bitwise-identical to not selecting one.
    response_cache:
        Whether to share a cross-job :class:`~repro.cache.ResponseCache`
        across the batch (default on): reference-norm SVDs are memoized per
        unique validation dataset and model sweeps per ``(system, grid)``
        fingerprint pair, so jobs sharing a reference reuse one evaluation.
        Values are bitwise-identical either way; per-record hit/miss tallies
        land on the records.  Serial and thread executors share one cache
        per :meth:`run`; each process worker holds its own.
    shared_memory:
        Ship the unique datasets of each process-executor chunk through
        ``multiprocessing.shared_memory`` instead of pickling them into the
        chunk payload (reconstruction is fingerprint-verified, creation
        failures fall back to pickling per dataset).  No effect on the
        serial/thread executors, which share memory by construction.
    """

    executor: str = "serial"
    max_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    cache: Optional[FitCache] = None
    backend: Optional[str] = None
    response_cache: bool = True
    shared_memory: bool = False

    def __post_init__(self):
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 when given")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES} when given, "
                f"got {self.backend!r}"
            )

    @classmethod
    def from_env(cls, default: str = "serial") -> "BatchEngine":
        """Build an engine from ``REPRO_BATCH_EXECUTOR`` / ``_WORKERS`` / ``_CHUNK``.

        Lets benchmarks and scripts switch backend without code changes, e.g.
        ``REPRO_BATCH_EXECUTOR=process REPRO_BATCH_WORKERS=4 pytest benchmarks/``.
        The array backend is likewise picked up from ``REPRO_ARRAY_BACKEND``;
        ``REPRO_BATCH_SHM=1`` opts the process executor into shared-memory
        dataset shipping and ``REPRO_BATCH_RESPONSES=0`` disables the
        cross-job response cache.
        """
        def int_env(name: str):
            value = os.environ.get(name)
            if not value:
                return None
            try:
                return int(value)
            except ValueError:
                raise ValueError(f"{name} must be an integer, got {value!r}") from None

        def bool_env(name: str, default: bool) -> bool:
            value = os.environ.get(name)
            if value is None or value == "":
                return default
            lowered = value.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"{name} must be a boolean flag, got {value!r}")

        return cls(
            executor=os.environ.get("REPRO_BATCH_EXECUTOR", default),
            max_workers=int_env("REPRO_BATCH_WORKERS"),
            chunk_size=int_env("REPRO_BATCH_CHUNK"),
            backend=os.environ.get(ENV_VARIABLE) or None,
            response_cache=bool_env("REPRO_BATCH_RESPONSES", True),
            shared_memory=bool_env("REPRO_BATCH_SHM", False),
        )

    @classmethod
    def from_config(cls, config: Optional[dict]) -> "BatchEngine":
        """Build an engine from the flat config dict the serve protocol uses.

        Recognised keys (all optional): ``executor``, ``max_workers``,
        ``chunk_size``, ``backend`` (array-backend name for the kernel
        modules), ``response_cache`` / ``shared_memory`` (bools, see the
        class attributes), ``cache_dir`` (path -> disk-backed
        :class:`~repro.cache.FitCache`) and ``memory_cache`` (bool -> fresh
        memory-backed cache).  The same dict configures the HTTP service, the
        shard dispatcher and direct-Python callers, so one engine description
        travels every path.  Unknown keys raise rather than being ignored.
        """
        config = dict(config or {})
        cache_dir = config.pop("cache_dir", None)
        memory_cache = bool(config.pop("memory_cache", False))
        if cache_dir is not None and memory_cache:
            raise ValueError("engine config cannot set both cache_dir and memory_cache")
        kwargs = {}
        for key in ("executor", "max_workers", "chunk_size", "backend"):
            if key in config:
                kwargs[key] = config.pop(key)
        for key in ("response_cache", "shared_memory"):
            if key in config:
                kwargs[key] = bool(config.pop(key))
        if config:
            raise ValueError(
                f"unknown engine config keys: {', '.join(sorted(config))}"
            )
        cache = None
        if cache_dir is not None:
            cache = FitCache.on_disk(cache_dir)
        elif memory_cache:
            cache = FitCache()
        return cls(cache=cache, **kwargs)

    def to_config(self) -> dict:
        """The flat config dict :meth:`from_config` rebuilds this engine from.

        The cache is described structurally (``cache_dir`` for disk stores,
        ``memory_cache`` for memory stores), not by contents -- a rebuilt
        memory-backed engine starts cold.
        """
        config: dict = {"executor": self.executor}
        if self.max_workers is not None:
            config["max_workers"] = self.max_workers
        if self.chunk_size is not None:
            config["chunk_size"] = self.chunk_size
        if self.backend is not None:
            config["backend"] = self.backend
        if not self.response_cache:
            config["response_cache"] = False
        if self.shared_memory:
            config["shared_memory"] = True
        if self.cache is not None:
            store = self.cache.store
            if isinstance(store, MemoryStore):
                config["memory_cache"] = True
            else:
                config["cache_dir"] = str(store.root)
        return config

    @property
    def n_workers(self) -> int:
        """Resolved worker count (1 for the serial executor)."""
        if self.executor == "serial":
            return 1
        return self.max_workers or os.cpu_count() or 1

    def resolve_chunk_size(self, n_jobs: int) -> int:
        """The chunk size actually used for a batch of ``n_jobs``."""
        if self.chunk_size is not None:
            return self.chunk_size
        workers = max(1, self.n_workers)
        return max(1, -(-n_jobs // (4 * workers)))

    def _chunks(
        self, jobs: Sequence[FitJob], indices: Sequence[int]
    ) -> list[list[tuple[int, FitJob]]]:
        size = self.resolve_chunk_size(len(jobs))
        return contiguous_chunks(list(zip(indices, jobs)), size)

    def _worker_cache(self) -> Optional[FitCache]:
        """The cache object actually shipped to executor workers.

        A memory-backed cache cannot propagate state across process workers
        anyway, so for the ``process`` executor its (possibly payload-laden)
        store is replaced by an empty one with the same bound -- shipping
        the populated store would pickle every cached fit once per chunk for
        zero cross-run benefit.  Disk-backed caches travel as-is (they only
        carry a path) and give workers real shared hits.
        """
        if self.cache is None or self.executor != "process":
            return self.cache
        if isinstance(self.cache.store, MemoryStore):
            return FitCache(MemoryStore(self.cache.store.max_entries))
        return self.cache

    def run(
        self, jobs: Iterable[FitJob], *, indices: Optional[Sequence[int]] = None
    ) -> BatchResult:
        """Run every job and return the assembled :class:`BatchResult`.

        Records come back ordered by submission index; failures are embedded
        in their records, so this method only raises on infrastructure errors
        (e.g. an unpicklable job with the process backend).

        Parameters
        ----------
        jobs:
            The jobs to run.
        indices:
            Optional explicit record indices, one per job (default:
            ``0..n-1`` in submission order).  This is how a shard runner
            executes a *subset* of a planned batch while keeping every
            record at its original position, so merging shard results
            reassembles the unsharded record order exactly (see
            :mod:`repro.batch.sharding`).
        """
        job_list = list(jobs)
        started = time.perf_counter()
        if indices is None:
            index_list = list(range(len(job_list)))
        else:
            index_list = [int(index) for index in indices]
            if len(index_list) != len(job_list):
                raise ValueError(
                    f"got {len(index_list)} indices for {len(job_list)} jobs"
                )
            if any(index < 0 for index in index_list):
                raise ValueError("job indices must be non-negative")
            if len(set(index_list)) != len(index_list):
                raise ValueError("job indices must be unique")
        chunks = self._chunks(job_list, index_list)
        cache = self._worker_cache()
        responses = ResponseCache() if self.response_cache else None
        if self.executor == "serial":
            chunk_records = [
                _run_chunk(chunk, cache, self.backend, responses) for chunk in chunks
            ]
        elif self.executor == "thread":
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                futures = [
                    pool.submit(_run_chunk, chunk, cache, self.backend, responses)
                    for chunk in chunks
                ]
                chunk_records = [future.result() for future in futures]
        else:
            # the zero-copy job plane: each chunk crosses the pipe as a
            # JobTable (unique datasets once, jobs as fingerprint refs);
            # cache/backend/response-cache install once per worker via the
            # pool initializer instead of travelling with every chunk
            arena = SharedDatasetArena() if self.shared_memory else None
            try:
                tables = [JobTable.pack(chunk, arena=arena) for chunk in chunks]
                with ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_pool_initializer,
                    initargs=(cache, self.backend, self.response_cache),
                ) as pool:
                    futures = [pool.submit(_run_packed_chunk, table) for table in tables]
                    chunk_records = [future.result() for future in futures]
            finally:
                if arena is not None:
                    arena.cleanup()
        records = sorted(
            (record for chunk in chunk_records for record in chunk),
            key=lambda record: record.index,
        )
        return BatchResult(
            records=tuple(records),
            executor=self.executor,
            n_workers=self.n_workers,
            chunk_size=self.resolve_chunk_size(len(job_list)) if job_list else 0,
            wall_seconds=time.perf_counter() - started,
        )
