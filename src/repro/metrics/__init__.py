"""Error metrics and model-validation helpers.

The paper compares algorithms with a per-frequency relative matrix error and
the aggregate ``ERR`` defined in Section 5; this package implements those
exact metrics plus a few standard extras (worst-case error, RMS entrywise
error) and a one-call validation routine that evaluates a recovered model
against a reference data set.
"""

from repro.metrics.errors import (
    aggregate_error,
    entrywise_rms_error,
    max_relative_error,
    model_aggregate_error,
    model_errors,
    relative_error_per_frequency,
)
from repro.metrics.timedomain import (
    TIME_DOMAIN_METRIC_KEYS,
    TimeDomainSpec,
    delay_estimate,
    impulse_error_norms,
    ringing_ratio,
    time_domain_metrics,
)
from repro.metrics.validation import ValidationReport, validate_model

__all__ = [
    "relative_error_per_frequency",
    "aggregate_error",
    "max_relative_error",
    "entrywise_rms_error",
    "model_errors",
    "model_aggregate_error",
    "ValidationReport",
    "validate_model",
    "TimeDomainSpec",
    "time_domain_metrics",
    "impulse_error_norms",
    "delay_estimate",
    "ringing_ratio",
    "TIME_DOMAIN_METRIC_KEYS",
]
