"""Time-domain (transient) validation metrics for fitted macromodels.

Frequency-domain error norms (:mod:`repro.metrics.errors`) say how well a
model reproduces the measured sweep; the consumers of these macromodels run
them in *time* (transient SI/PI simulation), where small frequency-domain
errors can still show up as delay shifts or spurious ringing.  This module
turns the batched spectral pathway (:mod:`repro.systems.spectral`) into
first-class validation metrics:

* the model is evaluated at the reference sweep's own (possibly non-uniform)
  frequencies through the shared sweep kernel,
* model samples and reference samples are gridded onto one FFT grid with the
  *same* NUFFT-style kernel and band taper, so the comparison reflects
  model-vs-data mismatch and not representation bandwidth,
* one batched inverse FFT produces both impulse responses, and the metrics
  below compare them.

Metric columns (the keys of :func:`time_domain_metrics`, carried on
:class:`~repro.batch.jobs.JobRecord` and exported by
:class:`~repro.batch.results.BatchResult`):

``impulse_l2`` / ``impulse_linf``
    Relative L2 / sup Frobenius-norm error of the impulse response (the
    ``t = 0`` half-jump sample is excluded; see :mod:`repro.systems.spectral`).
``step_l2``
    Relative L2 error of the step response (feed-through included).
``delay_seconds`` / ``delay_error_seconds``
    Energy-based delay estimate of the model's impulse (earliest time the
    cumulative Frobenius energy crosses one half) and its absolute deviation
    from the reference's delay.
``ringing_ratio``
    Residual ringing of the model's step response: the largest Frobenius
    deviation from the final value over the last quarter of the horizon,
    relative to the final-value norm.  A settled response is ~0; sustained
    oscillation or instability pushes it up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.options import canonical_token
from repro.data.dataset import FrequencyData
from repro.systems.spectral import (
    DEFAULT_OVERSAMPLE,
    DEFAULT_TAPER_FRACTION,
    DEFAULT_WINDOW,
    SpectralGrid,
    build_spectral_grid,
    grid_nonuniform_spectrum,
    impulse_from_spectrum,
    spectral_window,
    step_from_impulse,
)

__all__ = [
    "TimeDomainSpec",
    "time_domain_metrics",
    "impulse_error_norms",
    "delay_estimate",
    "ringing_ratio",
    "TIME_DOMAIN_METRIC_KEYS",
]

#: The metric columns :func:`time_domain_metrics` produces, in export order.
TIME_DOMAIN_METRIC_KEYS = (
    "impulse_l2",
    "impulse_linf",
    "step_l2",
    "delay_seconds",
    "delay_error_seconds",
    "ringing_ratio",
)

#: Fraction of the horizon (from the end) over which residual ringing of the
#: step response is measured.
_RINGING_TAIL_FRACTION = 0.25


@dataclass(frozen=True)
class TimeDomainSpec:
    """Configuration of one time-domain validation (JSON-safe, fingerprintable).

    Attributes
    ----------
    t_final:
        End of the simulated horizon, in seconds.
    n_points:
        Number of output time samples.
    oversample:
        FFT periodization factor (:func:`~repro.systems.spectral.build_spectral_grid`).
    window:
        Spectral window of the transform (``"lanczos"`` or ``"none"``).
    taper_fraction:
        Band-edge roll-off of the gridding step
        (:func:`~repro.systems.spectral.grid_nonuniform_spectrum`).
    """

    t_final: float
    n_points: int = 128
    oversample: int = DEFAULT_OVERSAMPLE
    window: str = DEFAULT_WINDOW
    taper_fraction: float = DEFAULT_TAPER_FRACTION

    def __post_init__(self):
        if self.t_final <= 0:
            raise ValueError("t_final must be positive")
        if int(self.n_points) != self.n_points or self.n_points < 2:
            raise ValueError(f"n_points must be an integer >= 2, got {self.n_points!r}")
        if int(self.oversample) != self.oversample or self.oversample < 1:
            raise ValueError(f"oversample must be an integer >= 1, got {self.oversample!r}")
        if not 0.0 <= self.taper_fraction < 1.0:
            raise ValueError(f"taper_fraction must lie in [0, 1), got {self.taper_fraction}")
        object.__setattr__(self, "t_final", float(self.t_final))
        object.__setattr__(self, "n_points", int(self.n_points))
        object.__setattr__(self, "oversample", int(self.oversample))

    def build_grid(self) -> SpectralGrid:
        """The spectral grid this spec describes."""
        return build_spectral_grid(self.t_final, self.n_points, oversample=self.oversample)

    def to_dict(self) -> dict:
        """JSON-safe field dict (workload kwargs, wire protocol)."""
        return {
            "t_final": self.t_final,
            "n_points": self.n_points,
            "oversample": self.oversample,
            "window": self.window,
            "taper_fraction": self.taper_fraction,
        }

    def canonical_items(self) -> list[tuple[str, str]]:
        """Exact-token field encoding (the options convention), for fingerprints."""
        return [(key, canonical_token(value)) for key, value in sorted(self.to_dict().items())]


def _frobenius_per_sample(responses: np.ndarray) -> np.ndarray:
    """Frobenius norm of every ``(p, m)`` slice along the time axis."""
    return np.linalg.norm(responses.reshape(responses.shape[0], -1), axis=1)


def impulse_error_norms(
    impulse: np.ndarray, reference: np.ndarray, *, skip: int = 1
) -> dict[str, float]:
    """Relative L2 and sup errors between two impulse responses.

    The first ``skip`` samples are excluded: the spectral pathway puts the
    half-jump value at ``t = 0`` while integrators put their discrete-pulse
    approximation there, so the initial sample compares two different (both
    internally consistent) conventions.
    """
    if impulse.shape != reference.shape:
        raise ValueError(f"impulse shapes differ: {impulse.shape} vs {reference.shape}")
    diff = _frobenius_per_sample(impulse[skip:] - reference[skip:])
    scale = _frobenius_per_sample(reference[skip:])
    tiny = float(np.finfo(float).tiny)
    l2 = float(np.linalg.norm(diff) / max(np.linalg.norm(scale), tiny))
    linf = float(np.max(diff) / max(np.max(scale), tiny))
    return {"impulse_l2": l2, "impulse_linf": linf}


def delay_estimate(time: np.ndarray, impulse: np.ndarray) -> float:
    """Energy-based delay: earliest time cumulative impulse energy crosses 1/2.

    Uses the Frobenius norm over all (output, input) pairs, so one number
    summarises a MIMO response.  A response concentrated at the start gives
    ~0; a transport-delay-like response gives the delay of its energy bulk.
    """
    energy = _frobenius_per_sample(np.asarray(impulse)) ** 2
    total = float(np.sum(energy))
    if total <= 0.0:
        return 0.0
    crossing = np.searchsorted(np.cumsum(energy), 0.5 * total)
    return float(time[min(int(crossing), time.size - 1)])


def ringing_ratio(step: np.ndarray) -> float:
    """Residual ringing of a step response (tail deviation from final value).

    The largest Frobenius deviation from the final sample over the last
    quarter of the horizon, relative to the final value's norm.  ``0`` means
    the response has settled inside the window.
    """
    step = np.asarray(step)
    tail_start = int((1.0 - _RINGING_TAIL_FRACTION) * step.shape[0])
    tail_start = min(max(tail_start, 0), step.shape[0] - 1)
    final = step[-1]
    deviation = _frobenius_per_sample(step[tail_start:] - final[np.newaxis])
    tiny = float(np.finfo(float).tiny)
    return float(np.max(deviation) / max(float(np.linalg.norm(final)), tiny))


def time_domain_metrics(
    model, reference: FrequencyData, spec: TimeDomainSpec, *, model_samples=None
) -> dict[str, float]:
    """The time-domain validation columns of one model vs one reference sweep.

    Both the model (evaluated at the reference's frequencies through the
    shared sweep kernel) and the reference samples go through the *same*
    NUFFT-style gridding onto the spec's FFT grid, and one batched inverse
    FFT produces both impulse responses -- so the metrics compare model
    against data on equal footing, at spectral-pathway speed.

    ``model`` is anything with ``frequency_response`` and a feed-through
    (``D``/``d``): descriptor systems, pole-residue models.  Returns the
    :data:`TIME_DOMAIN_METRIC_KEYS` dict.

    ``model_samples`` optionally supplies the precomputed sweep of ``model``
    over the reference's frequencies (the response cache's reuse point); it
    must equal what ``model.frequency_response`` would return, and the
    default computes exactly that.
    """
    from repro.systems.spectral import _feedthrough  # shared duck-typed accessor

    grid = spec.build_grid()
    freqs = np.asarray(reference.frequencies_hz, dtype=float).ravel()
    if model_samples is None:
        model_samples = np.asarray(model.frequency_response(freqs))
    else:
        model_samples = np.asarray(model_samples)
    feedthrough = _feedthrough(model)
    def gridded(samples):
        return grid_nonuniform_spectrum(
            freqs, samples, grid, feedthrough=feedthrough, taper_fraction=spec.taper_fraction
        )

    spectra = np.stack([gridded(model_samples), gridded(reference.samples)])
    spectra *= spectral_window(grid, spec.window)[:, np.newaxis, np.newaxis]
    impulses = impulse_from_spectrum(spectra, grid)
    steps = step_from_impulse(impulses, grid, feedthrough=feedthrough)

    metrics = impulse_error_norms(impulses[0], impulses[1])
    delay_model = delay_estimate(grid.time, impulses[0])
    delay_reference = delay_estimate(grid.time, impulses[1])
    diff = _frobenius_per_sample(steps[0] - steps[1])
    scale = _frobenius_per_sample(steps[1])
    tiny = float(np.finfo(float).tiny)
    metrics["step_l2"] = float(np.linalg.norm(diff) / max(np.linalg.norm(scale), tiny))
    metrics["delay_seconds"] = delay_model
    metrics["delay_error_seconds"] = abs(delay_model - delay_reference)
    metrics["ringing_ratio"] = ringing_ratio(steps[0])
    return metrics
