"""One-call validation of a recovered macromodel against reference data."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import FrequencyData
from repro.metrics.errors import model_errors
from repro.systems.analysis import spectral_abscissa
from repro.systems.statespace import DescriptorSystem

__all__ = ["ValidationReport", "validate_model"]


@dataclass(frozen=True)
class ValidationReport:
    """Summary of how well a model reproduces a reference data set.

    Attributes
    ----------
    order:
        State dimension of the validated model.
    aggregate_error:
        The paper's ``ERR`` metric (RMS of per-frequency relative errors).
    max_error:
        Worst per-frequency relative error.
    per_frequency_error:
        Full per-frequency relative error vector.
    spectral_abscissa:
        Largest real part among the model's finite poles (negative means
        asymptotically stable).
    """

    order: int
    aggregate_error: float
    max_error: float
    per_frequency_error: np.ndarray
    spectral_abscissa: float

    @property
    def is_stable(self) -> bool:
        """True when every finite pole has a strictly negative real part."""
        return self.spectral_abscissa < 0.0

    def summary(self) -> str:
        """Single-line human-readable summary."""
        stability = "stable" if self.is_stable else "UNSTABLE"
        return (
            f"order={self.order:4d}  ERR={self.aggregate_error:.3e}  "
            f"max={self.max_error:.3e}  {stability}"
        )


def validate_model(
    model: DescriptorSystem,
    reference: FrequencyData,
    *,
    check_stability: bool = True,
) -> ValidationReport:
    """Evaluate ``model`` on the reference frequencies and summarise the errors.

    Parameters
    ----------
    model:
        The recovered macromodel.
    reference:
        The data set it should reproduce (e.g. a dense validation sweep of the
        original system, or the measurement set itself).
    check_stability:
        When false, skip the (eigenvalue-decomposition) stability check and
        report ``nan`` for the spectral abscissa -- useful in benchmarks where
        only the error matters and the model is large.

    Notes
    -----
    The model sweep runs through the shared vectorized evaluation kernel via
    :func:`repro.metrics.errors.model_errors`, so dense validation grids use
    the batched/fast-path evaluation automatically.
    """
    errors = model_errors(model, reference)
    abscissa = spectral_abscissa(model) if check_stability else float("nan")
    return ValidationReport(
        order=model.order,
        aggregate_error=float(np.linalg.norm(errors) / np.sqrt(errors.size)),
        max_error=float(np.max(errors)),
        per_frequency_error=errors,
        spectral_abscissa=abscissa,
    )
