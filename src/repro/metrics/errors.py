"""Error metrics matching the paper's definitions.

Section 5 of the paper defines, for samples ``S(f_i)`` and a recovered model
``H``,

``err_i = || H(j 2 pi f_i) - S(f_i) ||_2 / || S(f_i) ||_2``

(spectral-norm relative error per frequency) and the aggregate

``ERR = || err ||_2 / sqrt(k)``

which is the root-mean-square of the per-frequency relative errors.  Those two
are what Table 1 reports; the helpers here compute them from either raw sample
arrays or a model + reference-data pair.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FrequencyData
from repro.systems.statespace import DescriptorSystem

__all__ = [
    "relative_error_per_frequency",
    "reference_norms",
    "aggregate_error",
    "max_relative_error",
    "entrywise_rms_error",
    "model_errors",
    "model_aggregate_error",
]


def _stack(samples) -> np.ndarray:
    arr = np.asarray(samples, dtype=complex)
    if arr.ndim == 2:
        arr = arr[np.newaxis]
    if arr.ndim != 3:
        raise ValueError(f"samples must have shape (k, p, m), got {arr.shape}")
    return arr


def reference_norms(reference_samples) -> np.ndarray:
    """Per-frequency spectral norms ``||S(f_i)||_2`` of a sample stack.

    This is the model-independent denominator of every relative-error
    metric; it depends only on the reference dataset, so jobs sharing a
    validation dataset can compute it once (the response cache memoizes it
    by dataset fingerprint).
    """
    reference = _stack(reference_samples)
    if reference.shape[0] == 0:
        return np.empty(0)
    return np.linalg.svd(reference, compute_uv=False)[..., 0]


def relative_error_per_frequency(model_samples, reference_samples, *, norms=None) -> np.ndarray:
    """Per-frequency spectral-norm relative error ``err_i`` (paper Section 5).

    Frequencies where the reference matrix is exactly zero contribute the
    absolute (un-normalised) error instead, so the result stays finite.

    ``norms`` optionally supplies precomputed :func:`reference_norms` of
    ``reference_samples`` (same values, computed by the same code), so a
    batch of jobs sharing one reference runs its SVD sweep once.
    """
    model = _stack(model_samples)
    reference = _stack(reference_samples)
    if model.shape != reference.shape:
        raise ValueError(
            f"model samples shape {model.shape} does not match reference {reference.shape}"
        )
    if model.shape[0] == 0:
        return np.empty(0)
    # spectral norms of the whole stack in one batched SVD each (the same
    # per-slice LAPACK factorization np.linalg.norm(..., 2) runs one by one)
    num = np.linalg.svd(model - reference, compute_uv=False)[..., 0]
    if norms is not None:
        denom = np.asarray(norms)
    else:
        denom = np.linalg.svd(reference, compute_uv=False)[..., 0]
    if denom.shape != num.shape:
        raise ValueError(f"norms shape {denom.shape} does not match sweep {num.shape}")
    return np.where(denom == 0.0, num, num / np.where(denom == 0.0, 1.0, denom))


def aggregate_error(model_samples, reference_samples) -> float:
    """The paper's aggregate ``ERR = ||err||_2 / sqrt(k)`` (RMS of relative errors)."""
    err = relative_error_per_frequency(model_samples, reference_samples)
    return float(np.linalg.norm(err) / np.sqrt(err.size))


def max_relative_error(model_samples, reference_samples) -> float:
    """Worst per-frequency relative error over the sweep."""
    err = relative_error_per_frequency(model_samples, reference_samples)
    return float(np.max(err))


def entrywise_rms_error(model_samples, reference_samples) -> float:
    """RMS of the absolute entrywise differences (not normalised)."""
    model = _stack(model_samples)
    reference = _stack(reference_samples)
    if model.shape != reference.shape:
        raise ValueError("sample arrays must have identical shapes")
    return float(np.sqrt(np.mean(np.abs(model - reference) ** 2)))


def model_errors(
    model: DescriptorSystem, reference: FrequencyData, *, response=None, norms=None
) -> np.ndarray:
    """Per-frequency relative errors of ``model`` against a reference data set.

    The model is evaluated through the shared sweep kernel
    (:meth:`~repro.systems.statespace.DescriptorSystem.frequency_response`),
    so dense validation sweeps use the vectorized fast paths.  This is the
    single evaluation code path shared by :func:`validate_model`,
    :meth:`MacromodelResult.errors_against
    <repro.core.results.MacromodelResult.errors_against>` and the fit
    cache's evaluation memoization.

    ``response`` and ``norms`` optionally supply the precomputed model sweep
    over ``reference.frequencies_hz`` and the precomputed
    :func:`reference_norms` of the reference -- the cross-job response
    cache's reuse points.  Both default to computing in place through the
    identical code path, so supplying them never changes the result.
    """
    if response is None:
        response = model.frequency_response(reference.frequencies_hz)
    return relative_error_per_frequency(response, reference.samples, norms=norms)


def model_aggregate_error(
    model: DescriptorSystem, reference: FrequencyData, *, response=None, norms=None
) -> float:
    """The paper's aggregate ``ERR`` of ``model`` against a reference data set."""
    errors = model_errors(model, reference, response=response, norms=norms)
    return float(np.linalg.norm(errors) / np.sqrt(errors.size))
