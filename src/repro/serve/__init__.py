"""Async fit service, shard dispatcher and the synchronous client facade.

The serving layer of the batch stack (see the README's "Serving" section):

* :mod:`repro.serve.protocol` -- the JSON wire format: datasets, job specs
  (canonical-options serialization shared with shard manifests) and records,
  every document pinned by the cache-layer content fingerprints.
* :mod:`repro.serve.app` -- :class:`FitService` (in-flight dedupe by content
  fingerprint, bounded admission queue, counters) wrapped in
  :class:`FitServer`, a stdlib-``asyncio`` HTTP server streaming records back
  as NDJSON.
* :mod:`repro.serve.dispatcher` -- plans a named workload onto shards,
  launches shard runners through a pluggable :class:`Launcher` (subprocess
  pool; ssh/slurm stubs), retries lost or straggling shards with backoff and
  merges the results bit-exactly.
* :mod:`repro.serve.client` -- the synchronous :class:`Client` /
  :func:`submit` facade the public API re-exports.
"""

from repro.serve.app import Backpressure, FitServer, FitService, ThreadedServer
from repro.serve.client import Client, ServeError, submit
from repro.serve.dispatcher import (
    DispatchError,
    Launcher,
    SlurmLauncher,
    SshLauncher,
    SubprocessLauncher,
    dispatch_workload,
    runtime_weights,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_dataset,
    decode_job,
    decode_record,
    encode_dataset,
    encode_job,
    encode_record,
    request_key,
)

__all__ = [
    "Backpressure",
    "Client",
    "DispatchError",
    "FitServer",
    "FitService",
    "Launcher",
    "PROTOCOL_VERSION",
    "ServeError",
    "SlurmLauncher",
    "SshLauncher",
    "SubprocessLauncher",
    "ThreadedServer",
    "decode_dataset",
    "decode_job",
    "decode_record",
    "dispatch_workload",
    "encode_dataset",
    "encode_job",
    "encode_record",
    "request_key",
    "runtime_weights",
    "submit",
]
