"""The shard dispatcher: plan, launch, retry, merge -- one call.

``python -m repro shard plan|run|merge`` already covers the manual
cross-machine cycle; the dispatcher automates it for the common case of one
coordinator driving all shards:

1. build the named workload grid and plan it with
   :func:`~repro.batch.sharding.plan_shards` (runtime-weighted when a
   previous run's ``BENCH_*.json`` is supplied through
   :func:`runtime_weights`),
2. write the shard manifests,
3. launch one runner per shard through a pluggable :class:`Launcher`
   (subprocess pool first; ssh/slurm are declared stubs), each with a
   per-shard timeout,
4. retry lost, failed or straggling shards with exponential backoff --
   re-running a shard is safe because shard results are content-addressed
   against the plan and a shared disk cache replays the fits,
5. merge, which re-validates everything
   (:func:`~repro.batch.sharding.merge_shard_results` refuses missing,
   duplicate or cross-plan shards).

The merged :class:`~repro.batch.results.BatchResult` is bit-identical to the
unsharded run of the same grid -- including after injected shard failures,
which is exactly what the differential tests assert.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.batch.results import BatchResult
from repro.batch.sharding import (
    ShardError,
    merge_shard_results,
    plan_shards,
    read_shard_result,
    shard_result_name,
    write_manifests,
)

__all__ = [
    "DispatchError",
    "Launcher",
    "SubprocessLauncher",
    "SshLauncher",
    "SlurmLauncher",
    "runtime_weights",
    "dispatch_workload",
]


class DispatchError(RuntimeError):
    """A shard could not be completed within its retry budget."""


class Launcher:
    """Interface of one shard-execution backend.

    :meth:`launch` runs the shard described by ``manifest_path`` to
    completion and must leave the result archive at ``result_path``.  It
    returns ``(status, detail)`` where ``status`` is ``"ok"``, ``"failed"``
    or ``"timeout"`` -- the dispatcher itself verifies that an ``"ok"``
    launch really produced a readable result (a runner that dies after its
    exit handshake is indistinguishable from a lost machine).
    """

    name = "abstract"

    def launch(self, shard_index: int, manifest_path: str, result_path: str, *,
               timeout: Optional[float] = None) -> tuple[str, str]:
        raise NotImplementedError("use a concrete Launcher")


class SubprocessLauncher(Launcher):
    """Run each shard as a local ``python -m repro shard run`` subprocess.

    The runner subprocess is exactly the operator CLI -- same argv, same
    PYTHONPATH injection as :func:`repro.batch.shard.cli_subprocess` -- so
    the dispatcher exercises the identical code path a manual cross-machine
    run would.  ``executor`` / ``workers`` / ``chunk_size`` / ``backend`` /
    ``shared_memory`` forward to the runner's engine flags.
    """

    name = "subprocess"

    def __init__(self, *, executor: Optional[str] = None,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 backend: Optional[str] = None,
                 shared_memory: bool = False):
        self.executor = executor
        self.workers = workers
        self.chunk_size = chunk_size
        self.backend = backend
        self.shared_memory = bool(shared_memory)

    def _argv(self, manifest_path: str, result_path: str) -> list[str]:
        argv = [sys.executable, "-m", "repro", "shard", "run",
                manifest_path, "--out", result_path]
        if self.executor is not None:
            argv += ["--executor", self.executor]
        if self.workers is not None:
            argv += ["--workers", str(self.workers)]
        if self.chunk_size is not None:
            argv += ["--chunk-size", str(self.chunk_size)]
        if self.backend is not None:
            argv += ["--backend", self.backend]
        if self.shared_memory:
            argv += ["--shared-memory"]
        return argv

    def _popen(self, argv: list[str]) -> subprocess.Popen:
        """Start the runner process (test seam: failure injection overrides this).

        The runner is started in its own session (process group): a shard
        running with ``--executor process`` forks a worker pool, and a
        timeout-kill of the direct child alone would orphan those workers
        mid-fit.  :meth:`launch` kills the whole group instead.
        """
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_root, env.get("PYTHONPATH")) if part)
        return subprocess.Popen(argv, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True, env=env,
                                start_new_session=True)

    @staticmethod
    def _kill_tree(process: subprocess.Popen) -> None:
        """Kill the runner *and* its process group (its executor workers).

        Falls back to killing the direct child alone when the group is gone
        already or the platform/test double never created one.
        """
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError, AttributeError):
            process.kill()

    def launch(self, shard_index: int, manifest_path: str, result_path: str, *,
               timeout: Optional[float] = None) -> tuple[str, str]:
        process = self._popen(self._argv(manifest_path, result_path))
        try:
            _, stderr = process.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._kill_tree(process)
            process.communicate()
            return "timeout", f"shard runner exceeded {timeout}s and was killed"
        if process.returncode != 0:
            tail = (stderr or "").strip().splitlines()[-3:]
            return "failed", (f"exit code {process.returncode}: "
                              + " | ".join(tail) if tail
                              else f"exit code {process.returncode}")
        return "ok", ""


class SshLauncher(Launcher):
    """Declared stub: run shards on remote hosts over ssh.

    The manifest/result files are already a complete wire format (a shard
    runner only needs the manifest and a writable result path), so an ssh
    backend is "scp manifest, run the CLI remotely, scp the result back".
    Not implemented in this build; constructing the stub documents the
    intended surface and :meth:`launch` fails loudly.
    """

    name = "ssh"

    def __init__(self, hosts: tuple[str, ...] = ()):
        self.hosts = tuple(hosts)

    def launch(self, shard_index: int, manifest_path: str, result_path: str, *,
               timeout: Optional[float] = None) -> tuple[str, str]:
        raise NotImplementedError(
            "SshLauncher is a declared stub; run shards manually with "
            "'python -m repro shard run' on each host or use SubprocessLauncher"
        )


class SlurmLauncher(Launcher):
    """Declared stub: submit shard runners as Slurm array jobs (``sbatch``)."""

    name = "slurm"

    def __init__(self, partition: Optional[str] = None):
        self.partition = partition

    def launch(self, shard_index: int, manifest_path: str, result_path: str, *,
               timeout: Optional[float] = None) -> tuple[str, str]:
        raise NotImplementedError(
            "SlurmLauncher is a declared stub; submit 'python -m repro shard "
            "run' through sbatch manually or use SubprocessLauncher"
        )


def runtime_weights(bench_path: str | os.PathLike) -> dict[str, float]:
    """Per-label runtime estimates from a ``BENCH_*.json`` export.

    Reads the ``jobs`` list every batch benchmark writes (one
    :meth:`JobRecord.to_dict` per record) and averages ``elapsed_seconds``
    per label.  Feed the result to :func:`~repro.batch.sharding.plan_shards`
    and the next run of the same grid is balanced by *measured* cost instead
    of job count.  Labels without a usable timing are simply absent (the
    planner defaults them to the mean), and a file without a ``jobs`` list
    yields ``{}`` -- weighting is always best-effort.
    """
    try:
        with open(os.fspath(bench_path), encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DispatchError(f"cannot read benchmark file {bench_path}: {exc}") from exc
    jobs = document.get("jobs")
    if not isinstance(jobs, list):
        return {}
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for spec in jobs:
        if not isinstance(spec, dict):
            continue
        label = spec.get("label")
        elapsed = spec.get("elapsed_seconds")
        if not isinstance(label, str) or not isinstance(elapsed, (int, float)):
            continue
        if not (float(elapsed) >= 0.0):  # filters NaN and negatives
            continue
        sums[label] = sums.get(label, 0.0) + float(elapsed)
        counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] for label in sums}


def dispatch_workload(
    workload: str,
    n_shards: int,
    out_dir: str | os.PathLike,
    *,
    workload_kwargs: Optional[dict[str, Any]] = None,
    cache_dir: Optional[str] = None,
    launcher: Optional[Launcher] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff_seconds: float = 0.25,
    weights: Optional[dict[str, float]] = None,
    bench_weights: Optional[str] = None,
) -> BatchResult:
    """Plan, launch, retry and merge one named workload grid.

    Parameters
    ----------
    workload, workload_kwargs:
        Entry of :data:`repro.experiments.workloads.WORKLOADS` and its
        builder kwargs (must be JSON-safe -- they travel in the manifests).
    n_shards, out_dir:
        Shard count and the directory manifests + results are written to.
    cache_dir:
        Optional shared :class:`~repro.cache.DiskStore` directory recorded in
        every manifest; retried shards then replay already-computed fits.
    launcher:
        The execution backend (default: a plain :class:`SubprocessLauncher`).
    timeout:
        Per-shard wall-clock budget per attempt; a straggler is killed and
        retried like any failure.
    max_retries:
        Extra attempts per shard after the first (so ``max_retries=2`` means
        at most 3 attempts).
    backoff_seconds:
        Sleep before retry ``k`` is ``backoff_seconds * 2**(k-1)``.
    weights, bench_weights:
        Explicit per-label runtime weights, or a ``BENCH_*.json`` path to
        derive them from (:func:`runtime_weights`); explicit weights win.

    Returns the merged :class:`~repro.batch.results.BatchResult`; raises
    :class:`DispatchError` when any shard exhausts its retry budget.
    """
    from repro.experiments.workloads import workload_jobs

    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    kwargs = dict(workload_kwargs or {})
    jobs = workload_jobs(workload, **kwargs)
    if weights is None and bench_weights is not None:
        weights = runtime_weights(bench_weights)
    plan = plan_shards(jobs, n_shards, weights=weights)
    out_dir = os.fspath(out_dir)
    manifest_paths = write_manifests(
        plan, jobs, out_dir, workload=workload, workload_kwargs=kwargs,
        cache_dir=cache_dir,
    )
    active_launcher = launcher if launcher is not None else SubprocessLauncher()

    def run_one(shard: int) -> str:
        manifest_path = manifest_paths[shard]
        result_path = os.path.join(out_dir, shard_result_name(shard, plan.n_shards))
        last = ("lost", "never launched")
        for attempt in range(1, max_retries + 2):
            if attempt > 1:
                time.sleep(backoff_seconds * 2 ** (attempt - 2))
            # a partial archive from a killed attempt must never satisfy the
            # "did the runner produce a result" check below
            if os.path.exists(result_path):
                os.unlink(result_path)
            status, detail = active_launcher.launch(
                shard, manifest_path, result_path, timeout=timeout)
            if status == "ok":
                if not os.path.exists(result_path):
                    last = ("lost", "runner reported success but wrote no result")
                    continue
                try:
                    read_shard_result(result_path)
                except ShardError as exc:
                    last = ("corrupt", str(exc))
                    continue
                return result_path
            last = (status, detail)
        raise DispatchError(
            f"shard {shard}/{plan.n_shards} failed after {max_retries + 1} "
            f"attempt(s): {last[0]}: {last[1]}"
        )

    max_parallel = max(1, min(plan.n_shards, os.cpu_count() or 1))
    with ThreadPoolExecutor(max_workers=max_parallel,
                            thread_name_prefix="repro-dispatch") as pool:
        result_paths = list(pool.map(run_one, range(plan.n_shards)))
    return merge_shard_results(result_paths)
