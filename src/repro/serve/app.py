"""The asyncio fit service: in-flight dedupe, admission control, HTTP front-end.

:class:`FitService` is the serving core: every submitted job is keyed by
:func:`~repro.serve.protocol.request_key` (the content fingerprint of what
the *computation* depends on), and concurrent submissions with the same key
await one shared fit -- the "millions of users sweep the same board" story
collapses to a handful of actual computations.  The dedupe window is the
in-flight lifetime of a fit; cross-time reuse is the
:class:`~repro.cache.FitCache` attached to the engine, exactly as everywhere
else in the batch layer.  Admission is a bounded count of in-flight
computations: a batch that would exceed it is rejected *whole* with
:class:`Backpressure` before any of its work starts, so clients never receive
partial batches.

:class:`FitServer` wraps the service in a minimal stdlib HTTP/1.1 server
(``asyncio.start_server``; no third-party framework) with four routes:

* ``GET /healthz`` -- liveness + protocol version,
* ``GET /stats`` -- service counters, queue depth and cache statistics,
* ``POST /submit`` -- a :func:`~repro.serve.protocol.encode_batch` document;
  the response streams one NDJSON ``record`` event per job *as it
  completes*, then a terminating ``end`` event,
* ``POST /shutdown`` -- clean shutdown (used by the CI smoke).

:class:`ThreadedServer` runs the whole thing on a background thread for
tests, benchmarks and the CI smoke step.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import functools
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional, Sequence

from repro.batch.engine import BatchEngine
from repro.batch.jobs import FitJob, JobRecord, run_job
from repro.cache.interning import ResponseCache
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_batch,
    encode_record,
    is_deduplicatable,
    request_key,
)

__all__ = ["Backpressure", "FitService", "FitServer", "ThreadedServer", "serve_forever"]


class Backpressure(RuntimeError):
    """A submission was rejected because the admission queue is full."""


class FitService:
    """Deduplicating, admission-controlled execution core of the fit server.

    Parameters
    ----------
    engine:
        A :class:`~repro.batch.engine.BatchEngine` describing the execution
        resources: its resolved worker count sizes the service's thread pool
        (fits are BLAS-bound and release the GIL, like the engine's
        ``thread`` backend) and its cache, if any, is shared by every job.
        Accepts the same canonical config dict as everywhere else through
        :meth:`BatchEngine.from_config`.
    max_pending:
        Admission bound: the maximum number of *underlying computations*
        (deduped) in flight at once.  A batch that would push past it is
        rejected whole with :class:`Backpressure`.

    All public methods must run on the event loop thread; the fits themselves
    run on the thread pool.
    """

    def __init__(self, engine: Optional[BatchEngine] = None, *, max_pending: int = 32):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.engine = engine if engine is not None else BatchEngine()
        self.max_pending = int(max_pending)
        self._pool = ThreadPoolExecutor(
            max_workers=self.engine.n_workers, thread_name_prefix="repro-serve"
        )
        self._inflight: dict[str, asyncio.Task] = {}
        self._active: set[asyncio.Task] = set()
        # one service-wide cross-job response cache (None when the engine
        # disables it): reference sweeps shared across every submission the
        # service ever handles, exactly like the engine shares one per batch
        self.responses = ResponseCache() if self.engine.response_cache else None
        self.counters: dict[str, int] = {
            "submitted": 0,   # jobs accepted into batches
            "completed": 0,   # record answers streamed with status "ok"
            "failed": 0,      # record answers streamed with status "failed"
            "computed": 0,    # underlying fits actually started
            "coalesced": 0,   # jobs answered by awaiting another job's fit
            "rejected": 0,    # jobs turned away by admission control
        }

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Number of underlying computations currently in flight."""
        return len(self._active)

    def submit_batch(self, jobs: Sequence[FitJob]) -> list:
        """Admit a batch and return one awaitable record handle per job.

        The admission check and all task creation happen synchronously (no
        ``await`` in between), so two racing batches can never both observe a
        free queue slot and jointly overrun the bound.  Jobs whose
        :func:`request_key` matches an in-flight computation -- including one
        created earlier in this very batch -- coalesce onto it;
        nondeterministic jobs (unseeded random directions) never coalesce.

        Raises
        ------
        Backpressure
            If admitting the batch would exceed ``max_pending`` in-flight
            computations.  Nothing is started in that case.
        """
        jobs = list(jobs)
        loop = asyncio.get_running_loop()
        keys: list[Optional[str]] = []
        batch_new: set[str] = set()
        n_new = 0
        for job in jobs:
            if is_deduplicatable(job):
                key = request_key(job)
                if key not in self._inflight and key not in batch_new:
                    batch_new.add(key)
                    n_new += 1
                keys.append(key)
            else:
                keys.append(None)
                n_new += 1
        if self.queue_depth + n_new > self.max_pending:
            self.counters["rejected"] += len(jobs)
            raise Backpressure(
                f"admission queue full: {self.queue_depth} in flight + "
                f"{n_new} new > max_pending={self.max_pending}"
            )
        self.counters["submitted"] += len(jobs)
        handles = []
        for index, (job, key) in enumerate(zip(jobs, keys)):
            task = self._inflight.get(key) if key is not None else None
            if task is None:
                task = loop.create_task(self._compute(job))
                self._active.add(task)
                task.add_done_callback(self._active.discard)
                if key is not None:
                    self._inflight[key] = task
                    task.add_done_callback(
                        lambda done, key=key: self._inflight.pop(key, None)
                    )
                self.counters["computed"] += 1
            else:
                self.counters["coalesced"] += 1
            handles.append(self._await_record(task, index, job))
        return handles

    async def _compute(self, job: FitJob) -> JobRecord:
        """Run one underlying fit on the thread pool (index rewritten later)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            functools.partial(
                run_job,
                0,
                job,
                self.engine.cache,
                backend=self.engine.backend,
                responses=self.responses,
            ),
        )

    async def _await_record(self, task: asyncio.Task, index: int, job: FitJob) -> JobRecord:
        """Await the (possibly shared) fit and re-address the record.

        ``asyncio.shield`` keeps a follower's cancellation -- e.g. its client
        disconnecting mid-stream -- from propagating into the shared task
        other submissions are still awaiting.  The record comes back with
        this submission's index, label and tags: dedupe is by computation
        content, so the cosmetic fields are per-request.
        """
        record = await asyncio.shield(task)
        record = dataclasses.replace(
            record, index=index, label=job.label, tags=dict(job.tags)
        )
        self.counters["completed" if record.ok else "failed"] += 1
        return record

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` document: counters, queue depth, cache stats."""
        document: dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "counters": dict(self.counters),
            "queue_depth": self.queue_depth,
            "inflight_keys": len(self._inflight),
            "max_pending": self.max_pending,
            "engine": self.engine.to_config(),
            "cache": (
                self.engine.cache.stats().to_dict()
                if self.engine.cache is not None
                else None
            ),
            "responses": (
                self.responses.stats() if self.responses is not None else None
            ),
        }
        return document

    def close(self) -> None:
        """Shut down the worker pool (after the server stopped accepting)."""
        self._pool.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# the HTTP layer
# --------------------------------------------------------------------------- #
def _json_bytes(document: Any) -> bytes:
    return (json.dumps(document, sort_keys=True) + "\n").encode()


def _head(status: int, reason: str, content_type: str,
          content_length: Optional[int] = None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class FitServer:
    """Minimal stdlib HTTP/1.1 front-end around one :class:`FitService`.

    ``port=0`` binds an ephemeral port; the bound port is on :attr:`port`
    after :meth:`start`.  Every connection is ``Connection: close`` -- the
    ``/submit`` response has no predeclared length (records stream as they
    complete), so the response body ends when the server closes the socket,
    which every HTTP/1.1 client understands.
    """

    def __init__(self, service: Optional[FitService] = None, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service if service is not None else FitService()
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None

    async def start(self) -> "FitServer":
        """Bind and start accepting connections."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_shutdown(self) -> None:
        """Flag a clean shutdown (must be called from the loop thread)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def wait_shutdown(self) -> None:
        """Block until :meth:`request_shutdown` (or ``POST /shutdown``)."""
        await self._shutdown.wait()

    async def close(self) -> None:
        """Stop accepting connections and release the service's pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.service.close()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, target, body = request
                await self._route(method, target, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, body

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        target = target.split("?", 1)[0]
        if method == "GET" and target == "/healthz":
            await self._respond_json(writer, 200, "OK", {
                "status": "ok", "protocol_version": PROTOCOL_VERSION,
            })
        elif method == "GET" and target == "/stats":
            await self._respond_json(writer, 200, "OK", self.service.stats())
        elif method == "POST" and target == "/submit":
            await self._handle_submit(body, writer)
        elif method == "POST" and target == "/shutdown":
            await self._respond_json(writer, 200, "OK", {"ok": True})
            self.request_shutdown()
        else:
            await self._respond_json(writer, 404, "Not Found", {
                "error": f"no route for {method} {target}",
            })

    @staticmethod
    async def _respond_json(writer: asyncio.StreamWriter, status: int,
                            reason: str, document: Any) -> None:
        payload = _json_bytes(document)
        writer.write(_head(status, reason, "application/json", len(payload)))
        writer.write(payload)
        await writer.drain()

    async def _handle_submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            jobs = decode_batch(json.loads(body.decode()))
        except (ProtocolError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond_json(writer, 400, "Bad Request", {"error": str(exc)})
            return
        try:
            handles = self.service.submit_batch(jobs)
        except Backpressure as exc:
            # rejected before anything started and before any bytes streamed,
            # so the client sees one clean, retryable status for the batch
            await self._respond_json(writer, 503, "Service Unavailable", {
                "error": str(exc), "retry": True,
            })
            return
        writer.write(_head(200, "OK", "application/x-ndjson"))
        await writer.drain()
        pending = [asyncio.ensure_future(handle) for handle in handles]
        try:
            for future in asyncio.as_completed(list(pending)):
                record = await future
                writer.write(_json_bytes({
                    "event": "record", "record": encode_record(record),
                }))
                await writer.drain()
            writer.write(_json_bytes({
                "event": "end",
                "n_records": len(handles),
                "counters": dict(self.service.counters),
            }))
            await writer.drain()
        except ConnectionError:
            # receiver vanished mid-stream; shared fits keep running for
            # everyone else (the handles shield them), drop our wrappers
            for future in pending:
                future.cancel()


# --------------------------------------------------------------------------- #
# embedding helpers
# --------------------------------------------------------------------------- #
async def serve_forever(service: Optional[FitService] = None, *,
                        host: str = "127.0.0.1", port: int = 0,
                        ready=None) -> None:
    """Run a :class:`FitServer` until ``POST /shutdown`` (the CLI entry point).

    ``ready`` is an optional callback invoked with the server once it is
    bound (the CLI prints the port through it).
    """
    server = FitServer(service, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.wait_shutdown()
    finally:
        await server.close()


class ThreadedServer:
    """A :class:`FitServer` on a background thread, as a context manager.

    The harness of the differential tests, the dedupe benchmark and the CI
    smoke step: enter to get a bound, serving instance (``.host`` /
    ``.port``), exit for a clean shutdown.  The service keeps running even if
    the entering thread does blocking HTTP calls -- that is the point.
    """

    def __init__(self, service: Optional[FitService] = None, *,
                 host: str = "127.0.0.1", port: int = 0):
        self._service = service
        self._host = host
        self._requested_port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[FitServer] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._server is None or self._server.port is None:
            raise RuntimeError("server is not running")
        return self._server.port

    @property
    def service(self) -> FitService:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.service

    def __enter__(self) -> "ThreadedServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("fit server failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"fit server failed to start: {self._error}")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._server is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the entering thread
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = FitServer(self._service, host=self._host,
                                 port=self._requested_port)
        await self._server.start()
        self._ready.set()
        try:
            await self._server.wait_shutdown()
        finally:
            await self._server.close()
