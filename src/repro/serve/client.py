"""Synchronous client facade of the fit service.

:class:`Client` wraps the NDJSON-over-HTTP protocol in the same vocabulary
the rest of the batch layer speaks: submit a list of
:class:`~repro.batch.jobs.FitJob`, get a
:class:`~repro.batch.results.BatchResult` back.  Records arrive without
their numerical payloads (``record.result is None`` -- the model matrices
stay server-side), but everything
:func:`~repro.batch.results.comparable_json` compares is transported
bit-exactly, so a served batch is verifiable against a local
:meth:`BatchEngine.run` by string equality.

:func:`submit` is the one-call convenience the public API re-exports.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterable, Optional

from repro.batch.jobs import FitJob, JobRecord
from repro.batch.results import BatchResult
from repro.serve.app import Backpressure
from repro.serve.protocol import (
    decode_record,
    encode_batch,
    records_to_batch_result,
)

__all__ = ["Client", "ServeError", "submit"]


class ServeError(RuntimeError):
    """The server answered with an error status or a malformed stream."""


class Client:
    """Blocking HTTP client for one fit server.

    Parameters
    ----------
    host, port:
        Where the server listens (:class:`~repro.serve.app.ThreadedServer`
        exposes both after entering).
    timeout:
        Socket timeout per request; submissions wait for fits to stream
        back, so size it to the workload, not to a ping.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *,
                 timeout: float = 600.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request_json(self, method: str, path: str,
                      body: Optional[bytes] = None) -> Any:
        connection = self._connection()
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read().decode()
            document = self._parse(payload, context=path)
            if response.status != 200:
                raise ServeError(
                    f"{method} {path} -> {response.status}: "
                    f"{document.get('error', payload.strip())}"
                )
            return document
        finally:
            connection.close()

    @staticmethod
    def _parse(payload: str, *, context: str) -> Any:
        try:
            return json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServeError(f"{context}: server sent invalid JSON: {exc}") from exc

    # ------------------------------------------------------------------ #
    # the API
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness + protocol version."""
        return self._request_json("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """``GET /stats``: counters, queue depth, cache statistics."""
        return self._request_json("GET", "/stats")

    def shutdown(self) -> dict[str, Any]:
        """``POST /shutdown``: ask the server to stop cleanly."""
        return self._request_json("POST", "/shutdown")

    def submit(self, jobs: Iterable[FitJob]) -> BatchResult:
        """Submit a batch and collect the streamed records into a result.

        Raises
        ------
        Backpressure
            The server rejected the whole batch (HTTP 503); retry later.
        ServeError
            Any other non-200 answer, or a stream that ends without the
            terminating ``end`` event (a crashed server must never look
            like a short batch).
        """
        job_list = list(jobs)
        body = json.dumps(encode_batch(job_list)).encode()
        connection = self._connection()
        try:
            connection.request("POST", "/submit", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            if response.status == 503:
                document = self._parse(response.read().decode(), context="/submit")
                raise Backpressure(document.get("error", "server rejected the batch"))
            if response.status != 200:
                payload = response.read().decode()
                raise ServeError(f"POST /submit -> {response.status}: {payload.strip()}")
            records: list[JobRecord] = []
            ended = False
            for raw_line in response:
                line = raw_line.strip()
                if not line:
                    continue
                event = self._parse(line.decode(), context="/submit stream")
                kind = event.get("event")
                if kind == "record":
                    records.append(decode_record(event["record"]))
                elif kind == "end":
                    if event.get("n_records") != len(records):
                        raise ServeError(
                            f"server announced {event.get('n_records')} records, "
                            f"stream carried {len(records)}"
                        )
                    ended = True
                    break
                else:
                    raise ServeError(f"unknown stream event {kind!r}")
            if not ended:
                raise ServeError(
                    "record stream ended without the terminating 'end' event"
                )
            if len(records) != len(job_list):
                raise ServeError(
                    f"submitted {len(job_list)} jobs but received {len(records)} records"
                )
            return records_to_batch_result(records)
        finally:
            connection.close()


def submit(jobs: Iterable[FitJob], *, host: str = "127.0.0.1",
           port: int = 8765, timeout: float = 600.0) -> BatchResult:
    """One-shot convenience: submit ``jobs`` to a running fit server."""
    return Client(host, port, timeout=timeout).submit(jobs)
