"""The JSON wire format of the fit service.

One design rule: **nothing travels that the cache layer cannot fingerprint.**
Job specs reuse the canonical-options serialization of shard manifests
(``{"type": <options class>, "items": [[field, token], ...]}`` with
:func:`repro.core.options.canonical_token` encodings), datasets ship their
raw arrays (dtype + shape + base64 payload, bitwise round-trip) alongside
their :func:`~repro.cache.dataset_fingerprint`, and every decoded document is
verified against its embedded fingerprint -- a client/server build skew that
changes what a spec *means* fails loudly at decode time instead of silently
fitting something else.

Records travel without their numerical payloads (the model matrices stay on
the server, exactly like :meth:`JobRecord.to_dict` excludes them); the scalar
errors use exact ``float.hex`` tokens so a served record compares bitwise
equal to its locally computed twin.

Protocol version 2 adds a batch-level **dataset table**: the submit body
carries each unique dataset once under ``"datasets"`` (keyed by fingerprint)
and jobs reference them via ``"data_ref"``/``"reference_ref"``, so an N-job
sweep over one system ships its arrays once instead of N times.  The decoder
verifies every table entry against its fingerprint key and still accepts
version-1 documents (inline per-job datasets), deduplicating identical
inline datasets through the same :class:`~repro.cache.DatasetPool`.
"""

from __future__ import annotations

import base64
from typing import Any, Optional

import numpy as np

from repro.batch.jobs import FitJob, JobRecord
from repro.batch.results import BatchResult
from repro.batch.sharding import job_fingerprint
from repro.cache.fingerprint import combined_fingerprint, dataset_fingerprint
from repro.cache.interning import DatasetPool
from repro.core.options import options_from_items
from repro.data.dataset import FrequencyData
from repro.metrics.timedomain import TimeDomainSpec
from repro.vectorfitting.enforcement import PassivitySpec

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "ProtocolError",
    "encode_dataset",
    "decode_dataset",
    "encode_job",
    "decode_job",
    "encode_record",
    "decode_record",
    "encode_batch",
    "decode_batch",
    "request_key",
    "is_deduplicatable",
]

#: Bump whenever any wire document changes shape (the shard layer's schema
#: discipline, applied to HTTP).  Version 2 introduced the batch-level
#: dataset table; version-1 documents (inline per-job datasets) still decode.
PROTOCOL_VERSION = 2

#: Document versions :func:`decode_batch` accepts.
SUPPORTED_PROTOCOL_VERSIONS = (1, 2)


class ProtocolError(ValueError):
    """A wire document failed validation (shape, fingerprint, version)."""


# --------------------------------------------------------------------------- #
# arrays and datasets
# --------------------------------------------------------------------------- #
def _array_spec(array: np.ndarray) -> dict[str, Any]:
    """Bitwise-exact JSON encoding of one array (dtype + shape + base64 data)."""
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _array_from_spec(spec: dict[str, Any]) -> np.ndarray:
    try:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        raw = base64.b64decode(spec["data"].encode("ascii"), validate=True)
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed array spec: {exc}") from exc


def _build_dataset_document(data: FrequencyData) -> dict[str, Any]:
    return {
        "kind": data.kind,
        "reference_impedance": float(data.reference_impedance).hex(),
        "label": data.label,
        "frequencies_hz": _array_spec(data.frequencies_hz),
        "samples": _array_spec(data.samples),
        "fingerprint": dataset_fingerprint(data),
    }


def encode_dataset(data: FrequencyData, *, pool: Optional[DatasetPool] = None) -> dict[str, Any]:
    """Encode one :class:`FrequencyData` (arrays + metadata + fingerprint).

    With a :class:`~repro.cache.DatasetPool` the document is memoized by
    content fingerprint: re-encoding an interned dataset returns the stored
    document without re-hashing or re-base64-encoding the arrays (the pool's
    ``encode_hits`` counter proves it).  Treat pooled documents as immutable.
    """
    if pool is not None:
        return pool.document(data, _build_dataset_document)
    return _build_dataset_document(data)


def _build_dataset(spec: dict[str, Any]) -> FrequencyData:
    try:
        data = FrequencyData(
            _array_from_spec(spec["frequencies_hz"]),
            _array_from_spec(spec["samples"]),
            kind=spec["kind"],
            reference_impedance=float.fromhex(spec["reference_impedance"]),
            label=spec.get("label", ""),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed dataset spec: {exc}") from exc
    expected = spec.get("fingerprint")
    if expected is not None and dataset_fingerprint(data) != expected:
        raise ProtocolError(
            "decoded dataset does not match its embedded fingerprint; "
            "the payload was corrupted in transit"
        )
    return data


def decode_dataset(spec: dict[str, Any], *, pool: Optional[DatasetPool] = None) -> FrequencyData:
    """Rebuild a dataset and verify it against its embedded fingerprint.

    With a :class:`~repro.cache.DatasetPool`, documents repeated within one
    decode session (a version-1 batch inlining the same dataset per job)
    rebuild the arrays once and every repeat resolves to that single
    interned instance -- so downstream consumers, the pickle memo and the
    process executor's job table all dedupe for free.
    """
    if pool is not None:
        return pool.decoded(spec, _build_dataset)
    return _build_dataset(spec)


# --------------------------------------------------------------------------- #
# jobs
# --------------------------------------------------------------------------- #
def encode_job(job: FitJob, *, pool: Optional[DatasetPool] = None) -> dict[str, Any]:
    """Encode one :class:`FitJob`, pinned by its shard-layer fingerprint.

    The options travel in the same ``{"type", "items"}`` canonical form shard
    manifests use, so HTTP, manifest and direct-Python paths all describe a
    fit configuration with one :func:`~repro.core.options.canonical_token`
    per field.

    Without a pool the datasets inline into the spec (the version-1 shape).
    With a :class:`~repro.cache.DatasetPool` the spec carries only
    ``data_ref``/``reference_ref`` fingerprints and the datasets live in the
    pool -- :func:`encode_batch` assembles them into the batch-level table.
    """
    options = job.options
    if pool is not None:
        data_spec = {"data_ref": encode_dataset(job.data, pool=pool)["fingerprint"]}
        if job.reference is not None:
            data_spec["reference_ref"] = encode_dataset(job.reference, pool=pool)["fingerprint"]
    else:
        data_spec = {
            "data": encode_dataset(job.data),
            "reference": (
                encode_dataset(job.reference) if job.reference is not None else None
            ),
        }
    return {
        "method": job.method,
        "label": job.label,
        "tags": dict(job.tags),
        "options": (
            None
            if options is None
            else {
                "type": type(options).__name__,
                "items": [list(item) for item in options.canonical_items()],
            }
        ),
        **data_spec,
        "time_domain": (
            job.time_domain.to_dict() if job.time_domain is not None else None
        ),
        "passivity": (
            job.passivity.to_dict() if job.passivity is not None else None
        ),
        "job_id": job_fingerprint(job),
    }


def decode_job(spec: dict[str, Any], *, pool: Optional[DatasetPool] = None) -> FitJob:
    """Rebuild a job and verify its :func:`~repro.batch.sharding.job_fingerprint`.

    Datasets resolve from the spec's inline documents or -- version 2 --
    through ``data_ref``/``reference_ref`` fingerprints against ``pool``
    (populated from the batch's dataset table); an unknown ref fails loudly.
    """

    def resolve(ref_key: str, inline_key: str) -> Optional[FrequencyData]:
        ref = spec.get(ref_key)
        if ref is not None:
            if pool is None:
                raise ProtocolError(
                    f"job spec carries {ref_key!r} but no dataset table is in scope"
                )
            data = pool.get(ref)
            if data is None:
                raise ProtocolError(
                    f"job spec references unknown dataset {ref!r}; not in the batch table"
                )
            return data
        inline = spec.get(inline_key)
        if inline is None:
            return None
        return decode_dataset(inline, pool=pool)

    data = resolve("data_ref", "data")
    if data is None:
        raise ProtocolError("job spec carries neither 'data' nor 'data_ref'")
    try:
        options_spec = spec.get("options")
        job = FitJob(
            data,
            method=spec["method"],
            options=(
                None
                if options_spec is None
                else options_from_items(options_spec["type"], options_spec["items"])
            ),
            label=spec.get("label", ""),
            tags=dict(spec.get("tags") or {}),
            reference=resolve("reference_ref", "reference"),
            time_domain=(
                TimeDomainSpec(**spec["time_domain"])
                if spec.get("time_domain") is not None
                else None
            ),
            passivity=(
                PassivitySpec(**spec["passivity"])
                if spec.get("passivity") is not None
                else None
            ),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed job spec: {exc}") from exc
    expected = spec.get("job_id")
    if expected is not None and job_fingerprint(job) != expected:
        raise ProtocolError(
            f"decoded job {job.label!r} does not match its embedded fingerprint; "
            "client and server disagree on the job encoding"
        )
    return job


def is_deduplicatable(job: FitJob) -> bool:
    """Whether two content-identical submissions of ``job`` share one fit.

    Mirrors the cache layer's nondeterminism rule: unseeded random tangential
    directions make every execution a distinct draw, so such jobs must never
    coalesce onto one computation.
    """
    options = job.options
    return not (
        getattr(options, "direction_kind", None) == "random"
        and getattr(options, "direction_seed", None) is None
    )


def request_key(job: FitJob) -> str:
    """In-flight dedupe key: what the *computation* depends on, nothing more.

    Unlike :func:`~repro.batch.sharding.job_fingerprint` this excludes the
    label and tags -- they only decorate the record, so two submissions that
    differ cosmetically still await one fit.  Callers must check
    :func:`is_deduplicatable` first; nondeterministic jobs have no stable key.
    """
    from repro.cache.fingerprint import options_fingerprint

    return combined_fingerprint("serve-request", [
        "data:" + dataset_fingerprint(job.data),
        "method:" + str(job.method),
        "options:" + options_fingerprint(job.method, job.options),
        "reference:" + (
            dataset_fingerprint(job.reference) if job.reference is not None else "none"
        ),
        # appended only when set: the spec changes the record's time-domain
        # columns, so jobs differing only in it must not share a computation
        *(
            ["timedomain:{"
             + ",".join(f"{k}={v}" for k, v in job.time_domain.canonical_items())
             + "}"]
            if job.time_domain is not None
            else []
        ),
        # same rule for passivity enforcement: the spec shapes the record's
        # certificate columns
        *(
            ["passivity:{"
             + ",".join(f"{k}={v}" for k, v in job.passivity.canonical_items())
             + "}"]
            if job.passivity is not None
            else []
        ),
    ])


# --------------------------------------------------------------------------- #
# records and batches
# --------------------------------------------------------------------------- #
def _hex_or_none(value: Optional[float]) -> Optional[str]:
    return None if value is None else float(value).hex()


def _from_hex(token: Optional[str]) -> float:
    return float("nan") if token is None else float.fromhex(str(token))


def encode_record(record: JobRecord) -> dict[str, Any]:
    """Encode one record without its numerical payload, scalars bit-exact."""
    return {
        "index": record.index,
        "label": record.label,
        "method": record.method,
        "tags": dict(record.tags),
        "status": record.status,
        "order": record.order,
        "elapsed_seconds": float(record.elapsed_seconds).hex(),
        "error_vs_data": _hex_or_none(record.error_vs_data),
        "error_vs_reference": _hex_or_none(record.error_vs_reference),
        "time_domain": {
            key: float(value).hex() for key, value in record.time_domain.items()
        },
        "passivity": {
            key: float(value).hex() for key, value in record.passivity.items()
        },
        "cache_status": record.cache_status,
        "response_hits": int(record.response_hits),
        "response_misses": int(record.response_misses),
        "error_type": record.error_type,
        "error_message": record.error_message,
    }


def decode_record(spec: dict[str, Any]) -> JobRecord:
    """Rebuild a served record (``result=None``: payloads stay on the server)."""
    try:
        return JobRecord(
            index=int(spec["index"]),
            label=spec["label"],
            method=spec["method"],
            tags=dict(spec.get("tags") or {}),
            status=spec["status"],
            result=None,
            order=spec.get("order"),
            elapsed_seconds=_from_hex(spec.get("elapsed_seconds")),
            error_vs_data=_from_hex(spec.get("error_vs_data")),
            error_vs_reference=_from_hex(spec.get("error_vs_reference")),
            time_domain={
                key: float.fromhex(str(value))
                for key, value in (spec.get("time_domain") or {}).items()
            },
            passivity={
                key: float.fromhex(str(value))
                for key, value in (spec.get("passivity") or {}).items()
            },
            cache_status=spec.get("cache_status"),
            response_hits=int(spec.get("response_hits") or 0),
            response_misses=int(spec.get("response_misses") or 0),
            error_type=spec.get("error_type"),
            error_message=spec.get("error_message"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed record spec: {exc}") from exc


def encode_batch(
    jobs: list[FitJob],
    *,
    pool: Optional[DatasetPool] = None,
    inline: bool = False,
) -> dict[str, Any]:
    """The ``POST /submit`` request body for a list of jobs.

    The default (version 2) document interns every dataset into a
    batch-level ``"datasets"`` table -- each unique dataset ships once,
    jobs carry fingerprint refs.  ``inline=True`` emits the legacy
    version-1 shape (one inline dataset copy per job), kept for old servers
    and as the measuring stick the dedup benchmark compares against.
    ``pool`` optionally supplies the intern table, so callers can read its
    byte/encode counters afterwards (a fresh one is used per batch by
    default).
    """
    if inline:
        return {
            "protocol_version": 1,
            "jobs": [encode_job(job) for job in jobs],
        }
    if pool is None:
        pool = DatasetPool()
    specs = [encode_job(job, pool=pool) for job in jobs]
    datasets: dict[str, Any] = {}
    for spec in specs:
        for key in ("data_ref", "reference_ref"):
            fingerprint = spec.get(key)
            if fingerprint is not None and fingerprint not in datasets:
                datasets[fingerprint] = pool.document_for(fingerprint)
    return {
        "protocol_version": PROTOCOL_VERSION,
        "datasets": datasets,
        "jobs": specs,
    }


def decode_batch(document: dict[str, Any]) -> list[FitJob]:
    """Validate and decode a ``POST /submit`` body into jobs.

    Accepts every version in :data:`SUPPORTED_PROTOCOL_VERSIONS`: version-2
    documents resolve job refs against the batch's fingerprint-verified
    dataset table; version-1 documents decode their inline datasets through
    the same pool, so repeated datasets still intern to one instance.
    """
    if not isinstance(document, dict):
        raise ProtocolError("submit body must be a JSON object")
    version = document.get("protocol_version")
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ProtocolError(
            f"client speaks protocol {version!r}, this server speaks "
            f"{SUPPORTED_PROTOCOL_VERSIONS}"
        )
    jobs_spec = document.get("jobs")
    if not isinstance(jobs_spec, list) or not jobs_spec:
        raise ProtocolError("submit body must carry a non-empty 'jobs' list")
    pool = DatasetPool()
    if version >= 2:
        table = document.get("datasets") or {}
        if not isinstance(table, dict):
            raise ProtocolError("the 'datasets' table must be a JSON object")
        for fingerprint, spec in table.items():
            if not isinstance(spec, dict):
                raise ProtocolError(f"dataset table entry {fingerprint!r} is not an object")
            data = decode_dataset(spec, pool=pool)
            if dataset_fingerprint(data) != fingerprint:
                raise ProtocolError(
                    f"dataset table entry {fingerprint!r} decodes to a different "
                    "fingerprint; the table is corrupt"
                )
    return [decode_job(spec, pool=pool) for spec in jobs_spec]


def records_to_batch_result(records: list[JobRecord]) -> BatchResult:
    """Assemble served records into a client-side :class:`BatchResult`.

    The execution envelope is a placeholder (``executor="serve"``) -- exactly
    the fields :func:`~repro.batch.results.comparable_dict` normalises away,
    so served results compare bit-identically to local runs.
    """
    ordered = tuple(sorted(records, key=lambda record: record.index))
    return BatchResult(
        records=ordered, executor="serve", n_workers=0, chunk_size=0,
        wall_seconds=0.0,
    )
