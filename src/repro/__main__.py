"""Entry point of the ``python -m repro`` umbrella CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
