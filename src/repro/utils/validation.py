"""Argument-validation helpers shared by the public API.

All validators raise :class:`ValueError` (or :class:`TypeError` for wrong
types) with actionable messages that name the offending argument, so that the
higher-level entry points (:func:`repro.core.mfti.mfti`,
:func:`repro.vectorfitting.vector_fit`, the circuit builders, ...) can simply
delegate to them instead of re-implementing the same checks.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_finite",
    "check_positive_integer",
    "check_nonnegative_integer",
    "check_probability",
    "check_square",
    "ensure_1d",
    "ensure_2d",
    "ensure_complex_array",
    "ensure_real_array",
]


def check_positive_integer(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``.

    Parameters
    ----------
    value:
        The value to validate.  Anything accepted by :class:`numbers.Integral`
        (including numpy integer scalars) is allowed.
    name:
        Argument name used in error messages.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_integer(value, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Raise if ``array`` contains NaN or infinite entries."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    return array


def ensure_1d(array, name: str, *, dtype=None) -> np.ndarray:
    """Convert ``array`` to a 1-D numpy array, raising on higher dimensions."""
    array = np.asarray(array, dtype=dtype)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    return array


def ensure_2d(array, name: str, *, dtype=None) -> np.ndarray:
    """Convert ``array`` to a 2-D numpy array.

    One-dimensional input is interpreted as a single row; scalars become a
    ``1 x 1`` matrix.  Three or more dimensions raise :class:`ValueError`.
    """
    array = np.asarray(array, dtype=dtype)
    if array.ndim == 0:
        array = array.reshape(1, 1)
    elif array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"{name} must be at most two-dimensional, got shape {array.shape}")
    return array


def ensure_complex_array(array, name: str) -> np.ndarray:
    """Convert ``array`` to a complex numpy array (any shape), checking finiteness."""
    array = np.asarray(array, dtype=complex)
    return check_finite(array, name)


def ensure_real_array(array, name: str) -> np.ndarray:
    """Convert ``array`` to a float numpy array, rejecting significant imaginary parts."""
    array = np.asarray(array)
    if np.iscomplexobj(array):
        if np.max(np.abs(array.imag)) > 1e-9 * max(1.0, np.max(np.abs(array.real))):
            raise ValueError(f"{name} must be real-valued")
        array = array.real
    array = np.asarray(array, dtype=float)
    return check_finite(array, name)


def check_square(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array and return it."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {matrix.shape}")
    return matrix
