"""Shared numerical and validation utilities used across the :mod:`repro` package.

The helpers in this package are deliberately small and dependency-free (numpy /
scipy only) so that the higher layers -- the descriptor-system library, the
circuit substrate and the Loewner-matrix interpolation core -- can share one
well-tested implementation of the common chores: economic SVDs with rank
detection, block-diagonal assembly, Sylvester-equation solves, argument
validation and reproducible random-number handling.
"""

from repro.utils.linalg import (
    block_diag,
    economic_svd,
    numerical_rank,
    relative_residual,
    singular_value_gaps,
    solve_sylvester_diag,
    truncated_svd_projectors,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_finite,
    check_positive_integer,
    check_square,
    ensure_2d,
    ensure_complex_array,
)

__all__ = [
    "block_diag",
    "economic_svd",
    "numerical_rank",
    "relative_residual",
    "singular_value_gaps",
    "solve_sylvester_diag",
    "truncated_svd_projectors",
    "ensure_rng",
    "check_finite",
    "check_positive_integer",
    "check_square",
    "ensure_2d",
    "ensure_complex_array",
]
