"""Reproducible random-number-generator handling.

Every stochastic entry point in :mod:`repro` (random benchmark systems, noise
injection, random tangential directions, vector-fitting pole perturbation)
accepts either ``None``, an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three into
a :class:`numpy.random.Generator` so that experiments are reproducible when a
seed is supplied and independent when it is not.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a fresh non-deterministic generator, an ``int`` for a
        seeded generator, or an existing :class:`numpy.random.Generator`
        which is returned unchanged.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an integer, or a numpy.random.Generator, "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Useful when an experiment runs several stochastic stages (system
    generation, direction choice, noise) that must stay independent yet
    reproducible as a group.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    children = parent.spawn(count) if count else []
    return list(children)
