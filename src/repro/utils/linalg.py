"""Dense linear-algebra helpers shared by the Loewner interpolation core.

The Loewner framework (both the vector-format baseline and the matrix-format
method of the paper) is built out of a small number of dense operations that
recur everywhere:

* economic singular value decompositions with *rank detection* driven by a
  relative tolerance or by the largest gap in the singular-value profile
  (the paper's Fig. 1 is exactly such a profile),
* assembling block-diagonal matrices (the ``Λ``/``M`` frequency matrices and
  the real-transform ``T`` of Lemma 3.2),
* Sylvester equations with diagonal coefficient matrices (eq. 13 of the
  paper, used to cross-check the explicitly constructed Loewner matrices),
* simple residual measures used by tests and by the recursive algorithm.

Keeping them here gives a single, well-tested implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_square, ensure_2d

__all__ = [
    "block_diag",
    "economic_svd",
    "numerical_rank",
    "rank_from_gap",
    "realify",
    "relative_residual",
    "rowcol_product",
    "singular_value_gaps",
    "solve_sylvester_diag",
    "truncated_svd_projectors",
    "hermitian_part",
    "is_effectively_real",
]


def realify(matrix: np.ndarray) -> np.ndarray:
    """Stack real and imaginary parts row-wise so complex LS becomes real LS.

    A complex least-squares system ``A x = b`` with *real* unknowns ``x`` is
    equivalent to the real system ``[Re A; Im A] x = [Re b; Im b]``; this is
    the standard realification used by the vector-fitting solves.
    """
    matrix = np.asarray(matrix)
    return np.vstack([matrix.real, matrix.imag])


def rowcol_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product whose entries are *slicing-stable* bit for bit.

    Computes ``a @ b`` with the guarantee that entry ``(i, j)`` is a pure
    function of row ``a[i, :]`` and column ``b[:, j]`` alone: the product is
    evaluated through ``einsum`` (``optimize=False``), whose sum-of-products
    inner loop reduces each output entry sequentially over the inner axis,
    independent of the surrounding shape.  Computing the product of any
    row/column subset therefore yields bitwise the same entries as slicing
    the full product.  Neither BLAS ``gemm`` nor a broadcast-multiply +
    ``np.sum`` makes that guarantee (their blocking/accumulator layout, and
    therefore their summation order and rounding, depend on the operand
    shapes), which is why the incremental Loewner assembly -- which must
    grow a pencil and stay bit-identical to the from-scratch build --
    routes every ``V @ R`` / ``L @ W`` product through this kernel.  The
    contract is locked by a hypothesis property in the test-suite.

    The inner dimension of these products is the (small) port count, so the
    cost stays negligible next to the SVDs that consume the pencil.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("rowcol_product expects two matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    return np.einsum("ik,kj->ij", a, b, optimize=False)


def block_diag(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Assemble a dense block-diagonal matrix from ``blocks``.

    Unlike :func:`scipy.linalg.block_diag` this helper preserves the common
    complex dtype of the blocks and accepts an empty sequence (returning a
    ``0 x 0`` matrix), which simplifies edge cases in the Loewner assembly.
    """
    blocks = [np.atleast_2d(np.asarray(b)) for b in blocks]
    if not blocks:
        return np.zeros((0, 0))
    dtype = np.result_type(*[b.dtype for b in blocks])
    rows = sum(b.shape[0] for b in blocks)
    cols = sum(b.shape[1] for b in blocks)
    out = np.zeros((rows, cols), dtype=dtype)
    r = c = 0
    for b in blocks:
        out[r : r + b.shape[0], c : c + b.shape[1]] = b
        r += b.shape[0]
        c += b.shape[1]
    return out


def economic_svd(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Economic SVD ``matrix = U @ diag(s) @ Vh`` with singular values sorted descending.

    Returns
    -------
    (U, s, Vh):
        ``U`` has orthonormal columns, ``s`` is a 1-D array of singular values
        and ``Vh`` has orthonormal rows.
    """
    matrix = ensure_2d(matrix, "matrix")
    u, s, vh = np.linalg.svd(matrix, full_matrices=False)
    return u, s, vh


def singular_value_gaps(singular_values: np.ndarray) -> np.ndarray:
    """Ratios ``s[i] / s[i+1]`` of consecutive singular values.

    Large entries mark sharp drops in the singular-value profile.  The profile
    of ``x0*L - sL`` in the Loewner framework drops sharply at the order of the
    underlying system (paper Fig. 1), so the position of the largest gap is a
    natural automatic order estimate.
    """
    s = np.asarray(singular_values, dtype=float)
    if s.ndim != 1:
        raise ValueError("singular_values must be one-dimensional")
    if s.size < 2:
        return np.zeros(0)
    denom = np.where(s[1:] > 0, s[1:], np.finfo(float).tiny)
    return s[:-1] / denom


def numerical_rank(
    singular_values: np.ndarray,
    *,
    rtol: float = 1e-10,
    atol: float = 0.0,
) -> int:
    """Number of singular values above ``max(rtol * s_max, atol)``."""
    s = np.asarray(singular_values, dtype=float)
    if s.size == 0:
        return 0
    threshold = max(rtol * float(s[0]), atol)
    return int(np.count_nonzero(s > threshold))


def rank_from_gap(singular_values: np.ndarray, *, min_gap: float = 1e3) -> int:
    """Estimate rank as the index of the largest singular-value gap.

    If no consecutive ratio exceeds ``min_gap`` the full length is returned
    (i.e. the profile is judged to have no sharp drop, which is exactly the
    VFTI situation in the paper's Fig. 1 for under-sampled data).
    """
    s = np.asarray(singular_values, dtype=float)
    gaps = singular_value_gaps(s)
    if gaps.size == 0:
        return int(s.size)
    best = int(np.argmax(gaps))
    if gaps[best] < min_gap:
        return int(s.size)
    return best + 1


def truncated_svd_projectors(
    matrix: np.ndarray,
    rank: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Left/right projectors from a rank-``rank`` truncated SVD.

    Returns ``(Y, s, X)`` with ``Y`` of shape ``(rows, rank)``, ``X`` of shape
    ``(cols, rank)`` and ``s`` the retained singular values, such that
    ``matrix ~= Y @ diag(s) @ X.conj().T``.
    """
    u, s, vh = economic_svd(matrix)
    rank = int(rank)
    if rank < 0 or rank > s.size:
        raise ValueError(f"rank must lie in [0, {s.size}], got {rank}")
    return u[:, :rank], s[:rank], vh[:rank, :].conj().T


def solve_sylvester_diag(
    m_diag: np.ndarray,
    lambda_diag: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``X @ diag(lambda_diag) - diag(m_diag) @ X = rhs`` element-wise.

    This is the Sylvester equation satisfied by the (shifted) Loewner matrix
    (paper eq. 13) when the left and right frequency matrices are diagonal.
    The solution is simply ``X[i, j] = rhs[i, j] / (lambda[j] - m[i])`` and it
    exists iff the left and right frequency sets are disjoint.
    """
    m_diag = np.asarray(m_diag, dtype=complex).ravel()
    lambda_diag = np.asarray(lambda_diag, dtype=complex).ravel()
    rhs = ensure_2d(rhs, "rhs")
    if rhs.shape != (m_diag.size, lambda_diag.size):
        raise ValueError(
            f"rhs shape {rhs.shape} does not match diag sizes ({m_diag.size}, {lambda_diag.size})"
        )
    denom = lambda_diag[np.newaxis, :] - m_diag[:, np.newaxis]
    if np.any(np.abs(denom) == 0.0):
        raise ValueError("left and right frequency sets must be disjoint")
    return rhs / denom


def relative_residual(actual: np.ndarray, expected: np.ndarray) -> float:
    """Frobenius-norm relative residual ``||actual - expected|| / ||expected||``.

    Falls back to the absolute residual when ``expected`` is (numerically)
    zero so the result is always finite.
    """
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    denom = np.linalg.norm(expected)
    num = np.linalg.norm(actual - expected)
    if denom == 0.0:
        return float(num)
    return float(num / denom)


def hermitian_part(matrix: np.ndarray) -> np.ndarray:
    """Hermitian part ``(M + M*)/2`` of a square matrix."""
    matrix = check_square(np.asarray(matrix, dtype=complex), "matrix")
    return 0.5 * (matrix + matrix.conj().T)


def is_effectively_real(matrix: np.ndarray, *, rtol: float = 1e-8) -> bool:
    """True when the imaginary part of ``matrix`` is negligible relative to its norm."""
    matrix = np.asarray(matrix)
    if not np.iscomplexobj(matrix):
        return True
    scale = np.max(np.abs(matrix)) if matrix.size else 0.0
    if scale == 0.0:
        return True
    return bool(np.max(np.abs(matrix.imag)) <= rtol * scale)
