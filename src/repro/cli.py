"""``python -m repro`` -- the umbrella command line of the package.

One coherent CLI over the four ways work gets executed (the API-consolidation
counterpart of :mod:`repro.api`):

* ``fit`` -- one macromodel fit of a Touchstone file::

      python -m repro fit board.s4p --method mfti --options '{"block_size": 2}'

* ``batch`` -- run a named workload grid (:data:`repro.experiments.
  workloads.WORKLOADS`) through a :class:`~repro.batch.engine.BatchEngine`::

      python -m repro batch --workload mixed_batch_jobs --executor thread

* ``shard plan|run|merge|dispatch`` -- the cross-machine cycle of
  :mod:`repro.batch.sharding`, plus the one-call dispatcher of
  :mod:`repro.serve.dispatcher` (``dispatch`` = plan + launch subprocess
  runners + retry + merge)::

      python -m repro shard dispatch --workload mixed_batch_jobs --shards 4 \\
          --out-dir sharded/

* ``serve`` -- the asyncio fit service of :mod:`repro.serve`::

      python -m repro serve --port 8765 --executor thread --workers 4

``python -m repro.batch.shard`` remains as a thin deprecated alias that
forwards here.

Exit codes: 0 on success, 1 when ``--fail-on-job-errors`` sees failed
records, 2 on validation/dispatch errors, argparse's usual 2 on bad usage.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from repro.backends import BACKEND_NAMES
from repro.batch.engine import EXECUTORS, BatchEngine
from repro.batch.sharding import ShardError

__all__ = ["build_parser", "main"]


def _engine_config_from_args(args: argparse.Namespace) -> dict:
    """The canonical engine-config dict (one encoding across CLI/HTTP/Python)."""
    config: dict = {}
    if getattr(args, "executor", None) is not None:
        config["executor"] = args.executor
    if getattr(args, "workers", None) is not None:
        config["max_workers"] = args.workers
    if getattr(args, "chunk_size", None) is not None:
        config["chunk_size"] = args.chunk_size
    if getattr(args, "backend", None) is not None:
        config["backend"] = args.backend
    if getattr(args, "cache_dir", None):
        config["cache_dir"] = args.cache_dir
    return config


def _add_engine_arguments(parser: argparse.ArgumentParser, *,
                          with_cache: bool = True) -> None:
    parser.add_argument("--executor", default=None, choices=EXECUTORS,
                        help="batch executor (default: REPRO_BATCH_EXECUTOR or serial)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the pooled executors")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="jobs per engine chunk (default: automatic)")
    parser.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                        help="array backend for the kernel modules "
                             "(default: REPRO_ARRAY_BACKEND or numpy)")
    if with_cache:
        parser.add_argument("--cache-dir", default=None,
                            help="attach a disk-backed FitCache rooted here")


def _parse_json_object(raw: Optional[str], flag: str) -> dict:
    if not raw:
        return {}
    try:
        value = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ShardError(f"{flag} must be a JSON object: {exc}") from exc
    if not isinstance(value, dict):
        raise ShardError(f"{flag} must be a JSON object, got {type(value).__name__}")
    return value


# --------------------------------------------------------------------------- #
# fit
# --------------------------------------------------------------------------- #
def cmd_fit(args: argparse.Namespace) -> int:
    from repro.core._pipeline import frontend_spec
    from repro.data import read_touchstone

    try:
        data = read_touchstone(args.touchstone)
        reference = read_touchstone(args.reference) if args.reference else None
    except (OSError, ValueError) as exc:
        raise ShardError(f"cannot read Touchstone input: {exc}") from exc
    spec = frontend_spec(args.method)
    option_kwargs = _parse_json_object(args.options, "--options")
    try:
        options = spec.options_type(**option_kwargs) if option_kwargs else None
    except (TypeError, ValueError) as exc:
        raise ShardError(
            f"invalid --options for method {args.method!r}: {exc}") from exc

    passivity = None
    if args.passivity is not None:
        from repro.vectorfitting.enforcement import PassivitySpec

        passivity_kwargs = _parse_json_object(args.passivity, "--passivity")
        try:
            passivity = PassivitySpec(**passivity_kwargs)
        except (TypeError, ValueError) as exc:
            raise ShardError(f"invalid --passivity spec: {exc}") from exc

    from repro.batch.jobs import FitJob, run_job

    try:
        job = FitJob(data, method=args.method, options=options,
                     reference=reference, passivity=passivity)
    except (TypeError, ValueError) as exc:
        raise ShardError(f"invalid fit job: {exc}") from exc
    record = run_job(0, job, backend=args.backend)
    if not record.ok:
        print(f"error: fit failed: {record.error_type}: {record.error_message}",
              file=sys.stderr)
        return 1
    print(f"{args.method} fit of {args.touchstone}: order={record.order}, "
          f"error vs data={record.error_vs_data:.3e}"
          + (f", error vs reference={record.error_vs_reference:.3e}"
             if reference is not None else "")
          + f", {record.elapsed_seconds:.3f}s")
    if record.passivity:
        print("passivity certificate: "
              f"margin={record.passivity['worst_margin']:.3e}, "
              f"perturbation={record.passivity['perturbation_norm']:.3e}, "
              f"iterations={record.passivity['iterations']:.0f}, "
              f"error delta={record.passivity['error_delta']:.3e}")
    return 0


# --------------------------------------------------------------------------- #
# batch
# --------------------------------------------------------------------------- #
def cmd_batch(args: argparse.Namespace) -> int:
    from repro.experiments.workloads import workload_jobs

    kwargs = _parse_json_object(args.workload_args, "--workload-args")
    try:
        jobs = workload_jobs(args.workload, **kwargs)
    except (TypeError, ValueError) as exc:
        raise ShardError(f"cannot build workload {args.workload!r}: {exc}") from exc
    try:
        engine = BatchEngine.from_config(_engine_config_from_args(args))
    except ValueError as exc:
        raise ShardError(f"invalid engine configuration: {exc}") from exc
    result = engine.run(jobs)
    if args.out:
        result.save_json(args.out)
    print(result.summary_table(title=(
        f"{args.workload}: {result.n_ok}/{result.n_jobs} ok, "
        f"executor={result.executor}, wall={result.wall_seconds:.3f}s"
        + (f" -> {args.out}" if args.out else "")
    )))
    if args.fail_on_job_errors and result.n_failed:
        print(f"error: {result.n_failed} job(s) failed", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------- #
# serve
# --------------------------------------------------------------------------- #
def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.app import FitService, serve_forever

    try:
        engine = BatchEngine.from_config(_engine_config_from_args(args))
    except ValueError as exc:
        raise ShardError(f"invalid engine configuration: {exc}") from exc
    service = FitService(engine, max_pending=args.max_pending)

    def announce(server) -> None:
        print(f"serving on http://{server.host}:{server.port} "
              f"(engine={engine.executor}, max_pending={args.max_pending}); "
              f"POST /shutdown to stop", flush=True)

    try:
        asyncio.run(serve_forever(service, host=args.host, port=args.port,
                                  ready=announce))
    except KeyboardInterrupt:
        pass
    return 0


# --------------------------------------------------------------------------- #
# parser assembly
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    from repro.batch.shard import register_shard_commands

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0],
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fit = commands.add_parser("fit", help="fit one Touchstone file")
    fit.add_argument("touchstone", help="input Touchstone (.sNp) file")
    fit.add_argument("--method", default="mfti",
                     help="registered front-end (mfti, vfti, mfti-recursive)")
    fit.add_argument("--options", default=None,
                     help="JSON object of options for the method")
    fit.add_argument("--reference", default=None,
                     help="optional validation Touchstone file")
    fit.add_argument("--passivity", default=None,
                     help="JSON object of PassivitySpec fields ('{}' for the "
                          "defaults): passivity-enforce the fitted model and "
                          "print its certificate (requires --reference)")
    fit.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                     help="array backend for the kernel modules "
                          "(default: REPRO_ARRAY_BACKEND or numpy)")
    fit.set_defaults(handler=cmd_fit)

    batch = commands.add_parser(
        "batch", help="run a named workload grid through a BatchEngine")
    batch.add_argument("--workload", required=True,
                       help="named grid from repro.experiments.workloads.WORKLOADS")
    batch.add_argument("--workload-args", default=None,
                       help="JSON object of kwargs for the workload builder")
    _add_engine_arguments(batch)
    batch.add_argument("--out", default=None,
                       help="write the BatchResult JSON export here")
    batch.add_argument("--fail-on-job-errors", action="store_true",
                       help="exit 1 when any record has status 'failed'")
    batch.set_defaults(handler=cmd_batch)

    shard = commands.add_parser(
        "shard", help="plan / run / merge / dispatch a sharded batch")
    register_shard_commands(shard.add_subparsers(dest="shard_command",
                                                 required=True))

    serve = commands.add_parser("serve", help="start the asyncio fit service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--max-pending", type=int, default=32,
                       help="admission bound on in-flight computations")
    _add_engine_arguments(serve)
    serve.set_defaults(handler=cmd_serve)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    from repro.serve.dispatcher import DispatchError

    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ShardError, DispatchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
