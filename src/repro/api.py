"""The stable public surface of :mod:`repro`.

**This module is the compatibility contract.**  Everything imported here --
and re-exported from ``repro`` itself -- is public API: signatures and
behaviour only change with a deliberate, documented break.  Anything *not*
listed here (module-private helpers, the ``_pipeline`` internals, the wire
parsers in :mod:`repro.serve.protocol`, the manifest plumbing of
:mod:`repro.batch.sharding` beyond the two functions below) is internal:
useful to read, free to change between versions.

The surface, by layer:

* **Fitting** -- :func:`~repro.core.run_fit` (one dataset, one registered
  method) and the options classes it accepts.
* **Batching** -- :class:`~repro.batch.engine.BatchEngine` over
  :class:`~repro.batch.jobs.FitJob`; engines are describable by one
  canonical config dict (:meth:`BatchEngine.from_config` /
  :meth:`~BatchEngine.to_config`) shared with the CLI and the serve
  protocol.
* **Caching** -- :class:`~repro.cache.FitCache` with its memory/disk stores.
* **Sharding** -- :func:`~repro.batch.sharding.plan_shards` (optionally
  runtime-weighted) and :func:`~repro.batch.sharding.merge_shard_results`;
  the manifest cycle in between is driven by ``python -m repro shard``.
* **Serving** -- :class:`~repro.serve.client.Client` /
  :func:`~repro.serve.client.submit` against a ``python -m repro serve``
  server (or an embedded :class:`~repro.serve.app.ThreadedServer`).
"""

from repro.batch.engine import BatchEngine
from repro.batch.jobs import FitJob, JobRecord
from repro.batch.results import BatchResult
from repro.batch.sharding import merge_shard_results, plan_shards
from repro.cache.fitcache import FitCache
from repro.cache.stores import DiskStore, MemoryStore
from repro.core import run_fit
from repro.core.options import (
    InterpolationOptions,
    MftiOptions,
    RecursiveOptions,
    VftiOptions,
)
from repro.serve.client import Client, submit

__all__ = [
    "BatchEngine",
    "BatchResult",
    "Client",
    "DiskStore",
    "FitCache",
    "FitJob",
    "InterpolationOptions",
    "JobRecord",
    "MemoryStore",
    "MftiOptions",
    "RecursiveOptions",
    "VftiOptions",
    "merge_shard_results",
    "plan_shards",
    "run_fit",
    "submit",
]
