"""Pluggable array backends (`xp` shim) for the kernel modules.

The three kernel modules (``systems/evaluation.py``, ``core/assembly.py``,
``systems/spectral.py``) concentrate essentially all FLOPs of the
reproduction into pure batched array ops.  This package makes the array
library that executes them selectable:

* ``numpy`` -- always available; adapters delegate *literally* to
  ``numpy.linalg`` / ``numpy.fft`` / ``scipy.linalg`` so the call
  sequence -- and therefore every result byte, golden fixture, cache
  fingerprint, and shard merge -- is identical to the pre-shim code.
* ``cupy`` / ``torch`` -- optional, import-guarded; probe them with
  :func:`available_backends`.  Device results follow the device BLAS and
  are tolerance-band territory, not bitwise-pinned.

Selection precedence (first hit wins):

1. explicit ``backend=`` kwarg on a kernel or :func:`use_backend` scope
   (``BatchEngine``/``run_job`` install the engine's backend this way),
2. the ``REPRO_ARRAY_BACKEND`` environment variable,
3. ``numpy``.

The backend is an *execution detail*: it never participates in dataset
fingerprints, ``job_fingerprint``, or serve ``request_key``.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from typing import Iterator, Optional, Tuple, Union

from repro.backends.base import ArrayBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "ENV_VARIABLE",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "use_backend",
]

ENV_VARIABLE = "REPRO_ARRAY_BACKEND"

BACKEND_NAMES: Tuple[str, ...] = ("numpy", "cupy", "torch")

_FACTORY_MODULES = {
    "numpy": "repro.backends.numpy_backend",
    "cupy": "repro.backends.cupy_backend",
    "torch": "repro.backends.torch_backend",
}

_instances: dict = {}
_unavailable: dict = {}
_active: contextvars.ContextVar = contextvars.ContextVar(
    "repro_array_backend", default=None
)


class BackendUnavailableError(RuntimeError):
    """A known backend name whose library is not importable here."""


def _load(name: str) -> ArrayBackend:
    import importlib

    module = importlib.import_module(_FACTORY_MODULES[name])
    return module.make_backend()


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Return the named backend, importing (and caching) it on first use.

    ``None`` resolves through the active :func:`use_backend` scope, then
    ``REPRO_ARRAY_BACKEND``, then ``numpy`` (see :func:`resolve_backend`).

    Raises
    ------
    ValueError
        For a name outside :data:`BACKEND_NAMES`.
    BackendUnavailableError
        For a known name whose library is not installed.
    """
    if name is None:
        return resolve_backend(None)
    if isinstance(name, ArrayBackend):
        return name
    if name not in _FACTORY_MODULES:
        raise ValueError(
            f"unknown array backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if name not in _instances:
        if name in _unavailable:
            raise BackendUnavailableError(_unavailable[name])
        try:
            _instances[name] = _load(name)
        except ImportError as exc:
            _unavailable[name] = (
                f"array backend {name!r} is not available: {exc}. Install the "
                f"library, or pick a backend from available_backends() "
                f"(e.g. unset {ENV_VARIABLE})."
            )
            raise BackendUnavailableError(_unavailable[name]) from exc
    return _instances[name]


def available_backends() -> Tuple[str, ...]:
    """Names from :data:`BACKEND_NAMES` whose libraries import here."""
    names = []
    for name in BACKEND_NAMES:
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def resolve_backend(
    backend: Union[ArrayBackend, str, None],
) -> ArrayBackend:
    """Resolve a kernel's ``backend=`` argument to an :class:`ArrayBackend`.

    Precedence: explicit argument > active :func:`use_backend` scope >
    ``REPRO_ARRAY_BACKEND`` environment variable > ``numpy``.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is not None:
        return get_backend(backend)
    active = _active.get()
    if active is not None:
        return active
    env = os.environ.get(ENV_VARIABLE)
    if env:
        return get_backend(env)
    return get_backend("numpy")


@contextlib.contextmanager
def use_backend(backend: Union[ArrayBackend, str, None]) -> Iterator[ArrayBackend]:
    """Scope in which kernels called without ``backend=`` use this backend.

    ``None`` is a no-op scope (kernels keep resolving env-then-numpy),
    which lets callers write ``with use_backend(maybe_none):`` without
    branching.
    """
    if backend is None:
        yield resolve_backend(None)
        return
    resolved = get_backend(backend) if isinstance(backend, str) else backend
    token = _active.set(resolved)
    try:
        yield resolved
    finally:
        _active.reset(token)
