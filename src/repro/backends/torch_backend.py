"""Optional PyTorch backend -- import-guarded, NumPy-spelling wrapper.

``torch``'s namespace is close to, but not exactly, NumPy's; the
:class:`_TorchNamespace` below maps the NumPy spellings the kernel
modules use (``empty(..., dtype=complex)``, ``transpose(a, axes)``,
``tensordot(..., axes=...)``, ``broadcast_to``, ``newaxis``) onto their
torch equivalents so kernels stay single-source.  Linear-algebra
adapters delegate to ``torch.linalg`` with NumPy calling conventions.

Arrays live wherever :func:`make_backend`'s ``device`` puts them
(``"cuda"`` when available, else CPU); kernels transfer only at
entry/exit.  Like CuPy, results follow the device's BLAS arithmetic and
are tolerance-band territory, not bitwise-pinned.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ArrayBackend

__all__ = ["make_backend"]


class _TorchNamespace:
    """NumPy-spelling facade over ``torch`` for the kernel modules."""

    def __init__(self, torch, device):
        self._torch = torch
        self._device = device
        self.newaxis = None
        self.pi = np.pi

    def _dtype(self, dtype):
        if dtype is None:
            return None
        mapping = {
            complex: self._torch.complex128,
            float: self._torch.float64,
            np.dtype(np.complex128): self._torch.complex128,
            np.dtype(np.float64): self._torch.float64,
            np.dtype(np.complex64): self._torch.complex64,
            np.dtype(np.float32): self._torch.float32,
        }
        try:
            return mapping[dtype]
        except (KeyError, TypeError):
            return mapping[np.dtype(dtype)]

    def asarray(self, obj, dtype=None):
        return self._torch.as_tensor(obj, dtype=self._dtype(dtype), device=self._device)

    def empty(self, shape, dtype=None):
        return self._torch.empty(shape, dtype=self._dtype(dtype), device=self._device)

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(shape, dtype=self._dtype(dtype), device=self._device)

    def ones(self, shape, dtype=None):
        return self._torch.ones(shape, dtype=self._dtype(dtype), device=self._device)

    def concatenate(self, tensors, axis=0):
        return self._torch.cat(tuple(tensors), dim=axis)

    def stack(self, tensors, axis=0):
        return self._torch.stack(tuple(tensors), dim=axis)

    def transpose(self, tensor, axes):
        return tensor.permute(*axes)

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def tensordot(self, a, b, axes):
        if isinstance(axes, tuple):
            dims = ([axes[0]], [axes[1]]) if isinstance(axes[0], int) else axes
        else:
            dims = axes
        return self._torch.tensordot(a, b, dims=dims)

    def broadcast_to(self, tensor, shape):
        return self._torch.broadcast_to(tensor, shape)

    def abs(self, tensor):
        return self._torch.abs(tensor)

    def isfinite(self, tensor):
        return self._torch.isfinite(tensor)

    def sum(self, tensor, axis=None):
        if axis is None:
            return self._torch.sum(tensor)
        return self._torch.sum(tensor, dim=axis)

    def conj(self, tensor):
        return self._torch.conj(tensor)


def make_backend(device=None) -> ArrayBackend:
    """Build the ``torch`` backend record.

    Parameters
    ----------
    device:
        Torch device for kernel arrays; defaults to ``"cuda"`` when
        available, else ``"cpu"``.

    Raises
    ------
    ImportError
        If ``torch`` is not installed; the registry turns this into a
        clear "backend unavailable" error.
    """
    import contextlib

    import torch

    if device is None:
        device = "cuda" if torch.cuda.is_available() else "cpu"
    xp = _TorchNamespace(torch, device)

    def _asarray(obj, dtype=None):
        return xp.asarray(obj, dtype=dtype)

    def _to_numpy(tensor):
        if isinstance(tensor, torch.Tensor):
            return tensor.detach().cpu().numpy()
        return np.asarray(tensor)

    def _lstsq(a, b):
        # gelsd matches NumPy's driver (and reports singular values) but
        # is CPU-only; on CUDA fall back to gels and report an empty
        # spectrum so callers can tell no conditioning estimate exists.
        if a.device.type == "cpu":
            out = torch.linalg.lstsq(a, b, driver="gelsd")
            return out.solution, out.residuals, int(out.rank), out.singular_values
        out = torch.linalg.lstsq(a, b, driver="gels")
        rank = min(a.shape[-2], a.shape[-1])
        empty_sv = torch.empty(0, dtype=a.real.dtype, device=a.device)
        return out.solution, out.residuals, rank, empty_sv

    def _solve_triangular(a, b, lower=False):
        rhs = b if b.ndim >= 2 else b[:, None]
        solution = torch.linalg.solve_triangular(a, rhs, upper=not lower)
        return solution if b.ndim >= 2 else solution[:, 0]

    def _lu_factor(a):
        lu, pivots = torch.linalg.lu_factor(a)
        return lu, pivots

    def _lu_solve(lu_and_piv, b):
        lu, pivots = lu_and_piv
        rhs = b if b.ndim >= 2 else b[:, None]
        solution = torch.linalg.lu_solve(lu, pivots, rhs)
        return solution if b.ndim >= 2 else solution[:, 0]

    def _irfft(a, n=None, axis=-1):
        return torch.fft.irfft(a, n=n, dim=axis)

    def _qr(a):
        q, r = torch.linalg.qr(a, mode="reduced")
        return q, r

    def _svd(a, full_matrices=True):
        return torch.linalg.svd(a, full_matrices=full_matrices)

    linalg_errors = (np.linalg.LinAlgError, torch.linalg.LinAlgError)

    return ArrayBackend(
        name="torch",
        xp=xp,
        asarray=_asarray,
        to_numpy=_to_numpy,
        solve=torch.linalg.solve,
        lstsq=_lstsq,
        qr=_qr,
        eig=torch.linalg.eig,
        eigvals=torch.linalg.eigvals,
        svd=_svd,
        cholesky=torch.linalg.cholesky,
        solve_triangular=_solve_triangular,
        lu_factor=_lu_factor,
        lu_solve=_lu_solve,
        irfft=_irfft,
        errstate=lambda **kwargs: contextlib.nullcontext(),
        LinAlgError=linalg_errors,
    )
