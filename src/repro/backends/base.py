"""The :class:`ArrayBackend` adapter record every backend module fills in.

The array-API standard covers the bulk of what the kernel modules need
(elementwise ops, ``matmul``, ``reshape``, broadcasting), so a backend is
mostly just its array namespace (``xp``).  Where the standard has gaps --
``linalg.lstsq``, ``qr``, ``eig``, ``svd``, ``cholesky``, triangular/LU
solves, ``fft.irfft`` -- each backend supplies an explicit adapter with
NumPy's calling convention, so kernel code is written once against this
record and runs unchanged on every backend.

Two contracts matter for reproducibility:

* For the ``numpy`` backend every adapter **is** the corresponding
  ``numpy.linalg`` / ``numpy.fft`` / ``scipy.linalg`` callable and
  ``asarray`` / ``to_numpy`` are the identity on ndarrays, so a kernel
  threaded through the shim executes the exact same call sequence as the
  pre-shim code -- bitwise identical results, fingerprints and goldens.
* Device transfer happens only through :meth:`ArrayBackend.asarray` (host
  to device, at kernel entry) and :meth:`ArrayBackend.to_numpy` (device to
  host, at kernel exit); kernels never move data mid-computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ArrayBackend"]


@dataclass(frozen=True)
class ArrayBackend:
    """One pluggable array backend: a namespace plus NumPy-convention adapters.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"cupy"``, ``"torch"``).
    xp:
        The array namespace kernels compute in (``numpy``, ``cupy``, or a
        thin wrapper mapping NumPy spellings onto ``torch``).  For the
        ``numpy`` backend this *is* the ``numpy`` module.
    asarray:
        Host (or device) data to a device array of this backend.  Identity
        on ndarrays for ``numpy``.
    to_numpy:
        Device array back to a host :class:`numpy.ndarray`.  Identity on
        ndarrays for ``numpy``.
    solve, lstsq, qr, eig, eigvals, svd, cholesky:
        ``numpy.linalg``-convention adapters (``lstsq`` takes ``(a, b)``
        and returns the NumPy 4-tuple with an ``int`` rank; ``qr`` returns
        the reduced ``(q, r)``; ``svd`` the thin ``(u, s, vh)``).
    solve_triangular:
        ``scipy.linalg.solve_triangular`` convention (``lower`` keyword).
    lu_factor, lu_solve:
        ``scipy.linalg`` LU convention (``lu_solve((lu, piv), b)``).
    irfft:
        ``numpy.fft.irfft`` convention (``n`` and ``axis`` keywords).
    errstate:
        Context manager with :func:`numpy.errstate` semantics (a no-op on
        backends without floating-point error state control).
    LinAlgError:
        Tuple of exception types the backend's factorizations raise on
        singular/ill-posed inputs (always includes
        :class:`numpy.linalg.LinAlgError`).
    """

    name: str
    xp: Any
    asarray: Callable[..., Any]
    to_numpy: Callable[[Any], Any]
    solve: Callable[..., Any]
    lstsq: Callable[..., Any]
    qr: Callable[..., Any]
    eig: Callable[..., Any]
    eigvals: Callable[..., Any]
    svd: Callable[..., Any]
    cholesky: Callable[..., Any]
    solve_triangular: Callable[..., Any]
    lu_factor: Callable[..., Any]
    lu_solve: Callable[..., Any]
    irfft: Callable[..., Any]
    errstate: Callable[..., Any]
    LinAlgError: tuple = field(default_factory=tuple)

    @property
    def is_numpy(self) -> bool:
        """Whether this is the bitwise-pinned host backend."""
        return self.name == "numpy"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayBackend({self.name!r})"
