"""The always-available host backend: literal NumPy/SciPy delegation.

Every adapter here *is* the corresponding ``numpy.linalg`` /
``numpy.fft`` / ``scipy.linalg`` callable (or a trivial keyword-fixing
lambda over it), ``xp`` is the ``numpy`` module itself, and
``asarray`` / ``to_numpy`` are identity on ndarrays.  A kernel threaded
through this backend therefore executes the exact same NumPy call
sequence as the pre-shim code -- bitwise-identical outputs, so golden
fixtures, cache fingerprints, and shard merges are unaffected by the
shim.  The property suite in ``tests/test_backends.py`` pins this.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.backends.base import ArrayBackend

__all__ = ["make_backend"]


def _lstsq(a, b):
    solution, residuals, rank, sv = np.linalg.lstsq(a, b, rcond=None)
    return solution, residuals, int(rank), sv


def make_backend() -> ArrayBackend:
    """Build the ``numpy`` backend record (importable unconditionally)."""
    return ArrayBackend(
        name="numpy",
        xp=np,
        asarray=np.asarray,
        to_numpy=np.asarray,
        solve=np.linalg.solve,
        lstsq=_lstsq,
        qr=np.linalg.qr,
        eig=np.linalg.eig,
        eigvals=np.linalg.eigvals,
        svd=np.linalg.svd,
        cholesky=np.linalg.cholesky,
        solve_triangular=scipy.linalg.solve_triangular,
        lu_factor=scipy.linalg.lu_factor,
        lu_solve=scipy.linalg.lu_solve,
        irfft=np.fft.irfft,
        errstate=np.errstate,
        LinAlgError=(np.linalg.LinAlgError,),
    )
