"""Optional CuPy (CUDA) backend -- import-guarded, NumPy-compatible.

CuPy mirrors the NumPy namespace closely, so ``xp`` is the ``cupy``
module itself and most adapters delegate straight to ``cupy.linalg`` /
``cupy.fft`` / ``cupyx.scipy.linalg``.  Gaps in CuPy's LAPACK coverage
(general non-symmetric ``eig``/``eigvals``) round-trip through the host:
correctness-preserving, but those entry points stay host-speed.  Kernels
confine transfers to entry (``asarray``) and exit (``to_numpy``), so
chained device ops never bounce through host memory.

Results follow cuSOLVER/cuBLAS arithmetic, not the host LAPACK: they are
*not* bitwise-pinned and are only appropriate where the existing
tolerance-band gates apply (see README "Backends").
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ArrayBackend

__all__ = ["make_backend"]


def make_backend() -> ArrayBackend:
    """Build the ``cupy`` backend record.

    Raises
    ------
    ImportError
        If ``cupy`` (or ``cupyx.scipy.linalg``) is not installed; the
        registry turns this into a clear "backend unavailable" error.
    """
    import contextlib

    import cupy
    import cupyx.scipy.linalg as cupyx_linalg

    def _lstsq(a, b):
        solution, residuals, rank, sv = cupy.linalg.lstsq(a, b, rcond=None)
        return solution, residuals, int(rank), sv

    def _eig(a):
        # cuSOLVER has no general non-symmetric eig; round-trip via host.
        w, v = np.linalg.eig(cupy.asnumpy(a))
        return cupy.asarray(w), cupy.asarray(v)

    def _eigvals(a):
        return cupy.asarray(np.linalg.eigvals(cupy.asnumpy(a)))

    return ArrayBackend(
        name="cupy",
        xp=cupy,
        asarray=cupy.asarray,
        to_numpy=cupy.asnumpy,
        solve=cupy.linalg.solve,
        lstsq=_lstsq,
        qr=cupy.linalg.qr,
        eig=_eig,
        eigvals=_eigvals,
        svd=cupy.linalg.svd,
        cholesky=cupy.linalg.cholesky,
        solve_triangular=cupyx_linalg.solve_triangular,
        lu_factor=cupyx_linalg.lu_factor,
        lu_solve=cupyx_linalg.lu_solve,
        irfft=cupy.fft.irfft,
        errstate=lambda **kwargs: contextlib.nullcontext(),
        LinAlgError=(np.linalg.LinAlgError,),
    )
