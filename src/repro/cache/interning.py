"""Content-addressed dataset interning and the cross-job response cache.

Every scenario grid shares a handful of :class:`~repro.data.dataset.FrequencyData`
objects across dozens of jobs, yet each transport boundary used to re-ship
and each job used to re-evaluate them.  This module provides the shared
building blocks that fix that, keyed on the existing SHA-256 content
fingerprints:

* :class:`DatasetPool` -- an intern table keyed by
  :func:`~repro.cache.fingerprint.dataset_fingerprint` with byte accounting
  and a memoized wire-document codec (so the serve protocol encodes and
  decodes each unique dataset once, not once per job).
* :class:`JobTable` -- a pickle-level codec that splits a chunk of
  ``(index, FitJob)`` pairs into (unique datasets, jobs-with-fingerprint-refs)
  so the process executor ships each unique dataset once per chunk.
* :class:`SharedDatasetArena` -- optional zero-copy transport for the large
  arrays via :mod:`multiprocessing.shared_memory`, with a plain-pickle
  fallback per dataset and fingerprint-verified, bitwise-identical
  reconstruction on the worker side.
* :class:`ResponseCache` / :class:`ResponseTally` -- the cross-job response
  cache keyed on ``(system fingerprint, grid fingerprint)`` memoizing
  reference sweeps, plus the model-independent SVD norms of a reference
  dataset, so jobs sharing a validation dataset reuse one evaluation.

Nothing here changes any numerical path: cached values are the same arrays
the direct computation would produce (computed once, frozen read-only), so
results stay bitwise-identical with interning on or off.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.fingerprint import (
    dataset_fingerprint,
    grid_fingerprint,
    system_fingerprint,
)
from repro.data.dataset import FrequencyData

__all__ = [
    "DatasetPool",
    "JobTable",
    "SharedDatasetArena",
    "ResponseCache",
    "ResponseTally",
    "dataset_nbytes",
]


def dataset_nbytes(data: FrequencyData) -> int:
    """Payload size of one dataset: frequency and sample array bytes."""
    return int(data.frequencies_hz.nbytes) + int(data.samples.nbytes)


class DatasetPool:
    """Intern table for datasets, keyed by content fingerprint.

    ``intern`` maps a dataset to its fingerprint and keeps the *first*
    instance seen for each; ``get`` resolves a fingerprint back to that
    instance.  The pool also memoizes wire documents (the base64 encoding
    used by :mod:`repro.serve.protocol`) per fingerprint, so encoding a
    24-job batch over one dataset hashes and base64-encodes it once --
    ``encode_hits``/``encode_misses`` count exactly that.

    Byte accounting: ``total_bytes`` sums the payload of every intern call
    (what a naive per-job transport would ship), ``unique_bytes`` sums each
    unique dataset once; the difference is what interning saved.

    Thread-safe; safe to share across a server's request handlers.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._datasets: Dict[str, FrequencyData] = {}
        self._documents: Dict[str, dict] = {}
        self.interned = 0
        self.total_bytes = 0
        self.unique_bytes = 0
        self.encode_hits = 0
        self.encode_misses = 0
        self.decode_hits = 0
        self.decode_misses = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._datasets

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    @property
    def bytes_saved(self) -> int:
        """Payload bytes a per-consultation transport would have re-shipped."""
        return self.total_bytes - self.unique_bytes

    def intern(self, data: FrequencyData) -> str:
        """Intern ``data``; return its fingerprint (the ref everything uses)."""
        fingerprint = dataset_fingerprint(data)
        size = dataset_nbytes(data)
        with self._lock:
            self.interned += 1
            self.total_bytes += size
            if fingerprint not in self._datasets:
                self._datasets[fingerprint] = data
                self.unique_bytes += size
        return fingerprint

    def get(self, fingerprint: str) -> Optional[FrequencyData]:
        """The interned dataset for ``fingerprint``, or ``None``."""
        with self._lock:
            return self._datasets.get(fingerprint)

    def document_for(self, fingerprint: str) -> Optional[dict]:
        """The memoized wire document for ``fingerprint``, or ``None``."""
        with self._lock:
            return self._documents.get(fingerprint)

    def document(self, data: FrequencyData, build: Callable[[FrequencyData], dict]) -> dict:
        """Memoized wire document for ``data`` (``build`` runs once per content).

        The returned dict is shared between calls; callers must treat it as
        immutable (the serve encoder embeds it verbatim in batch documents).
        """
        fingerprint = self.intern(data)
        with self._lock:
            document = self._documents.get(fingerprint)
        if document is not None:
            with self._lock:
                self.encode_hits += 1
            return document
        document = build(data)
        with self._lock:
            self._documents.setdefault(fingerprint, document)
            self.encode_misses += 1
        return document

    def decoded(self, spec: dict, build: Callable[[dict], FrequencyData]) -> FrequencyData:
        """Memoized wire decode: identical documents decode to one instance.

        A repeated document (same fingerprint, equal content) returns the
        dataset interned on first decode -- downstream consumers then share
        one instance, which the pickle memo and :class:`JobTable` dedupe in
        turn.  ``build`` must verify the document (the protocol decoder
        checks the embedded fingerprint against the rebuilt arrays).
        """
        fingerprint = spec.get("fingerprint")
        if isinstance(fingerprint, str):
            with self._lock:
                known = self._documents.get(fingerprint)
                data = self._datasets.get(fingerprint)
            if data is not None and known == spec:
                with self._lock:
                    self.decode_hits += 1
                return data
        data = build(spec)
        fingerprint = self.intern(data)
        with self._lock:
            self._documents.setdefault(fingerprint, dict(spec))
            self.decode_misses += 1
        return data

    def stats(self) -> dict:
        """Counter snapshot (used by benches and the serve ``/stats`` page)."""
        with self._lock:
            return {
                "datasets": len(self._datasets),
                "interned": self.interned,
                "total_bytes": self.total_bytes,
                "unique_bytes": self.unique_bytes,
                "bytes_saved": self.total_bytes - self.unique_bytes,
                "encode_hits": self.encode_hits,
                "encode_misses": self.encode_misses,
                "decode_hits": self.decode_hits,
                "decode_misses": self.decode_misses,
            }


# --------------------------------------------------------------------------- #
# shared-memory transport
# --------------------------------------------------------------------------- #


def _array_meta(name: str, array: np.ndarray) -> dict:
    return {
        "name": name,
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "nbytes": int(array.nbytes),
    }


class SharedDatasetArena:
    """One ``multiprocessing.shared_memory`` segment per unique dataset.

    The parent creates segments up front (one per unique dataset per batch),
    workers attach read-only and copy the bytes out, and the parent alone
    unlinks in :meth:`cleanup` after the futures complete.  Creation failures
    (no ``/dev/shm``, permissions, exhausted space) degrade per dataset to
    the plain-pickle entry -- the arena never makes a run fail.

    Caveats (also documented in the README): segments are named kernel
    objects; if the *parent* is SIGKILLed between create and cleanup the
    segments leak until the OS reaps ``/dev/shm`` (Python's resource tracker
    handles normal interpreter exits).  On Python <= 3.12 the worker-side
    attach registers with the resource tracker too, which would unlink
    segments the parent still owns when the worker exits -- the attach
    helper therefore unregisters after copying (``track=False`` exists only
    on 3.13+).
    """

    def __init__(self):
        self._segments: Dict[str, "object"] = {}  # fingerprint -> SharedMemory

    def entry_for(self, fingerprint: str, data: FrequencyData) -> dict:
        """A ``{"shm": ...}`` table entry for ``data``, creating the segment.

        Raises on any shared-memory failure; :meth:`JobTable.pack` catches
        and falls back to pickling that dataset.
        """
        from multiprocessing import shared_memory

        shm = self._segments.get(fingerprint)
        freqs = np.ascontiguousarray(data.frequencies_hz)
        samples = np.ascontiguousarray(data.samples)
        if shm is None:
            size = freqs.nbytes + samples.nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
            shm.buf[: freqs.nbytes] = freqs.tobytes()
            shm.buf[freqs.nbytes : freqs.nbytes + samples.nbytes] = samples.tobytes()
            self._segments[fingerprint] = shm
        return {
            "segment": shm.name,
            "fingerprint": fingerprint,
            "kind": data.kind,
            "reference_impedance": float(data.reference_impedance),
            "label": data.label,
            "frequencies_hz": _array_meta("frequencies_hz", freqs),
            "samples": _array_meta("samples", samples),
        }

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def shared_bytes(self) -> int:
        return sum(shm.size for shm in self._segments.values())

    def cleanup(self) -> None:
        """Close and unlink every segment (parent side, after the batch)."""
        segments, self._segments = self._segments, {}
        for shm in segments.values():
            try:
                shm.close()
                shm.unlink()
            except (OSError, FileNotFoundError):  # already reaped: nothing to leak
                pass


def _dataset_from_shared(entry: dict) -> FrequencyData:
    """Worker-side reconstruction of a shared-memory table entry.

    Copies the bytes out (the segment outlives no chunk), closes the local
    mapping, and -- when the worker runs under a non-``fork`` start method,
    i.e. owns a private resource tracker -- unregisters the attach-side
    tracker entry so the worker's tracker cannot unlink a segment the parent
    still owns (Python <= 3.12 registers on attach as well as create).
    Under ``fork`` the tracker is shared with the parent and registration is
    idempotent, so the parent's ``unlink`` is the single clean unregister.
    """
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(name=entry["segment"])
    try:
        blobs = []
        offset = 0
        for key in ("frequencies_hz", "samples"):
            spec = entry[key]
            nbytes = int(spec["nbytes"])
            view = shm.buf[offset : offset + nbytes]
            try:
                blob = bytes(view)
            finally:
                if isinstance(view, memoryview):
                    view.release()
            array = np.frombuffer(blob, dtype=np.dtype(spec["dtype"])).reshape(spec["shape"])
            blobs.append(array)
            offset += nbytes
    finally:
        shm.close()
        try:  # attach registered us with the tracker on <= 3.12; undo it
            if multiprocessing.get_start_method() != "fork":
                resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return FrequencyData(
        frequencies_hz=blobs[0],
        samples=blobs[1],
        kind=entry["kind"],
        reference_impedance=entry["reference_impedance"],
        label=entry["label"],
    )


# --------------------------------------------------------------------------- #
# the job-plane codec
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class JobTable:
    """A chunk of jobs split into (unique datasets, jobs with dataset refs).

    What the process executor pickles per chunk: each unique dataset appears
    once in ``datasets`` -- as a ``("pickle", FrequencyData)`` entry or a
    ``("shm", meta)`` shared-memory descriptor -- and each job stub
    references its data/reference by fingerprint.  :meth:`unpack` rebuilds
    ``(index, FitJob)`` pairs on the worker, resolving refs through an
    optional worker-persistent :class:`DatasetPool` so later chunks skip
    reconstruction (and re-verification) of datasets already seen.

    Shared-memory reconstructions are fingerprint-verified on first sight,
    which pins them bitwise to the originals.
    """

    jobs: Tuple[dict, ...]
    datasets: Dict[str, tuple]

    @classmethod
    def pack(
        cls, chunk: Sequence[tuple], *, arena: Optional[SharedDatasetArena] = None
    ) -> "JobTable":
        """Pack ``(index, FitJob)`` pairs; ``arena`` opts datasets into shm."""
        datasets: Dict[str, tuple] = {}
        stubs: List[dict] = []

        def ref(data: Optional[FrequencyData]) -> Optional[str]:
            if data is None:
                return None
            fingerprint = dataset_fingerprint(data)
            if fingerprint not in datasets:
                entry: Optional[tuple] = None
                if arena is not None:
                    try:
                        entry = ("shm", arena.entry_for(fingerprint, data))
                    except Exception:
                        entry = None  # per-dataset fallback below
                if entry is None:
                    entry = ("pickle", data)
                datasets[fingerprint] = entry
            return fingerprint

        for index, job in chunk:
            stubs.append(
                {
                    "index": int(index),
                    "method": job.method,
                    "options": job.options,
                    "label": job.label,
                    "tags": job.tags,
                    "data": ref(job.data),
                    "reference": ref(job.reference),
                    "time_domain": job.time_domain,
                    "passivity": job.passivity,
                }
            )
        return cls(jobs=tuple(stubs), datasets=datasets)

    def unpack(self, *, pool: Optional[DatasetPool] = None) -> List[tuple]:
        """Rebuild the ``(index, FitJob)`` pairs (worker side)."""
        from repro.batch.jobs import FitJob

        local: Dict[str, FrequencyData] = {}

        def resolve(fingerprint: Optional[str]) -> Optional[FrequencyData]:
            if fingerprint is None:
                return None
            data = local.get(fingerprint)
            if data is None and pool is not None:
                data = pool.get(fingerprint)
            if data is None:
                try:
                    tag, payload = self.datasets[fingerprint]
                except KeyError:
                    raise ValueError(
                        f"job table references unknown dataset {fingerprint!r}"
                    ) from None
                if tag == "shm":
                    data = _dataset_from_shared(payload)
                    if dataset_fingerprint(data) != fingerprint:
                        raise ValueError(
                            f"shared-memory dataset {fingerprint!r} reconstructed "
                            "with a different fingerprint"
                        )
                else:
                    data = payload
                if pool is not None:
                    pool.intern(data)
            local[fingerprint] = data
            return data

        pairs = []
        for stub in self.jobs:
            job = FitJob(
                data=resolve(stub["data"]),
                method=stub["method"],
                options=stub["options"],
                label=stub["label"],
                tags=stub["tags"],
                reference=resolve(stub["reference"]),
                time_domain=stub["time_domain"],
                passivity=stub["passivity"],
            )
            pairs.append((stub["index"], job))
        return pairs

    def payload_nbytes(self) -> int:
        """Pickled size of this table (what actually crosses the pipe)."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))


# --------------------------------------------------------------------------- #
# the cross-job response cache
# --------------------------------------------------------------------------- #


class ResponseCache:
    """Memoizes reference-sweep evaluations shared across jobs in a batch.

    Two memo tables, both bounded LRU:

    * ``norms``: ``dataset_fingerprint ->`` the per-frequency largest
      singular values of the dataset (the model-independent denominator of
      every relative-error metric) -- one SVD sweep per unique validation
      dataset per batch instead of one per job.
    * ``sweeps``: ``(system_fingerprint, grid_fingerprint) -> model sweep``
      over that grid -- ``error_vs_reference`` and ``time_domain_metrics``
      for a job share one sweep when data and reference share a grid.

    Methods return ``(value, status)`` with status ``"hit"``/``"miss"``;
    cached arrays are frozen read-only and must not be mutated.  Values are
    computed by the same code the uncached path runs, so results are
    bitwise-identical either way.  Thread-safe (the thread executor shares
    one instance across workers); pickling resets the lock and keeps the
    entries.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._norms: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._sweeps: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.norm_hits = 0
        self.norm_misses = 0
        self.sweep_hits = 0
        self.sweep_misses = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _lookup(self, table: OrderedDict, key) -> Optional[np.ndarray]:
        with self._lock:
            value = table.get(key)
            if value is not None:
                table.move_to_end(key)
            return value

    def _store(self, table: OrderedDict, key, value: np.ndarray) -> np.ndarray:
        value = np.ascontiguousarray(value)
        value.setflags(write=False)
        with self._lock:
            kept = table.setdefault(key, value)
            table.move_to_end(key)
            while len(table) > self.max_entries:
                table.popitem(last=False)
        return kept

    def reference_norms(self, data: FrequencyData) -> Tuple[np.ndarray, str]:
        """Per-frequency largest singular values of ``data`` (memoized)."""
        from repro.metrics.errors import reference_norms

        key = dataset_fingerprint(data)
        value = self._lookup(self._norms, key)
        if value is not None:
            with self._lock:
                self.norm_hits += 1
            return value, "hit"
        value = self._store(self._norms, key, reference_norms(data.samples))
        with self._lock:
            self.norm_misses += 1
        return value, "miss"

    def model_sweep(self, model, data: FrequencyData) -> Tuple[np.ndarray, str]:
        """``model.frequency_response(data.frequencies_hz)`` (memoized)."""
        key = (system_fingerprint(model), grid_fingerprint(data))
        value = self._lookup(self._sweeps, key)
        if value is not None:
            with self._lock:
                self.sweep_hits += 1
            return value, "hit"
        sweep = np.asarray(model.frequency_response(data.frequencies_hz))
        value = self._store(self._sweeps, key, sweep)
        with self._lock:
            self.sweep_misses += 1
        return value, "miss"

    def stats(self) -> dict:
        with self._lock:
            return {
                "norm_hits": self.norm_hits,
                "norm_misses": self.norm_misses,
                "sweep_hits": self.sweep_hits,
                "sweep_misses": self.sweep_misses,
                "norm_entries": len(self._norms),
                "sweep_entries": len(self._sweeps),
            }


class ResponseTally:
    """Per-job view of a shared :class:`ResponseCache` with hit/miss counts.

    ``run_job`` hands one of these to the metric layers; the counts end up
    on the :class:`~repro.batch.jobs.JobRecord` next to the fit-cache
    status.  Returns plain arrays (status folded into the counters).
    """

    __slots__ = ("cache", "hits", "misses")

    def __init__(self, cache: ResponseCache):
        self.cache = cache
        self.hits = 0
        self.misses = 0

    def _count(self, status: str) -> None:
        if status == "hit":
            self.hits += 1
        else:
            self.misses += 1

    def reference_norms(self, data: FrequencyData) -> np.ndarray:
        value, status = self.cache.reference_norms(data)
        self._count(status)
        return value

    def model_sweep(self, model, data: FrequencyData) -> np.ndarray:
        value, status = self.cache.model_sweep(model, data)
        self._count(status)
        return value
