"""Converting :class:`~repro.core.results.MacromodelResult` to/from payloads.

A cached fit is stored as a *payload*: a dict of numpy arrays (the recovered
system matrices and the singular-value profiles -- everything that must
round-trip bitwise) plus a JSON-safe metadata dict (method, diagnostics,
front-end metadata).  Both stores persist the same payload, so memory- and
disk-cached fits are reconstructed by exactly the same code.

The heavyweight intermediates -- the tangential data and the Loewner pencil
-- are deliberately *not* stored: they are derivable by re-running the fit,
they dominate the result's footprint, and no downstream consumer of a cached
fit (error metrics, tables, model export) reads them.  A reconstructed result
therefore carries ``tangential=None`` / ``pencil=None``.

Not every result is serializable (front-ends may attach arbitrary metadata);
:exc:`UncacheableResultError` signals "skip caching this one", never a user
error.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.realization import RealizationDiagnostics
from repro.core.results import MacromodelResult, RecursiveDiagnostics, RecursiveIteration

__all__ = [
    "UncacheableResultError",
    "result_to_payload",
    "payload_to_result",
    "PAYLOAD_SCHEMA_VERSION",
]

#: Bump whenever the payload layout changes; loads reject newer schemas.
#: v2: recursive fits now store only the "pencil" singular-value profile and
#: every evaluation memo is computed through the vectorized sweep kernel --
#: pre-kernel entries must not replay as if they were fresh fits.
PAYLOAD_SCHEMA_VERSION = 2

_SV_PREFIX = "sv__"


class UncacheableResultError(TypeError):
    """The result holds data the cache cannot faithfully serialize."""


def _encode_meta_value(value) -> Any:
    """Encode one metadata value into tagged JSON (exact float round-trip)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (complex, np.complexfloating)):
        value = complex(value)
        return {"__complex__": [value.real, value.imag]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_meta_value(entry) for entry in value]}
    if isinstance(value, list):
        return [_encode_meta_value(entry) for entry in value]
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise UncacheableResultError("metadata dict keys must be strings")
        return {key: _encode_meta_value(entry) for key, entry in value.items()}
    if isinstance(value, RecursiveDiagnostics):
        return {"__recursion__": {
            "converged": value.converged,
            "threshold": value.threshold,
            "iterations": [
                {
                    "iteration": it.iteration,
                    "n_samples_used": it.n_samples_used,
                    "model_order": it.model_order,
                    "holdout_error_mean": it.holdout_error_mean,
                    "holdout_error_max": it.holdout_error_max,
                }
                for it in value.iterations
            ],
        }}
    raise UncacheableResultError(
        f"metadata value of type {type(value).__name__} has no cache serialization"
    )


def _decode_meta_value(value) -> Any:
    """Invert :func:`_encode_meta_value`."""
    if isinstance(value, list):
        return [_decode_meta_value(entry) for entry in value]
    if isinstance(value, dict):
        if "__complex__" in value:
            real, imag = value["__complex__"]
            return complex(real, imag)
        if "__tuple__" in value:
            return tuple(_decode_meta_value(entry) for entry in value["__tuple__"])
        if "__recursion__" in value:
            payload = value["__recursion__"]
            return RecursiveDiagnostics(
                iterations=tuple(
                    RecursiveIteration(**iteration) for iteration in payload["iterations"]
                ),
                converged=payload["converged"],
                threshold=payload["threshold"],
            )
        return {key: _decode_meta_value(entry) for key, entry in value.items()}
    return value


def result_to_payload(result: MacromodelResult) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Split a result into ``(arrays, meta)``: numpy payload + JSON-safe metadata.

    ``result.metadata["options"]`` is excluded -- the cache key already pins
    the options, and the caller re-attaches the normalised options object on
    reconstruction (see :func:`repro.cache.fit_with_cache`).

    Raises
    ------
    UncacheableResultError
        If the metadata holds values without a faithful serialization.
    """
    arrays: dict[str, np.ndarray] = {
        "E": np.asarray(result.system.E),
        "A": np.asarray(result.system.A),
        "B": np.asarray(result.system.B),
        "C": np.asarray(result.system.C),
        "D": np.asarray(result.system.D),
    }
    for name, values in result.singular_values.items():
        arrays[_SV_PREFIX + name] = np.asarray(values)

    realization = None
    if result.realization is not None:
        diag = result.realization
        arrays["realization_singular_values"] = np.asarray(diag.singular_values)
        realization = {
            "order": diag.order,
            "x0": _encode_meta_value(diag.x0),
            "mode": diag.mode,
            "rank_tolerance": diag.rank_tolerance,
        }

    metadata = {key: value for key, value in result.metadata.items() if key != "options"}
    meta = {
        "schema_version": PAYLOAD_SCHEMA_VERSION,
        "method": result.method,
        "n_samples_used": result.n_samples_used,
        "elapsed_seconds": result.elapsed_seconds,
        "order": result.order,
        "realization": realization,
        "metadata": _encode_meta_value(metadata),
    }
    return arrays, meta


def payload_to_result(
    arrays: dict[str, np.ndarray],
    meta: dict[str, Any],
    *,
    options=None,
) -> MacromodelResult:
    """Reconstruct a :class:`MacromodelResult` from a stored payload.

    Parameters
    ----------
    arrays, meta:
        The two halves produced by :func:`result_to_payload`.
    options:
        The (normalised) options object of the fit; re-attached under
        ``metadata["options"]`` exactly like a fresh fit records it.

    Raises
    ------
    ValueError
        On schema mismatches or missing arrays -- stores catch this and
        treat the entry as corrupt (a miss), never as a user error.
    """
    version = int(meta.get("schema_version", -1))
    if version != PAYLOAD_SCHEMA_VERSION:
        raise ValueError(
            f"cached fit uses payload schema {version}, expected {PAYLOAD_SCHEMA_VERSION}"
        )
    missing = {"E", "A", "B", "C", "D"} - set(arrays)
    if missing:
        raise ValueError(f"cached fit payload is missing matrices: {sorted(missing)}")

    from repro.systems.statespace import DescriptorSystem

    system = DescriptorSystem(arrays["E"], arrays["A"], arrays["B"], arrays["C"], arrays["D"])

    singular_values = {
        name[len(_SV_PREFIX):]: np.asarray(values)
        for name, values in arrays.items()
        if name.startswith(_SV_PREFIX)
    }

    realization: Optional[RealizationDiagnostics] = None
    if meta.get("realization") is not None:
        spec = meta["realization"]
        realization = RealizationDiagnostics(
            order=int(spec["order"]),
            singular_values=np.asarray(arrays["realization_singular_values"]),
            x0=_decode_meta_value(spec["x0"]),
            mode=spec["mode"],
            rank_tolerance=spec["rank_tolerance"],
        )

    metadata = _decode_meta_value(meta.get("metadata", {}))
    if options is not None:
        metadata.setdefault("options", options)
    return MacromodelResult(
        system=system,
        method=meta["method"],
        singular_values=singular_values,
        realization=realization,
        tangential=None,
        pencil=None,
        n_samples_used=int(meta["n_samples_used"]),
        elapsed_seconds=float(meta["elapsed_seconds"]),
        metadata=metadata,
    )
