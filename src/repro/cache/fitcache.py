"""The :class:`FitCache` front door and the cached dispatch helper.

``FitCache`` ties the pieces together: fingerprint the fit, consult a
pluggable store, reconstruct on a hit, populate on a miss -- while counting
hits / misses / stores / evictions / skips.  :func:`fit_with_cache` is the
one code path every cached fit goes through; ``run_fit(..., cache=...)`` and
the batch engine's per-job runner both delegate here, so interactive and
batch fits share the exact same cache semantics.

Correctness guardrails:

* a fit with ``direction_kind="random"`` and no seed is nondeterministic --
  it is *never* cached (status ``"skipped"``), because a replayed result
  would silently pin one random draw forever;
* results whose metadata cannot be faithfully serialized are computed and
  returned but not stored (:exc:`~repro.cache.serialization.UncacheableResultError`);
* the environment variable ``REPRO_FIT_CACHE`` (``0`` / ``off`` / ``false``
  / ``no``) disables every cache instance at runtime without code changes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.cache.fingerprint import evaluation_key, fit_key
from repro.cache.serialization import (
    PAYLOAD_SCHEMA_VERSION,
    UncacheableResultError,
    payload_to_result,
    result_to_payload,
)
from repro.cache.stores import CacheStore, DiskStore, MemoryStore
from repro.metrics.errors import model_aggregate_error

__all__ = ["FitCache", "CacheStats", "fit_with_cache", "cache_disabled_by_env"]

#: Values of ``REPRO_FIT_CACHE`` that switch caching off globally.
_DISABLE_VALUES = ("0", "off", "false", "no")


def cache_disabled_by_env() -> bool:
    """Whether ``REPRO_FIT_CACHE`` currently disables all fit caching."""
    return os.environ.get("REPRO_FIT_CACHE", "").strip().lower() in _DISABLE_VALUES


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters.

    Attributes
    ----------
    hits, misses:
        Fit lookups that did / did not find a replayable fit (corrupt or
        schema-mismatched entries count as misses).
    eval_hits, eval_misses:
        Same, for cached model evaluations (aggregate errors keyed on
        ``(fit key, evaluation-dataset fingerprint)``).
    stores:
        Entries written to the store (fits and evaluations).
    evictions:
        Entries the store dropped to make room (bounded stores only).
    skips:
        Fits that bypassed the cache entirely: nondeterministic options,
        unserializable results, or the env-var kill switch.
    """

    hits: int = 0
    misses: int = 0
    eval_hits: int = 0
    eval_misses: int = 0
    stores: int = 0
    evictions: int = 0
    skips: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (``nan`` before the first lookup)."""
        if not self.lookups:
            return float("nan")
        return self.hits / self.lookups

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "eval_hits": self.eval_hits,
            "eval_misses": self.eval_misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "skips": self.skips,
        }


class FitCache:
    """Content-addressed cache of macromodel fits over a pluggable store.

    Parameters
    ----------
    store:
        A :class:`~repro.cache.stores.MemoryStore` (default) or
        :class:`~repro.cache.stores.DiskStore`.  Use a disk store whenever
        fits must survive the process or be shared across the batch engine's
        ``process`` workers.

    Notes
    -----
    Thread-safe: a lock serialises store access and counter updates, so one
    cache can back the batch engine's ``thread`` executor.  Picklable: the
    lock is recreated on unpickling, which is how a cache travels to
    ``process`` workers (each worker counts locally; per-job hit/miss status
    is carried back on the job records instead).
    """

    def __init__(self, store: Optional[CacheStore] = None):
        self.store = MemoryStore() if store is None else store
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._eval_hits = 0
        self._eval_misses = 0
        self._stores = 0
        self._evictions = 0
        self._skips = 0

    @classmethod
    def on_disk(cls, root: str | os.PathLike) -> "FitCache":
        """A cache backed by a :class:`DiskStore` rooted at ``root``."""
        return cls(DiskStore(root))

    @classmethod
    def from_env(cls, default_dir: Optional[str] = None) -> Optional["FitCache"]:
        """Build a cache from the environment, or ``None`` when disabled.

        ``REPRO_FIT_CACHE`` in ``0/off/false/no`` returns ``None``;
        ``REPRO_FIT_CACHE_DIR`` (or ``default_dir``) selects a disk store;
        otherwise an unbounded memory store is used.
        """
        if cache_disabled_by_env():
            return None
        cache_dir = os.environ.get("REPRO_FIT_CACHE_DIR") or default_dir
        return cls.on_disk(cache_dir) if cache_dir else cls()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """Live view of the ``REPRO_FIT_CACHE`` kill switch."""
        return not cache_disabled_by_env()

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                eval_hits=self._eval_hits,
                eval_misses=self._eval_misses,
                stores=self._stores,
                evictions=self._evictions,
                skips=self._skips,
            )

    def clear(self) -> int:
        """Drop every stored fit (counters are kept); returns entries removed."""
        with self._lock:
            return self.store.clear()

    def count_skip(self) -> None:
        """Record one fit that bypassed the cache."""
        with self._lock:
            self._skips += 1

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def key_for(self, data, method: str, options) -> str:
        """The content-addressed key of one fit (see :func:`repro.cache.fit_key`)."""
        return fit_key(data, method, options)

    def lookup(self, key: str, *, options=None):
        """The cached :class:`MacromodelResult` under ``key``, or ``None``.

        A present-but-unreadable entry (corruption, schema drift) counts as a
        miss; ``options`` is re-attached to the reconstructed result's
        metadata exactly like a fresh fit records it.
        """
        with self._lock:
            payload = self.store.load(key)
        if payload is not None:
            try:
                result = payload_to_result(payload[0], payload[1], options=options)
            except Exception:  # noqa: BLE001 - corrupt entry == miss
                payload = None
        with self._lock:
            if payload is None:
                self._misses += 1
                return None
            self._hits += 1
        return result

    def store_result(self, key: str, result) -> bool:
        """Serialize and store one fit; ``False`` if the result is uncacheable."""
        try:
            payload = result_to_payload(result)
        except UncacheableResultError:
            with self._lock:
                self._skips += 1
            return False
        with self._lock:
            evicted = self.store.save(key, payload)
            self._stores += 1
            self._evictions += int(evicted)
        return True

    def cached_aggregate_error(self, fit: str, result, data, *, compute=None) -> float:
        """The aggregate error of a (cached) fit against ``data``, memoized.

        The error is a pure function of the model (pinned by the ``fit``
        key) and the evaluation dataset, so it is cached under
        :func:`~repro.cache.fingerprint.evaluation_key`.  Warm batch sweeps
        spend essentially all their time re-evaluating models against the
        measurement and validation grids -- this is what makes a fully-warm
        sweep orders of magnitude faster, not just the skipped fits.

        A memoization miss computes the error through
        :func:`repro.metrics.errors.model_aggregate_error` -- the same
        vectorized-kernel code path uncached evaluations take -- so memoized
        and fresh values are the result of one implementation.  ``compute``
        optionally replaces that default with a caller-supplied thunk (the
        batch layer passes one that reuses response-cache sweeps); it runs
        only on a memoization miss, so hits stay free either way.
        """
        key = evaluation_key(fit, data)
        with self._lock:
            payload = self.store.load(key)
        if payload is not None:
            _, meta = payload
            try:
                if (
                    int(meta["schema_version"]) == PAYLOAD_SCHEMA_VERSION
                    and meta["kind"] == "evaluation"
                ):
                    with self._lock:
                        self._eval_hits += 1
                    return float(meta["error"])
            except (KeyError, TypeError, ValueError):
                pass  # corrupt evaluation entry: recompute and overwrite
        if compute is None:
            value = float(model_aggregate_error(result.system, data))
        else:
            value = float(compute())
        meta = {
            "schema_version": PAYLOAD_SCHEMA_VERSION,
            "kind": "evaluation",
            "error": value,
        }
        with self._lock:
            self._eval_misses += 1
            evicted = self.store.save(key, ({}, meta))
            self._stores += 1
            self._evictions += int(evicted)
        return value

    # ------------------------------------------------------------------ #
    # pickling (process-backend workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


def _is_nondeterministic(options) -> bool:
    """Unseeded random directions: every run draws a different fit."""
    return (
        getattr(options, "direction_kind", None) == "random"
        and getattr(options, "direction_seed", None) is None
    )


def fit_with_cache(
    data,
    *,
    method: str = "mfti",
    options=None,
    cache: Optional[FitCache] = None,
    **kwargs,
):
    """Run one fit through the cache; returns ``(result, status, key)``.

    ``status`` is ``"hit"`` (replayed from the store), ``"miss"`` (computed
    and stored), or ``"skipped"`` (cache absent/disabled, nondeterministic
    options, or an unserializable result); ``key`` is the content-addressed
    fit key (``None`` when skipped), reusable for evaluation caching via
    :meth:`FitCache.cached_aggregate_error`.  Keyword-argument shortcuts are
    normalised into the method's options object *before* fingerprinting, so
    ``run_fit(data, method="mfti", block_size=2)`` and the explicit
    ``MftiOptions(block_size=2)`` share one cache entry.
    """
    from repro.core._pipeline import frontend_spec

    spec = frontend_spec(method)
    if options is not None and kwargs:
        # mirror the front-ends' own contract (they raise the same error)
        if cache is not None:
            cache.count_skip()
        return spec.runner(data, options=options, **kwargs), "skipped", None

    opts = options if options is not None else spec.options_type(**kwargs)
    if cache is None:
        return spec.runner(data, options=opts), "skipped", None
    if not cache.enabled:
        cache.count_skip()
        return spec.runner(data, options=opts), "skipped", None
    if _is_nondeterministic(opts):
        cache.count_skip()
        return spec.runner(data, options=opts), "skipped", None

    try:
        key = cache.key_for(data, method, opts)
    except TypeError:
        # options without a canonical encoding (e.g. live generator seeds)
        cache.count_skip()
        return spec.runner(data, options=opts), "skipped", None

    cached = cache.lookup(key, options=opts)
    if cached is not None:
        return cached, "hit", key
    result = spec.runner(data, options=opts)
    cache.store_result(key, result)
    return result, "miss", key
