"""Content-addressed caching of macromodel fits.

Every sweep in the repository -- Table-1 grids, ablations, Monte-Carlo noise
studies -- re-runs identical tangential-interpolation fits; this package
makes repeats free.  A fit is addressed by *content*: the SHA-256 of the
dataset's numerical payload combined with the canonical encoding of the
method name and its options (:func:`fit_key`).  Equal keys mean equal fits,
so a cached result can replace a fresh one bitwise.

Pieces, bottom-up:

* :mod:`repro.cache.fingerprint` -- dataset / options / fit fingerprints,
* :mod:`repro.cache.serialization` -- result <-> (arrays + JSON) payloads,
* :mod:`repro.cache.stores` -- :class:`MemoryStore` (bounded LRU) and
  :class:`DiskStore` (compressed NPZ + JSON sidecars, corruption-safe),
* :mod:`repro.cache.fitcache` -- :class:`FitCache` (counters, env kill
  switch) and :func:`fit_with_cache`, the single cached dispatch path,
* :mod:`repro.cache.interning` -- content-addressed dataset interning
  (:class:`DatasetPool`), the pickle-level :class:`JobTable` chunk codec
  (optionally zero-copy via :class:`SharedDatasetArena`), and the cross-job
  :class:`ResponseCache` keyed on (system fingerprint, grid fingerprint).

Transparent integration::

    from repro.cache import FitCache
    from repro.core import run_fit

    cache = FitCache.on_disk("~/.cache/repro-fits")
    model = run_fit(data, method="mfti", block_size=2, cache=cache)   # computes
    model = run_fit(data, method="mfti", block_size=2, cache=cache)   # replays

    # batch sweeps: every job of every re-run skips identical fits
    from repro.batch import BatchEngine
    result = BatchEngine(executor="process", cache=cache).run(jobs)
    print(result.n_cache_hits, cache.stats())

Set ``REPRO_FIT_CACHE=off`` to disable all caching without code changes.
"""

from repro.cache.fingerprint import (
    combined_fingerprint,
    dataset_fingerprint,
    evaluation_key,
    fit_key,
    grid_fingerprint,
    options_fingerprint,
    system_fingerprint,
)
from repro.cache.fitcache import CacheStats, FitCache, cache_disabled_by_env, fit_with_cache
from repro.cache.interning import (
    DatasetPool,
    JobTable,
    ResponseCache,
    ResponseTally,
    SharedDatasetArena,
    dataset_nbytes,
)
from repro.cache.serialization import (
    PAYLOAD_SCHEMA_VERSION,
    UncacheableResultError,
    payload_to_result,
    result_to_payload,
)
from repro.cache.stores import CacheStore, DiskStore, MemoryStore

__all__ = [
    "dataset_fingerprint",
    "grid_fingerprint",
    "system_fingerprint",
    "options_fingerprint",
    "fit_key",
    "evaluation_key",
    "combined_fingerprint",
    "DatasetPool",
    "JobTable",
    "SharedDatasetArena",
    "ResponseCache",
    "ResponseTally",
    "dataset_nbytes",
    "CacheStore",
    "MemoryStore",
    "DiskStore",
    "FitCache",
    "CacheStats",
    "fit_with_cache",
    "cache_disabled_by_env",
    "UncacheableResultError",
    "result_to_payload",
    "payload_to_result",
    "PAYLOAD_SCHEMA_VERSION",
]
