"""Content-addressed fingerprints for datasets and fit configurations.

A fit is fully determined by *what* is interpolated (the
:class:`~repro.data.dataset.FrequencyData`) and *how* (the method name plus
its options).  Both halves are hashed into short hex digests:

* :func:`dataset_fingerprint` hashes the numerical content -- frequencies,
  sample matrices (shape, dtype and bytes), parameter kind and reference
  impedance.  The free-form ``label`` is deliberately excluded: renaming a
  dataset must not invalidate cached fits.
* :func:`options_fingerprint` hashes the method name, the options class and
  the canonical field encoding of
  :meth:`~repro.core.options.InterpolationOptions.canonical_items`.
* :func:`fit_key` combines the two into the key the cache stores live under.

All digests are SHA-256 (truncation-free), so collisions are not a practical
concern and equal keys can be treated as equal fits.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.core.options import InterpolationOptions
from repro.data.dataset import FrequencyData

__all__ = [
    "dataset_fingerprint",
    "grid_fingerprint",
    "system_fingerprint",
    "options_fingerprint",
    "fit_key",
    "evaluation_key",
    "combined_fingerprint",
]

#: Bump when the hashed representation changes so old digests cannot alias.
_FINGERPRINT_VERSION = 1


def _hash_array(digest: "hashlib._Hash", name: str, array: np.ndarray) -> None:
    """Feed one array into the digest: name, dtype, shape, then raw bytes."""
    array = np.ascontiguousarray(array)
    digest.update(f"{name}|{array.dtype.str}|{array.shape}|".encode())
    digest.update(array.tobytes())


def dataset_fingerprint(data: FrequencyData) -> str:
    """SHA-256 hex digest of the numerical content of ``data``.

    Two datasets get the same fingerprint iff they hold bitwise-identical
    frequencies and samples of the same shape, the same parameter kind and
    the same reference impedance -- regardless of label, array memory layout
    or whether the arrays are views or copies.

    The digest is memoized on the instance (safe: ``FrequencyData`` freezes
    its arrays read-only on construction), because every warm cache lookup
    hashes the dataset up to three times -- once for the fit key, once per
    memoized evaluation -- and many jobs share one dataset.
    """
    if not isinstance(data, FrequencyData):
        raise TypeError(f"expected FrequencyData, got {type(data).__name__}")
    memo = getattr(data, "_fingerprint_memo", None)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(f"repro-dataset-v{_FINGERPRINT_VERSION}|".encode())
    digest.update(f"kind:{data.kind}|z0:{float(data.reference_impedance).hex()}|".encode())
    _hash_array(digest, "frequencies_hz", data.frequencies_hz)
    _hash_array(digest, "samples", data.samples)
    fingerprint = digest.hexdigest()
    object.__setattr__(data, "_fingerprint_memo", fingerprint)  # frozen dataclass
    return fingerprint


def grid_fingerprint(data: FrequencyData) -> str:
    """SHA-256 hex digest of *only* the frequency grid of ``data``.

    Two datasets that differ in samples, kind or reference impedance but
    share a bitwise-identical frequency axis get the same grid fingerprint.
    This is the evaluation-side half of a response-cache key: a model sweep
    ``model.frequency_response(data.frequencies_hz)`` depends on the grid
    alone, so jobs whose validation datasets share a grid can share the
    sweep.  Memoized on the instance like :func:`dataset_fingerprint` (the
    arrays are frozen read-only).
    """
    if not isinstance(data, FrequencyData):
        raise TypeError(f"expected FrequencyData, got {type(data).__name__}")
    memo = getattr(data, "_grid_fingerprint_memo", None)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(f"repro-grid-v{_FINGERPRINT_VERSION}|".encode())
    _hash_array(digest, "frequencies_hz", data.frequencies_hz)
    fingerprint = digest.hexdigest()
    object.__setattr__(data, "_grid_fingerprint_memo", fingerprint)  # frozen dataclass
    return fingerprint


def system_fingerprint(model) -> str:
    """SHA-256 hex digest of the numerical content of a fitted model.

    Accepts either realization the pipeline produces, duck-typed:

    * a descriptor system (``E``/``A``/``B``/``C``/``D`` matrices), or
    * a pole-residue model (``poles``/``residues`` and optional ``d`` term).

    Together with :func:`grid_fingerprint` this addresses one reference
    sweep ``model.frequency_response(grid)`` -- the response-cache key.

    The digest is memoized on the instance where the class allows attribute
    writes.  That is safe under the repo-wide convention that fitted models
    are immutable after construction (every transform builds a new object);
    callers that mutate a model in place must not rely on its fingerprint.
    """
    memo = getattr(model, "_system_fingerprint_memo", None)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(f"repro-model-v{_FINGERPRINT_VERSION}|".encode())
    if all(hasattr(model, name) for name in ("E", "A", "B", "C")):
        digest.update(b"descriptor|")
        for name in ("E", "A", "B", "C"):
            _hash_array(digest, name, np.asarray(getattr(model, name)))
        feedthrough = getattr(model, "D", None)
        if feedthrough is not None:
            _hash_array(digest, "D", np.asarray(feedthrough))
    elif hasattr(model, "poles") and hasattr(model, "residues"):
        digest.update(b"pole-residue|")
        _hash_array(digest, "poles", np.asarray(model.poles))
        _hash_array(digest, "residues", np.asarray(model.residues))
        constant = getattr(model, "d", None)
        if constant is not None:
            _hash_array(digest, "d", np.asarray(constant))
    else:
        raise TypeError(
            f"cannot fingerprint {type(model).__name__}: expected a descriptor "
            "system (E/A/B/C[/D]) or a pole-residue model (poles/residues[/d])"
        )
    fingerprint = digest.hexdigest()
    try:
        object.__setattr__(model, "_system_fingerprint_memo", fingerprint)
    except (AttributeError, TypeError):
        pass  # __slots__ or otherwise write-protected: recompute next time
    return fingerprint


def options_fingerprint(method: str, options: Optional[InterpolationOptions]) -> str:
    """SHA-256 hex digest of one fit configuration (method name + options).

    ``None`` options hash like the method's defaults would, because the
    front-ends construct the default options object in that case; callers
    that want the exact equivalence should normalise first (as
    :func:`repro.cache.fit_with_cache` does).

    Raises
    ------
    TypeError
        If the options carry a value without a stable encoding (e.g. a live
        ``numpy.random.Generator`` seed).
    """
    digest = hashlib.sha256()
    digest.update(f"repro-options-v{_FINGERPRINT_VERSION}|method:{method}|".encode())
    if options is None:
        from repro.core._pipeline import frontend_spec

        options = frontend_spec(method).options_type()
    digest.update(f"type:{type(options).__name__}|".encode())
    for name, token in options.canonical_items():
        digest.update(f"{name}={token}|".encode())
    return digest.hexdigest()


def fit_key(data: FrequencyData, method: str, options: Optional[InterpolationOptions]) -> str:
    """The content-addressed key one fit is cached under."""
    digest = hashlib.sha256()
    digest.update(f"repro-fit-v{_FINGERPRINT_VERSION}|".encode())
    digest.update(dataset_fingerprint(data).encode())
    digest.update(b"|")
    digest.update(options_fingerprint(method, options).encode())
    return digest.hexdigest()


def combined_fingerprint(kind: str, parts) -> str:
    """SHA-256 digest of a namespaced, ordered sequence of textual parts.

    The generic combinator behind every *derived* fingerprint that is not a
    dataset or an options hash: the shard planner hashes job identities and
    whole shard plans through it (:mod:`repro.batch.sharding`).  ``kind``
    namespaces the digest (two different kinds can never collide even on
    identical parts) and shares the module-wide :data:`_FINGERPRINT_VERSION`,
    so bumping the fingerprint revision invalidates derived digests along
    with the primary ones.  Parts are length-prefixed, so free-form strings
    (labels, tag encodings) can never alias across part boundaries.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-{kind}-v{_FINGERPRINT_VERSION}|".encode())
    for part in parts:
        if not isinstance(part, str):
            raise TypeError(f"fingerprint parts must be strings, got {type(part).__name__}")
        digest.update(f"{len(part)}:{part}|".encode())
    return digest.hexdigest()


def evaluation_key(fit: str, data: FrequencyData) -> str:
    """The key one model evaluation (aggregate error) is cached under.

    An aggregate error is a pure function of the recovered model and the
    data it is evaluated against; the model is pinned by its ``fit`` key, so
    ``(fit key, evaluation-dataset fingerprint)`` addresses the scalar.  This
    is what lets a *warm* batch sweep skip the (surprisingly dominant) model
    evaluations along with the fits themselves.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-eval-v{_FINGERPRINT_VERSION}|".encode())
    digest.update(fit.encode())
    digest.update(b"|")
    digest.update(dataset_fingerprint(data).encode())
    return digest.hexdigest()
