"""Pluggable cache stores: in-memory LRU and an on-disk NPZ/JSON store.

Both stores speak the same payload protocol -- ``(arrays, meta)`` as produced
by :mod:`repro.cache.serialization` -- so a cached fit reconstructs through
identical code no matter where it was kept:

* :class:`MemoryStore` -- a bounded in-process LRU map.  Cheap, shared by
  threads (the owning :class:`~repro.cache.FitCache` serialises access), but
  each *process* sees its own copy: under the batch engine's ``process``
  executor a memory store cannot propagate hits across workers.
* :class:`DiskStore` -- a persistent directory of compressed ``.npz`` array
  archives with ``.json`` metadata sidecars.  Safe for concurrent writers
  (atomic rename; the JSON sidecar is written last and acts as the commit
  marker) and safe against corruption: *any* unreadable entry loads as a
  miss, never as an exception.

The directory layout is versioned (``<root>/v<schema>/<key[:2]>/<key>.*``) so
incompatible payload revisions never alias; see the README "Caching" section.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from repro.cache.serialization import PAYLOAD_SCHEMA_VERSION

__all__ = ["CacheStore", "MemoryStore", "DiskStore"]

Payload = tuple[dict[str, np.ndarray], dict[str, Any]]


class CacheStore:
    """Interface both stores implement (structural; not enforced by ABC)."""

    def load(self, key: str) -> Optional[Payload]:  # pragma: no cover - interface
        """The payload stored under ``key``, or ``None`` (missing or corrupt)."""
        raise NotImplementedError

    def save(self, key: str, payload: Payload) -> int:
        """Store ``payload`` under ``key``; returns how many entries were evicted."""
        raise NotImplementedError  # pragma: no cover - interface

    def clear(self) -> int:  # pragma: no cover - interface
        """Drop every entry; returns how many were removed."""
        raise NotImplementedError


class MemoryStore(CacheStore):
    """Bounded in-process LRU store.

    Parameters
    ----------
    max_entries:
        Keep at most this many *array-bearing* payloads (fits); the least
        recently used one is evicted first.  ``None`` means unbounded.
        Metadata-only payloads (the byte-sized evaluation memos) never count
        toward the bound and are never evicted by it -- otherwise a job's
        own error memos could evict the fit it just stored.

    Notes
    -----
    Payload arrays are copied on ``save`` and marked read-only, so the store
    can never be corrupted by callers mutating a returned result's arrays in
    place (the disk store is immune by construction: it round-trips through
    NPZ files).
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 when given")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, Payload] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def load(self, key: str) -> Optional[Payload]:
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def save(self, key: str, payload: Payload) -> int:
        arrays, meta = payload
        frozen = {}
        for name, array in arrays.items():
            array = np.array(array, copy=True)
            array.setflags(write=False)
            frozen[name] = array
        self._entries[key] = (frozen, meta)
        self._entries.move_to_end(key)
        evicted = 0
        if self.max_entries is not None:
            # bound only the heavy (array-bearing) payloads, oldest first
            heavy = [k for k, (entry_arrays, _) in self._entries.items() if entry_arrays]
            while len(heavy) > self.max_entries:
                del self._entries[heavy.pop(0)]
                evicted += 1
        return evicted

    def clear(self) -> int:
        n = len(self._entries)
        self._entries.clear()
        return n


class DiskStore(CacheStore):
    """Persistent store: compressed NPZ arrays + JSON metadata per fit.

    Parameters
    ----------
    root:
        Cache directory (created lazily; ``~`` and ``$VARS`` are expanded).
        Entries live under ``<root>/v<schema>/<key[:2]>/<key>.npz`` with a
        ``<key>.json`` metadata sidecar; the two-hex-digit shard level keeps
        directories small for large caches.

    Notes
    -----
    Writes are atomic (temp file + ``os.replace``) and ordered NPZ-first, so
    a concurrent reader either sees a complete entry or no entry.  Reads
    treat every failure mode -- missing files, truncated archives, invalid
    JSON, schema mismatches -- as a miss and quarantine nothing: the next
    successful ``save`` simply overwrites the bad entry.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = os.path.expandvars(os.path.expanduser(os.fspath(root)))

    @property
    def schema_dir(self) -> str:
        """The versioned directory all entries of this payload schema live in."""
        return os.path.join(self.root, f"v{PAYLOAD_SCHEMA_VERSION}")

    def _entry_paths(self, key: str) -> tuple[str, str]:
        shard = os.path.join(self.schema_dir, key[:2])
        return os.path.join(shard, f"{key}.npz"), os.path.join(shard, f"{key}.json")

    def __contains__(self, key: str) -> bool:
        npz_path, json_path = self._entry_paths(key)
        return os.path.exists(npz_path) and os.path.exists(json_path)

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> list[str]:
        """Keys of every complete entry currently on disk (sorted)."""
        found = []
        if not os.path.isdir(self.schema_dir):
            return found
        for shard in sorted(os.listdir(self.schema_dir)):
            shard_dir = os.path.join(self.schema_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    key = name[: -len(".json")]
                    if os.path.exists(os.path.join(shard_dir, f"{key}.npz")):
                        found.append(key)
        return found

    def load(self, key: str) -> Optional[Payload]:
        npz_path, json_path = self._entry_paths(key)
        try:
            with open(json_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            if not isinstance(meta, dict):
                return None
            with np.load(npz_path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except Exception:  # noqa: BLE001 - any unreadable entry is a miss
            return None
        return arrays, meta

    def save(self, key: str, payload: Payload) -> int:
        arrays, meta = payload
        npz_path, json_path = self._entry_paths(key)
        os.makedirs(os.path.dirname(npz_path), exist_ok=True)
        self._atomic_write(npz_path, lambda handle: np.savez_compressed(handle, **arrays))
        self._atomic_write(
            json_path,
            lambda handle: handle.write(json.dumps(meta, sort_keys=True).encode()),
        )
        return 0

    @staticmethod
    def _atomic_write(path: str, write) -> None:
        handle = tempfile.NamedTemporaryFile(
            dir=os.path.dirname(path), prefix=os.path.basename(path) + ".tmp", delete=False
        )
        try:
            with handle:
                write(handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Remove every entry of the *current* schema version."""
        removed = 0
        for key in self.keys():
            npz_path, json_path = self._entry_paths(key)
            for path in (npz_path, json_path):
                try:
                    os.unlink(path)
                except OSError:
                    continue
            removed += 1
        return removed
