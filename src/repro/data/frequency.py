"""Frequency-grid construction.

The paper's two Example-2 test cases differ only in how the 100 sample
frequencies are distributed over the band: Test 1 uses a uniform grid, Test 2
uses "poorly distributed samples concentrated in the high-frequency band"
(ill-conditioned data).  The generators here produce both, plus logarithmic
grids for Bode-style validation sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_integer

__all__ = [
    "linear_frequencies",
    "log_frequencies",
    "clustered_frequencies",
    "split_frequencies",
]


def _check_band(f_min: float, f_max: float) -> tuple[float, float]:
    f_min, f_max = float(f_min), float(f_max)
    if f_min <= 0 or f_max <= f_min:
        raise ValueError(f"require 0 < f_min < f_max, got ({f_min}, {f_max})")
    return f_min, f_max


def linear_frequencies(f_min: float, f_max: float, count: int) -> np.ndarray:
    """Uniformly spaced frequencies in Hz over ``[f_min, f_max]`` (paper Test 1)."""
    count = check_positive_integer(count, "count")
    f_min, f_max = _check_band(f_min, f_max)
    return np.linspace(f_min, f_max, count)


def log_frequencies(f_min: float, f_max: float, count: int) -> np.ndarray:
    """Logarithmically spaced frequencies in Hz over ``[f_min, f_max]``."""
    count = check_positive_integer(count, "count")
    f_min, f_max = _check_band(f_min, f_max)
    return np.logspace(np.log10(f_min), np.log10(f_max), count)


def clustered_frequencies(
    f_min: float,
    f_max: float,
    count: int,
    *,
    cluster_fraction: float = 0.85,
    cluster_start_fraction: float = 0.7,
) -> np.ndarray:
    """Ill-conditioned grid: most samples crowded into the top of the band (paper Test 2).

    ``cluster_fraction`` of the points are placed uniformly in the sub-band
    ``[f_min + cluster_start_fraction*(f_max - f_min), f_max]``; the remaining
    points cover the rest of the band sparsely.  The result is sorted and
    strictly increasing.
    """
    count = check_positive_integer(count, "count")
    f_min, f_max = _check_band(f_min, f_max)
    if not 0.0 < cluster_fraction < 1.0:
        raise ValueError("cluster_fraction must lie in (0, 1)")
    if not 0.0 < cluster_start_fraction < 1.0:
        raise ValueError("cluster_start_fraction must lie in (0, 1)")
    n_cluster = max(1, int(round(count * cluster_fraction)))
    n_sparse = max(1, count - n_cluster)
    n_cluster = count - n_sparse
    split = f_min + cluster_start_fraction * (f_max - f_min)
    sparse = np.linspace(f_min, split, n_sparse, endpoint=False)
    cluster = np.linspace(split, f_max, n_cluster)
    freqs = np.sort(np.concatenate([sparse, cluster]))
    # enforce strict monotonicity (duplicate frequencies would make the
    # Loewner denominators vanish)
    eps = (f_max - f_min) * 1e-12
    for i in range(1, freqs.size):
        if freqs[i] <= freqs[i - 1]:
            freqs[i] = freqs[i - 1] + eps
    return freqs


def split_frequencies(frequencies: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Alternate-split a frequency grid into (right, left) interpolation sets.

    The Loewner framework partitions the samples into right data (used to
    build column information) and left data (row information).  The paper
    assigns odd-indexed frequencies to the right set and even-indexed ones to
    the left set (eqs. 6-7); this helper reproduces that interleaving and is
    shared by the VFTI and MFTI front-ends so both see identical partitions.
    """
    freqs = np.asarray(frequencies, dtype=float).ravel()
    if freqs.size < 2:
        raise ValueError("need at least two frequencies to split into left/right sets")
    if np.any(np.diff(np.sort(freqs)) <= 0):
        raise ValueError("frequencies must be distinct")
    return freqs[0::2], freqs[1::2]
