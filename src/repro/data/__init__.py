"""Frequency-domain sampling layer.

This package turns systems (descriptor models, circuits) into the
*measurement data* the interpolation algorithms consume, and back:

* frequency-grid construction -- uniform, logarithmic and the deliberately
  ill-conditioned, high-frequency-clustered grids of the paper's Test 2
  (:mod:`repro.data.frequency`),
* sampling of scattering / impedance / admittance matrices along a grid
  (:mod:`repro.data.sampler`),
* measurement-noise models (:mod:`repro.data.noise`),
* the :class:`~repro.data.dataset.FrequencyData` container holding the
  samples plus their metadata,
* Touchstone (``.sNp``) file reading and writing so external data can be fed
  into the same pipeline (:mod:`repro.data.touchstone`).
"""

from repro.data.dataset import FrequencyData
from repro.data.frequency import (
    clustered_frequencies,
    linear_frequencies,
    log_frequencies,
    split_frequencies,
)
from repro.data.model_io import load_model, save_model
from repro.data.noise import add_measurement_noise, snr_to_sigma
from repro.data.sampler import sample_admittance, sample_impedance, sample_scattering, sample_system
from repro.data.touchstone import read_touchstone, write_touchstone

__all__ = [
    "FrequencyData",
    "linear_frequencies",
    "log_frequencies",
    "clustered_frequencies",
    "split_frequencies",
    "add_measurement_noise",
    "snr_to_sigma",
    "sample_system",
    "sample_scattering",
    "sample_impedance",
    "sample_admittance",
    "read_touchstone",
    "write_touchstone",
    "save_model",
    "load_model",
]
