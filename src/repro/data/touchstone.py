"""Touchstone (``.sNp``) file reading and writing.

Touchstone is the de-facto interchange format for measured/simulated network
parameters; supporting it means externally measured boards (like the INC board
the paper used) can be dropped straight into the interpolation pipeline when
they are available.  The implementation covers the Touchstone 1.x features
needed in practice:

* option line ``# <freq-unit> <parameter> <format> R <z0>`` with HZ/KHZ/MHZ/GHZ,
  S/Z/Y parameters and RI / MA / DB formats,
* comment lines (``!``) anywhere,
* the standard multi-line layout for networks with more than four ports
  (values wrap over multiple lines; the reader is layout-agnostic and simply
  consumes numbers in order),
* the 2-port column order quirk (S21 before S12) of the Touchstone standard.
"""

from __future__ import annotations

import io
import os
from typing import TextIO

import numpy as np

from repro.data.dataset import FrequencyData

__all__ = ["read_touchstone", "write_touchstone"]

_FREQ_UNITS = {"HZ": 1.0, "KHZ": 1e3, "MHZ": 1e6, "GHZ": 1e9}
_FORMATS = ("RI", "MA", "DB")
_PARAMETERS = ("S", "Z", "Y")


def _ports_from_extension(path: str) -> int | None:
    ext = os.path.splitext(path)[1].lower()
    if ext.startswith(".s") and ext.endswith("p"):
        digits = ext[2:-1]
        if digits.isdigit():
            return int(digits)
    return None


def _pair_to_complex(a: float, b: float, fmt: str) -> complex:
    if fmt == "RI":
        return complex(a, b)
    if fmt == "MA":
        return a * np.exp(1j * np.deg2rad(b))
    # DB
    return 10.0 ** (a / 20.0) * np.exp(1j * np.deg2rad(b))


def _complex_to_pair(value: complex, fmt: str) -> tuple[float, float]:
    if fmt == "RI":
        return float(value.real), float(value.imag)
    mag = abs(value)
    ang = float(np.rad2deg(np.angle(value)))
    if fmt == "MA":
        return float(mag), ang
    return float(20.0 * np.log10(max(mag, 1e-300))), ang


def read_touchstone(source: str | os.PathLike | TextIO, *, n_ports: int | None = None) -> FrequencyData:
    """Read a Touchstone file (or file-like object) into :class:`FrequencyData`.

    Parameters
    ----------
    source:
        Path to a ``.sNp`` file or an open text stream.
    n_ports:
        Port count; inferred from the file extension when a path is given and
        required when reading from a stream without an ``.sNp`` name.
    """
    close = False
    if hasattr(source, "read"):
        stream: TextIO = source  # type: ignore[assignment]
        path_name = getattr(source, "name", "")
    else:
        stream = open(os.fspath(source), "r", encoding="utf-8")
        close = True
        path_name = os.fspath(source)
    try:
        if n_ports is None:
            n_ports = _ports_from_extension(str(path_name))
        unit = 1e9
        parameter = "S"
        fmt = "MA"
        z0 = 50.0
        numbers: list[float] = []
        for raw_line in stream:
            line = raw_line.split("!", 1)[0].strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].upper().split()
                i = 0
                while i < len(tokens):
                    tok = tokens[i]
                    if tok in _FREQ_UNITS:
                        unit = _FREQ_UNITS[tok]
                    elif tok in _PARAMETERS:
                        parameter = tok
                    elif tok in _FORMATS:
                        fmt = tok
                    elif tok == "R" and i + 1 < len(tokens):
                        z0 = float(tokens[i + 1])
                        i += 1
                    i += 1
                continue
            numbers.extend(float(tok) for tok in line.split())
    finally:
        if close:
            stream.close()

    if n_ports is None:
        raise ValueError("n_ports could not be inferred; pass it explicitly")
    values_per_freq = 1 + 2 * n_ports * n_ports
    if not numbers or len(numbers) % values_per_freq != 0:
        raise ValueError(
            f"file does not contain a whole number of {n_ports}-port records "
            f"({len(numbers)} numeric fields)"
        )
    n_freq = len(numbers) // values_per_freq
    data = np.asarray(numbers, dtype=float).reshape(n_freq, values_per_freq)
    freqs = data[:, 0] * unit
    matrices = np.empty((n_freq, n_ports, n_ports), dtype=complex)
    for k in range(n_freq):
        pairs = data[k, 1:].reshape(n_ports * n_ports, 2)
        values = np.array([_pair_to_complex(a, b, fmt) for a, b in pairs])
        matrix = values.reshape(n_ports, n_ports)
        if n_ports == 2:
            # Touchstone stores 2-port data as S11 S21 S12 S22 (column-major quirk)
            matrix = np.array([[matrix[0, 0], matrix[1, 0]], [matrix[0, 1], matrix[1, 1]]])
        matrices[k] = matrix
    order = np.argsort(freqs)
    return FrequencyData(freqs[order], matrices[order], kind=parameter,
                         reference_impedance=z0, label=str(path_name))


def write_touchstone(
    data: FrequencyData,
    destination: str | os.PathLike | TextIO,
    *,
    fmt: str = "RI",
    freq_unit: str = "HZ",
    comment: str = "",
) -> None:
    """Write :class:`FrequencyData` to a Touchstone file (or file-like object).

    Only square data (``p == m``) can be written, matching the format's
    definition.  The writer always emits one frequency per logical record with
    at most four complex values per physical line, which every Touchstone
    reader accepts.
    """
    fmt = fmt.upper()
    if fmt not in _FORMATS:
        raise ValueError(f"fmt must be one of {_FORMATS}, got {fmt!r}")
    freq_unit = freq_unit.upper()
    if freq_unit not in _FREQ_UNITS:
        raise ValueError(f"freq_unit must be one of {tuple(_FREQ_UNITS)}, got {freq_unit!r}")
    if data.kind not in _PARAMETERS:
        raise ValueError(f"only {_PARAMETERS} data can be written, got kind={data.kind!r}")
    n_ports = data.n_ports

    close = False
    if hasattr(destination, "write"):
        stream: TextIO = destination  # type: ignore[assignment]
    else:
        stream = open(os.fspath(destination), "w", encoding="utf-8")
        close = True
    try:
        if comment:
            for line in comment.splitlines():
                stream.write(f"! {line}\n")
        stream.write(f"# {freq_unit} {data.kind} {fmt} R {data.reference_impedance:g}\n")
        scale = _FREQ_UNITS[freq_unit]
        for freq, matrix in zip(data.frequencies_hz, data.samples):
            ordered = matrix
            if n_ports == 2:
                ordered = np.array([[matrix[0, 0], matrix[1, 0]], [matrix[0, 1], matrix[1, 1]]])
            pairs = [_complex_to_pair(v, fmt) for v in ordered.reshape(-1)]
            fields: list[str] = [f"{freq / scale:.12g}"]
            for a, b in pairs:
                fields.append(f"{a:.12g}")
                fields.append(f"{b:.12g}")
            # wrap: frequency + up to 4 complex pairs on the first line,
            # then 4 pairs per continuation line
            per_line = 1 + 8
            stream.write(" ".join(fields[:per_line]) + "\n")
            rest = fields[per_line:]
            for start in range(0, len(rest), 8):
                stream.write("  " + " ".join(rest[start : start + 8]) + "\n")
    finally:
        if close:
            stream.close()
