"""Sampling systems into :class:`~repro.data.dataset.FrequencyData`.

These helpers play the role of the "measurement / EM simulation" step in the
paper's pipeline: they evaluate a reference system's transfer function along a
frequency grid and package the result (optionally converting between network
parameters first) so the interpolation algorithms can treat the output exactly
like externally measured data.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FrequencyData
from repro.systems.statespace import DescriptorSystem
from repro.utils.validation import ensure_1d

__all__ = ["sample_system", "sample_scattering", "sample_impedance", "sample_admittance"]


def sample_system(
    system: DescriptorSystem,
    frequencies_hz: np.ndarray,
    *,
    kind: str = "H",
    reference_impedance: float = 50.0,
    label: str = "",
) -> FrequencyData:
    """Evaluate ``system`` at the given frequencies and wrap the result.

    The system's transfer function is used verbatim (no parameter
    conversion); ``kind`` only labels what those samples represent.

    The sweep runs through the shared evaluation kernel with the
    ``"solve"`` strategy pinned: batched stacked-pencil solves are bitwise
    identical to the per-point reference loop, so generated datasets (and
    therefore their content-addressed cache fingerprints and the golden
    fixtures derived from them) are reproducible bit for bit, independent
    of whichever fast path later model evaluations take.
    """
    freqs = ensure_1d(frequencies_hz, "frequencies_hz", dtype=float)
    try:
        samples = system.frequency_response(freqs, method="solve")
    except TypeError:
        # duck-typed sources (anything with a frequency_response) stay usable
        samples = system.frequency_response(freqs)
    return FrequencyData(freqs, samples, kind=kind,
                         reference_impedance=reference_impedance, label=label)


def sample_scattering(
    system: DescriptorSystem,
    frequencies_hz: np.ndarray,
    *,
    system_kind: str = "S",
    reference_impedance: float = 50.0,
    label: str = "",
) -> FrequencyData:
    """Sample a system and return scattering-parameter data.

    Parameters
    ----------
    system:
        The reference model.
    frequencies_hz:
        Sample frequencies in Hz.
    system_kind:
        What the system's transfer function represents: ``"S"`` (already
        scattering -- no conversion), ``"Z"`` (impedance, converted pointwise)
        or ``"Y"`` (admittance, converted pointwise).
    reference_impedance:
        Reference impedance used in the conversion.
    label:
        Label stored on the resulting data set.
    """
    if system_kind not in ("S", "Z", "Y"):
        raise ValueError(f"system_kind must be 'S', 'Z' or 'Y', got {system_kind!r}")
    raw = sample_system(system, frequencies_hz, kind=system_kind,
                        reference_impedance=reference_impedance, label=label)
    if system_kind == "S":
        return raw
    return raw.converted("S", z0=reference_impedance)


def sample_impedance(
    system: DescriptorSystem,
    frequencies_hz: np.ndarray,
    *,
    label: str = "",
) -> FrequencyData:
    """Sample a system whose transfer function is an impedance matrix ``Z(s)``."""
    return sample_system(system, frequencies_hz, kind="Z", label=label)


def sample_admittance(
    system: DescriptorSystem,
    frequencies_hz: np.ndarray,
    *,
    label: str = "",
) -> FrequencyData:
    """Sample a system whose transfer function is an admittance matrix ``Y(s)``."""
    return sample_system(system, frequencies_hz, kind="Y", label=label)
