"""Saving and loading recovered macromodels.

Macromodels are typically identified once and then reused by many downstream
simulations, so the library provides a small persistence layer: a descriptor
system (or the system inside a :class:`~repro.core.results.MacromodelResult`)
is stored as a single ``.npz`` archive containing the five state-space
matrices plus a little metadata, and loaded back into a
:class:`~repro.systems.statespace.DescriptorSystem`.

The format is deliberately plain numpy so the files remain readable from any
environment (MATLAB, Julia, plain numpy scripts) without this package.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.systems.statespace import DescriptorSystem

__all__ = ["save_model", "load_model"]

#: Format tag written into every archive so future revisions can stay compatible.
_FORMAT_VERSION = 1


def save_model(model, destination: Union[str, os.PathLike], *, label: str = "") -> str:
    """Save a descriptor system (or macromodel result) to a ``.npz`` archive.

    Parameters
    ----------
    model:
        A :class:`~repro.systems.statespace.DescriptorSystem` or any object
        with a ``system`` attribute holding one (e.g. a
        :class:`~repro.core.results.MacromodelResult`).
    destination:
        Target path; a ``.npz`` suffix is appended when missing.
    label:
        Optional free-form description stored alongside the matrices.

    Returns
    -------
    str
        The path actually written.
    """
    system = getattr(model, "system", model)
    if not isinstance(system, DescriptorSystem):
        raise TypeError(
            "model must be a DescriptorSystem or carry one in its 'system' attribute, "
            f"got {type(model).__name__}"
        )
    path = os.fspath(destination)
    if not path.endswith(".npz"):
        path = path + ".npz"
    np.savez(
        path,
        E=np.asarray(system.E),
        A=np.asarray(system.A),
        B=np.asarray(system.B),
        C=np.asarray(system.C),
        D=np.asarray(system.D),
        label=np.asarray(str(label)),
        format_version=np.asarray(_FORMAT_VERSION),
    )
    return path


def load_model(source: Union[str, os.PathLike]) -> DescriptorSystem:
    """Load a descriptor system previously written by :func:`save_model`.

    Raises
    ------
    ValueError
        If the archive does not contain the expected matrices (i.e. it was not
        produced by :func:`save_model` or is from an incompatible future
        format version).
    """
    path = os.fspath(source)
    with np.load(path, allow_pickle=False) as archive:
        missing = {"E", "A", "B", "C", "D"} - set(archive.files)
        if missing:
            raise ValueError(f"model archive {path!r} is missing matrices: {sorted(missing)}")
        version = int(archive["format_version"]) if "format_version" in archive.files else 1
        if version > _FORMAT_VERSION:
            raise ValueError(
                f"model archive {path!r} uses format version {version}, "
                f"this library supports up to {_FORMAT_VERSION}"
            )
        return DescriptorSystem(archive["E"], archive["A"], archive["B"], archive["C"],
                                archive["D"])
