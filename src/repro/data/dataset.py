"""The :class:`FrequencyData` container.

Every stage of the pipeline -- sampling, noise injection, Touchstone I/O, the
interpolation algorithms and the error metrics -- exchanges data through this
one container: an ordered set of frequencies (Hz) with the corresponding
matrix samples (``k x p x m``), plus metadata about what kind of network
parameter the samples represent and which reference impedance applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.utils.validation import check_finite

__all__ = ["FrequencyData"]

_VALID_KINDS = ("S", "Z", "Y", "H")


@dataclass(frozen=True)
class FrequencyData:
    """Frequency-domain samples of a multi-port network.

    Attributes
    ----------
    frequencies_hz:
        1-D array of strictly increasing, positive frequencies in Hz.
    samples:
        Complex array of shape ``(k, p, m)``: one ``p x m`` matrix per frequency.
    kind:
        Network-parameter kind: ``"S"`` (scattering), ``"Z"`` (impedance),
        ``"Y"`` (admittance), or ``"H"`` (generic transfer function).
    reference_impedance:
        Port reference impedance in ohms (meaningful for ``"S"`` data).
    label:
        Free-form description used in reports.
    """

    frequencies_hz: np.ndarray
    samples: np.ndarray
    kind: str = "S"
    reference_impedance: float = 50.0
    label: str = ""

    def __post_init__(self):
        freqs = np.asarray(self.frequencies_hz, dtype=float).ravel()
        samples = np.asarray(self.samples, dtype=complex)
        if samples.ndim == 2:
            # single-frequency convenience
            samples = samples[np.newaxis, :, :]
        if samples.ndim != 3:
            raise ValueError(f"samples must have shape (k, p, m), got {samples.shape}")
        if freqs.size != samples.shape[0]:
            raise ValueError(
                f"got {freqs.size} frequencies but {samples.shape[0]} sample matrices"
            )
        if freqs.size == 0:
            raise ValueError("FrequencyData needs at least one sample")
        if np.any(freqs <= 0):
            raise ValueError("frequencies must be strictly positive")
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("frequencies must be strictly increasing")
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"kind must be one of {_VALID_KINDS}, got {self.kind!r}")
        if self.reference_impedance <= 0:
            raise ValueError("reference_impedance must be positive")
        check_finite(samples, "samples")
        freqs.setflags(write=False)
        samples.setflags(write=False)
        object.__setattr__(self, "frequencies_hz", freqs)
        object.__setattr__(self, "samples", samples)

    # ------------------------------------------------------------------ #
    # basic views
    # ------------------------------------------------------------------ #
    @property
    def n_samples(self) -> int:
        """Number of sampled frequencies ``k``."""
        return int(self.frequencies_hz.size)

    @property
    def n_outputs(self) -> int:
        """Number of outputs (rows of each sample matrix)."""
        return int(self.samples.shape[1])

    @property
    def n_inputs(self) -> int:
        """Number of inputs (columns of each sample matrix)."""
        return int(self.samples.shape[2])

    @property
    def n_ports(self) -> int:
        """Port count for square data; raises for rectangular samples."""
        if self.n_inputs != self.n_outputs:
            raise ValueError("n_ports is only defined for square sample matrices")
        return self.n_inputs

    @property
    def omega(self) -> np.ndarray:
        """Angular frequencies ``2 pi f`` (rad/s)."""
        return 2.0 * np.pi * self.frequencies_hz

    @property
    def s_points(self) -> np.ndarray:
        """Laplace-variable sample points ``j 2 pi f`` on the imaginary axis."""
        return 1j * self.omega

    def __len__(self) -> int:
        return self.n_samples

    def __iter__(self):
        """Iterate over ``(frequency_hz, sample_matrix)`` pairs."""
        return iter(zip(self.frequencies_hz, self.samples))

    def sample_at(self, index: int) -> np.ndarray:
        """The sample matrix at the given index."""
        return np.array(self.samples[index])

    def fingerprint(self) -> str:
        """Content hash of the numerical payload (frequencies, samples, kind, z0).

        Delegates to :func:`repro.cache.dataset_fingerprint`: the free-form
        ``label`` is excluded, so relabelled copies share the fingerprint.
        This is the dataset half of the key fits are cached under.
        """
        from repro.cache.fingerprint import dataset_fingerprint

        return dataset_fingerprint(self)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def subset(self, indices: Iterable[int]) -> "FrequencyData":
        """Select a subset of frequencies (result is re-sorted by frequency)."""
        idx = np.asarray(list(indices), dtype=int)
        if idx.size == 0:
            raise ValueError("subset needs at least one index")
        order = np.argsort(self.frequencies_hz[idx])
        idx = idx[order]
        return FrequencyData(
            self.frequencies_hz[idx],
            self.samples[idx],
            kind=self.kind,
            reference_impedance=self.reference_impedance,
            label=self.label,
        )

    def band(self, f_min: float, f_max: float) -> "FrequencyData":
        """Restrict to samples whose frequency lies in ``[f_min, f_max]``."""
        mask = (self.frequencies_hz >= f_min) & (self.frequencies_hz <= f_max)
        if not np.any(mask):
            raise ValueError("no samples in the requested band")
        return self.subset(np.flatnonzero(mask))

    def decimate(self, factor: int) -> "FrequencyData":
        """Keep every ``factor``-th sample (used by the under-sampling experiments)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return self.subset(range(0, self.n_samples, int(factor)))

    def with_samples(self, samples: np.ndarray, *, label: Optional[str] = None) -> "FrequencyData":
        """Return a copy with the sample matrices replaced (e.g. after noise injection)."""
        return FrequencyData(
            self.frequencies_hz,
            samples,
            kind=self.kind,
            reference_impedance=self.reference_impedance,
            label=self.label if label is None else label,
        )

    def converted(self, kind: str, *, z0: Optional[float] = None) -> "FrequencyData":
        """Convert the samples to another network-parameter kind (pointwise).

        Supported conversions: any of ``Z``/``Y``/``S`` to any other.  Generic
        ``H`` data cannot be converted.
        """
        from repro.systems import interconnect as ic

        if kind not in _VALID_KINDS:
            raise ValueError(f"kind must be one of {_VALID_KINDS}, got {kind!r}")
        if kind == self.kind:
            return self
        if self.kind == "H" or kind == "H":
            raise ValueError("generic 'H' data cannot be converted between parameter kinds")
        z0 = self.reference_impedance if z0 is None else float(z0)
        table = {
            ("Z", "S"): lambda m: ic.z_to_s(m, z0),
            ("S", "Z"): lambda m: ic.s_to_z(m, z0),
            ("Y", "S"): lambda m: ic.y_to_s(m, z0),
            ("S", "Y"): lambda m: ic.s_to_y(m, z0),
            ("Z", "Y"): ic.z_to_y,
            ("Y", "Z"): ic.y_to_z,
        }
        convert = table[(self.kind, kind)]
        converted = np.stack([convert(sample) for sample in self.samples])
        return FrequencyData(
            self.frequencies_hz,
            converted,
            kind=kind,
            reference_impedance=z0,
            label=self.label,
        )

    def merged_with(self, other: "FrequencyData") -> "FrequencyData":
        """Merge two data sets (same kind and port count) into one sorted set."""
        if self.kind != other.kind:
            raise ValueError("cannot merge data of different kinds")
        if self.samples.shape[1:] != other.samples.shape[1:]:
            raise ValueError("cannot merge data with different port counts")
        freqs = np.concatenate([self.frequencies_hz, other.frequencies_hz])
        samples = np.concatenate([self.samples, other.samples])
        order = np.argsort(freqs)
        freqs = freqs[order]
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("merged data would contain duplicate frequencies")
        return FrequencyData(
            freqs,
            samples[order],
            kind=self.kind,
            reference_impedance=self.reference_impedance,
            label=self.label or other.label,
        )

    def magnitude(self, output: int = 0, input: int = 0) -> np.ndarray:
        """Magnitude of one transfer-function entry across the sweep (for Bode plots)."""
        return np.abs(self.samples[:, output, input])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrequencyData(kind={self.kind!r}, k={self.n_samples}, "
            f"shape=({self.n_outputs}, {self.n_inputs}), "
            f"band=[{self.frequencies_hz[0]:.3g}, {self.frequencies_hz[-1]:.3g}] Hz)"
        )
