"""Measurement-noise models.

The paper's Table 1 concerns "interpolation of noisy data": real measurements
of scattering parameters carry additive complex noise from the VNA, plus
calibration drift.  This module provides a simple but controllable model --
complex Gaussian noise whose standard deviation is specified either relative
to the RMS magnitude of the data (so results are comparable across workloads)
or via a signal-to-noise ratio in dB.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FrequencyData
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["snr_to_sigma", "add_measurement_noise"]


def snr_to_sigma(samples: np.ndarray, snr_db: float) -> float:
    """Noise standard deviation achieving the requested SNR (dB) relative to the data RMS."""
    samples = np.asarray(samples)
    rms = float(np.sqrt(np.mean(np.abs(samples) ** 2)))
    return rms * 10.0 ** (-snr_db / 20.0)


def add_measurement_noise(
    data: FrequencyData,
    *,
    relative_level: float | None = None,
    snr_db: float | None = None,
    seed: RandomState = None,
) -> FrequencyData:
    """Add complex Gaussian measurement noise to every sample entry.

    Exactly one of ``relative_level`` or ``snr_db`` must be given:

    * ``relative_level`` -- noise sigma as a fraction of the RMS magnitude of
      the data (e.g. ``0.01`` for 1 % noise),
    * ``snr_db`` -- desired signal-to-noise ratio in dB.

    The real and imaginary parts of each entry receive independent Gaussian
    perturbations of standard deviation ``sigma / sqrt(2)`` so the complex
    noise power equals ``sigma**2``.
    """
    if (relative_level is None) == (snr_db is None):
        raise ValueError("specify exactly one of relative_level or snr_db")
    if relative_level is not None:
        if relative_level < 0:
            raise ValueError("relative_level must be non-negative")
        rms = float(np.sqrt(np.mean(np.abs(data.samples) ** 2)))
        sigma = relative_level * rms
    else:
        sigma = snr_to_sigma(data.samples, float(snr_db))
    if sigma == 0.0:
        return data
    rng = ensure_rng(seed)
    shape = data.samples.shape
    noise = (rng.normal(scale=sigma / np.sqrt(2.0), size=shape)
             + 1j * rng.normal(scale=sigma / np.sqrt(2.0), size=shape))
    noisy = data.samples + noise
    label = f"{data.label} + noise" if data.label else "noisy"
    return data.with_samples(noisy, label=label)
