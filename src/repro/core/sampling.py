"""Minimal-sampling estimates (Theorem 3.5).

Theorem 3.5 of the paper bounds the least number of noise-free sampled
matrices needed to recover an underlying system ``Gamma`` with ``m`` inputs,
``p`` outputs, ``order(Gamma)`` poles and feed-through rank ``rank(D0)``:

``order(Gamma)/min(m, p)  <=  k_min  <=  (size(A0) + rank(D0))/min(m, p)``

with the empirical value ``k_min = (order(Gamma) + rank(D0))/min(m, p)``.
VFTI, by contrast, needs at least ``order(Gamma)`` samples -- a factor
``min(m, p)`` more, which is the headline saving of MFTI.

These helpers are used by the Example-1 experiment (to pick the "8 samples"
setting), by the minimal-sampling benchmark that sweeps the sample count for
both methods, and by user code that wants to budget measurements up front.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.systems.statespace import DescriptorSystem
from repro.utils.validation import check_nonnegative_integer, check_positive_integer

__all__ = ["MinimalSamplingEstimate", "minimal_sample_count", "recommend_sample_count"]


@dataclass(frozen=True)
class MinimalSamplingEstimate:
    """The three quantities of Theorem 3.5.

    Attributes
    ----------
    lower_bound:
        ``ceil(order / min(m, p))``.
    upper_bound:
        ``ceil((order + rank_d) / min(m, p))`` with ``size(A0)`` identified
        with the system order (the theorem's loose form uses ``size(A0)``
        which equals the order for a minimal realization).
    empirical:
        The paper's empirical value ``ceil((order + rank_d) / min(m, p))``.
    vfti_requirement:
        The at-least-``order(Gamma)`` sample count VFTI needs.
    """

    lower_bound: int
    upper_bound: int
    empirical: int
    vfti_requirement: int

    @property
    def saving_factor(self) -> float:
        """How many times fewer samples MFTI needs compared to VFTI (empirically)."""
        if self.empirical == 0:
            return float("inf")
        return self.vfti_requirement / self.empirical


def minimal_sample_count(
    order: int,
    n_inputs: int,
    n_outputs: int,
    *,
    rank_d: int = 0,
    block_size: int | None = None,
) -> MinimalSamplingEstimate:
    """Evaluate Theorem 3.5 for the given system dimensions.

    Parameters
    ----------
    order:
        Order of the underlying system (``order(Gamma) = rank(E0)``).
    n_inputs, n_outputs:
        Input / output counts ``m`` and ``p``.
    rank_d:
        Rank of the feed-through matrix ``D0``.
    block_size:
        Tangential block size actually used.  Theorem 3.5 assumes the full
        ``min(m, p)``; passing a smaller ``t`` rescales the estimate (each
        sampled matrix then only contributes ``t`` columns/rows).
    """
    order = check_positive_integer(order, "order")
    n_inputs = check_positive_integer(n_inputs, "n_inputs")
    n_outputs = check_positive_integer(n_outputs, "n_outputs")
    rank_d = check_nonnegative_integer(rank_d, "rank_d")
    width = min(n_inputs, n_outputs)
    if block_size is not None:
        block_size = check_positive_integer(block_size, "block_size")
        if block_size > width:
            raise ValueError(f"block_size ({block_size}) cannot exceed min(m, p) ({width})")
        width = block_size
    lower = math.ceil(order / width)
    upper = math.ceil((order + rank_d) / width)
    empirical = math.ceil((order + rank_d) / width)
    return MinimalSamplingEstimate(
        lower_bound=lower,
        upper_bound=upper,
        empirical=empirical,
        vfti_requirement=order,
    )


def recommend_sample_count(
    system: DescriptorSystem,
    *,
    block_size: int | None = None,
    safety_factor: float = 1.25,
    rank_tolerance: float = 1e-10,
) -> int:
    """Recommended number of sampled matrices for recovering ``system`` with MFTI.

    Uses the empirical value of Theorem 3.5 computed from the system's actual
    order and feed-through rank, inflated by ``safety_factor`` and rounded up
    to an even count (the left/right split of eqs. 6-7 consumes samples in
    pairs).
    """
    if safety_factor < 1.0:
        raise ValueError("safety_factor must be >= 1")
    d = np.asarray(system.D)
    if d.size:
        svals = np.linalg.svd(d, compute_uv=False)
        rank_d = int(np.count_nonzero(svals > rank_tolerance * max(svals[0], 1e-300)))
    else:
        rank_d = 0
    estimate = minimal_sample_count(
        system.order,
        system.n_inputs,
        system.n_outputs,
        rank_d=rank_d,
        block_size=block_size,
    )
    count = math.ceil(estimate.empirical * safety_factor)
    return count + (count % 2)
