"""Tangential interpolation direction generators.

A *direction* tells the interpolation framework which combination of ports a
sample matrix is probed along:

* VFTI probes one column and one row per sample -- its directions are single
  unit vectors cycling through the ports (the convention of Lefteriu &
  Antoulas that the paper uses as the baseline),
* MFTI probes ``t_i`` columns/rows per sample -- its directions are
  ``m x t_i`` / ``t_i x p`` matrices, required by Algorithm 1 to be
  orthonormal (full column/row rank guarantees that interpolating
  ``S(f_i) R_i`` pins down the full matrix when ``t_i = min(m, p)``,
  cf. Lemma 3.1).

All generators return *real* directions.  Real directions keep the conjugate
data at ``-j 2 pi f`` exactly the conjugate of the data at ``+j 2 pi f``,
which is what the real transform of Lemma 3.2 requires (see ``DESIGN.md``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_integer

__all__ = ["identity_directions", "orthonormal_directions", "vfti_directions"]


def identity_directions(n_ports: int, block_size: int, count: int, *, offset_stride: bool = True) -> list[np.ndarray]:
    """Deterministic orthonormal directions built from columns of the identity.

    For sample ``i`` the direction matrix consists of ``block_size`` distinct
    columns of the ``n_ports x n_ports`` identity.  With ``offset_stride`` the
    starting column rotates from sample to sample so that, across several
    samples, every port is probed -- without it the same ``block_size`` ports
    would be probed every time and the remaining ports would never be
    observed.

    Returns a list of ``count`` matrices of shape ``(n_ports, block_size)``.
    """
    n_ports = check_positive_integer(n_ports, "n_ports")
    block_size = check_positive_integer(block_size, "block_size")
    count = check_positive_integer(count, "count")
    if block_size > n_ports:
        raise ValueError(f"block_size ({block_size}) cannot exceed n_ports ({n_ports})")
    eye = np.eye(n_ports)
    directions = []
    for i in range(count):
        start = (i * block_size) % n_ports if offset_stride else 0
        cols = [(start + j) % n_ports for j in range(block_size)]
        directions.append(eye[:, cols].copy())
    return directions


def orthonormal_directions(
    n_ports: int,
    block_size: int,
    count: int,
    *,
    seed: RandomState = None,
) -> list[np.ndarray]:
    """Random orthonormal direction matrices (QR of Gaussian matrices).

    Random directions spread the probing energy over all ports for every
    sample, which is the robust default for noisy data; the deterministic
    :func:`identity_directions` are easier to reason about in tests.

    Returns a list of ``count`` matrices of shape ``(n_ports, block_size)``.
    """
    n_ports = check_positive_integer(n_ports, "n_ports")
    block_size = check_positive_integer(block_size, "block_size")
    count = check_positive_integer(count, "count")
    if block_size > n_ports:
        raise ValueError(f"block_size ({block_size}) cannot exceed n_ports ({n_ports})")
    rng = ensure_rng(seed)
    directions = []
    for _ in range(count):
        gaussian = rng.normal(size=(n_ports, block_size))
        q, r = np.linalg.qr(gaussian)
        # fix the sign so the factorisation (and hence the experiment) is
        # deterministic given the generator state
        q = q * np.sign(np.diag(r))[np.newaxis, :]
        directions.append(q)
    return directions


def vfti_directions(n_ports: int, count: int, *, start: int = 0) -> list[np.ndarray]:
    """Cycling unit-vector directions used by the VFTI baseline.

    Sample ``i`` is probed along port ``(start + i) mod n_ports`` -- the
    standard choice in the vector-format Loewner literature.  Returns a list
    of ``count`` column vectors of shape ``(n_ports, 1)``.
    """
    n_ports = check_positive_integer(n_ports, "n_ports")
    count = check_positive_integer(count, "count")
    eye = np.eye(n_ports)
    return [eye[:, [(start + i) % n_ports]].copy() for i in range(count)]
