"""Algorithm 2: recursive MFTI for noisy data.

Real measurement data are noisy, so more samples than the Theorem-3.5 minimum
must be folded in to average the noise out -- but using *all* of a large sweep
makes the Loewner matrices (and the SVD that follows) needlessly expensive.
Algorithm 2 of the paper therefore grows the interpolation set incrementally:

1. start from a small set of samples spread over the frequency band,
2. realize a model, evaluate the tangential residual on the samples *not yet
   used* (a hold-out error),
3. if the mean hold-out error is above the threshold ``Th``, move ``k0`` more
   samples from the hold-out set into the interpolation set and repeat.

The paper's listing selects the next samples through the Matlab ``sort`` of
the hold-out errors; this implementation makes the (documented) choice to add
the *worst-fitting* hold-out samples, which is the active-learning variant
that converges fastest, and offers ``selection="spread"`` to keep following
the frequency-strided pattern instead.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core._pipeline import realize_from_tangential, register_frontend
from repro.core.assembly import IncrementalLoewner, prepare_block_directions
from repro.core.options import RecursiveOptions
from repro.core.results import MacromodelResult, RecursiveDiagnostics, RecursiveIteration
from repro.core.tangential import TangentialData, build_tangential_data
from repro.data.dataset import FrequencyData

__all__ = ["recursive_mfti"]


def _spread_order(n_pairs: int, stride: int) -> list[int]:
    """The paper's strided visiting order: 0, s, 2s, ..., 1, s+1, ... for stride ``s``."""
    stride = max(1, min(stride, n_pairs))
    order: list[int] = []
    for offset in range(stride):
        order.extend(range(offset, n_pairs, stride))
    return order


def _holdout_errors(
    tangential: TangentialData,
    system,
    holdout_pairs: list[int],
    *,
    relative: bool,
) -> np.ndarray:
    """Tangential residual of ``system`` on the held-out sample pairs.

    All hold-out points are evaluated in one batched sweep through the
    shared evaluation kernel; the ``"solve"`` strategy is pinned so the
    active-learning sample selection (argsort over these residuals) stays
    bit-for-bit identical to the per-point reference loop.
    """
    group = 2 if tangential.conjugate_pairs else 1
    rights = [tangential.right_blocks[pair * group] for pair in holdout_pairs]
    lefts = [tangential.left_blocks[pair * group] for pair in holdout_pairs]
    points = [b.point for b in rights] + [b.point for b in lefts]
    h = system.evaluate_many(points, method="solve")
    n_pairs = len(holdout_pairs)
    errors = np.empty(n_pairs)
    for pos, (right, left) in enumerate(zip(rights, lefts)):
        err = (np.linalg.norm(h[pos] @ right.directions - right.values)
               + np.linalg.norm(left.directions @ h[n_pairs + pos] - left.values))
        if relative:
            scale = np.linalg.norm(right.values) + np.linalg.norm(left.values)
            err = err / scale if scale > 0 else err
        errors[pos] = err
    return errors


@register_frontend("mfti-recursive", options_type=RecursiveOptions)
def recursive_mfti(
    data: FrequencyData,
    *,
    options: Optional[RecursiveOptions] = None,
    **kwargs,
) -> MacromodelResult:
    """Recover a macromodel from noisy data with recursive MFTI (Algorithm 2).

    Parameters
    ----------
    data:
        Sampled (typically noisy) frequency responses.
    options:
        A :class:`~repro.core.options.RecursiveOptions` instance; keyword
        arguments are accepted as a shortcut (mutually exclusive with
        ``options``).

    Returns
    -------
    MacromodelResult
        The final model.  ``result.metadata["recursion"]`` holds the
        :class:`~repro.core.results.RecursiveDiagnostics` refinement history
        and ``result.metadata["selected_pairs"]`` the indices of the sample
        pairs that ended up in the interpolation set.
    """
    if options is not None and kwargs:
        raise ValueError("pass either an options object or keyword arguments, not both")
    opts = options if options is not None else RecursiveOptions(**kwargs)

    started = time.perf_counter()
    k = data.n_samples
    if k < 4:
        raise ValueError("recursive MFTI needs at least four sampled frequencies")

    plan = prepare_block_directions(opts, k, data.n_inputs, data.n_outputs)
    full = build_tangential_data(
        data,
        right_directions=plan.right_directions,
        left_directions=plan.left_directions,
        right_indices=plan.right_indices,
        left_indices=plan.left_indices,
        include_conjugates=opts.include_conjugates,
    )

    n_pairs = min(full.n_right_samples, full.n_left_samples)
    extra_right = list(range(n_pairs, full.n_right_samples))
    extra_left = list(range(n_pairs, full.n_left_samples))

    k0 = opts.samples_per_iteration
    initial = opts.initial_samples if opts.initial_samples is not None else k0
    initial = min(max(initial, 1), n_pairs)
    visit_order = _spread_order(n_pairs, k0)

    selected: list[int] = visit_order[:initial]
    remaining: list[int] = [i for i in visit_order if i not in set(selected)]

    history: list[RecursiveIteration] = []
    converged = False
    result: Optional[MacromodelResult] = None
    # the interpolation set only grows, so the pencil is grown incrementally:
    # each iteration reuses the previous V@R / L@W products and computes only
    # the newly selected rows/columns (bitwise identical to a scratch build)
    assembler = IncrementalLoewner(full)

    for iteration in range(opts.max_iterations):
        right_sel = sorted(set(selected) | set(extra_right))
        left_sel = sorted(set(selected) | set(extra_left))
        subset, complex_pencil = assembler.update(right_sel, left_sel)
        result = realize_from_tangential(
            subset,
            opts,
            method="mfti-recursive",
            n_samples_used=len(right_sel) + len(left_sel),
            metadata={"block_sizes": plan.per_sample_sizes},
            # only the rank-revealing profile is needed per refinement
            # iteration; skipping the L / sL SVDs makes each pass cheaper
            singular_value_profiles=("pencil",),
            complex_pencil=complex_pencil,
        )
        if not remaining:
            converged = True
            history.append(RecursiveIteration(
                iteration=iteration,
                n_samples_used=len(selected),
                model_order=result.order,
                holdout_error_mean=float("nan"),
                holdout_error_max=float("nan"),
            ))
            break
        errors = _holdout_errors(full, result.system, remaining, relative=opts.relative_error)
        history.append(RecursiveIteration(
            iteration=iteration,
            n_samples_used=len(selected),
            model_order=result.order,
            holdout_error_mean=float(np.mean(errors)),
            holdout_error_max=float(np.max(errors)),
        ))
        if np.mean(errors) <= opts.error_threshold:
            converged = True
            break
        # move the next k0 samples from the hold-out set into the interpolation set
        if opts.selection == "worst":
            order = np.argsort(errors)[::-1]
        else:  # "spread": keep following the strided visiting order
            order = np.arange(len(remaining))
        to_add = [remaining[i] for i in order[:k0]]
        selected = selected + to_add
        remaining = [i for i in remaining if i not in set(to_add)]

    assert result is not None  # max_iterations >= 1 guarantees at least one pass
    elapsed = time.perf_counter() - started
    diagnostics = RecursiveDiagnostics(
        iterations=tuple(history),
        converged=converged,
        threshold=opts.error_threshold,
    )
    metadata = dict(result.metadata)
    metadata["recursion"] = diagnostics
    metadata["selected_pairs"] = tuple(sorted(selected))
    return MacromodelResult(
        system=result.system,
        method="mfti-recursive",
        singular_values=result.singular_values,
        realization=result.realization,
        tangential=result.tangential,
        pencil=result.pencil,
        n_samples_used=len(selected),
        elapsed_seconds=elapsed,
        metadata=metadata,
    )
