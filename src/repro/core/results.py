"""Result value objects returned by the interpolation front-ends."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.loewner import LoewnerPencil
from repro.core.realization import RealizationDiagnostics
from repro.core.tangential import TangentialData
from repro.data.dataset import FrequencyData
from repro.metrics.errors import model_aggregate_error, model_errors
from repro.systems.statespace import DescriptorSystem

__all__ = ["MacromodelResult", "RecursiveDiagnostics", "RecursiveIteration"]


@dataclass(frozen=True)
class MacromodelResult:
    """A recovered macromodel plus everything needed to analyse how it was obtained.

    Attributes
    ----------
    system:
        The recovered descriptor system.
    method:
        ``"mfti"``, ``"mfti-recursive"``, ``"vfti"`` or ``"vector-fitting"``.
    singular_values:
        Profiles of ``L``, ``sL`` and ``x0*L - sL`` (keys ``"loewner"``,
        ``"shifted_loewner"``, ``"pencil"``) -- the quantities of Fig. 1.
        Empty for methods that have no Loewner pencil (vector fitting).
    realization:
        SVD diagnostics of the final projection (``None`` for vector fitting).
    tangential:
        The tangential data the model was built from (``None`` for vector
        fitting).
    pencil:
        The Loewner pencil (possibly real-transformed) used in the final
        realization.
    n_samples_used:
        How many sampled matrices contributed to the model (relevant for the
        recursive algorithm, which may stop before using every sample).
    elapsed_seconds:
        Wall-clock time spent inside the algorithm.
    metadata:
        Free-form extras recorded by the front-end (options, weights, ...).
    """

    system: DescriptorSystem
    method: str
    singular_values: dict[str, np.ndarray] = field(default_factory=dict)
    realization: Optional[RealizationDiagnostics] = None
    tangential: Optional[TangentialData] = None
    pencil: Optional[LoewnerPencil] = None
    n_samples_used: int = 0
    elapsed_seconds: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def order(self) -> int:
        """Order (state dimension) of the recovered model."""
        return self.system.order

    def frequency_response(self, frequencies_hz) -> np.ndarray:
        """Evaluate the recovered model along a frequency grid (Hz)."""
        return self.system.frequency_response(frequencies_hz)

    def errors_against(self, reference: FrequencyData) -> np.ndarray:
        """Per-frequency relative errors of the model against reference data."""
        return model_errors(self.system, reference)

    def aggregate_error(self, reference: FrequencyData) -> float:
        """The paper's ``ERR`` metric of the model against reference data."""
        return model_aggregate_error(self.system, reference)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}: order={self.order}, samples={self.n_samples_used}, "
            f"time={self.elapsed_seconds:.3f}s"
        )


@dataclass(frozen=True)
class RecursiveIteration:
    """Record of one refinement iteration of the recursive algorithm.

    Attributes
    ----------
    iteration:
        0-based iteration counter.
    n_samples_used:
        Number of sample pairs included in the model after this iteration.
    model_order:
        Order of the model realized in this iteration.
    holdout_error_mean, holdout_error_max:
        Mean / max tangential residual over the samples not yet used.
    """

    iteration: int
    n_samples_used: int
    model_order: int
    holdout_error_mean: float
    holdout_error_max: float


@dataclass(frozen=True)
class RecursiveDiagnostics:
    """Full refinement history of the recursive algorithm (Algorithm 2)."""

    iterations: tuple[RecursiveIteration, ...]
    converged: bool
    threshold: float

    @property
    def n_iterations(self) -> int:
        """Number of refinement iterations performed."""
        return len(self.iterations)

    @property
    def final_holdout_error(self) -> float:
        """Mean hold-out error after the last iteration (``nan`` if no hold-out left)."""
        if not self.iterations:
            return float("nan")
        return self.iterations[-1].holdout_error_mean
