"""Loewner-matrix tangential interpolation: VFTI baseline and the paper's MFTI.

Layout of the subpackage (bottom-up):

* :mod:`repro.core.directions` -- tangential direction generators (unit
  vectors for VFTI, orthonormal ``t_i``-column matrices for MFTI).
* :mod:`repro.core.tangential` -- the :class:`TangentialData` container and
  its construction from :class:`~repro.data.dataset.FrequencyData`
  (eqs. 6-9 of the paper).
* :mod:`repro.core.loewner` -- block-format Loewner and shifted Loewner
  matrices (eqs. 11-12) and their Sylvester-equation checks (eq. 13).
* :mod:`repro.core.assembly` -- the batched fit-assembly layer: vectorized
  vector-fitting kernels, the shared direction plumbing of the MFTI and
  recursive front-ends, and the incremental (bit-stable) Loewner growth
  used by Algorithm 2.
* :mod:`repro.core.realization` -- the direct realization of Lemma 3.1, the
  real transform of Lemma 3.2 and the SVD realization of Lemma 3.4.
* :mod:`repro.core.sampling` -- the minimal-sampling estimates of Theorem 3.5.
* :mod:`repro.core.mfti` -- Algorithm 1 (MFTI for noise-free / clean data).
* :mod:`repro.core.recursive` -- Algorithm 2 (recursive MFTI for noisy data).
* :mod:`repro.core.vfti` -- the vector-format baseline the paper compares
  against.
* :mod:`repro.core.options` / :mod:`repro.core.results` -- configuration and
  result value objects shared by all front-ends.
"""

from repro.core._pipeline import available_methods, frontend_spec, run_fit
from repro.core.assembly import (
    DirectionPlan,
    IncrementalLoewner,
    PoleGrouping,
    embed_directions,
    interleaved_indices,
    partial_fraction_basis,
    prepare_block_directions,
    vf_scaling_blocks,
)
from repro.core.directions import (
    identity_directions,
    orthonormal_directions,
    vfti_directions,
)
from repro.core.loewner import (
    LoewnerPencil,
    assemble_pencil_from_products,
    build_loewner_pencil,
    sylvester_residuals,
)
from repro.core.mfti import mfti
from repro.core.options import InterpolationOptions, MftiOptions, RecursiveOptions, VftiOptions
from repro.core.realization import (
    direct_realization,
    real_transform_matrix,
    svd_realization,
    to_real_data,
)
from repro.core.recursive import recursive_mfti
from repro.core.results import MacromodelResult, RecursiveDiagnostics
from repro.core.sampling import minimal_sample_count, recommend_sample_count
from repro.core.tangential import TangentialData, build_tangential_data
from repro.core.vfti import vfti

__all__ = [
    "DirectionPlan",
    "IncrementalLoewner",
    "PoleGrouping",
    "assemble_pencil_from_products",
    "embed_directions",
    "interleaved_indices",
    "partial_fraction_basis",
    "prepare_block_directions",
    "vf_scaling_blocks",
    "identity_directions",
    "orthonormal_directions",
    "vfti_directions",
    "TangentialData",
    "build_tangential_data",
    "LoewnerPencil",
    "build_loewner_pencil",
    "sylvester_residuals",
    "direct_realization",
    "svd_realization",
    "real_transform_matrix",
    "to_real_data",
    "minimal_sample_count",
    "recommend_sample_count",
    "mfti",
    "recursive_mfti",
    "vfti",
    "run_fit",
    "available_methods",
    "frontend_spec",
    "InterpolationOptions",
    "MftiOptions",
    "VftiOptions",
    "RecursiveOptions",
    "MacromodelResult",
    "RecursiveDiagnostics",
]
