"""Shared Loewner pipeline used by the VFTI and MFTI front-ends.

Both front-ends differ only in how they pick tangential directions; once the
:class:`~repro.core.tangential.TangentialData` exists, the remaining steps --
assemble the pencil, optionally apply the real transform, project through the
rank-revealing SVD, package the result -- are identical and live here.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.loewner import build_loewner_pencil
from repro.core.options import InterpolationOptions
from repro.core.realization import svd_realization, to_real_data
from repro.core.results import MacromodelResult
from repro.core.tangential import TangentialData

__all__ = ["realize_from_tangential"]


def realize_from_tangential(
    tangential: TangentialData,
    options: InterpolationOptions,
    *,
    method: str,
    n_samples_used: int,
    started_at: float | None = None,
    metadata: dict | None = None,
) -> MacromodelResult:
    """Run the Loewner realization pipeline on prepared tangential data.

    Parameters
    ----------
    tangential:
        The right/left tangential data (already including conjugates when a
        real model is requested).
    options:
        Shared interpolation options (real output, SVD mode, rank rule, ...).
    method:
        Name recorded on the result (``"mfti"``, ``"vfti"``, ...).
    n_samples_used:
        Number of sampled matrices that contributed to ``tangential``.
    started_at:
        Optional ``time.perf_counter()`` timestamp taken before the direction
        generation, so the reported time covers the whole algorithm.
    metadata:
        Extra key/value pairs stored on the result.
    """
    start = time.perf_counter() if started_at is None else started_at
    complex_pencil = build_loewner_pencil(tangential)
    # singular-value profiles (Fig. 1) are always reported from the complex
    # pencil; the real transform is unitary so the profiles are identical
    singular_values = complex_pencil.singular_values(options.x0)

    pencil = complex_pencil
    if options.real_output:
        pencil = to_real_data(complex_pencil)

    system, diagnostics = svd_realization(
        pencil,
        order=options.order,
        rank_tolerance=options.rank_tolerance,
        rank_method=options.rank_method,
        mode=options.svd_mode,
        x0=options.x0,
    )
    elapsed = time.perf_counter() - start
    info = dict(metadata or {})
    info.setdefault("options", options)
    return MacromodelResult(
        system=system,
        method=method,
        singular_values={k: np.asarray(v) for k, v in singular_values.items()},
        realization=diagnostics,
        tangential=tangential,
        pencil=pencil,
        n_samples_used=int(n_samples_used),
        elapsed_seconds=float(elapsed),
        metadata=info,
    )
