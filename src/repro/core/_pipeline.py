"""Shared Loewner pipeline used by the VFTI and MFTI front-ends.

Both front-ends differ only in how they pick tangential directions; once the
:class:`~repro.core.tangential.TangentialData` exists, the remaining steps --
assemble the pencil, optionally apply the real transform, project through the
rank-revealing SVD, package the result -- are identical and live here.

The module also hosts the *front-end registry*: every interpolation front-end
(``mfti``, ``vfti``, ``mfti-recursive``) registers itself under a method name,
and :func:`run_fit` dispatches on that name.  The registry is the single entry
point shared by interactive use, the experiment drivers and the batch engine
(:mod:`repro.batch`), so a fit described as ``(data, method, options)`` runs
through exactly the same code no matter which layer requested it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.loewner import build_loewner_pencil
from repro.core.options import InterpolationOptions
from repro.core.realization import svd_realization, to_real_data
from repro.core.results import MacromodelResult
from repro.core.tangential import TangentialData

__all__ = [
    "realize_from_tangential",
    "register_frontend",
    "available_methods",
    "frontend_spec",
    "run_fit",
]


@dataclass(frozen=True)
class FrontendSpec:
    """A registered interpolation front-end.

    Attributes
    ----------
    name:
        Method name used for dispatch (``"mfti"``, ``"vfti"``, ...).
    runner:
        The front-end callable: ``runner(data, *, options=None, **kwargs)``.
    options_type:
        The options dataclass the front-end expects.
    """

    name: str
    runner: Callable[..., MacromodelResult]
    options_type: type[InterpolationOptions]


_FRONTENDS: dict[str, FrontendSpec] = {}


def register_frontend(name: str, *, options_type: type[InterpolationOptions]):
    """Register the decorated callable as the front-end for ``name``.

    Used by the front-end modules themselves; user code normally only calls
    :func:`run_fit` / :func:`available_methods`.
    """

    def decorate(runner: Callable[..., MacromodelResult]):
        _FRONTENDS[name] = FrontendSpec(name=name, runner=runner, options_type=options_type)
        return runner

    return decorate


def _ensure_frontends_loaded() -> None:
    """Import the front-end modules so their ``register_frontend`` calls ran."""
    from repro.core import mfti, recursive, vfti  # noqa: F401  (import = registration)


def available_methods() -> tuple[str, ...]:
    """Names of every registered interpolation front-end, sorted."""
    _ensure_frontends_loaded()
    return tuple(sorted(_FRONTENDS))


def frontend_spec(method: str) -> FrontendSpec:
    """Look up the :class:`FrontendSpec` registered under ``method``."""
    _ensure_frontends_loaded()
    try:
        return _FRONTENDS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; available: {', '.join(sorted(_FRONTENDS))}"
        ) from None


def run_fit(
    data,
    *,
    method: str = "mfti",
    options: Optional[InterpolationOptions] = None,
    cache=None,
    **kwargs,
) -> MacromodelResult:
    """Run one macromodel fit, dispatching on the method name.

    Parameters
    ----------
    data:
        The :class:`~repro.data.dataset.FrequencyData` to interpolate.
    method:
        Registered front-end name (see :func:`available_methods`).
    options:
        Options object of the method's expected type; keyword arguments are
        accepted as a shortcut exactly like on the front-ends themselves.
    cache:
        Optional :class:`~repro.cache.FitCache`.  When given, the fit is
        looked up by content (dataset fingerprint + method + options) and
        replayed on a hit; a fresh fit populates the cache.  Keyword
        shortcuts are normalised into the options object first, so they
        share cache entries with the explicit-options spelling.
        Nondeterministic fits (unseeded random directions) always bypass
        the cache.
    """
    spec = frontend_spec(method)
    if options is not None and not isinstance(options, spec.options_type):
        raise TypeError(
            f"method {method!r} expects {spec.options_type.__name__} options, "
            f"got {type(options).__name__}"
        )
    if cache is not None:
        # deferred import: repro.cache consumes this registry module
        from repro.cache.fitcache import fit_with_cache

        result, _, _ = fit_with_cache(
            data, method=method, options=options, cache=cache, **kwargs
        )
        return result
    return spec.runner(data, options=options, **kwargs)


def realize_from_tangential(
    tangential: TangentialData,
    options: InterpolationOptions,
    *,
    method: str,
    n_samples_used: int,
    started_at: float | None = None,
    metadata: dict | None = None,
    singular_value_profiles: tuple[str, ...] | None = None,
    complex_pencil=None,
) -> MacromodelResult:
    """Run the Loewner realization pipeline on prepared tangential data.

    Parameters
    ----------
    tangential:
        The right/left tangential data (already including conjugates when a
        real model is requested).
    options:
        Shared interpolation options (real output, SVD mode, rank rule, ...).
    method:
        Name recorded on the result (``"mfti"``, ``"vfti"``, ...).
    n_samples_used:
        Number of sampled matrices that contributed to ``tangential``.
    started_at:
        Optional ``time.perf_counter()`` timestamp taken before the direction
        generation, so the reported time covers the whole algorithm.
    metadata:
        Extra key/value pairs stored on the result.
    singular_value_profiles:
        Which Fig.-1 singular-value profiles to report on the result
        (default: all three).  Front-ends that realize many intermediate
        pencils (the recursive algorithm) restrict this to ``("pencil",)``
        to skip two full SVDs per iteration.
    complex_pencil:
        Optional pre-assembled complex :class:`~repro.core.loewner.
        LoewnerPencil` for ``tangential``.  The recursive front-end passes
        the incrementally grown pencil here (which is bitwise identical to
        the from-scratch build, so the realization is unaffected); by
        default the pencil is assembled from ``tangential``.
    """
    start = time.perf_counter() if started_at is None else started_at
    if complex_pencil is None:
        complex_pencil = build_loewner_pencil(tangential)
    # singular-value profiles (Fig. 1) are always reported from the complex
    # pencil; the real transform is unitary so the profiles are identical
    singular_values = complex_pencil.singular_values(
        options.x0, profiles=singular_value_profiles
    )

    pencil = complex_pencil
    if options.real_output:
        pencil = to_real_data(complex_pencil)

    system, diagnostics = svd_realization(
        pencil,
        order=options.order,
        rank_tolerance=options.rank_tolerance,
        rank_method=options.rank_method,
        mode=options.svd_mode,
        x0=options.x0,
    )
    elapsed = time.perf_counter() - start
    info = dict(metadata or {})
    info.setdefault("options", options)
    return MacromodelResult(
        system=system,
        method=method,
        singular_values={k: np.asarray(v) for k, v in singular_values.items()},
        realization=diagnostics,
        tangential=tangential,
        pencil=pencil,
        n_samples_used=int(n_samples_used),
        elapsed_seconds=float(elapsed),
        metadata=info,
    )
