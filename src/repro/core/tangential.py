"""Tangential interpolation data (vector and matrix format).

This module implements eqs. (4) and (6)-(9) of the paper: it takes sampled
frequency-response matrices and turns them into *right* and *left* tangential
interpolation data,

* right data  ``(lambda_i, R_i, W_i = S(f_i) R_i)`` -- column information,
* left data   ``(mu_i, L_i, V_i = L_i S(f_i))``    -- row information,

including the mirrored (complex-conjugate) copies at ``-j 2 pi f`` that make a
real realization possible (Lemma 3.2).  The vector format of VFTI is simply
the special case where every direction has a single column/row.

The container :class:`TangentialData` keeps the data in per-block form (one
block per sample point) and exposes the compact concatenated matrices
``Lambda, R, W, M, L, V`` of eqs. (8)-(9) as properties, which is what the
Loewner assembly consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.data.dataset import FrequencyData

__all__ = ["RightBlock", "LeftBlock", "TangentialData", "build_tangential_data"]


@dataclass(frozen=True)
class RightBlock:
    """One right tangential block ``(lambda, R, W)`` with ``W = H(lambda) R``."""

    point: complex
    directions: np.ndarray  # (m, t)
    values: np.ndarray      # (p, t)

    def __post_init__(self):
        directions = np.asarray(self.directions, dtype=complex)
        values = np.asarray(self.values, dtype=complex)
        if directions.ndim != 2 or values.ndim != 2:
            raise ValueError("right block directions and values must be matrices")
        if directions.shape[1] != values.shape[1]:
            raise ValueError(
                "right block directions and values must have the same number of columns"
            )
        object.__setattr__(self, "point", complex(self.point))
        object.__setattr__(self, "directions", directions)
        object.__setattr__(self, "values", values)

    @property
    def block_size(self) -> int:
        """Number of tangential columns ``t_i`` carried by this block."""
        return int(self.directions.shape[1])

    def conjugate(self) -> "RightBlock":
        """The mirrored block at ``conj(point)`` (data and directions conjugated)."""
        return RightBlock(np.conj(self.point), np.conj(self.directions), np.conj(self.values))


@dataclass(frozen=True)
class LeftBlock:
    """One left tangential block ``(mu, L, V)`` with ``V = L H(mu)``."""

    point: complex
    directions: np.ndarray  # (t, p)
    values: np.ndarray      # (t, m)

    def __post_init__(self):
        directions = np.asarray(self.directions, dtype=complex)
        values = np.asarray(self.values, dtype=complex)
        if directions.ndim != 2 or values.ndim != 2:
            raise ValueError("left block directions and values must be matrices")
        if directions.shape[0] != values.shape[0]:
            raise ValueError(
                "left block directions and values must have the same number of rows"
            )
        object.__setattr__(self, "point", complex(self.point))
        object.__setattr__(self, "directions", directions)
        object.__setattr__(self, "values", values)

    @property
    def block_size(self) -> int:
        """Number of tangential rows ``t_i`` carried by this block."""
        return int(self.directions.shape[0])

    def conjugate(self) -> "LeftBlock":
        """The mirrored block at ``conj(point)``."""
        return LeftBlock(np.conj(self.point), np.conj(self.directions), np.conj(self.values))


class TangentialData:
    """Right and left tangential interpolation data in block form.

    Parameters
    ----------
    right_blocks, left_blocks:
        Sequences of :class:`RightBlock` / :class:`LeftBlock`.  When
        ``conjugate_pairs`` is true the blocks must come in adjacent
        ``(+point, conj(point))`` pairs of equal block size -- the layout the
        real transform of Lemma 3.2 expects.
    conjugate_pairs:
        Whether the blocks are organised as adjacent conjugate pairs.
    """

    def __init__(
        self,
        right_blocks: Sequence[RightBlock],
        left_blocks: Sequence[LeftBlock],
        *,
        conjugate_pairs: bool = True,
    ):
        right_blocks = tuple(right_blocks)
        left_blocks = tuple(left_blocks)
        if not right_blocks or not left_blocks:
            raise ValueError("tangential data needs at least one right and one left block")
        n_inputs = {b.directions.shape[0] for b in right_blocks}
        n_outputs_r = {b.values.shape[0] for b in right_blocks}
        n_outputs_l = {b.directions.shape[1] for b in left_blocks}
        n_inputs_l = {b.values.shape[1] for b in left_blocks}
        if len(n_inputs) != 1 or len(n_outputs_r) != 1:
            raise ValueError("all right blocks must share the same input/output dimensions")
        if len(n_outputs_l) != 1 or len(n_inputs_l) != 1:
            raise ValueError("all left blocks must share the same input/output dimensions")
        if n_inputs != n_inputs_l or n_outputs_r != n_outputs_l:
            raise ValueError("left and right blocks disagree on the system dimensions (p, m)")
        if conjugate_pairs:
            _check_conjugate_pairs(right_blocks, "right")
            _check_conjugate_pairs(left_blocks, "left")
        lam = np.array([b.point for b in right_blocks])
        mu = np.array([b.point for b in left_blocks])
        if np.intersect1d(np.round(lam, 12), np.round(mu, 12)).size:
            raise ValueError("right and left sample points must be disjoint")
        self._right = right_blocks
        self._left = left_blocks
        self._conjugate_pairs = bool(conjugate_pairs)

    # ------------------------------------------------------------------ #
    # block views
    # ------------------------------------------------------------------ #
    @property
    def right_blocks(self) -> tuple[RightBlock, ...]:
        """All right blocks in order."""
        return self._right

    @property
    def left_blocks(self) -> tuple[LeftBlock, ...]:
        """All left blocks in order."""
        return self._left

    @property
    def conjugate_pairs(self) -> bool:
        """True when blocks are organised as adjacent conjugate pairs."""
        return self._conjugate_pairs

    @property
    def n_inputs(self) -> int:
        """Number of system inputs ``m``."""
        return int(self._right[0].directions.shape[0])

    @property
    def n_outputs(self) -> int:
        """Number of system outputs ``p``."""
        return int(self._right[0].values.shape[0])

    @property
    def right_block_sizes(self) -> tuple[int, ...]:
        """Column counts ``t_i`` of the right blocks."""
        return tuple(b.block_size for b in self._right)

    @property
    def left_block_sizes(self) -> tuple[int, ...]:
        """Row counts ``t_i`` of the left blocks."""
        return tuple(b.block_size for b in self._left)

    @property
    def k_right(self) -> int:
        """Total number of right tangential columns (order of ``Lambda``)."""
        return int(sum(self.right_block_sizes))

    @property
    def k_left(self) -> int:
        """Total number of left tangential rows (order of ``M``)."""
        return int(sum(self.left_block_sizes))

    @property
    def n_sample_matrices(self) -> int:
        """Number of distinct sampled frequencies represented (conjugates not double-counted)."""
        divisor = 2 if self._conjugate_pairs else 1
        return (len(self._right) + len(self._left)) // divisor

    # ------------------------------------------------------------------ #
    # compact (concatenated) format of eqs. (8)-(9)
    # ------------------------------------------------------------------ #
    @property
    def lambda_points(self) -> np.ndarray:
        """Column sample points: ``lambda`` repeated ``t_i`` times per block (length ``k_right``)."""
        return np.concatenate([np.full(b.block_size, b.point) for b in self._right])

    @property
    def mu_points(self) -> np.ndarray:
        """Row sample points: ``mu`` repeated ``t_i`` times per block (length ``k_left``)."""
        return np.concatenate([np.full(b.block_size, b.point) for b in self._left])

    @property
    def Lambda(self) -> np.ndarray:
        """Diagonal matrix ``Lambda`` of eq. (8)."""
        return np.diag(self.lambda_points)

    @property
    def M(self) -> np.ndarray:
        """Diagonal matrix ``M`` of eq. (9)."""
        return np.diag(self.mu_points)

    @property
    def R(self) -> np.ndarray:
        """Right directions concatenated column-wise: ``m x k_right``."""
        return np.hstack([b.directions for b in self._right])

    @property
    def W(self) -> np.ndarray:
        """Right values concatenated column-wise: ``p x k_right``."""
        return np.hstack([b.values for b in self._right])

    @property
    def L(self) -> np.ndarray:
        """Left directions stacked row-wise: ``k_left x p``."""
        return np.vstack([b.directions for b in self._left])

    @property
    def V(self) -> np.ndarray:
        """Left values stacked row-wise: ``k_left x m``."""
        return np.vstack([b.values for b in self._left])

    # ------------------------------------------------------------------ #
    # selection (used by the recursive algorithm)
    # ------------------------------------------------------------------ #
    def _group_size(self) -> int:
        return 2 if self._conjugate_pairs else 1

    @property
    def n_right_samples(self) -> int:
        """Number of selectable right sample groups (conjugate pairs count once)."""
        return len(self._right) // self._group_size()

    @property
    def n_left_samples(self) -> int:
        """Number of selectable left sample groups (conjugate pairs count once)."""
        return len(self._left) // self._group_size()

    def subset(
        self,
        right_indices: Iterable[int],
        left_indices: Iterable[int],
    ) -> "TangentialData":
        """Restrict the data to a subset of sample groups.

        Indices refer to *sample groups*: when the data carries conjugate
        pairs, selecting group ``i`` keeps both the ``+j omega`` block and its
        mirrored partner, so the result remains eligible for the real
        transform.  The incremental pencil builder
        (:class:`~repro.core.assembly.IncrementalLoewner`) grows subsets
        produced by this method and guarantees its pencils stay bitwise
        identical to a from-scratch build on the same subset.
        """
        g = self._group_size()
        right_idx = sorted(set(int(i) for i in right_indices))
        left_idx = sorted(set(int(i) for i in left_indices))
        if not right_idx or not left_idx:
            raise ValueError("selection must keep at least one right and one left sample")
        if right_idx[0] < 0 or right_idx[-1] >= self.n_right_samples:
            raise ValueError("right sample index out of range")
        if left_idx[0] < 0 or left_idx[-1] >= self.n_left_samples:
            raise ValueError("left sample index out of range")
        right_blocks = []
        for i in right_idx:
            right_blocks.extend(self._right[i * g : (i + 1) * g])
        left_blocks = []
        for i in left_idx:
            left_blocks.extend(self._left[i * g : (i + 1) * g])
        # every constructor invariant (matching dimensions, conjugate-pair
        # adjacency, disjoint point sets) is inherited by a subset of already
        # validated data, so the re-validation pass is skipped -- the
        # recursive front-end takes a subset per refinement iteration
        return TangentialData._trusted(right_blocks, left_blocks, self._conjugate_pairs)

    @classmethod
    def _trusted(
        cls,
        right_blocks: Sequence[RightBlock],
        left_blocks: Sequence[LeftBlock],
        conjugate_pairs: bool,
    ) -> "TangentialData":
        """Construct without re-validating (blocks must come from validated data)."""
        data = object.__new__(cls)
        data._right = tuple(right_blocks)
        data._left = tuple(left_blocks)
        data._conjugate_pairs = bool(conjugate_pairs)
        return data

    def select_samples(
        self,
        right_indices: Iterable[int],
        left_indices: Iterable[int],
    ) -> "TangentialData":
        """Original name of :meth:`subset`, retained for backwards compatibility."""
        return self.subset(right_indices, left_indices)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def interpolation_residuals(self, system) -> tuple[np.ndarray, np.ndarray]:
        """Residual norms of the interpolation conditions (10) for a candidate model.

        Returns ``(right_residuals, left_residuals)`` -- one Frobenius residual
        ``||H(lambda_i) R_i - W_i||`` per right block and
        ``||L_i H(mu_i) - V_i||`` per left block.  Exact interpolation drives
        these to (numerical) zero.  All block points are evaluated in one
        batched sweep when the candidate model supports the shared evaluation
        kernel (``evaluate_many``); anything exposing only a scalar
        ``transfer_function`` is evaluated point by point.
        """
        points = [b.point for b in self._right] + [b.point for b in self._left]
        evaluate_many = getattr(system, "evaluate_many", None)
        if evaluate_many is not None:
            try:
                h = evaluate_many(points, method="solve")
            except TypeError:
                # duck-typed models with the plain evaluate_many(points)
                # signature (no strategy keyword) stay usable
                h = np.asarray(evaluate_many(points))
        else:
            h = np.stack([system.transfer_function(point) for point in points])
        n_right = len(self._right)
        right = np.array([
            np.linalg.norm(h[i] @ b.directions - b.values)
            for i, b in enumerate(self._right)
        ])
        left = np.array([
            np.linalg.norm(b.directions @ h[n_right + i] - b.values)
            for i, b in enumerate(self._left)
        ])
        return right, left

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TangentialData(right_blocks={len(self._right)}, left_blocks={len(self._left)}, "
            f"k_right={self.k_right}, k_left={self.k_left}, "
            f"conjugate_pairs={self._conjugate_pairs})"
        )


def _check_conjugate_pairs(blocks, side: str) -> None:
    if len(blocks) % 2 != 0:
        raise ValueError(f"{side} blocks must come in conjugate pairs (even count)")
    for i in range(0, len(blocks), 2):
        a, b = blocks[i], blocks[i + 1]
        if a.block_size != b.block_size:
            raise ValueError(f"{side} conjugate pair {i // 2} has mismatched block sizes")
        if not np.isclose(b.point, np.conj(a.point)):
            raise ValueError(
                f"{side} blocks {i} and {i + 1} are not a conjugate pair "
                f"({a.point} vs {b.point})"
            )


def build_tangential_data(
    data: FrequencyData,
    *,
    right_directions: Sequence[np.ndarray],
    left_directions: Sequence[np.ndarray],
    right_indices: Sequence[int] | None = None,
    left_indices: Sequence[int] | None = None,
    include_conjugates: bool = True,
) -> TangentialData:
    """Build :class:`TangentialData` from sampled frequency data (eqs. 6-7).

    Parameters
    ----------
    data:
        The sampled frequency responses ``S(f_i)``.
    right_directions, left_directions:
        One ``(n_ports, t_i)`` direction matrix per right/left sample; the left
        directions are supplied in column form as well and transposed
        internally into the ``t_i x p`` row form of the paper.
    right_indices, left_indices:
        Which samples of ``data`` become right/left data.  By default the
        samples are interleaved exactly as in eqs. (6)-(7): even positions
        (0, 2, 4, ...) to the right set, odd positions (1, 3, 5, ...) to the
        left set.
    include_conjugates:
        Append the mirrored blocks at ``-j 2 pi f`` (conjugated data), which is
        required for a real realization.  Disable only for experiments on
        intrinsically complex data.

    Returns
    -------
    TangentialData
    """
    k = data.n_samples
    if right_indices is None and left_indices is None:
        right_indices = list(range(0, k, 2))
        left_indices = list(range(1, k, 2))
    if right_indices is None or left_indices is None:
        raise ValueError("pass both right_indices and left_indices, or neither")
    right_indices = [int(i) for i in right_indices]
    left_indices = [int(i) for i in left_indices]
    if set(right_indices) & set(left_indices):
        raise ValueError("a sample cannot be both right and left data")
    if len(right_directions) != len(right_indices):
        raise ValueError(
            f"need {len(right_indices)} right direction matrices, got {len(right_directions)}"
        )
    if len(left_directions) != len(left_indices):
        raise ValueError(
            f"need {len(left_indices)} left direction matrices, got {len(left_directions)}"
        )

    right_blocks: list[RightBlock] = []
    for direction, idx in zip(right_directions, right_indices):
        direction = np.asarray(direction, dtype=complex)
        if direction.ndim == 1:
            direction = direction.reshape(-1, 1)
        sample = data.samples[idx]
        point = 1j * 2.0 * np.pi * data.frequencies_hz[idx]
        block = RightBlock(point, direction, sample @ direction)
        right_blocks.append(block)
        if include_conjugates:
            right_blocks.append(block.conjugate())

    left_blocks: list[LeftBlock] = []
    for direction, idx in zip(left_directions, left_indices):
        direction = np.asarray(direction, dtype=complex)
        if direction.ndim == 1:
            direction = direction.reshape(-1, 1)
        row_direction = direction.conj().T if np.iscomplexobj(direction) else direction.T
        sample = data.samples[idx]
        point = 1j * 2.0 * np.pi * data.frequencies_hz[idx]
        block = LeftBlock(point, row_direction, row_direction @ sample)
        left_blocks.append(block)
        if include_conjugates:
            left_blocks.append(block.conjugate())

    return TangentialData(right_blocks, left_blocks, conjugate_pairs=include_conjugates)
