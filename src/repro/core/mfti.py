"""Algorithm 1: matrix-format tangential interpolation (MFTI) of clean data.

The front-end follows the paper's Algorithm 1 step by step:

1. choose the tangential block sizes ``t_i`` and orthonormal matrix-format
   directions ``R_i`` / ``L_i``,
2. build the matrix-format interpolation data of eqs. (6)-(7), including the
   mirrored conjugate samples,
3. assemble the block Loewner and shifted Loewner matrices (eqs. 11-12),
4. apply the real transform of Lemma 3.2,
5. perform the rank-revealing SVD,
6. project to the recovered descriptor model (Lemma 3.4).

The same entry point also covers the paper's "weighting" mode for
ill-conditioned data: pass a per-sample sequence of block sizes to spend more
tangential columns on the samples that matter.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core._pipeline import realize_from_tangential, register_frontend
from repro.core.assembly import (
    generate_direction_sets,
    prepare_block_directions,
    resolve_block_sizes,
)
from repro.core.options import MftiOptions
from repro.core.results import MacromodelResult
from repro.core.tangential import build_tangential_data
from repro.data.dataset import FrequencyData

# resolve_block_sizes / generate_direction_sets are re-exported: the
# implementations moved into the shared assembly layer (repro.core.assembly)
__all__ = ["mfti", "resolve_block_sizes", "generate_direction_sets"]


@register_frontend("mfti", options_type=MftiOptions)
def mfti(
    data: FrequencyData,
    *,
    options: Optional[MftiOptions] = None,
    **kwargs,
) -> MacromodelResult:
    """Recover a descriptor-system macromodel from sampled data with MFTI (Algorithm 1).

    Parameters
    ----------
    data:
        Sampled frequency responses (scattering, impedance, admittance or
        generic transfer-function matrices).
    options:
        An :class:`~repro.core.options.MftiOptions` instance; keyword
        arguments are accepted as a shortcut and merged into a fresh options
        object (``options`` and keyword arguments are mutually exclusive).

    Returns
    -------
    MacromodelResult
        The recovered model plus singular-value profiles and diagnostics.

    Examples
    --------
    >>> from repro.systems import example1_system
    >>> from repro.data import linear_frequencies, sample_scattering
    >>> from repro.core import mfti
    >>> system = example1_system(order=20, n_ports=4)
    >>> data = sample_scattering(system, linear_frequencies(1e2, 1e4, 8))
    >>> model = mfti(data)
    >>> model.order <= 8 * 4 * 2
    True
    """
    if options is not None and kwargs:
        raise ValueError("pass either an options object or keyword arguments, not both")
    opts = options if options is not None else MftiOptions(**kwargs)

    started = time.perf_counter()
    k = data.n_samples
    if k < 2:
        raise ValueError("MFTI needs at least two sampled frequencies")

    plan = prepare_block_directions(opts, k, data.n_inputs, data.n_outputs)
    tangential = build_tangential_data(
        data,
        right_directions=plan.right_directions,
        left_directions=plan.left_directions,
        right_indices=plan.right_indices,
        left_indices=plan.left_indices,
        include_conjugates=opts.include_conjugates,
    )
    return realize_from_tangential(
        tangential,
        opts,
        method="mfti",
        n_samples_used=k,
        started_at=started,
        metadata={"block_sizes": plan.per_sample_sizes},
    )
