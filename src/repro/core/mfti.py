"""Algorithm 1: matrix-format tangential interpolation (MFTI) of clean data.

The front-end follows the paper's Algorithm 1 step by step:

1. choose the tangential block sizes ``t_i`` and orthonormal matrix-format
   directions ``R_i`` / ``L_i``,
2. build the matrix-format interpolation data of eqs. (6)-(7), including the
   mirrored conjugate samples,
3. assemble the block Loewner and shifted Loewner matrices (eqs. 11-12),
4. apply the real transform of Lemma 3.2,
5. perform the rank-revealing SVD,
6. project to the recovered descriptor model (Lemma 3.4).

The same entry point also covers the paper's "weighting" mode for
ill-conditioned data: pass a per-sample sequence of block sizes to spend more
tangential columns on the samples that matter.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.core._pipeline import realize_from_tangential, register_frontend
from repro.core.directions import identity_directions, orthonormal_directions
from repro.core.options import MftiOptions
from repro.core.results import MacromodelResult
from repro.core.tangential import build_tangential_data
from repro.data.dataset import FrequencyData
from repro.utils.rng import ensure_rng

__all__ = ["mfti", "resolve_block_sizes", "generate_direction_sets"]


def resolve_block_sizes(
    block_size: Union[None, int, Sequence[int]],
    n_samples: int,
    max_block: int,
) -> list[int]:
    """Normalise the ``block_size`` option into one ``t_i`` per sampled frequency.

    ``None`` means "use everything" (``t_i = min(m, p)``), an integer applies
    uniformly, and a sequence is validated and used as given (this is the
    paper's per-sample weighting for ill-conditioned data).
    """
    if block_size is None:
        return [max_block] * n_samples
    if isinstance(block_size, (int, np.integer)):
        t = int(block_size)
        if not 1 <= t <= max_block:
            raise ValueError(f"block_size must lie in [1, {max_block}], got {t}")
        return [t] * n_samples
    sizes = [int(t) for t in block_size]
    if len(sizes) != n_samples:
        raise ValueError(
            f"block_size sequence must have one entry per sample ({n_samples}), got {len(sizes)}"
        )
    for t in sizes:
        if not 1 <= t <= max_block:
            raise ValueError(f"every block size must lie in [1, {max_block}], got {t}")
    return sizes


def generate_direction_sets(
    options: MftiOptions,
    n_ports: int,
    right_sizes: Sequence[int],
    left_sizes: Sequence[int],
):
    """Generate the per-sample right/left direction matrices requested by ``options``."""
    if options.direction_kind == "identity":
        right = [identity_directions(n_ports, t, 1, offset_stride=False)[0] for t in right_sizes]
        left = [identity_directions(n_ports, t, 1, offset_stride=False)[0] for t in left_sizes]
        # rotate the starting column from sample to sample so every port is probed
        eye = np.eye(n_ports)
        right = [
            eye[:, [(i * t + j) % n_ports for j in range(t)]]
            for i, t in enumerate(right_sizes)
        ]
        left = [
            eye[:, [(i * t + j) % n_ports for j in range(t)]]
            for i, t in enumerate(left_sizes)
        ]
        return right, left
    rng = ensure_rng(options.direction_seed)
    right = [orthonormal_directions(n_ports, t, 1, seed=rng)[0] for t in right_sizes]
    left = [orthonormal_directions(n_ports, t, 1, seed=rng)[0] for t in left_sizes]
    return right, left


@register_frontend("mfti", options_type=MftiOptions)
def mfti(
    data: FrequencyData,
    *,
    options: Optional[MftiOptions] = None,
    **kwargs,
) -> MacromodelResult:
    """Recover a descriptor-system macromodel from sampled data with MFTI (Algorithm 1).

    Parameters
    ----------
    data:
        Sampled frequency responses (scattering, impedance, admittance or
        generic transfer-function matrices).
    options:
        An :class:`~repro.core.options.MftiOptions` instance; keyword
        arguments are accepted as a shortcut and merged into a fresh options
        object (``options`` and keyword arguments are mutually exclusive).

    Returns
    -------
    MacromodelResult
        The recovered model plus singular-value profiles and diagnostics.

    Examples
    --------
    >>> from repro.systems import example1_system
    >>> from repro.data import linear_frequencies, sample_scattering
    >>> from repro.core import mfti
    >>> system = example1_system(order=20, n_ports=4)
    >>> data = sample_scattering(system, linear_frequencies(1e2, 1e4, 8))
    >>> model = mfti(data)
    >>> model.order <= 8 * 4 * 2
    True
    """
    if options is not None and kwargs:
        raise ValueError("pass either an options object or keyword arguments, not both")
    opts = options if options is not None else MftiOptions(**kwargs)

    started = time.perf_counter()
    k = data.n_samples
    if k < 2:
        raise ValueError("MFTI needs at least two sampled frequencies")
    n_inputs = data.n_inputs
    n_outputs = data.n_outputs
    max_block = min(n_inputs, n_outputs)

    per_sample_sizes = resolve_block_sizes(opts.block_size, k, max_block)
    right_indices = list(range(0, k, 2))
    left_indices = list(range(1, k, 2))
    right_sizes = [per_sample_sizes[i] for i in right_indices]
    left_sizes = [per_sample_sizes[i] for i in left_indices]

    right_dirs, left_dirs = generate_direction_sets(opts, max_block, right_sizes, left_sizes)
    # direction matrices are generated in the min(m, p)-dimensional port space;
    # embed into the input/output spaces when the system is rectangular
    right_dirs = [_embed(d, n_inputs) for d in right_dirs]
    left_dirs = [_embed(d, n_outputs) for d in left_dirs]

    tangential = build_tangential_data(
        data,
        right_directions=right_dirs,
        left_directions=left_dirs,
        right_indices=right_indices,
        left_indices=left_indices,
        include_conjugates=opts.include_conjugates,
    )
    return realize_from_tangential(
        tangential,
        opts,
        method="mfti",
        n_samples_used=k,
        started_at=started,
        metadata={"block_sizes": tuple(per_sample_sizes)},
    )


def _embed(direction: np.ndarray, dimension: int) -> np.ndarray:
    """Zero-pad a direction matrix generated in ``min(m, p)`` space to ``dimension`` rows."""
    direction = np.asarray(direction, dtype=float)
    if direction.shape[0] == dimension:
        return direction
    padded = np.zeros((dimension, direction.shape[1]))
    padded[: direction.shape[0], :] = direction
    return padded
