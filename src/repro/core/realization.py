"""State-space realization from the Loewner pencil.

Three ingredients of the paper's Section 3.3-3.4 live here:

* :func:`direct_realization` -- Lemma 3.1: when the pencil is square and
  ``x L - sL`` is invertible at every sample point, the raw quintuple
  ``(E, A, B, C, D) = (-L, -sL, V, W, 0)`` already interpolates the data.
* :func:`real_transform_matrix` / :func:`to_real_data` -- Lemma 3.2: a block
  unitary congruence that maps the complex, conjugate-structured Loewner
  quantities to real matrices (so the final model has real coefficients).
* :func:`svd_realization` -- Lemmas 3.3-3.4: when the data oversamples the
  underlying system the pencil is singular, and the regular part is extracted
  by a rank-revealing SVD followed by a two-sided projection.

Two SVD flavours are provided:

* ``mode="pencil"`` follows the paper literally: one SVD of ``x0*L - sL`` with
  ``x0`` a sample point (complex in general),
* ``mode="two-sided"`` uses the SVDs of ``[L, sL]`` (rows) and ``[L; sL]``
  (columns), the standard choice for noisy/redundant data in the Loewner
  literature; with real-transformed data it keeps every factor real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.loewner import LoewnerPencil
from repro.systems.statespace import DescriptorSystem
from repro.utils.linalg import (
    block_diag,
    economic_svd,
    numerical_rank,
    rank_from_gap,
)

__all__ = [
    "direct_realization",
    "real_transform_matrix",
    "to_real_data",
    "svd_realization",
    "RealizationDiagnostics",
]


@dataclass(frozen=True)
class RealizationDiagnostics:
    """Bookkeeping produced by :func:`svd_realization`.

    Attributes
    ----------
    order:
        Order of the realized model (rank kept in the truncation).
    singular_values:
        Singular values of the matrix whose SVD drove the projection
        (``x0*L - sL`` in pencil mode, ``[L, sL]`` in two-sided mode).
    x0:
        The shift used in pencil mode (``None`` in two-sided mode).
    mode:
        ``"pencil"`` or ``"two-sided"``.
    rank_tolerance:
        The relative tolerance that was applied when the order was determined
        automatically (``None`` when an explicit order was requested).
    """

    order: int
    singular_values: np.ndarray
    x0: Optional[complex]
    mode: str
    rank_tolerance: Optional[float]


def direct_realization(pencil: LoewnerPencil) -> DescriptorSystem:
    """Lemma 3.1: the raw Loewner realization ``(E, A, B, C) = (-L, -sL, V, W)``.

    Only valid when the pencil is square and ``x L - sL`` is non-singular for
    every sample point ``x`` -- i.e. when the data neither under- nor
    over-samples the underlying system.  The resulting transfer function
    satisfies the tangential constraints (10) exactly; when ``t_i = m = p``
    and the directions are full rank it matches the full sample matrices (3).
    """
    if not pencil.is_square:
        raise ValueError(
            "direct realization requires a square Loewner pencil "
            f"(got {pencil.k_left} x {pencil.k_right}); use svd_realization instead"
        )
    for x in pencil.sample_points:
        matrix = pencil.shifted_pencil(x)
        if np.linalg.matrix_rank(matrix) < matrix.shape[0]:
            raise ValueError(
                f"x*L - sL is singular at sample point {x}; "
                "the data over-determines the system -- use svd_realization"
            )
    return DescriptorSystem(
        -pencil.loewner,
        -pencil.shifted_loewner,
        pencil.V,
        pencil.W,
        np.zeros((pencil.n_outputs, pencil.n_inputs)),
    )


def real_transform_matrix(block_sizes: tuple[int, ...]) -> np.ndarray:
    """The block unitary ``T`` of Lemma 3.2 for conjugate-paired blocks.

    ``block_sizes`` lists the tangential block sizes in order; they must come
    in adjacent pairs of equal size (one block at ``+j omega``, one at
    ``-j omega``).  For each pair of size ``t`` the transform contributes the
    ``2t x 2t`` block ``(1/sqrt(2)) [[I, -jI], [I, jI]]``.
    """
    sizes = tuple(int(t) for t in block_sizes)
    if len(sizes) % 2 != 0:
        raise ValueError("block sizes must come in conjugate pairs (even count)")
    blocks = []
    for i in range(0, len(sizes), 2):
        t_plus, t_minus = sizes[i], sizes[i + 1]
        if t_plus != t_minus:
            raise ValueError(
                f"conjugate pair {i // 2} has mismatched block sizes ({t_plus}, {t_minus})"
            )
        eye = np.eye(t_plus)
        blocks.append(np.block([[eye, -1j * eye], [eye, 1j * eye]]) / np.sqrt(2.0))
    return block_diag(blocks)


def to_real_data(pencil: LoewnerPencil, *, imaginary_tolerance: float = 1e-6) -> LoewnerPencil:
    """Apply the real transform of Lemma 3.2 to a conjugate-structured pencil.

    Returns a new :class:`LoewnerPencil` with

    ``L -> T_l* L T_r``,  ``sL -> T_l* sL T_r``,  ``V -> T_l* V``,  ``W -> W T_r``

    where ``T_l`` / ``T_r`` are the block unitaries built from the left/right
    block structure.  The result is verified to be real up to
    ``imaginary_tolerance`` (relative) and the imaginary round-off is dropped.

    Raises
    ------
    ValueError
        If the transformed matrices are not numerically real -- which happens
        when the input data lacked conjugate symmetry (e.g. conjugate blocks
        were not included, or the data itself violates ``H(-jw) = conj(H(jw))``).
    """
    if pencil.is_real:
        return pencil
    t_right = real_transform_matrix(pencil.right_block_sizes)
    t_left = real_transform_matrix(pencil.left_block_sizes)
    tl_h = t_left.conj().T

    transformed = {
        "loewner": tl_h @ pencil.loewner @ t_right,
        "shifted_loewner": tl_h @ pencil.shifted_loewner @ t_right,
        "V": tl_h @ pencil.V,
        "W": pencil.W @ t_right,
    }
    reals = {}
    for name, matrix in transformed.items():
        scale = np.max(np.abs(matrix)) if matrix.size else 0.0
        imag = np.max(np.abs(matrix.imag)) if matrix.size else 0.0
        if scale > 0 and imag > imaginary_tolerance * scale:
            raise ValueError(
                f"real transform left a significant imaginary part in {name} "
                f"({imag:.2e} vs scale {scale:.2e}); the tangential data is not "
                "conjugate-symmetric"
            )
        reals[name] = matrix.real
    return LoewnerPencil(
        loewner=reals["loewner"],
        shifted_loewner=reals["shifted_loewner"],
        W=reals["W"],
        V=reals["V"],
        lambda_points=pencil.lambda_points,
        mu_points=pencil.mu_points,
        right_block_sizes=pencil.right_block_sizes,
        left_block_sizes=pencil.left_block_sizes,
        is_real=True,
    )


def _determine_order(
    singular_values: np.ndarray,
    order: Optional[int],
    rank_tolerance: float,
    rank_method: str,
) -> int:
    if order is not None:
        order = int(order)
        if not 1 <= order <= singular_values.size:
            raise ValueError(
                f"requested order {order} outside [1, {singular_values.size}]"
            )
        return order
    if rank_method == "gap":
        detected = rank_from_gap(singular_values)
        if detected < singular_values.size:
            return max(detected, 1)
        # no sharp gap -- fall back to the tolerance rule
        return max(numerical_rank(singular_values, rtol=rank_tolerance), 1)
    if rank_method == "tolerance":
        return max(numerical_rank(singular_values, rtol=rank_tolerance), 1)
    raise ValueError(f"unknown rank_method {rank_method!r} (use 'gap' or 'tolerance')")


def svd_realization(
    pencil: LoewnerPencil,
    *,
    order: Optional[int] = None,
    rank_tolerance: float = 1e-9,
    rank_method: str = "gap",
    mode: str = "two-sided",
    x0: Optional[complex] = None,
) -> tuple[DescriptorSystem, RealizationDiagnostics]:
    """Lemma 3.4: rank-revealing SVD projection of the Loewner pencil.

    Parameters
    ----------
    pencil:
        The (possibly real-transformed) Loewner pencil.
    order:
        Explicit reduced order; when omitted the order is detected from the
        singular-value profile (``rank_method``).
    rank_tolerance:
        Relative tolerance for the ``"tolerance"`` rank rule and the fallback
        of the ``"gap"`` rule.
    rank_method:
        ``"gap"`` (largest singular-value drop, matching the sharp drop the
        paper reports in Fig. 1) or ``"tolerance"``.
    mode:
        ``"pencil"`` (single SVD of ``x0*L - sL``, the paper's Algorithm 1
        step 5) or ``"two-sided"`` (SVDs of ``[L, sL]`` and ``[L; sL]``).
    x0:
        Shift for pencil mode; defaults to the first right sample point.

    Returns
    -------
    (DescriptorSystem, RealizationDiagnostics)
        The projected model ``(E, A, B, C) = (-Y* L X, -Y* sL X, Y* V, W X)``
        and the diagnostics describing how the order was chosen.
    """
    if mode not in ("pencil", "two-sided"):
        raise ValueError(f"mode must be 'pencil' or 'two-sided', got {mode!r}")

    if mode == "pencil":
        shift = pencil.lambda_points[0] if x0 is None else complex(x0)
        target = pencil.shifted_pencil(shift)
        y_full, s, xh_full = economic_svd(target)
        rank = _determine_order(s, order, rank_tolerance, rank_method)
        y = y_full[:, :rank]
        x = xh_full[:rank, :].conj().T
        diag_sv = s
        used_x0: Optional[complex] = shift
    else:
        row_matrix = pencil.augmented_row_matrix()
        col_matrix = pencil.augmented_column_matrix()
        y_full, s_row, _ = economic_svd(row_matrix)
        _, s_col, xh_full = economic_svd(col_matrix)
        limit = min(s_row.size, s_col.size)
        rank_row = _determine_order(s_row[:limit], order, rank_tolerance, rank_method)
        rank_col = _determine_order(s_col[:limit], order, rank_tolerance, rank_method)
        rank = min(rank_row, rank_col) if order is None else int(order)
        rank = min(rank, limit)
        y = y_full[:, :rank]
        x = xh_full[:rank, :].conj().T
        diag_sv = s_row
        used_x0 = None

    yh = y.conj().T
    e = -yh @ pencil.loewner @ x
    a = -yh @ pencil.shifted_loewner @ x
    b = yh @ pencil.V
    c = pencil.W @ x
    d = np.zeros((pencil.n_outputs, pencil.n_inputs))
    if pencil.is_real:
        e, a, b, c = (np.real_if_close(m, tol=1e6) for m in (e, a, b, c))
        e, a, b, c = (m.real if np.iscomplexobj(m) else m for m in (e, a, b, c))
    system = DescriptorSystem(e, a, b, c, d)
    diagnostics = RealizationDiagnostics(
        order=int(rank),
        singular_values=np.asarray(diag_sv, dtype=float),
        x0=used_x0,
        mode=mode,
        rank_tolerance=None if order is not None else rank_tolerance,
    )
    return system, diagnostics
