"""Block-format Loewner and shifted Loewner matrices (eqs. 11-13 of the paper).

Given tangential data with left points ``mu_a`` (one per tangential row) and
right points ``lambda_b`` (one per tangential column), the Loewner matrix and
the shifted Loewner matrix are

``L[a, b]  = (V[a, :] R[:, b] - L[a, :] W[:, b]) / (mu_a - lambda_b)``
``sL[a, b] = (mu_a V[a, :] R[:, b] - lambda_b L[a, :] W[:, b]) / (mu_a - lambda_b)``

-- exactly eqs. (11)-(12) written entrywise.  Both satisfy the Sylvester
equations (13), which :func:`sylvester_residuals` verifies and the test-suite
uses as a structural invariant.

The :class:`LoewnerPencil` value object bundles the two matrices together with
the tangential quantities needed for realization (``W``, ``V``, the sample
points and the block structure) and provides the singular-value profiles the
paper plots in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.tangential import TangentialData
from repro.utils.linalg import economic_svd, rowcol_product

__all__ = [
    "LoewnerPencil",
    "assemble_pencil_from_products",
    "build_loewner_pencil",
    "divided_difference_blocks",
    "sylvester_residuals",
]


@dataclass(frozen=True)
class LoewnerPencil:
    """The Loewner pencil and the tangential quantities needed to realize a model.

    Attributes
    ----------
    loewner:
        The Loewner matrix ``L`` (``k_left x k_right``).
    shifted_loewner:
        The shifted Loewner matrix ``sL`` (same shape).
    W:
        Right tangential values (``p x k_right``) -- becomes the ``C`` matrix.
    V:
        Left tangential values (``k_left x m``) -- becomes the ``B`` matrix.
    lambda_points, mu_points:
        Column / row sample points (the diagonal entries of ``Lambda`` / ``M``).
    right_block_sizes, left_block_sizes:
        Block structure ``t_i`` (needed by the real transform).
    is_real:
        True once the real transform of Lemma 3.2 has been applied; the sample
        points are then kept only for reference (choice of ``x0``, reporting).
    """

    loewner: np.ndarray
    shifted_loewner: np.ndarray
    W: np.ndarray
    V: np.ndarray
    lambda_points: np.ndarray
    mu_points: np.ndarray
    right_block_sizes: tuple[int, ...]
    left_block_sizes: tuple[int, ...]
    is_real: bool = False

    def __post_init__(self):
        loewner = np.asarray(self.loewner)
        shifted = np.asarray(self.shifted_loewner)
        if loewner.shape != shifted.shape:
            raise ValueError("Loewner and shifted Loewner matrices must have the same shape")
        k_left, k_right = loewner.shape
        if np.asarray(self.W).shape[1] != k_right:
            raise ValueError("W must have one column per right tangential column")
        if np.asarray(self.V).shape[0] != k_left:
            raise ValueError("V must have one row per left tangential row")
        if np.asarray(self.lambda_points).size != k_right:
            raise ValueError("lambda_points must have one entry per right tangential column")
        if np.asarray(self.mu_points).size != k_left:
            raise ValueError("mu_points must have one entry per left tangential row")

    # ------------------------------------------------------------------ #
    # shapes
    # ------------------------------------------------------------------ #
    @property
    def k_left(self) -> int:
        """Number of tangential rows (rows of the Loewner matrix)."""
        return int(self.loewner.shape[0])

    @property
    def k_right(self) -> int:
        """Number of tangential columns (columns of the Loewner matrix)."""
        return int(self.loewner.shape[1])

    @property
    def is_square(self) -> bool:
        """True when the Loewner matrices are square (required by Lemma 3.1)."""
        return self.k_left == self.k_right

    @property
    def n_outputs(self) -> int:
        """System output count ``p`` (rows of ``W``)."""
        return int(np.asarray(self.W).shape[0])

    @property
    def n_inputs(self) -> int:
        """System input count ``m`` (columns of ``V``)."""
        return int(np.asarray(self.V).shape[1])

    @property
    def sample_points(self) -> np.ndarray:
        """All distinct sample points ``{lambda_i} union {mu_i}``."""
        return np.unique(np.concatenate([self.lambda_points, self.mu_points]))

    # ------------------------------------------------------------------ #
    # pencil evaluations and singular values
    # ------------------------------------------------------------------ #
    def shifted_pencil(self, x0: complex) -> np.ndarray:
        """The matrix ``x0 * L - sL`` whose rank reveals the underlying order (Lemma 3.3)."""
        return complex(x0) * self.loewner - self.shifted_loewner

    #: All singular-value profiles :meth:`singular_values` can compute.
    PROFILE_NAMES = ("loewner", "shifted_loewner", "pencil")

    def singular_values(
        self,
        x0: Optional[complex] = None,
        *,
        profiles: Optional[tuple[str, ...]] = None,
    ) -> dict[str, np.ndarray]:
        """Singular-value profiles of ``L``, ``sL`` and ``x0*L - sL`` (paper Fig. 1).

        ``x0`` defaults to the first right sample point, matching the remark
        after Lemma 3.4 that choosing ``x0 = lambda_1`` makes ``x0*L - sL``
        behave like ``sL``.

        ``profiles`` selects which of the (equally expensive, full-SVD)
        profiles to compute; the default is all three.  Callers that only
        need the rank-revealing ``"pencil"`` profile -- e.g. the recursive
        front-end, which realizes a pencil per refinement iteration -- pass
        ``profiles=("pencil",)`` and skip the other two SVDs entirely.
        """
        names = self.PROFILE_NAMES if profiles is None else tuple(profiles)
        unknown = set(names) - set(self.PROFILE_NAMES)
        if unknown:
            raise ValueError(
                f"unknown singular-value profiles {sorted(unknown)}; "
                f"available: {self.PROFILE_NAMES}"
            )
        if x0 is None:
            x0 = self.lambda_points[0]
        matrices = {
            "loewner": lambda: self.loewner,
            "shifted_loewner": lambda: self.shifted_loewner,
            "pencil": lambda: self.shifted_pencil(x0),
        }
        return {name: economic_svd(matrices[name]())[1] for name in names}

    def augmented_row_matrix(self) -> np.ndarray:
        """The row-concatenated matrix ``[L  sL]`` used by the two-sided SVD realization."""
        return np.hstack([self.loewner, self.shifted_loewner])

    def augmented_column_matrix(self) -> np.ndarray:
        """The column-stacked matrix ``[L; sL]`` used by the two-sided SVD realization."""
        return np.vstack([self.loewner, self.shifted_loewner])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "real" if self.is_real else "complex"
        return (
            f"LoewnerPencil(shape=({self.k_left}, {self.k_right}), "
            f"p={self.n_outputs}, m={self.n_inputs}, {kind})"
        )


def divided_difference_blocks(
    vr: np.ndarray,
    lw: np.ndarray,
    mu: np.ndarray,
    lam: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise divided differences of eqs. (11)-(12) for one block.

    Every entry depends only on its own ``(mu_a, lambda_b, vr[a, b],
    lw[a, b])``, so computing the matrices block-by-block -- which is what
    the incremental assembly does for newly selected rows/columns -- yields
    bitwise the same entries as one full-matrix evaluation.

    Raises
    ------
    ValueError
        If a left and a right sample point coincide (the divided differences
        would blow up; the framework requires disjoint point sets).
    """
    denom = mu[:, np.newaxis] - lam[np.newaxis, :]
    if np.any(np.abs(denom) < 1e-300):
        raise ValueError("left and right sample points must be disjoint")
    loewner = (vr - lw) / denom
    shifted = (mu[:, np.newaxis] * vr - lw * lam[np.newaxis, :]) / denom
    return loewner, shifted


def assemble_pencil_from_products(
    data: TangentialData,
    vr: np.ndarray,
    lw: np.ndarray,
) -> LoewnerPencil:
    """Finalise a pencil from precomputed ``V @ R`` / ``L @ W`` products.

    The divided-difference step (eqs. 11-12) is purely elementwise, so a
    caller that already owns the two products shares this one finalisation
    with :func:`build_loewner_pencil`, which keeps alternative assembly
    orders (notably the incremental growth of
    :class:`~repro.core.assembly.IncrementalLoewner`) bitwise identical to
    the from-scratch build by construction.
    """
    lam = data.lambda_points
    mu = data.mu_points
    loewner, shifted = divided_difference_blocks(vr, lw, mu, lam)
    return LoewnerPencil(
        loewner=loewner,
        shifted_loewner=shifted,
        W=data.W,
        V=data.V,
        lambda_points=lam,
        mu_points=mu,
        right_block_sizes=data.right_block_sizes,
        left_block_sizes=data.left_block_sizes,
        is_real=False,
    )


def build_loewner_pencil(data: TangentialData) -> LoewnerPencil:
    """Assemble the (shifted) Loewner matrices from tangential data (eqs. 11-12).

    The ``V @ R`` and ``L @ W`` products go through the slicing-stable
    :func:`~repro.utils.linalg.rowcol_product` kernel so that building the
    pencil of a sample subset yields bitwise the same entries as slicing a
    larger pencil -- the contract the incremental recursive assembly relies
    on (and the property tests enforce).

    Raises
    ------
    ValueError
        If a left and a right sample point coincide (the divided differences
        would blow up; the framework requires disjoint point sets).
    """
    vr = rowcol_product(data.V, data.R)      # (k_left, k_right)
    lw = rowcol_product(data.L, data.W)      # (k_left, k_right)
    return assemble_pencil_from_products(data, vr, lw)


def sylvester_residuals(pencil: LoewnerPencil, data: TangentialData) -> tuple[float, float]:
    """Relative residuals of the two Sylvester equations (13).

    Returns ``(residual_loewner, residual_shifted)`` where each residual is the
    Frobenius norm of the equation defect divided by the norm of its right-hand
    side.  Both should be at round-off level for a correctly assembled pencil;
    the property-based tests assert this for random data.
    """
    lam = np.diag(data.lambda_points)
    mu = np.diag(data.mu_points)
    lw = data.L @ data.W
    vr = data.V @ data.R

    rhs1 = lw - vr
    lhs1 = pencil.loewner @ lam - mu @ pencil.loewner
    res1 = np.linalg.norm(lhs1 - rhs1) / max(np.linalg.norm(rhs1), 1e-300)

    rhs2 = lw @ lam - mu @ vr
    lhs2 = pencil.shifted_loewner @ lam - mu @ pencil.shifted_loewner
    res2 = np.linalg.norm(lhs2 - rhs2) / max(np.linalg.norm(rhs2), 1e-300)
    return float(res1), float(res2)
