"""Batched fit-pipeline assembly kernels shared by every fit front-end.

PR 3 gave the *evaluation* side one vectorized kernel; this module does the
same for the *fit* side.  Three families of helpers live here:

* **Vector-fitting kernels** -- the partial-fraction basis, the pole
  relocation companion form, the residue reconstruction, the fast-VF
  per-entry projection, and the compact conditioned fast-VF *solver*
  (:func:`vf_scaling_solve`: per-entry Cholesky-QR reduction of each tall
  projected block to its small R-factor, one well-conditioned stacked
  solve, automatic fall-back to the stacked-``lstsq`` reference when the
  reduction is rank-deficient or the conditioning estimate exceeds
  :data:`VF_COMPACT_CONDITION_LIMIT`), all as mask/index array operations
  over a precomputed :class:`PoleGrouping` instead of per-pole-group
  Python loops.  Each kernel keeps its original looped implementation
  next to it (``*_reference``) as the equivalence oracle for the property
  tests and the speedup reference for
  ``benchmarks/bench_fit_pipeline.py`` / ``bench_vf_solver.py`` -- the
  same pattern :mod:`repro.systems.evaluation` uses for the sweep kernel.
  The basis/projection/solver kernels accept a :mod:`repro.backends`
  ``backend=`` argument (NumPy stays bitwise-pinned; the Loewner helpers
  below stay host-NumPy because their bitwise slicing-stability contract
  is defined in terms of host LAPACK arithmetic).

* **Direction plumbing** -- the block-size resolution, interleaved
  right/left sample split, direction generation and rectangular embedding
  that were previously duplicated between :mod:`repro.core.mfti` and
  :mod:`repro.core.recursive`, collapsed into
  :func:`prepare_block_directions`.

* **Incremental Loewner assembly** -- :class:`IncrementalLoewner` grows a
  pencil as the recursive algorithm's interpolation set grows, reusing the
  previous iteration's ``V @ R`` / ``L @ W`` products and computing only
  the newly selected rows/columns.  Because every product goes through the
  slicing-stable :func:`~repro.utils.linalg.rowcol_product` kernel (the
  same one :func:`~repro.core.loewner.build_loewner_pencil` uses), the
  grown pencil is **bitwise identical** to the from-scratch build on the
  same subset -- an invariant the property tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.backends import resolve_backend
from repro.core.directions import orthonormal_directions
from repro.core.loewner import LoewnerPencil, divided_difference_blocks
from repro.core.tangential import TangentialData
from repro.utils.linalg import realify, rowcol_product
from repro.utils.rng import ensure_rng

__all__ = [
    "REAL_POLE_TOLERANCE",
    "PoleGrouping",
    "real_pole_mask",
    "partial_fraction_basis",
    "partial_fraction_basis_reference",
    "relocation_matrices",
    "relocation_matrices_reference",
    "residues_from_coefficients",
    "residues_from_coefficients_reference",
    "vf_scaling_blocks",
    "vf_scaling_blocks_reference",
    "vf_scaling_solve",
    "vf_scaling_solve_reference",
    "VF_COMPACT_CONDITION_LIMIT",
    "DirectionPlan",
    "embed_directions",
    "generate_direction_sets",
    "interleaved_indices",
    "prepare_block_directions",
    "resolve_block_sizes",
    "IncrementalLoewner",
]

#: Relative magnitude below which a pole's imaginary part is treated as zero.
REAL_POLE_TOLERANCE = 1e-9

#: Condition-number estimate above which :func:`vf_scaling_solve` abandons
#: the compact Cholesky-QR reduction for the stacked-``lstsq`` reference.
#: The reduction squares the conditioning (normal-equations territory), so
#: its error grows like ``cond^2 * eps``: measured against the reference on
#: structured near-rank-deficient bases this is ~1e-10 at cond 1e4, ~2e-8 at
#: cond 1e5 and ~1e-6 at cond 1e6 -- the limit keeps the compact path inside
#: the documented 1e-10..1e-8 agreement band while ill-conditioned systems
#: (clustered poles, narrow bands) keep the reference's gelsd robustness.
VF_COMPACT_CONDITION_LIMIT = 1e5


def real_pole_mask(poles: np.ndarray) -> np.ndarray:
    """Boolean mask of the poles whose imaginary part is numerically zero."""
    poles = np.asarray(poles, dtype=complex)
    return np.abs(poles.imag) <= REAL_POLE_TOLERANCE * np.maximum(np.abs(poles), 1.0)


@dataclass(frozen=True, eq=False)
class PoleGrouping:
    """Index structure of a pole array: real singles and adjacent conjugate pairs.

    The vector-fitting kernels below consume this instead of re-walking the
    pole array per call: ``real_indices`` are the positions of the real
    poles, ``pair_first`` / ``pair_second`` the positions of each conjugate
    pair, ``pair_poles`` the canonical (positive imaginary part)
    representative of each pair, and ``first_is_negative`` records whether
    the *stored* first element of the pair had negative imaginary part --
    the residue reconstruction needs that original orientation.
    """

    n_poles: int
    real_indices: np.ndarray
    pair_first: np.ndarray
    pair_second: np.ndarray
    pair_poles: np.ndarray
    first_is_negative: np.ndarray

    @classmethod
    def from_poles(cls, poles: np.ndarray) -> "PoleGrouping":
        """Group a pole array; complex poles must sit in adjacent conjugate pairs."""
        poles = np.asarray(poles, dtype=complex).ravel()
        mask = real_pole_mask(poles)
        complex_idx = np.flatnonzero(~mask)
        if complex_idx.size % 2:
            raise ValueError("complex poles must appear in adjacent conjugate pairs")
        first = complex_idx[0::2]
        second = complex_idx[1::2]
        if not (np.all(second == first + 1)
                and np.all(np.isclose(poles[second], np.conj(poles[first]),
                                      rtol=1e-6, atol=1e-12))):
            raise ValueError("complex poles must appear in adjacent conjugate pairs")
        stored = poles[first]
        negative = stored.imag < 0
        return cls(
            n_poles=poles.size,
            real_indices=np.flatnonzero(mask),
            pair_first=first,
            pair_second=second,
            pair_poles=np.where(negative, np.conj(stored), stored),
            first_is_negative=negative,
        )


# --------------------------------------------------------------------- #
# vector-fitting kernels
# --------------------------------------------------------------------- #
def partial_fraction_basis(
    s_points: np.ndarray,
    poles: np.ndarray,
    grouping: PoleGrouping,
    *,
    backend=None,
) -> np.ndarray:
    """Real-coefficient partial-fraction basis, evaluated for all poles at once.

    Returns a complex ``(N, n_poles)`` matrix whose columns multiply *real*
    coefficients: real poles get ``1/(s - a)``; conjugate pairs get
    ``1/(s-a) + 1/(s-conj(a))`` and ``j/(s-a) - j/(s-conj(a))``.  On the
    ``numpy`` backend, bitwise identical to
    :func:`partial_fraction_basis_reference` (every entry is the same
    elementwise expression).
    """
    bk = resolve_backend(backend)
    xp = bk.xp
    s_points = np.asarray(s_points, dtype=complex).ravel()
    poles = np.asarray(poles, dtype=complex).ravel()
    s_dev = bk.asarray(s_points)
    phi = xp.empty((s_points.size, poles.size), dtype=complex)
    real_idx = grouping.real_indices
    if real_idx.size:
        real_parts = bk.asarray(poles[real_idx].real)
        phi[:, real_idx] = 1.0 / (s_dev[:, xp.newaxis] - real_parts[xp.newaxis, :])
    if grouping.pair_first.size:
        a = bk.asarray(grouping.pair_poles)[xp.newaxis, :]
        inv_plus = 1.0 / (s_dev[:, xp.newaxis] - a)
        inv_minus = 1.0 / (s_dev[:, xp.newaxis] - xp.conj(a))
        phi[:, grouping.pair_first] = inv_plus + inv_minus
        phi[:, grouping.pair_second] = 1j * inv_plus - 1j * inv_minus
    return bk.to_numpy(phi)


def _walk_groups(poles: np.ndarray) -> list[tuple[str, tuple[int, ...]]]:
    """The legacy sequential group walk (one Python step per pole group).

    Kept verbatim as the cost model of the pre-batched implementation: the
    original ``_basis`` / ``_relocate_poles`` / ``_fit_residues`` each
    re-walked the pole array on every call, which is what the looped
    ``*_reference`` kernels below reproduce (and the benchmark measures).
    """
    groups: list[tuple[str, tuple[int, ...]]] = []
    i = 0
    n = poles.size
    while i < n:
        pole = poles[i]
        if abs(pole.imag) <= REAL_POLE_TOLERANCE * max(abs(pole), 1.0):
            groups.append(("real", (i,)))
            i += 1
            continue
        if i + 1 < n and np.isclose(poles[i + 1], np.conj(pole), rtol=1e-6, atol=1e-12):
            groups.append(("pair", (i, i + 1)))
            i += 2
            continue
        raise ValueError("complex poles must appear in adjacent conjugate pairs")
    return groups


def partial_fraction_basis_reference(
    s_points: np.ndarray,
    poles: np.ndarray,
) -> np.ndarray:
    """Looped oracle for :func:`partial_fraction_basis` (one pole group at a time)."""
    s_points = np.asarray(s_points, dtype=complex).ravel()
    poles = np.asarray(poles, dtype=complex).ravel()
    phi = np.empty((s_points.size, poles.size), dtype=complex)
    for kind, idx in _walk_groups(poles):
        if kind == "real":
            phi[:, idx[0]] = 1.0 / (s_points - poles[idx[0]].real)
        else:
            a = poles[idx[0]]
            if a.imag < 0:
                a = np.conj(a)
            phi[:, idx[0]] = 1.0 / (s_points - a) + 1.0 / (s_points - np.conj(a))
            phi[:, idx[1]] = 1j / (s_points - a) - 1j / (s_points - np.conj(a))
    return phi


def relocation_matrices(
    poles: np.ndarray,
    grouping: PoleGrouping,
) -> tuple[np.ndarray, np.ndarray]:
    """Real block companion form ``(A, b)`` used by the pole relocation step.

    The relocated poles are the eigenvalues of ``A - b @ c_tilde^T``; real
    poles contribute a ``1 x 1`` block, conjugate pairs the standard
    ``2 x 2`` real rotation block.  Assembled with index writes instead of
    a per-group loop; bitwise identical to the reference.
    """
    poles = np.asarray(poles, dtype=complex).ravel()
    n = poles.size
    a_mat = np.zeros((n, n))
    b_vec = np.zeros(n)
    real_idx = grouping.real_indices
    if real_idx.size:
        a_mat[real_idx, real_idx] = poles[real_idx].real
        b_vec[real_idx] = 1.0
    if grouping.pair_first.size:
        i = grouping.pair_first
        j = grouping.pair_second
        alpha = grouping.pair_poles.real
        beta = grouping.pair_poles.imag
        a_mat[i, i] = alpha
        a_mat[i, j] = beta
        a_mat[j, i] = -beta
        a_mat[j, j] = alpha
        b_vec[i] = 2.0
    return a_mat, b_vec


def relocation_matrices_reference(
    poles: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Looped oracle for :func:`relocation_matrices`."""
    poles = np.asarray(poles, dtype=complex).ravel()
    n = poles.size
    a_mat = np.zeros((n, n))
    b_vec = np.zeros(n)
    for kind, idx in _walk_groups(poles):
        if kind == "real":
            a_mat[idx[0], idx[0]] = poles[idx[0]].real
            b_vec[idx[0]] = 1.0
        else:
            a = poles[idx[0]]
            if a.imag < 0:
                a = np.conj(a)
            alpha, beta = a.real, a.imag
            i, j = idx
            a_mat[i, i] = alpha
            a_mat[i, j] = beta
            a_mat[j, i] = -beta
            a_mat[j, j] = alpha
            b_vec[i] = 2.0
            b_vec[j] = 0.0
    return a_mat, b_vec


def residues_from_coefficients(
    coefficients: np.ndarray,
    poles: np.ndarray,
    grouping: PoleGrouping,
    shape: tuple[int, int],
) -> np.ndarray:
    """Reconstruct complex residues from the real LS coefficient block.

    ``coefficients`` holds one row per basis column and one column per matrix
    entry (row-major ``p x m``); real poles carry their residue directly,
    conjugate pairs combine their two real coefficient rows into ``re +/- j im``
    with the orientation of the *stored* first pole.  Bitwise identical to
    the looped reference.
    """
    poles = np.asarray(poles, dtype=complex).ravel()
    p, m = shape
    residues = np.zeros((poles.size, p, m), dtype=complex)
    real_idx = grouping.real_indices
    if real_idx.size:
        residues[real_idx] = coefficients[real_idx].reshape(real_idx.size, p, m)
    if grouping.pair_first.size:
        re_part = coefficients[grouping.pair_first].reshape(-1, p, m)
        im_part = coefficients[grouping.pair_second].reshape(-1, p, m)
        sign = np.where(grouping.first_is_negative, -1.0, 1.0)[:, np.newaxis, np.newaxis]
        residues[grouping.pair_first] = re_part + 1j * (sign * im_part)
        residues[grouping.pair_second] = re_part - 1j * (sign * im_part)
    return residues


def residues_from_coefficients_reference(
    coefficients: np.ndarray,
    poles: np.ndarray,
    shape: tuple[int, int],
) -> np.ndarray:
    """Looped oracle for :func:`residues_from_coefficients`."""
    poles = np.asarray(poles, dtype=complex).ravel()
    p, m = shape
    residues = np.zeros((poles.size, p, m), dtype=complex)
    for kind, idx in _walk_groups(poles):
        if kind == "real":
            residues[idx[0]] = coefficients[idx[0]].reshape(p, m)
        else:
            re_part = coefficients[idx[0]].reshape(p, m)
            im_part = coefficients[idx[1]].reshape(p, m)
            if poles[idx[0]].imag < 0:
                residues[idx[0]] = re_part - 1j * im_part
                residues[idx[1]] = re_part + 1j * im_part
            else:
                residues[idx[0]] = re_part + 1j * im_part
                residues[idx[1]] = re_part - 1j * im_part
    return residues


def _vf_scaling_projected(phi, responses, q1, bk):
    """Projected fast-VF blocks ``(2N, E, n)`` and right-hand sides ``(2N, E)``."""
    xp = bk.xp
    n_samples, n_entries = responses.shape
    phi_dev = bk.asarray(phi)
    resp_dev = bk.asarray(responses)
    q1_dev = bk.asarray(q1)
    weighted = -resp_dev[:, :, xp.newaxis] * phi_dev[:, xp.newaxis, :]  # (N, E, n)
    weighted = xp.concatenate([weighted.real, weighted.imag], axis=0)  # (2N, E, n)
    rhs = xp.concatenate([resp_dev.real, resp_dev.imag], axis=0)  # (2N, E)

    flat = weighted.reshape(2 * n_samples, -1)
    projected = flat - xp.matmul(q1_dev, xp.matmul(q1_dev.T, flat))
    projected = projected.reshape(2 * n_samples, n_entries, -1)

    rhs_projected = rhs - xp.matmul(q1_dev, xp.matmul(q1_dev.T, rhs))
    return projected, rhs_projected


def vf_scaling_blocks(
    phi: np.ndarray,
    responses: np.ndarray,
    q1: np.ndarray,
    *,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fast-VF projection, batched over every matrix entry at once.

    For each entry ``j`` the fast-VF trick projects the weighted basis
    ``-F_j(s) * phi`` and the response onto the orthogonal complement of the
    per-entry basis (spanned by ``q1``); the projected blocks are stacked
    into one LS system for the shared scaling coefficients ``c_tilde``.
    The looped reference does this one entry (two small GEMMs plus a Python
    iteration) at a time; here the realified blocks are assembled **once
    per iteration** and all entries share two large GEMMs.

    Returns ``(a_stacked, b_stacked)`` with the entry blocks in the same
    row order as the reference (bitwise identical to it on ``numpy``).
    """
    bk = resolve_backend(backend)
    xp = bk.xp
    n_samples, n_entries = responses.shape
    projected, rhs_projected = _vf_scaling_projected(phi, responses, q1, bk)
    a_stacked = xp.transpose(projected, (1, 0, 2)).reshape(
        n_entries * 2 * n_samples, -1
    )
    b_stacked = rhs_projected.T.reshape(-1)
    return bk.to_numpy(a_stacked), bk.to_numpy(b_stacked)


def vf_scaling_solve_reference(
    phi: np.ndarray,
    responses: np.ndarray,
    q1: np.ndarray,
) -> np.ndarray:
    """The pre-compaction fast-VF solve: stacked projection + one tall ``lstsq``.

    This is exactly the solver :func:`repro.vectorfitting.fitting.vector_fit`
    used before :func:`vf_scaling_solve` existed; it is kept as the
    equivalence oracle for the compact path, the conditioning fallback
    target, and the speedup reference for ``benchmarks/bench_vf_solver.py``.
    """
    a_stacked, b_stacked = vf_scaling_blocks(phi, responses, q1, backend="numpy")
    return np.linalg.lstsq(a_stacked, b_stacked, rcond=None)[0]


def _vf_scaling_solve_compact(phi, responses, q1, bk, condition_limit):
    """Per-entry Cholesky-QR reduction of the fast-VF system; raises on doubt.

    Each entry's tall projected block ``[A_j | b_j]`` (``2N x (n+1)``) is
    reduced to its small upper-triangular R-factor via the Gram matrix
    (``R_j^T R_j = [A_j | b_j]^T [A_j | b_j]``, one batched GEMM + batched
    Cholesky instead of ``E`` tall QRs); stacking the ``R_j`` gives a
    ``E(n+1) x n`` system with *exactly* the singular values of the full
    stacked system, so the final small ``lstsq`` both solves it and prices
    its conditioning for free.  Raises :exc:`numpy.linalg.LinAlgError`
    (or the backend's equivalent) when any Gram block is not numerically
    SPD, the reduction is rank-deficient/non-finite, or the condition
    estimate exceeds ``condition_limit`` -- the public wrapper then falls
    back to :func:`vf_scaling_solve_reference`.
    """
    xp = bk.xp
    projected, rhs_projected = _vf_scaling_projected(phi, responses, q1, bk)
    blocks = xp.transpose(projected, (1, 0, 2))  # (E, 2N, n)
    rhs = xp.transpose(rhs_projected, (1, 0))  # (E, 2N)
    return _vf_compact_reduce(blocks, rhs, bk, condition_limit)


def _vf_compact_reduce(blocks, rhs, bk, condition_limit):
    """The compact solve stage: per-entry R-factors + one small stacked solve.

    ``blocks`` is the ``(E, 2N, n)`` stack of projected per-entry systems
    and ``rhs`` the matching ``(E, 2N)`` right-hand sides; this is the
    stage that replaces the tall ``E*2N x n`` stacked ``lstsq`` and the
    unit ``benchmarks/bench_vf_solver.py`` gates >=2x.
    """
    xp = bk.xp
    n_entries, _, n_coeffs = blocks.shape
    aug = xp.concatenate([blocks, rhs[:, :, xp.newaxis]], axis=2)  # (E, 2N, n+1)
    gram = xp.matmul(xp.transpose(aug, (0, 2, 1)), aug)  # (E, n+1, n+1)
    r_factor = xp.transpose(bk.cholesky(gram), (0, 2, 1))  # upper-triangular
    a_small = r_factor[:, :, :n_coeffs].reshape(n_entries * (n_coeffs + 1), n_coeffs)
    b_small = r_factor[:, :, n_coeffs].reshape(n_entries * (n_coeffs + 1))
    solution, _, rank, sv = bk.lstsq(a_small, b_small)
    sv = bk.to_numpy(sv)
    if rank < n_coeffs or not np.all(np.isfinite(bk.to_numpy(solution))):
        raise np.linalg.LinAlgError("compact fast-VF reduction is rank-deficient")
    if sv.size:
        largest, smallest = float(sv[0]), float(sv[-1])
        if smallest <= 0.0 or largest > condition_limit * smallest:
            raise np.linalg.LinAlgError(
                "compact fast-VF reduction exceeds the conditioning limit"
            )
    # One step of iterative refinement against the *tall* blocks: the
    # Gram reduction squares the conditioning, so the raw compact solution
    # carries ~cond^2*eps error; a working-precision residual pushed back
    # through the (exact) summed Gram recovers ~cond*eps accuracy for an
    # O(1/n) fraction of the reduction's FLOPs.
    residual = rhs - xp.matmul(blocks, solution)  # (E, 2N)
    gradient = xp.matmul(
        xp.transpose(blocks, (0, 2, 1)), residual[:, :, xp.newaxis]
    )  # (E, n, 1)
    gradient = xp.sum(gradient, axis=0)[:, 0]  # A^T r, (n,)
    gram_full = xp.sum(gram[:, :n_coeffs, :n_coeffs], axis=0)  # A^T A, (n, n)
    lower = bk.cholesky(gram_full)
    correction = bk.solve_triangular(
        lower.T, bk.solve_triangular(lower, gradient, lower=True), lower=False
    )
    solution = bk.to_numpy(solution + correction)
    if not np.all(np.isfinite(solution)):
        raise np.linalg.LinAlgError("compact fast-VF refinement diverged")
    return solution


def vf_scaling_solve(
    phi: np.ndarray,
    responses: np.ndarray,
    q1: np.ndarray,
    *,
    backend=None,
    condition_limit: float = VF_COMPACT_CONDITION_LIMIT,
) -> np.ndarray:
    """Solve the stacked fast-VF system for the scaling coefficients.

    The compact path reduces each entry's tall projected block to its small
    R-factor (batched Cholesky-QR, see :func:`_vf_scaling_solve_compact`)
    and solves one well-conditioned ``E(n+1) x n`` system -- replacing the
    ``E 2N x n`` stacked ``lstsq`` that dominated the vector-fitting
    iteration.  Because the R-stack shares the full system's singular
    values, the conditioning of the original system is estimated exactly
    from the small solve; anything rank-deficient, non-finite, or beyond
    ``condition_limit`` (``cond^2`` error growth -- the ``gelss``/``gelsd``
    LAPACK-driver caution applies) automatically falls back to
    :func:`vf_scaling_solve_reference`, the pre-compaction solver.
    """
    bk = resolve_backend(backend)
    try:
        return _vf_scaling_solve_compact(phi, responses, q1, bk, condition_limit)
    except bk.LinAlgError:
        return vf_scaling_solve_reference(phi, responses, q1)


def vf_scaling_blocks_reference(
    phi: np.ndarray,
    responses: np.ndarray,
    q1: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Looped oracle for :func:`vf_scaling_blocks` (one matrix entry at a time)."""
    n_entries = responses.shape[1]
    blocks = []
    rhs_blocks = []
    for j in range(n_entries):
        weighted = realify(-responses[:, j, np.newaxis] * phi)
        rhs_j = np.concatenate([responses[:, j].real, responses[:, j].imag])
        blocks.append(weighted - q1 @ (q1.T @ weighted))
        rhs_blocks.append(rhs_j - q1 @ (q1.T @ rhs_j))
    return np.vstack(blocks), np.concatenate(rhs_blocks)


# --------------------------------------------------------------------- #
# tangential direction plumbing (shared by the MFTI and recursive front-ends)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class DirectionPlan:
    """Resolved per-sample tangential directions for an interleaved split."""

    per_sample_sizes: tuple[int, ...]
    right_indices: tuple[int, ...]
    left_indices: tuple[int, ...]
    right_directions: tuple[np.ndarray, ...]
    left_directions: tuple[np.ndarray, ...]


def interleaved_indices(n_samples: int) -> tuple[list[int], list[int]]:
    """The paper's right/left split: even positions right, odd positions left."""
    return list(range(0, n_samples, 2)), list(range(1, n_samples, 2))


def embed_directions(direction: np.ndarray, dimension: int) -> np.ndarray:
    """Zero-pad a direction matrix generated in ``min(m, p)`` space to ``dimension`` rows."""
    direction = np.asarray(direction, dtype=float)
    if direction.shape[0] == dimension:
        return direction
    padded = np.zeros((dimension, direction.shape[1]))
    padded[: direction.shape[0], :] = direction
    return padded


def resolve_block_sizes(
    block_size: Union[None, int, Sequence[int]],
    n_samples: int,
    max_block: int,
) -> list[int]:
    """Normalise the ``block_size`` option into one ``t_i`` per sampled frequency.

    ``None`` means "use everything" (``t_i = min(m, p)``), an integer applies
    uniformly, and a sequence is validated and used as given (this is the
    paper's per-sample weighting for ill-conditioned data).
    """
    if block_size is None:
        return [max_block] * n_samples
    if isinstance(block_size, (int, np.integer)):
        t = int(block_size)
        if not 1 <= t <= max_block:
            raise ValueError(f"block_size must lie in [1, {max_block}], got {t}")
        return [t] * n_samples
    sizes = [int(t) for t in block_size]
    if len(sizes) != n_samples:
        raise ValueError(
            f"block_size sequence must have one entry per sample ({n_samples}), got {len(sizes)}"
        )
    for t in sizes:
        if not 1 <= t <= max_block:
            raise ValueError(f"every block size must lie in [1, {max_block}], got {t}")
    return sizes


def generate_direction_sets(
    options,
    n_ports: int,
    right_sizes: Sequence[int],
    left_sizes: Sequence[int],
):
    """Generate the per-sample right/left direction matrices requested by ``options``."""
    if options.direction_kind == "identity":
        # rotate the starting column from sample to sample so every port is probed
        eye = np.eye(n_ports)
        right = [
            eye[:, [(i * t + j) % n_ports for j in range(t)]]
            for i, t in enumerate(right_sizes)
        ]
        left = [
            eye[:, [(i * t + j) % n_ports for j in range(t)]]
            for i, t in enumerate(left_sizes)
        ]
        return right, left
    rng = ensure_rng(options.direction_seed)
    right = [orthonormal_directions(n_ports, t, 1, seed=rng)[0] for t in right_sizes]
    left = [orthonormal_directions(n_ports, t, 1, seed=rng)[0] for t in left_sizes]
    return right, left


def prepare_block_directions(
    options,
    n_samples: int,
    n_inputs: int,
    n_outputs: int,
) -> DirectionPlan:
    """Resolve block sizes, split samples right/left and generate embedded directions.

    This is the per-sample size/direction plumbing previously duplicated
    between the MFTI and recursive front-ends: directions are generated in
    the ``min(m, p)``-dimensional port space and zero-padded into the
    input/output spaces when the system is rectangular.
    """
    max_block = min(n_inputs, n_outputs)
    per_sample_sizes = resolve_block_sizes(options.block_size, n_samples, max_block)
    right_indices, left_indices = interleaved_indices(n_samples)
    right_sizes = [per_sample_sizes[i] for i in right_indices]
    left_sizes = [per_sample_sizes[i] for i in left_indices]
    right_dirs, left_dirs = generate_direction_sets(options, max_block, right_sizes, left_sizes)
    return DirectionPlan(
        per_sample_sizes=tuple(per_sample_sizes),
        right_indices=tuple(right_indices),
        left_indices=tuple(left_indices),
        right_directions=tuple(embed_directions(d, n_inputs) for d in right_dirs),
        left_directions=tuple(embed_directions(d, n_outputs) for d in left_dirs),
    )


# --------------------------------------------------------------------- #
# incremental Loewner assembly (recursive front-end)
# --------------------------------------------------------------------- #
class IncrementalLoewner:
    """Grow a Loewner pencil over an expanding sample-group selection.

    The recursive algorithm re-assembles the pencil of its interpolation set
    on every greedy iteration; since the set only *grows*, most of the
    Loewner entries -- ``V @ R`` / ``L @ W`` products followed by
    elementwise divided differences -- were already computed.  This class
    keeps the assembled Loewner / shifted-Loewner matrices between calls
    and computes only the rows of newly selected left groups and the
    columns of newly selected right groups: per iteration the assembly work
    drops from ``O(k^2 m)`` products to ``O(k * delta_k * m)`` plus an
    ``O(k^2)`` carry-over copy.

    Because every product entry goes through the slicing-stable
    :func:`~repro.utils.linalg.rowcol_product` kernel and the divided
    differences are elementwise
    (:func:`~repro.core.loewner.divided_difference_blocks`, shared with
    :func:`~repro.core.loewner.build_loewner_pencil`), the grown pencil is
    bitwise identical to the from-scratch build on the same subset; a
    non-monotone selection (shrinking, or a never-seen predecessor) simply
    falls back to the scratch path.
    """

    def __init__(self, full: TangentialData):
        self._full = full
        group = 2 if full.conjugate_pairs else 1
        right_sizes = full.right_block_sizes
        left_sizes = full.left_block_sizes
        self._right_group_cols = [
            sum(right_sizes[g * group : (g + 1) * group])
            for g in range(full.n_right_samples)
        ]
        self._left_group_rows = [
            sum(left_sizes[g * group : (g + 1) * group])
            for g in range(full.n_left_samples)
        ]
        # full-data concatenations, computed once: a selection's matrices are
        # row/column slices of these (bitwise identical to re-concatenating
        # the selected blocks, which is what the scratch build does)
        self._full_V = full.V
        self._full_L = full.L
        self._full_R = full.R
        self._full_W = full.W
        self._full_lam = full.lambda_points
        self._full_mu = full.mu_points
        col_starts = np.concatenate([[0], np.cumsum(self._right_group_cols)])
        row_starts = np.concatenate([[0], np.cumsum(self._left_group_rows)])
        self._right_group_col_idx = [
            np.arange(col_starts[g], col_starts[g + 1], dtype=np.intp)
            for g in range(full.n_right_samples)
        ]
        self._left_group_row_idx = [
            np.arange(row_starts[g], row_starts[g + 1], dtype=np.intp)
            for g in range(full.n_left_samples)
        ]
        self._right_sel: tuple[int, ...] = ()
        self._left_sel: tuple[int, ...] = ()
        self._loewner: np.ndarray | None = None
        self._shifted: np.ndarray | None = None

    @property
    def full(self) -> TangentialData:
        """The complete tangential data the selections index into."""
        return self._full

    @staticmethod
    def _positions(counts: list[int], selection: tuple[int, ...],
                   subset: tuple[int, ...]) -> np.ndarray:
        """Row/column positions of ``subset``'s groups within ``selection``'s layout."""
        offsets = {}
        position = 0
        for g in selection:
            offsets[g] = position
            position += counts[g]
        spans = [np.arange(offsets[g], offsets[g] + counts[g]) for g in subset]
        if not spans:
            return np.zeros(0, dtype=np.intp)
        return np.concatenate(spans).astype(np.intp)

    def _select(self, right_sel: tuple[int, ...], left_sel: tuple[int, ...]):
        """Slice the cached full-data matrices down to a selection."""
        rows = np.concatenate([self._left_group_row_idx[g] for g in left_sel])
        cols = np.concatenate([self._right_group_col_idx[g] for g in right_sel])
        return (
            self._full_V[rows],
            self._full_L[rows],
            self._full_R[:, cols],
            self._full_W[:, cols],
            self._full_mu[rows],
            self._full_lam[cols],
        )

    def _grow(self, right_sel: tuple[int, ...], left_sel: tuple[int, ...],
              v: np.ndarray, ell: np.ndarray, r: np.ndarray, w: np.ndarray,
              mu: np.ndarray, lam: np.ndarray) -> None:
        new_right = tuple(g for g in right_sel if g not in set(self._right_sel))
        new_left = tuple(g for g in left_sel if g not in set(self._left_sel))
        old_rows = self._positions(self._left_group_rows, left_sel, self._left_sel)
        new_rows = self._positions(self._left_group_rows, left_sel, new_left)
        old_cols = self._positions(self._right_group_cols, right_sel, self._right_sel)
        new_cols = self._positions(self._right_group_cols, right_sel, new_right)

        k_left, k_right = v.shape[0], r.shape[1]
        loewner = np.empty((k_left, k_right), dtype=complex)
        shifted = np.empty((k_left, k_right), dtype=complex)
        if old_rows.size and old_cols.size:
            old_ix = np.ix_(old_rows, old_cols)
            loewner[old_ix] = self._loewner
            shifted[old_ix] = self._shifted
        if new_rows.size:
            loewner[new_rows, :], shifted[new_rows, :] = divided_difference_blocks(
                rowcol_product(v[new_rows], r),
                rowcol_product(ell[new_rows], w),
                mu[new_rows], lam)
        if new_cols.size and old_rows.size:
            new_ix = np.ix_(old_rows, new_cols)
            loewner[new_ix], shifted[new_ix] = divided_difference_blocks(
                rowcol_product(v[old_rows], r[:, new_cols]),
                rowcol_product(ell[old_rows], w[:, new_cols]),
                mu[old_rows], lam[new_cols])
        self._loewner, self._shifted = loewner, shifted

    def update(self, right_groups, left_groups) -> tuple[TangentialData, LoewnerPencil]:
        """Select sample groups and return ``(subset_data, complex_pencil)``.

        Group indices follow :meth:`TangentialData.subset` semantics
        (conjugate pairs count as one group).  Supersets of the previous
        selection reuse the previous products and divided differences;
        anything else rebuilds from scratch.
        """
        right_sel = tuple(sorted(set(int(g) for g in right_groups)))
        left_sel = tuple(sorted(set(int(g) for g in left_groups)))
        subset = self._full.subset(right_sel, left_sel)
        v, ell, r, w, mu, lam = self._select(right_sel, left_sel)
        monotone = (
            self._loewner is not None
            and set(self._right_sel) <= set(right_sel)
            and set(self._left_sel) <= set(left_sel)
        )
        if monotone:
            self._grow(right_sel, left_sel, v, ell, r, w, mu, lam)
        else:
            self._loewner, self._shifted = divided_difference_blocks(
                rowcol_product(v, r), rowcol_product(ell, w), mu, lam)
        self._right_sel = right_sel
        self._left_sel = left_sel
        pencil = LoewnerPencil(
            loewner=self._loewner,
            shifted_loewner=self._shifted,
            W=w,
            V=v,
            lambda_points=lam,
            mu_points=mu,
            right_block_sizes=subset.right_block_sizes,
            left_block_sizes=subset.left_block_sizes,
            is_real=False,
        )
        return subset, pencil
