"""Vector-format tangential interpolation (VFTI) -- the baseline the paper improves on.

VFTI is the Loewner-framework method of Mayo & Antoulas / Lefteriu & Antoulas:
every sampled matrix contributes a single column (right data ``S(f_i) r_i``)
or a single row (left data ``l_i S(f_i)``), with the probing unit vectors
cycling through the ports.  Structurally it is the ``t_i = 1`` special case of
MFTI, and this front-end indeed reuses the same tangential-data and Loewner
machinery -- only the direction choice differs -- so that every measured
difference between the two methods in the experiments comes from the
information content of the data, not from implementation details.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core._pipeline import realize_from_tangential, register_frontend
from repro.core.assembly import interleaved_indices
from repro.core.directions import vfti_directions
from repro.core.options import VftiOptions
from repro.core.results import MacromodelResult
from repro.core.tangential import build_tangential_data
from repro.data.dataset import FrequencyData

__all__ = ["vfti"]


@register_frontend("vfti", options_type=VftiOptions)
def vfti(
    data: FrequencyData,
    *,
    options: Optional[VftiOptions] = None,
    **kwargs,
) -> MacromodelResult:
    """Recover a macromodel from sampled data with the vector-format baseline.

    Parameters
    ----------
    data:
        Sampled frequency responses.
    options:
        A :class:`~repro.core.options.VftiOptions` instance; keyword arguments
        are accepted as a shortcut (mutually exclusive with ``options``).

    Returns
    -------
    MacromodelResult

    Notes
    -----
    Because each sample contributes only one tangential column or row, the
    Loewner pencil has one row/column per sample (plus the conjugates) --
    recovering a system of order ``n`` therefore needs on the order of ``n``
    samples, versus ``n / min(m, p)`` for MFTI (Theorem 3.5).  The Example-1
    experiment measures exactly this gap.
    """
    if options is not None and kwargs:
        raise ValueError("pass either an options object or keyword arguments, not both")
    opts = options if options is not None else VftiOptions(**kwargs)

    started = time.perf_counter()
    k = data.n_samples
    if k < 2:
        raise ValueError("VFTI needs at least two sampled frequencies")
    n_inputs = data.n_inputs
    n_outputs = data.n_outputs

    right_indices, left_indices = interleaved_indices(k)
    right_dirs = vfti_directions(n_inputs, len(right_indices), start=opts.direction_start)
    left_dirs = vfti_directions(n_outputs, len(left_indices), start=opts.direction_start)

    tangential = build_tangential_data(
        data,
        right_directions=right_dirs,
        left_directions=left_dirs,
        right_indices=right_indices,
        left_indices=left_indices,
        include_conjugates=opts.include_conjugates,
    )
    return realize_from_tangential(
        tangential,
        opts,
        method="vfti",
        n_samples_used=k,
        started_at=started,
        metadata={"direction_start": opts.direction_start},
    )
