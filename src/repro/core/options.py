"""Configuration objects for the interpolation front-ends.

All knobs of the algorithms are collected in small frozen dataclasses so that
experiments can be described declaratively (and compared in ablations) instead
of through long keyword lists.  Every front-end also accepts plain keyword
arguments and builds the options object internally, so casual use stays
lightweight::

    result = mfti(data)                          # defaults
    result = mfti(data, block_size=2)            # paper's "t_i = 2" row
    result = mfti(data, options=MftiOptions(block_size=3, rank_method="tolerance"))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.utils.rng import RandomState

__all__ = [
    "InterpolationOptions",
    "MftiOptions",
    "VftiOptions",
    "RecursiveOptions",
    "canonical_token",
    "parse_canonical_token",
    "options_from_items",
    "OPTION_TYPES",
]


def canonical_token(value) -> str:
    """Encode one option value into a stable textual token.

    The encoding is exact (floats via ``float.hex`` so distinct values never
    collide and equal values never differ across platforms) and type-prefixed
    (so ``1`` and ``True`` and ``"1"`` stay distinct).  Live random generators
    are rejected: their hidden state cannot be captured, so two "equal"
    options objects could still behave differently.

    Public because every layer that needs a stable textual identity for
    small scalar values reuses this one encoding: the options
    :meth:`~InterpolationOptions.canonical_items` serialization, the cache
    fingerprints built on it, and the shard planner's job identities
    (:func:`repro.batch.sharding.job_fingerprint`), which also encode job
    labels and tag values through it.
    """
    if value is None:
        return "none"
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return f"bool:{bool(value)}"
    if isinstance(value, (int, np.integer)):
        return f"int:{int(value)}"
    if isinstance(value, (float, np.floating)):
        return f"float:{float(value).hex()}"
    if isinstance(value, (complex, np.complexfloating)):
        value = complex(value)
        return f"complex:{value.real.hex()},{value.imag.hex()}"
    if isinstance(value, str):
        # length-prefixed so strings containing delimiters (',', '|', '=')
        # can never alias neighbouring tokens or fields in the hash stream
        return f"str:{len(value)}:{value}"
    if isinstance(value, (tuple, list)) or (isinstance(value, np.ndarray) and value.ndim == 1):
        return "seq:[" + ",".join(canonical_token(entry) for entry in value) + "]"
    raise TypeError(
        f"option value {value!r} of type {type(value).__name__} has no canonical "
        "serialization (live numpy.random.Generator seeds are deliberately rejected)"
    )


def _scan_scalar(text: str, pos: int) -> int:
    """Advance ``pos`` past a scalar token body (stops at ``,`` / ``]`` / end)."""
    while pos < len(text) and text[pos] not in ",]":
        pos += 1
    return pos


def _parse_token(text: str, pos: int):
    """Recursive-descent parse of one canonical token starting at ``pos``."""
    if text.startswith("none", pos):
        return None, pos + 4
    if text.startswith("bool:", pos):
        for literal, value in (("True", True), ("False", False)):
            if text.startswith(literal, pos + 5):
                return value, pos + 5 + len(literal)
        raise ValueError(f"malformed bool token at offset {pos}: {text[pos:pos + 16]!r}")
    if text.startswith("int:", pos):
        end = _scan_scalar(text, pos + 4)
        return int(text[pos + 4:end]), end
    if text.startswith("float:", pos):
        end = _scan_scalar(text, pos + 6)
        return float.fromhex(text[pos + 6:end]), end
    if text.startswith("complex:", pos):
        mid = _scan_scalar(text, pos + 8)
        if mid >= len(text) or text[mid] != ",":
            raise ValueError(f"malformed complex token at offset {pos}")
        end = _scan_scalar(text, mid + 1)
        return complex(float.fromhex(text[pos + 8:mid]), float.fromhex(text[mid + 1:end])), end
    if text.startswith("str:", pos):
        colon = text.find(":", pos + 4)
        if colon < 0:
            raise ValueError(f"malformed str token at offset {pos}")
        length = int(text[pos + 4:colon])
        start = colon + 1
        if start + length > len(text):
            raise ValueError(f"str token at offset {pos} claims {length} chars past the end")
        return text[start:start + length], start + length
    if text.startswith("seq:[", pos):
        pos += 5
        items = []
        if pos < len(text) and text[pos] == "]":
            return (), pos + 1
        while True:
            value, pos = _parse_token(text, pos)
            items.append(value)
            if pos >= len(text):
                raise ValueError("unterminated seq token")
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == "]":
                return tuple(items), pos + 1
            raise ValueError(f"unexpected character {text[pos]!r} inside seq token")
    raise ValueError(f"unknown canonical token at offset {pos}: {text[pos:pos + 16]!r}")


def parse_canonical_token(token: str):
    """Decode one :func:`canonical_token` encoding back into its value.

    The exact inverse of :func:`canonical_token` for every value that
    encoding accepts, with one deliberate normalisation: sequences come back
    as tuples (the encoding does not distinguish ``list`` / ``tuple`` /
    1-D ``ndarray``, and tuples keep frozen options hashable).  This is what
    lets a wire-format job spec -- a shard manifest or a ``repro.serve``
    request -- rebuild the *identical* options object from its canonical
    items instead of shipping pickles.

    Raises
    ------
    ValueError
        On malformed or trailing input; a truncated token never decodes
        silently.
    """
    value, pos = _parse_token(str(token), 0)
    if pos != len(token):
        raise ValueError(f"trailing data after canonical token: {token[pos:]!r}")
    return value


@dataclass(frozen=True)
class InterpolationOptions:
    """Options shared by every Loewner-based front-end (VFTI and MFTI).

    Attributes
    ----------
    real_output:
        Apply the real transform of Lemma 3.2 so the recovered model has real
        matrices.  Requires conjugate data (``include_conjugates``).
    include_conjugates:
        Add the mirrored samples at ``-j 2 pi f`` (eq. 6-7).  Disabling this
        also disables ``real_output``.
    svd_mode:
        ``"two-sided"`` (SVDs of ``[L, sL]`` / ``[L; sL]``; robust default) or
        ``"pencil"`` (single SVD of ``x0*L - sL``, the paper's literal step 5).
    x0:
        Shift used in pencil mode; ``None`` selects the first right point.
    order:
        Explicit model order; ``None`` selects the order automatically from
        the singular-value profile.
    rank_method:
        Automatic order detection rule: ``"gap"`` or ``"tolerance"``.
    rank_tolerance:
        Relative singular-value tolerance used by the ``"tolerance"`` rule and
        as the fallback of the ``"gap"`` rule.
    """

    real_output: bool = True
    include_conjugates: bool = True
    svd_mode: str = "two-sided"
    x0: Optional[complex] = None
    order: Optional[int] = None
    rank_method: str = "gap"
    rank_tolerance: float = 1e-9

    def __post_init__(self):
        if self.svd_mode not in ("two-sided", "pencil"):
            raise ValueError(f"svd_mode must be 'two-sided' or 'pencil', got {self.svd_mode!r}")
        if self.rank_method not in ("gap", "tolerance"):
            raise ValueError(f"rank_method must be 'gap' or 'tolerance', got {self.rank_method!r}")
        if self.rank_tolerance <= 0:
            raise ValueError("rank_tolerance must be positive")
        if self.order is not None and self.order < 1:
            raise ValueError("order must be a positive integer when given")
        if self.real_output and not self.include_conjugates:
            raise ValueError("real_output requires include_conjugates=True")

    def canonical_items(self) -> tuple[tuple[str, str], ...]:
        """Stable ``(field, token)`` pairs fully identifying this configuration.

        Fields are sorted by name (so the result is independent of declaration
        or construction order) and values are encoded with an exact,
        type-prefixed textual encoding.  This is the serialization the cache
        fingerprints (:func:`repro.cache.options_fingerprint`) are built on;
        two options objects produce the same items iff they describe the same
        fit configuration.

        Raises
        ------
        TypeError
            If a field holds a value without a canonical encoding (e.g. a
            live ``numpy.random.Generator`` seed, whose hidden state cannot
            be captured).
        """
        return tuple(
            (field.name, canonical_token(getattr(self, field.name)))
            for field in sorted(dataclasses.fields(self), key=lambda f: f.name)
        )


@dataclass(frozen=True)
class MftiOptions(InterpolationOptions):
    """Options of the matrix-format front-end (Algorithm 1).

    Attributes
    ----------
    block_size:
        The tangential block size ``t_i``.  ``None`` uses the full
        ``min(m, p)`` (all matrix information, Lemma 3.1); an integer applies
        the same ``t`` to every sample; a sequence assigns one ``t_i`` per
        sampled frequency, which is how the paper weights ill-conditioned
        samples ("weight 1" / "weight 2" in Table 1 Test 2).
    direction_kind:
        ``"identity"`` (deterministic, cycling identity columns) or
        ``"random"`` (random orthonormal matrices).
    direction_seed:
        Seed for the random directions.
    """

    block_size: Union[None, int, Sequence[int]] = None
    direction_kind: str = "identity"
    direction_seed: RandomState = None

    def __post_init__(self):
        super().__post_init__()
        if self.direction_kind not in ("identity", "random"):
            raise ValueError(
                f"direction_kind must be 'identity' or 'random', got {self.direction_kind!r}"
            )
        if isinstance(self.block_size, int) and self.block_size < 1:
            raise ValueError("block_size must be >= 1")


@dataclass(frozen=True)
class VftiOptions(InterpolationOptions):
    """Options of the vector-format baseline.

    Attributes
    ----------
    direction_start:
        Index of the port the cycling unit-vector directions start from.
    """

    direction_start: int = 0

    def __post_init__(self):
        super().__post_init__()
        if self.direction_start < 0:
            raise ValueError("direction_start must be non-negative")


@dataclass(frozen=True)
class RecursiveOptions(MftiOptions):
    """Options of the recursive algorithm (Algorithm 2).

    Attributes
    ----------
    samples_per_iteration:
        ``k0`` of the paper: how many sample pairs are added per iteration.
    initial_samples:
        Number of sample pairs used for the very first model (defaults to
        ``samples_per_iteration``).
    error_threshold:
        ``Th`` of the paper: the loop stops once the mean hold-out tangential
        error drops below this value.
    relative_error:
        Normalise the hold-out error of each sample by the norm of its
        tangential data (so ``error_threshold`` is a relative quantity).
    selection:
        Which held-out samples to add next: ``"worst"`` (largest hold-out
        error, the active-learning choice) or ``"spread"`` (keep following the
        strided frequency pattern regardless of error).
    max_iterations:
        Safety cap on the number of refinement iterations.
    """

    samples_per_iteration: int = 4
    initial_samples: Optional[int] = None
    error_threshold: float = 1e-2
    relative_error: bool = True
    selection: str = "worst"
    max_iterations: int = 100

    def __post_init__(self):
        super().__post_init__()
        if self.samples_per_iteration < 1:
            raise ValueError("samples_per_iteration must be >= 1")
        if self.initial_samples is not None and self.initial_samples < 1:
            raise ValueError("initial_samples must be >= 1 when given")
        if self.error_threshold < 0:
            raise ValueError("error_threshold must be non-negative")
        if self.selection not in ("worst", "spread"):
            raise ValueError(f"selection must be 'worst' or 'spread', got {self.selection!r}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


#: Options classes reconstructable from a wire-format ``{"type", "items"}``
#: spec (shard manifests and the ``repro.serve`` protocol).  Every registered
#: front-end's options type must be listed here for its jobs to travel.
OPTION_TYPES: dict[str, type[InterpolationOptions]] = {
    cls.__name__: cls
    for cls in (InterpolationOptions, MftiOptions, VftiOptions, RecursiveOptions)
}


def options_from_items(type_name: str, items) -> InterpolationOptions:
    """Rebuild an options object from its canonical ``(field, token)`` items.

    The inverse of :meth:`InterpolationOptions.canonical_items`, used by every
    wire format that describes a fit configuration textually (shard manifests,
    ``repro.serve`` job specs): ``type_name`` selects the class from
    :data:`OPTION_TYPES` and every item is decoded with
    :func:`parse_canonical_token`.  The reconstruction is verified by
    re-encoding -- the rebuilt object's :meth:`canonical_items` must reproduce
    the input exactly, so any encoder/decoder drift fails loudly instead of
    silently fitting a different configuration.

    Raises
    ------
    ValueError
        Unknown options type, unknown field, malformed token, or a rebuilt
        object whose canonical items do not round-trip.
    """
    try:
        cls = OPTION_TYPES[type_name]
    except KeyError:
        raise ValueError(
            f"unknown options type {type_name!r}; known: {', '.join(sorted(OPTION_TYPES))}"
        ) from None
    field_names = {field.name for field in dataclasses.fields(cls)}
    normalised = [(str(name), str(token)) for name, token in items]
    kwargs = {}
    for name, token in normalised:
        if name not in field_names:
            raise ValueError(f"{type_name} has no option field {name!r}")
        if name in kwargs:
            raise ValueError(f"option field {name!r} appears twice")
        kwargs[name] = parse_canonical_token(token)
    try:
        options = cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"cannot rebuild {type_name} from canonical items: {exc}") from exc
    if list(options.canonical_items()) != sorted(normalised):
        raise ValueError(
            f"rebuilt {type_name} does not round-trip its canonical items; "
            "the options encoding drifted between writer and reader"
        )
    return options
