"""Initial pole placement for vector fitting.

Gustavsen & Semlyen recommend starting poles as lightly damped complex
conjugate pairs whose imaginary parts are spread over the frequency band of
the data, with real parts a fixed (small) fraction of the imaginary parts.
Good starting poles matter mostly for convergence speed; the relocation
iteration moves them to the correct positions regardless.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_integer

__all__ = ["initial_poles"]


def initial_poles(
    n_poles: int,
    f_min_hz: float,
    f_max_hz: float,
    *,
    damping_ratio: float = 0.01,
    spacing: str = "linear",
) -> np.ndarray:
    """Generate starting poles spread over ``[f_min_hz, f_max_hz]``.

    Parameters
    ----------
    n_poles:
        Total number of poles.  An odd count gets one extra real pole at the
        low end of the band; the rest are complex conjugate pairs (stored
        adjacently, ``+j`` imaginary part first).
    f_min_hz, f_max_hz:
        Frequency band of the data.
    damping_ratio:
        Ratio ``|Re| / |Im|`` of the starting poles (Gustavsen's 1 %).
    spacing:
        ``"linear"`` or ``"log"`` spacing of the imaginary parts.

    Returns
    -------
    numpy.ndarray
        Complex array of length ``n_poles`` with conjugate pairs adjacent.
    """
    n_poles = check_positive_integer(n_poles, "n_poles")
    if f_min_hz <= 0 or f_max_hz <= f_min_hz:
        raise ValueError("require 0 < f_min_hz < f_max_hz")
    if damping_ratio <= 0:
        raise ValueError("damping_ratio must be positive")
    if spacing not in ("linear", "log"):
        raise ValueError(f"spacing must be 'linear' or 'log', got {spacing!r}")

    n_pairs = n_poles // 2
    has_real = n_poles % 2 == 1
    w_min = 2.0 * np.pi * f_min_hz
    w_max = 2.0 * np.pi * f_max_hz
    if n_pairs:
        if spacing == "linear":
            omegas = np.linspace(w_min, w_max, n_pairs)
        else:
            omegas = np.logspace(np.log10(w_min), np.log10(w_max), n_pairs)
    else:
        omegas = np.zeros(0)
    poles = []
    if has_real:
        poles.append(complex(-w_min, 0.0))
    for omega in omegas:
        poles.append(complex(-damping_ratio * omega, omega))
        poles.append(complex(-damping_ratio * omega, -omega))
    return np.asarray(poles, dtype=complex)
