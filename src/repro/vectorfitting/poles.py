"""Initial pole placement for vector fitting.

Gustavsen & Semlyen recommend starting poles as lightly damped complex
conjugate pairs whose imaginary parts are spread over the frequency band of
the data, with real parts a fixed (small) fraction of the imaginary parts.
Good starting poles matter mostly for convergence speed; the relocation
iteration moves them to the correct positions regardless.
"""

from __future__ import annotations

import numpy as np

from repro.core.assembly import PoleGrouping, real_pole_mask
from repro.utils.validation import check_positive_integer

__all__ = ["PoleGrouping", "initial_poles", "sort_poles"]


def sort_poles(poles: np.ndarray) -> np.ndarray:
    """Order poles with conjugate pairs adjacent (positive imaginary part first).

    Real poles come first (sorted ascending), then each complex pole with
    positive imaginary part followed by its mirror at the conjugate, sorted
    by ``(|Im|, Re)``.  Genuinely paired poles (a matching lower-half-plane
    partner exists) always keep their slots; positives without a partner --
    the upper-half-plane input convention -- are auto-mirrored while room
    remains.  Any leftover complex pole (no partner and no room for a
    mirror, e.g. when relocation round-off breaks a pair) is replaced by a
    *real* pole at its own real part, so the result is always a valid input
    for :class:`~repro.core.assembly.PoleGrouping` (a dangling complex pole
    would make the real-coefficient basis unbuildable).  Mirroring takes
    priority over leftover fills (the legacy behaviour): when a mirrored
    positive consumes the last slots, a leftover lower-half-plane pole is
    dropped rather than realified.
    """
    poles = np.asarray(poles, dtype=complex).ravel()
    n = poles.size
    mask = real_pole_mask(poles)
    reals = sorted(poles[mask].real.tolist())
    complexes = poles[~mask]
    positives = sorted(
        complexes[complexes.imag > 0].tolist(), key=lambda p: (abs(p.imag), p.real)
    )
    negatives = complexes[complexes.imag < 0].tolist()
    consumed = [False] * len(negatives)
    ordered: list[complex] = [complex(r, 0.0) for r in reals]
    unmatched: list[complex] = []
    for pole in positives:
        # emitting the exact conjugate (rather than the matched partner,
        # which may differ in the last bits) is the historical behaviour
        match = None
        for i, candidate in enumerate(negatives):
            if consumed[i]:
                continue
            if np.isclose(candidate, np.conj(pole), rtol=1e-6, atol=1e-12):
                match = i
                break
        if match is None:
            unmatched.append(pole)
            continue
        consumed[match] = True
        ordered.append(pole)
        ordered.append(complex(np.conj(pole)))
    leftovers: list[complex] = []
    for pole in unmatched:
        # upper-half-plane convention: mirror an unpaired pole when room
        # allows; a genuine pair is never displaced to make that room
        if len(ordered) + 2 <= n:
            ordered.append(pole)
            ordered.append(complex(np.conj(pole)))
        else:
            leftovers.append(pole)
    leftovers.extend(q for i, q in enumerate(negatives) if not consumed[i])
    for pole in leftovers:
        # distinct real fills (one per leftover pole, at its own real part)
        # keep the partial-fraction basis columns independent
        if len(ordered) >= n:
            break
        ordered.append(complex(pole.real, 0.0))
    return np.asarray(ordered, dtype=complex)


def initial_poles(
    n_poles: int,
    f_min_hz: float,
    f_max_hz: float,
    *,
    damping_ratio: float = 0.01,
    spacing: str = "linear",
) -> np.ndarray:
    """Generate starting poles spread over ``[f_min_hz, f_max_hz]``.

    Parameters
    ----------
    n_poles:
        Total number of poles.  An odd count gets one extra real pole at the
        low end of the band; the rest are complex conjugate pairs (stored
        adjacently, ``+j`` imaginary part first).
    f_min_hz, f_max_hz:
        Frequency band of the data.
    damping_ratio:
        Ratio ``|Re| / |Im|`` of the starting poles (Gustavsen's 1 %).
    spacing:
        ``"linear"`` or ``"log"`` spacing of the imaginary parts.

    Returns
    -------
    numpy.ndarray
        Complex array of length ``n_poles`` with conjugate pairs adjacent.
    """
    n_poles = check_positive_integer(n_poles, "n_poles")
    if f_min_hz <= 0 or f_max_hz <= f_min_hz:
        raise ValueError("require 0 < f_min_hz < f_max_hz")
    if damping_ratio <= 0:
        raise ValueError("damping_ratio must be positive")
    if spacing not in ("linear", "log"):
        raise ValueError(f"spacing must be 'linear' or 'log', got {spacing!r}")

    n_pairs = n_poles // 2
    has_real = n_poles % 2 == 1
    w_min = 2.0 * np.pi * f_min_hz
    w_max = 2.0 * np.pi * f_max_hz
    if n_pairs:
        if spacing == "linear":
            omegas = np.linspace(w_min, w_max, n_pairs)
        else:
            omegas = np.logspace(np.log10(w_min), np.log10(w_max), n_pairs)
    else:
        omegas = np.zeros(0)
    poles = []
    if has_real:
        poles.append(complex(-w_min, 0.0))
    for omega in omegas:
        poles.append(complex(-damping_ratio * omega, omega))
        poles.append(complex(-damping_ratio * omega, -omega))
    return np.asarray(poles, dtype=complex)
