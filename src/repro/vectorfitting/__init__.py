"""Vector fitting (VF) -- the classical iterative rational-fitting baseline.

The paper's Table 1 compares MFTI not only against VFTI but also against the
popular Vector Fitting algorithm of Gustavsen & Semlyen (1999): an iterative
pole-relocation scheme that fits a common-pole rational model

``H(s) = sum_n R_n / (s - a_n) + D``

to the sampled data.  This package provides a from-scratch implementation:

* :mod:`repro.vectorfitting.poles` -- initial pole placement,
* :mod:`repro.vectorfitting.rational` -- the :class:`PoleResidueModel`
  rational-model class (evaluation + conversion to a real state space),
* :mod:`repro.vectorfitting.fitting` -- the fast-VF style fitting loop,
* :mod:`repro.vectorfitting.passivity` -- sampling-based passivity checks for
  the fitted models,
* :mod:`repro.vectorfitting.enforcement` -- post-fit passivity enforcement
  (Gustavsen-style residue perturbation) producing certified passive models.
"""

from repro.vectorfitting.enforcement import (
    EnforcementFailed,
    PassivityCertificate,
    PassivitySpec,
    enforce_passivity,
)
from repro.vectorfitting.fitting import VectorFitResult, vector_fit
from repro.vectorfitting.passivity import is_passive_scattering, passivity_violations
from repro.vectorfitting.poles import PoleGrouping, initial_poles, sort_poles
from repro.vectorfitting.rational import PoleResidueModel

__all__ = [
    "initial_poles",
    "sort_poles",
    "PoleGrouping",
    "PoleResidueModel",
    "vector_fit",
    "VectorFitResult",
    "is_passive_scattering",
    "passivity_violations",
    "PassivitySpec",
    "PassivityCertificate",
    "EnforcementFailed",
    "enforce_passivity",
]
