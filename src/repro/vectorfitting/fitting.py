"""The vector-fitting iteration (Gustavsen & Semlyen 1999, fast-VF variant).

Each iteration solves, for the current pole set ``{a_n}``, the linearised
least-squares problem

``sum_n c_n^(j) phi_n(s) + d^(j) - F_j(s) * sum_n ctilde_n phi_n(s) ~= F_j(s)``

jointly over every matrix entry ``j`` (common poles), where ``phi_n`` is the
real-coefficient partial-fraction basis.  Only the *shared* scaling
coefficients ``ctilde`` are actually needed to relocate the poles, so the
per-entry unknowns are eliminated by projecting onto the orthogonal complement
of the per-entry basis -- the "fast VF" trick -- which keeps the cost linear
in the number of matrix entries.  The new poles are the zeros of the scaling
function, obtained as eigenvalues of ``A - b ctilde^T`` in the standard real
block form; unstable poles are flipped into the left half-plane.  After the
pole iteration converges the residues of every entry are identified in a
single joint least-squares solve.

The numerical kernels (basis, relocation companion form, per-entry
projection, residue reconstruction) live in :mod:`repro.core.assembly` as
batched array operations over a precomputed
:class:`~repro.core.assembly.PoleGrouping`; this module only drives the
iteration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.linalg

from repro.core.assembly import (
    PoleGrouping,
    partial_fraction_basis,
    relocation_matrices,
    residues_from_coefficients,
    vf_scaling_solve,
)
from repro.data.dataset import FrequencyData
from repro.utils.linalg import realify
from repro.vectorfitting.poles import initial_poles, sort_poles
from repro.vectorfitting.rational import PoleResidueModel

__all__ = ["VectorFitResult", "vector_fit"]


@dataclass(frozen=True)
class VectorFitResult:
    """Result of a vector-fitting run.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.vectorfitting.rational.PoleResidueModel`.
    n_poles:
        Number of poles requested (and used).
    n_iterations:
        Pole-relocation iterations actually performed.
    pole_history:
        Relative pole displacement per iteration (convergence trace).
    elapsed_seconds:
        Wall-clock time of the whole fit.
    """

    model: PoleResidueModel
    n_poles: int
    n_iterations: int
    pole_history: tuple[float, ...] = field(default_factory=tuple)
    elapsed_seconds: float = 0.0

    @property
    def order(self) -> int:
        """Reported model order (the number of common poles)."""
        return self.n_poles

    def frequency_response(self, frequencies_hz) -> np.ndarray:
        """Evaluate the fitted model along a frequency grid."""
        return self.model.frequency_response(frequencies_hz)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"vector-fitting: poles={self.n_poles}, iterations={self.n_iterations}, "
            f"time={self.elapsed_seconds:.3f}s"
        )


def _relocate_poles(
    poles: np.ndarray,
    grouping: PoleGrouping,
    c_tilde: np.ndarray,
    *,
    enforce_stability: bool,
) -> np.ndarray:
    """New poles = eigenvalues of (A - b c_tilde^T) in the real block form."""
    a_mat, b_vec = relocation_matrices(poles, grouping)
    new_poles = np.linalg.eigvals(a_mat - np.outer(b_vec, c_tilde))
    if enforce_stability:
        new_poles = np.where(new_poles.real > 0, -new_poles.real + 1j * new_poles.imag, new_poles)
    return sort_poles(new_poles)


def _solve_residue_system(
    phi1_real: np.ndarray,
    responses_real: np.ndarray,
    qr_factors: Optional[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """LS coefficients of ``phi1_real @ coeffs ~= responses_real``.

    When the caller already holds the (reduced) QR factors of
    ``phi1_real`` -- :func:`vector_fit` computes them anyway for the
    fast-VF projector -- the solve is just ``R^{-1} Q^T rhs``, skipping
    the ``lstsq`` SVD re-factorisation (round-off-identical for a tall
    full-rank basis; underdetermined systems -- more poles than realified
    samples, where reduced ``R`` is not even square -- and an R-diagonal
    rank guard fall back to ``lstsq``, preserving its minimum-norm
    semantics).
    """
    rows, cols = phi1_real.shape
    if qr_factors is not None and rows >= cols:
        q1, r1 = qr_factors
        diag = np.abs(np.diagonal(r1))
        threshold = max(phi1_real.shape) * np.finfo(float).eps * (
            diag.max() if diag.size else 0.0
        )
        if diag.size and diag.min() > threshold:
            return scipy.linalg.solve_triangular(r1, q1.T @ responses_real)
    return np.linalg.lstsq(phi1_real, responses_real, rcond=None)[0]


def _fit_residues(
    phi1_real: np.ndarray,
    responses_real: np.ndarray,
    poles: np.ndarray,
    grouping: PoleGrouping,
    shape: tuple[int, int],
    fit_constant: bool,
    qr_factors: Optional[tuple[np.ndarray, np.ndarray]] = None,
) -> PoleResidueModel:
    """Identify residues (and the constant term) with the poles held fixed."""
    coeffs = _solve_residue_system(phi1_real, responses_real, qr_factors)
    n = poles.size
    p, m = shape
    residues = residues_from_coefficients(coeffs, poles, grouping, (p, m))
    if fit_constant:
        d = coeffs[n].reshape(p, m)
    else:
        d = np.zeros((p, m))
    return PoleResidueModel(poles, residues, d)


def vector_fit(
    data: FrequencyData,
    n_poles: int,
    *,
    n_iterations: int = 10,
    starting_poles: Optional[np.ndarray] = None,
    fit_constant: bool = True,
    enforce_stability: bool = True,
    convergence_tolerance: float = 1e-8,
) -> VectorFitResult:
    """Fit a common-pole rational model to sampled frequency data.

    Parameters
    ----------
    data:
        The sampled frequency responses.
    n_poles:
        Number of common poles of the fitted model.
    n_iterations:
        Maximum number of pole-relocation iterations (the paper's Table 1 uses
        10).
    starting_poles:
        Optional explicit starting poles (conjugate pairs adjacent); generated
        over the data band by :func:`~repro.vectorfitting.poles.initial_poles`
        when omitted.
    fit_constant:
        Include the constant term ``D`` in the model.
    enforce_stability:
        Flip unstable relocated poles into the left half-plane.
    convergence_tolerance:
        Stop early when the relative pole displacement falls below this value.

    Returns
    -------
    VectorFitResult
    """
    started = time.perf_counter()
    if n_poles < 1:
        raise ValueError("n_poles must be >= 1")
    freqs = data.frequencies_hz
    s_points = 1j * 2.0 * np.pi * freqs
    p, m = data.n_outputs, data.n_inputs
    n_entries = p * m
    # responses as columns: entry (i_out, i_in) -> column index i_out * m + i_in
    responses = data.samples.reshape(data.n_samples, n_entries)
    responses_real = realify(responses)

    poles = (np.asarray(starting_poles, dtype=complex).ravel()
             if starting_poles is not None
             else initial_poles(n_poles, float(freqs[0]), float(freqs[-1])))
    if poles.size != n_poles:
        raise ValueError(f"starting_poles must contain {n_poles} poles, got {poles.size}")
    poles = sort_poles(poles)

    history: list[float] = []
    iterations_done = 0
    for _ in range(int(n_iterations)):
        grouping = PoleGrouping.from_poles(poles)
        phi = partial_fraction_basis(s_points, poles, grouping)
        columns = [phi, np.ones((s_points.size, 1))] if fit_constant else [phi]
        phi1_real = realify(np.hstack(columns))
        # orthogonal projector onto the complement of the per-entry basis
        q1, _ = np.linalg.qr(phi1_real)

        # fast-VF projection + compact conditioned solve of every matrix
        # entry, batched in one kernel call (falls back to the stacked
        # lstsq reference on ill-conditioned bases)
        c_tilde = vf_scaling_solve(phi, responses, q1)

        new_poles = _relocate_poles(poles, grouping, c_tilde,
                                    enforce_stability=enforce_stability)
        displacement = float(
            np.linalg.norm(np.sort_complex(new_poles) - np.sort_complex(poles))
            / max(np.linalg.norm(poles), 1e-300)
        )
        history.append(displacement)
        poles = new_poles
        iterations_done += 1
        if displacement < convergence_tolerance:
            break

    grouping = PoleGrouping.from_poles(poles)
    phi = partial_fraction_basis(s_points, poles, grouping)
    columns = [phi, np.ones((s_points.size, 1))] if fit_constant else [phi]
    phi1_real = realify(np.hstack(columns))
    # the residue solve reuses fresh QR factors of the final basis instead
    # of re-factorising through lstsq (round-off-identical, rank-guarded)
    q1, r1 = np.linalg.qr(phi1_real)
    model = _fit_residues(
        phi1_real, responses_real, poles, grouping, (p, m), fit_constant,
        qr_factors=(q1, r1),
    )
    elapsed = time.perf_counter() - started
    return VectorFitResult(
        model=model,
        n_poles=int(n_poles),
        n_iterations=iterations_done,
        pole_history=tuple(history),
        elapsed_seconds=float(elapsed),
    )
