"""The vector-fitting iteration (Gustavsen & Semlyen 1999, fast-VF variant).

Each iteration solves, for the current pole set ``{a_n}``, the linearised
least-squares problem

``sum_n c_n^(j) phi_n(s) + d^(j) - F_j(s) * sum_n ctilde_n phi_n(s) ~= F_j(s)``

jointly over every matrix entry ``j`` (common poles), where ``phi_n`` is the
real-coefficient partial-fraction basis.  Only the *shared* scaling
coefficients ``ctilde`` are actually needed to relocate the poles, so the
per-entry unknowns are eliminated by projecting onto the orthogonal complement
of the per-entry basis -- the "fast VF" trick -- which keeps the cost linear
in the number of matrix entries.  The new poles are the zeros of the scaling
function, obtained as eigenvalues of ``A - b ctilde^T`` in the standard real
block form; unstable poles are flipped into the left half-plane.  After the
pole iteration converges the residues of every entry are identified in a
single joint least-squares solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import FrequencyData
from repro.vectorfitting.poles import initial_poles
from repro.vectorfitting.rational import PoleResidueModel

__all__ = ["VectorFitResult", "vector_fit"]

#: Relative magnitude below which a pole's imaginary part is treated as zero.
_REAL_POLE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class VectorFitResult:
    """Result of a vector-fitting run.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.vectorfitting.rational.PoleResidueModel`.
    n_poles:
        Number of poles requested (and used).
    n_iterations:
        Pole-relocation iterations actually performed.
    pole_history:
        Relative pole displacement per iteration (convergence trace).
    elapsed_seconds:
        Wall-clock time of the whole fit.
    """

    model: PoleResidueModel
    n_poles: int
    n_iterations: int
    pole_history: tuple[float, ...] = field(default_factory=tuple)
    elapsed_seconds: float = 0.0

    @property
    def order(self) -> int:
        """Reported model order (the number of common poles)."""
        return self.n_poles

    def frequency_response(self, frequencies_hz) -> np.ndarray:
        """Evaluate the fitted model along a frequency grid."""
        return self.model.frequency_response(frequencies_hz)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"vector-fitting: poles={self.n_poles}, iterations={self.n_iterations}, "
            f"time={self.elapsed_seconds:.3f}s"
        )


def _group_poles(poles: np.ndarray) -> list[tuple[str, tuple[int, ...]]]:
    """Group a pole array into real singles and adjacent conjugate pairs."""
    groups: list[tuple[str, tuple[int, ...]]] = []
    i = 0
    n = poles.size
    while i < n:
        pole = poles[i]
        if abs(pole.imag) <= _REAL_POLE_TOLERANCE * max(abs(pole), 1.0):
            groups.append(("real", (i,)))
            i += 1
            continue
        if i + 1 < n and np.isclose(poles[i + 1], np.conj(pole), rtol=1e-6, atol=1e-12):
            groups.append(("pair", (i, i + 1)))
            i += 2
            continue
        raise ValueError("complex poles must appear in adjacent conjugate pairs")
    return groups


def _basis(s_points: np.ndarray, poles: np.ndarray) -> np.ndarray:
    """Real-coefficient partial-fraction basis evaluated at the sample points.

    Returns a complex ``(N, n_poles)`` matrix whose columns multiply *real*
    coefficients: real poles get ``1/(s - a)``; conjugate pairs get
    ``1/(s-a) + 1/(s-conj(a))`` and ``j/(s-a) - j/(s-conj(a))``.
    """
    n = poles.size
    phi = np.empty((s_points.size, n), dtype=complex)
    for kind, idx in _group_poles(poles):
        if kind == "real":
            phi[:, idx[0]] = 1.0 / (s_points - poles[idx[0]].real)
        else:
            a = poles[idx[0]]
            if a.imag < 0:
                a = np.conj(a)
            col1 = 1.0 / (s_points - a) + 1.0 / (s_points - np.conj(a))
            col2 = 1j / (s_points - a) - 1j / (s_points - np.conj(a))
            phi[:, idx[0]] = col1
            phi[:, idx[1]] = col2
    return phi


def _realify(matrix: np.ndarray) -> np.ndarray:
    """Stack real and imaginary parts so complex LS becomes real LS."""
    return np.vstack([matrix.real, matrix.imag])


def _relocate_poles(poles: np.ndarray, c_tilde: np.ndarray, *, enforce_stability: bool) -> np.ndarray:
    """New poles = eigenvalues of (A - b c_tilde^T) in the real block form."""
    n = poles.size
    a_mat = np.zeros((n, n))
    b_vec = np.zeros(n)
    for kind, idx in _group_poles(poles):
        if kind == "real":
            a_mat[idx[0], idx[0]] = poles[idx[0]].real
            b_vec[idx[0]] = 1.0
        else:
            a = poles[idx[0]]
            if a.imag < 0:
                a = np.conj(a)
            alpha, beta = a.real, a.imag
            i, j = idx
            a_mat[i, i] = alpha
            a_mat[i, j] = beta
            a_mat[j, i] = -beta
            a_mat[j, j] = alpha
            b_vec[i] = 2.0
            b_vec[j] = 0.0
    new_poles = np.linalg.eigvals(a_mat - np.outer(b_vec, c_tilde))
    if enforce_stability:
        new_poles = np.where(new_poles.real > 0, -new_poles.real + 1j * new_poles.imag, new_poles)
    return _sort_poles(new_poles)


def _sort_poles(poles: np.ndarray) -> np.ndarray:
    """Order poles with conjugate pairs adjacent (positive imaginary part first)."""
    reals = sorted([p.real for p in poles if abs(p.imag) <= _REAL_POLE_TOLERANCE * max(abs(p), 1.0)])
    complexes = [p for p in poles if abs(p.imag) > _REAL_POLE_TOLERANCE * max(abs(p), 1.0)]
    positives = sorted([p for p in complexes if p.imag > 0], key=lambda p: (abs(p.imag), p.real))
    ordered: list[complex] = [complex(r, 0.0) for r in reals]
    for p in positives:
        ordered.append(p)
        ordered.append(np.conj(p))
    # odd leftovers (numerically unpaired) are kept as real poles at their real part
    missing = len(poles) - len(ordered)
    for _ in range(max(0, missing)):
        ordered.append(complex(np.mean([p.real for p in complexes]) if complexes else -1.0, 0.0))
    return np.asarray(ordered[: len(poles)], dtype=complex)


def _fit_residues(
    phi1_real: np.ndarray,
    responses_real: np.ndarray,
    poles: np.ndarray,
    shape: tuple[int, int],
    fit_constant: bool,
) -> PoleResidueModel:
    """Identify residues (and the constant term) with the poles held fixed."""
    coeffs, *_ = np.linalg.lstsq(phi1_real, responses_real, rcond=None)
    n = poles.size
    p, m = shape
    n_entries = p * m
    residues = np.zeros((n, p, m), dtype=complex)
    for kind, idx in _group_poles(poles):
        if kind == "real":
            row = coeffs[idx[0]].reshape(p, m)
            residues[idx[0]] = row
        else:
            re_part = coeffs[idx[0]].reshape(p, m)
            im_part = coeffs[idx[1]].reshape(p, m)
            a = poles[idx[0]]
            if a.imag < 0:
                residues[idx[0]] = re_part - 1j * im_part
                residues[idx[1]] = re_part + 1j * im_part
            else:
                residues[idx[0]] = re_part + 1j * im_part
                residues[idx[1]] = re_part - 1j * im_part
    if fit_constant:
        d = coeffs[n].reshape(p, m)
    else:
        d = np.zeros(n_entries).reshape(p, m)
    return PoleResidueModel(poles, residues, d)


def vector_fit(
    data: FrequencyData,
    n_poles: int,
    *,
    n_iterations: int = 10,
    starting_poles: Optional[np.ndarray] = None,
    fit_constant: bool = True,
    enforce_stability: bool = True,
    convergence_tolerance: float = 1e-8,
) -> VectorFitResult:
    """Fit a common-pole rational model to sampled frequency data.

    Parameters
    ----------
    data:
        The sampled frequency responses.
    n_poles:
        Number of common poles of the fitted model.
    n_iterations:
        Maximum number of pole-relocation iterations (the paper's Table 1 uses
        10).
    starting_poles:
        Optional explicit starting poles (conjugate pairs adjacent); generated
        over the data band by :func:`~repro.vectorfitting.poles.initial_poles`
        when omitted.
    fit_constant:
        Include the constant term ``D`` in the model.
    enforce_stability:
        Flip unstable relocated poles into the left half-plane.
    convergence_tolerance:
        Stop early when the relative pole displacement falls below this value.

    Returns
    -------
    VectorFitResult
    """
    started = time.perf_counter()
    if n_poles < 1:
        raise ValueError("n_poles must be >= 1")
    freqs = data.frequencies_hz
    s_points = 1j * 2.0 * np.pi * freqs
    p, m = data.n_outputs, data.n_inputs
    n_entries = p * m
    # responses as columns: entry (i_out, i_in) -> column index i_out * m + i_in
    responses = data.samples.reshape(data.n_samples, n_entries)
    responses_real = _realify(responses)

    poles = (np.asarray(starting_poles, dtype=complex).ravel()
             if starting_poles is not None
             else initial_poles(n_poles, float(freqs[0]), float(freqs[-1])))
    if poles.size != n_poles:
        raise ValueError(f"starting_poles must contain {n_poles} poles, got {poles.size}")
    poles = _sort_poles(poles)

    history: list[float] = []
    iterations_done = 0
    for _ in range(int(n_iterations)):
        phi = _basis(s_points, poles)
        columns = [phi, np.ones((s_points.size, 1))] if fit_constant else [phi]
        phi1_real = _realify(np.hstack(columns))
        # orthogonal projector onto the complement of the per-entry basis
        q1, _ = np.linalg.qr(phi1_real)

        blocks = []
        rhs_blocks = []
        for j in range(n_entries):
            weighted = _realify(-responses[:, j, np.newaxis] * phi)
            rhs_j = np.concatenate([responses[:, j].real, responses[:, j].imag])
            proj_a = weighted - q1 @ (q1.T @ weighted)
            proj_b = rhs_j - q1 @ (q1.T @ rhs_j)
            blocks.append(proj_a)
            rhs_blocks.append(proj_b)
        a_stacked = np.vstack(blocks)
        b_stacked = np.concatenate(rhs_blocks)
        c_tilde, *_ = np.linalg.lstsq(a_stacked, b_stacked, rcond=None)

        new_poles = _relocate_poles(poles, c_tilde, enforce_stability=enforce_stability)
        displacement = float(
            np.linalg.norm(np.sort_complex(new_poles) - np.sort_complex(poles))
            / max(np.linalg.norm(poles), 1e-300)
        )
        history.append(displacement)
        poles = new_poles
        iterations_done += 1
        if displacement < convergence_tolerance:
            break

    phi = _basis(s_points, poles)
    columns = [phi, np.ones((s_points.size, 1))] if fit_constant else [phi]
    phi1_real = _realify(np.hstack(columns))
    model = _fit_residues(phi1_real, responses_real, poles, (p, m), fit_constant)
    elapsed = time.perf_counter() - started
    return VectorFitResult(
        model=model,
        n_poles=int(n_poles),
        n_iterations=iterations_done,
        pole_history=tuple(history),
        elapsed_seconds=float(elapsed),
    )
