"""Pole-residue rational models.

Vector fitting produces models in *pole-residue* form,

``H(s) = sum_n R_n / (s - a_n) + D``,

with matrix residues ``R_n`` sharing a common pole set.  This class stores
that form directly -- evaluation is then O(n p m) per frequency instead of a
dense linear solve -- and converts to a real block state-space realization on
demand (for time-domain use or comparison with the Loewner models).
"""

from __future__ import annotations

import numpy as np

from repro.systems.evaluation import evaluate_cauchy
from repro.systems.statespace import StateSpace
from repro.utils.validation import ensure_2d

__all__ = ["PoleResidueModel"]

#: Relative tolerance used when pairing complex-conjugate poles.
_PAIR_TOLERANCE = 1e-8


class PoleResidueModel:
    """Common-pole rational matrix model ``H(s) = sum_n R_n/(s - a_n) + D``.

    Parameters
    ----------
    poles:
        Complex array of length ``n``.  Complex poles must appear in conjugate
        pairs (their residues must then also be conjugate) for the model to be
        real-valued; purely real pole sets are allowed as well.
    residues:
        Complex array of shape ``(n, p, m)``: one residue matrix per pole.
    d:
        Optional constant term ``D`` (``p x m``); defaults to zero.
    """

    def __init__(self, poles, residues, d=None):
        poles = np.asarray(poles, dtype=complex).ravel()
        residues = np.asarray(residues, dtype=complex)
        if residues.ndim == 2:
            residues = residues[:, np.newaxis, :]
        if residues.ndim != 3 or residues.shape[0] != poles.size:
            raise ValueError(
                f"residues must have shape (n_poles, p, m); got {residues.shape} "
                f"for {poles.size} poles"
            )
        p, m = residues.shape[1], residues.shape[2]
        if d is None:
            d = np.zeros((p, m))
        d = ensure_2d(d, "d")
        if d.shape != (p, m):
            raise ValueError(f"d must have shape {(p, m)}, got {d.shape}")
        self._poles = poles
        self._residues = residues
        self._d = np.asarray(d, dtype=float) if not np.iscomplexobj(d) else np.asarray(d)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def poles(self) -> np.ndarray:
        """The common pole set (length ``n_poles``)."""
        return self._poles.copy()

    @property
    def residues(self) -> np.ndarray:
        """Residue matrices, shape ``(n_poles, p, m)``."""
        return self._residues.copy()

    @property
    def d(self) -> np.ndarray:
        """Constant (feed-through) term."""
        return np.array(self._d)

    @property
    def n_poles(self) -> int:
        """Number of poles of the rational model."""
        return int(self._poles.size)

    @property
    def order(self) -> int:
        """Alias for :attr:`n_poles` (the order of the scalar rational functions)."""
        return self.n_poles

    @property
    def n_outputs(self) -> int:
        """Number of outputs ``p``."""
        return int(self._residues.shape[1])

    @property
    def n_inputs(self) -> int:
        """Number of inputs ``m``."""
        return int(self._residues.shape[2])

    @property
    def is_stable(self) -> bool:
        """True when every pole lies strictly in the open left half-plane."""
        return bool(np.all(self._poles.real < 0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PoleResidueModel(n_poles={self.n_poles}, outputs={self.n_outputs}, "
            f"inputs={self.n_inputs})"
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def transfer_function(self, s: complex) -> np.ndarray:
        """Evaluate ``H(s)`` at a single complex point."""
        s = complex(s)
        weights = 1.0 / (s - self._poles)
        return np.tensordot(weights, self._residues, axes=(0, 0)) + self._d

    def __call__(self, s: complex) -> np.ndarray:
        """Alias for :meth:`transfer_function`."""
        return self.transfer_function(s)

    def evaluate_many(self, points, *, method: str = "auto") -> np.ndarray:
        """Evaluate ``H`` at arbitrary complex points (shape ``(k, p, m)``).

        Pole-residue models are already diagonal, so every strategy of the
        shared kernel reduces to the same vectorized Cauchy contraction
        (:func:`repro.systems.evaluation.evaluate_cauchy`); ``method`` is
        accepted for interface parity with
        :meth:`repro.systems.statespace.DescriptorSystem.evaluate_many`.
        """
        return evaluate_cauchy(self._poles, self._residues, self._d, points)

    def frequency_response(self, frequencies_hz, *, method: str = "auto") -> np.ndarray:
        """Evaluate ``H(j 2 pi f)`` over a frequency grid (shape ``(k, p, m)``)."""
        freqs = np.asarray(frequencies_hz, dtype=float).ravel()
        return self.evaluate_many(1j * 2.0 * np.pi * freqs, method=method)

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def _grouped_poles(self):
        """Group poles into real singles and conjugate pairs (index-based)."""
        used = np.zeros(self.n_poles, dtype=bool)
        groups: list[tuple[str, tuple[int, ...]]] = []
        for i, pole in enumerate(self._poles):
            if used[i]:
                continue
            if abs(pole.imag) <= _PAIR_TOLERANCE * max(abs(pole), 1.0):
                groups.append(("real", (i,)))
                used[i] = True
                continue
            # find the conjugate partner
            partner = None
            for j in range(i + 1, self.n_poles):
                if used[j]:
                    continue
                if np.isclose(self._poles[j], np.conj(pole),
                              rtol=_PAIR_TOLERANCE, atol=_PAIR_TOLERANCE):
                    partner = j
                    break
            if partner is None:
                raise ValueError(
                    f"complex pole {pole} has no conjugate partner; the model is not real"
                )
            groups.append(("pair", (i, partner)))
            used[i] = used[partner] = True
        return groups

    def to_statespace(self) -> StateSpace:
        """Real block state-space realization (order ``n_poles * m`` at most).

        Real poles contribute ``m`` states with ``(A, B, C) = (a I, I, Re(R))``;
        complex pairs contribute ``2m`` states with the standard real 2x2 block
        ``[[alpha I, beta I], [-beta I, alpha I]]`` and ``C = [Re(R), Im(R)]``.
        """
        m = self.n_inputs
        p = self.n_outputs
        groups = self._grouped_poles()
        a_blocks: list[np.ndarray] = []
        b_blocks: list[np.ndarray] = []
        c_blocks: list[np.ndarray] = []
        eye = np.eye(m)
        for kind, idx in groups:
            if kind == "real":
                pole = self._poles[idx[0]].real
                residue = self._residues[idx[0]].real
                a_blocks.append(pole * eye)
                b_blocks.append(eye)
                c_blocks.append(residue)
            else:
                pole = self._poles[idx[0]]
                if pole.imag < 0:
                    pole = np.conj(pole)
                    residue = self._residues[idx[1]]
                else:
                    residue = self._residues[idx[0]]
                alpha, beta = pole.real, pole.imag
                a_blocks.append(np.block([[alpha * eye, beta * eye],
                                          [-beta * eye, alpha * eye]]))
                b_blocks.append(np.vstack([2.0 * eye, np.zeros((m, m))]))
                c_blocks.append(np.hstack([residue.real, residue.imag]))
        n_states = sum(block.shape[0] for block in a_blocks)
        a = np.zeros((n_states, n_states))
        b = np.zeros((n_states, m))
        c = np.zeros((p, n_states))
        pos = 0
        for a_blk, b_blk, c_blk in zip(a_blocks, b_blocks, c_blocks):
            size = a_blk.shape[0]
            a[pos : pos + size, pos : pos + size] = a_blk
            b[pos : pos + size, :] = b_blk
            c[:, pos : pos + size] = c_blk
            pos += size
        return StateSpace(a, b, c, np.real(self._d))
