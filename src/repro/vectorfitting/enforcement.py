"""Batched post-fit passivity enforcement with a verifiable certificate.

A fitted macromodel is only deployable in a transient SI/PI simulation if it
is passive; :mod:`repro.vectorfitting.passivity` *checks* that, this module
*repairs* it.  The pipeline is the standard vector-fitting companion
(Gustavsen-style residue perturbation) built on the repository's batched
margin kernels:

1. **Sweep** -- the model is evaluated over a log-spaced check grid spanning
   the data band extended by ``band_factor`` on both sides (DC included), and
   the passivity margin of every frequency comes from one stacked SVD /
   ``eigvalsh`` call (:func:`~repro.vectorfitting.passivity.
   scattering_margins` / :func:`~repro.vectorfitting.passivity.
   immittance_margins`).
2. **Localize** -- adaptive bisection refinement inserts log-midpoints around
   every sign change of the margin (and next to every violating node), so
   violation bands *between* check frequencies are caught instead of sampled
   over.
3. **Perturb** -- the offending residues receive a least-squares-minimal
   first-order update pushing ``sigma_max(S) <= 1 - slack`` (scattering)
   resp. ``lambda_min(Herm H) >= slack`` (immittance) at every violating
   frequency.  Columns of the constraint system are scaled by each pole
   basis function's L2 norm over the *original sample frequencies*, so the
   minimum-norm solve preferentially spends perturbation where it costs the
   fit the least.  Poles and the feed-through ``D`` are never touched.
4. **Certify** -- iteration ends when the refined sweep *and* a denser
   hold-out sweep (``holdout_oversample`` times the base grid) are clean;
   the result is a :class:`PassivityCertificate` (checked band, residual
   margin, perturbation norm, hold-out error delta).  Exhausting the
   iteration budget, an asymptotically non-passive feed-through, or fit-error
   growth beyond ``max_error_growth`` raises a loud :class:`EnforcementFailed`
   instead of returning an uncertified model.

Already-passive models short-circuit: the returned model holds bitwise the
same residues and the certificate records zero iterations and zero
perturbation.  Everything here is deterministic, which is what lets sharded
and served runs merge certificates bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.options import canonical_token
from repro.vectorfitting.passivity import (
    immittance_margins,
    scattering_margins,
)
from repro.vectorfitting.rational import PoleResidueModel

__all__ = [
    "PassivitySpec",
    "PassivityCertificate",
    "EnforcementFailed",
    "PASSIVITY_METRIC_KEYS",
    "as_pole_residue",
    "passivity_margins",
    "refine_violation_bands",
    "enforce_passivity",
    "passivity_metrics",
]

#: The certificate columns :func:`passivity_metrics` produces, in export
#: order (all floats, so they ship through the shard / wire hex encoding).
PASSIVITY_METRIC_KEYS = (
    "worst_margin",
    "perturbation_norm",
    "error_delta",
    "iterations",
    "n_frequencies",
    "f_min_hz",
    "f_max_hz",
)

#: Relative tolerance used when pairing complex-conjugate poles (mirrors
#: :mod:`repro.vectorfitting.rational`).
_PAIR_TOLERANCE = 1e-8

#: Largest margin correction requested in one perturbation round.  The
#: update is first-order in the residues, so a deep violation is walked to
#: the boundary over several rounds instead of extrapolated in one unstable
#: jump.
_MAX_MARGIN_STEP = 0.25

#: Largest relative residue change per round (trust region of the
#: linearization); a larger least-squares step is scaled back onto it.
_MAX_RELATIVE_STEP = 0.5

#: Absolute floor of the fit-error growth budget, per unit of
#: ``max_error_growth``.  The aggregate error metric is a dimensionless RMS
#: of relative errors, so a model that interpolates its samples *exactly*
#: (original error ``0.0``) would otherwise have a zero budget and every
#: repair -- however small -- would fail the gate.  With the floor, the
#: budget is ``original * (1 + g) + g * 0.02``: a strict no-growth gate at
#: ``g = 0``, and ~1% absolute relative-error allowance at the default
#: ``g = 0.5``.
_ERROR_GROWTH_FLOOR = 0.02

#: Relative singular-value cutoff of the per-round least-squares solve.
#: The constraint matrix is rank-deficient at a clustered violation band
#: (many nearby frequencies, few residue parameters); without a spectral
#: filter the min-norm solution rides near-null directions that barely
#: move the margins to first order yet destroy them at second order, so
#: the iteration diverges.  Truncating at 1e-2 of the largest singular
#: value keeps the step inside the well-conditioned sensitivity subspace.
_LSTSQ_RCOND = 1e-2


class EnforcementFailed(RuntimeError):
    """Passivity enforcement could not produce a certified model.

    Raised -- never swallowed -- when the iteration budget is exhausted with
    violations remaining, when the feed-through itself is non-passive (a
    residue update cannot fix the behaviour at infinite frequency), or when
    the repaired model's fit error grew beyond the spec's budget.
    """


@dataclass(frozen=True)
class PassivitySpec:
    """Configuration of one passivity-enforcement run (JSON-safe, fingerprintable).

    Attributes
    ----------
    representation:
        ``"S"`` (scattering, unit-disc condition) or ``"Z"`` / ``"Y"``
        (immittance, positive-real condition).
    n_check:
        Size of the base log-spaced check grid (DC is added on top).
    band_factor:
        The checked band extends from ``f_min_data / band_factor`` to
        ``f_max_data * band_factor`` -- violations often hide just outside
        the fitting band.
    slack:
        Enforcement target margin: violations are pushed to
        ``sigma_max <= 1 - slack`` (resp. ``lambda_min >= slack``), not just
        to the boundary.  The constraints hold exactly *at* the check
        frequencies; between them the margin ripples by roughly a tenth of
        the repaired violation depth, so the slack must dominate that
        ripple -- the ``1e-3`` default holds for violations up to a few
        percent, and deeper violations warrant a proportionally larger
        slack.
    tolerance:
        Check tolerance (the :func:`~repro.vectorfitting.passivity.
        passivity_violations` meaning): residual margins above ``-tolerance``
        count as passive.
    max_iterations:
        Budget of perturb-and-recheck rounds before :class:`EnforcementFailed`.
    refine_levels:
        Bisection-refinement depth around margin sign changes per sweep.
    holdout_oversample:
        The hold-out verification grid is this factor denser than the base
        check grid (it must stay denser than the enforcement sweep).
    max_error_growth:
        Maximum allowed *relative* growth of the model's aggregate fit error
        on the original samples; beyond it enforcement fails loudly.
    """

    representation: str = "S"
    n_check: int = 128
    band_factor: float = 2.0
    slack: float = 1e-3
    tolerance: float = 1e-8
    max_iterations: int = 12
    refine_levels: int = 3
    holdout_oversample: int = 4
    max_error_growth: float = 0.5

    def __post_init__(self):
        if self.representation not in ("S", "Z", "Y"):
            raise ValueError(f"representation must be 'S', 'Z' or 'Y', got {self.representation!r}")
        if int(self.n_check) != self.n_check or self.n_check < 2:
            raise ValueError(f"n_check must be an integer >= 2, got {self.n_check!r}")
        if not np.isfinite(self.band_factor) or self.band_factor < 1.0:
            raise ValueError(f"band_factor must be >= 1, got {self.band_factor!r}")
        if not np.isfinite(self.slack) or not 0.0 < self.slack < 1.0:
            raise ValueError(f"slack must lie in (0, 1), got {self.slack!r}")
        if not np.isfinite(self.tolerance) or self.tolerance < 0.0:
            raise ValueError(f"tolerance must be finite and >= 0, got {self.tolerance!r}")
        if int(self.max_iterations) != self.max_iterations or self.max_iterations < 1:
            raise ValueError(f"max_iterations must be an integer >= 1, got {self.max_iterations!r}")
        if int(self.refine_levels) != self.refine_levels or self.refine_levels < 0:
            raise ValueError(f"refine_levels must be an integer >= 0, got {self.refine_levels!r}")
        if int(self.holdout_oversample) != self.holdout_oversample or self.holdout_oversample < 2:
            raise ValueError(
                "holdout_oversample must be an integer >= 2 (the hold-out grid "
                f"must be denser than the check grid), got {self.holdout_oversample!r}"
            )
        if not np.isfinite(self.max_error_growth) or self.max_error_growth < 0.0:
            raise ValueError(
                f"max_error_growth must be finite and >= 0, got {self.max_error_growth!r}"
            )
        object.__setattr__(self, "n_check", int(self.n_check))
        object.__setattr__(self, "band_factor", float(self.band_factor))
        object.__setattr__(self, "slack", float(self.slack))
        object.__setattr__(self, "tolerance", float(self.tolerance))
        object.__setattr__(self, "max_iterations", int(self.max_iterations))
        object.__setattr__(self, "refine_levels", int(self.refine_levels))
        object.__setattr__(self, "holdout_oversample", int(self.holdout_oversample))
        object.__setattr__(self, "max_error_growth", float(self.max_error_growth))

    def to_dict(self) -> dict:
        """JSON-safe field dict (workload kwargs, wire protocol)."""
        return {
            "representation": self.representation,
            "n_check": self.n_check,
            "band_factor": self.band_factor,
            "slack": self.slack,
            "tolerance": self.tolerance,
            "max_iterations": self.max_iterations,
            "refine_levels": self.refine_levels,
            "holdout_oversample": self.holdout_oversample,
            "max_error_growth": self.max_error_growth,
        }

    def canonical_items(self) -> list[tuple[str, str]]:
        """Exact-token field encoding (the options convention), for fingerprints."""
        return [(key, canonical_token(value)) for key, value in sorted(self.to_dict().items())]


@dataclass(frozen=True)
class PassivityCertificate:
    """The verifiable outcome of one enforcement run.

    Attributes
    ----------
    representation:
        Which passivity condition was certified (``"S"``, ``"Z"``, ``"Y"``).
    f_min_hz, f_max_hz:
        The checked band (data band extended by the spec's ``band_factor``).
    n_frequencies:
        Total number of distinct frequencies the final model was verified at
        (refined enforcement sweep plus the denser hold-out sweep).
    worst_margin:
        Smallest residual passivity margin over all verified frequencies
        (``1 - sigma_max`` for scattering, ``lambda_min`` for immittance).
        A certified model keeps this above ``-tolerance``.
    perturbation_norm:
        Frobenius norm of the total residue update relative to the original
        residue norm (``0.0`` for an already-passive model).
    error_delta:
        Change of the model's aggregate error against the hold-out reference
        (against the fit data when no reference was supplied): enforced
        minus original.
    iterations:
        Number of perturbation rounds performed (``0`` = already passive).
    """

    representation: str
    f_min_hz: float
    f_max_hz: float
    n_frequencies: int
    worst_margin: float
    perturbation_norm: float
    error_delta: float
    iterations: int

    def to_metrics(self) -> dict[str, float]:
        """The certificate as the flat float columns batch records carry."""
        return {
            "worst_margin": float(self.worst_margin),
            "perturbation_norm": float(self.perturbation_norm),
            "error_delta": float(self.error_delta),
            "iterations": float(self.iterations),
            "n_frequencies": float(self.n_frequencies),
            "f_min_hz": float(self.f_min_hz),
            "f_max_hz": float(self.f_max_hz),
        }

    @classmethod
    def from_metrics(
        cls, representation: str, metrics: dict[str, float]
    ) -> "PassivityCertificate":
        """Rebuild a certificate from record columns (shard / wire round-trip)."""
        missing = [key for key in PASSIVITY_METRIC_KEYS if key not in metrics]
        if missing:
            raise ValueError(f"certificate metrics are missing {missing}")
        return cls(
            representation=representation,
            f_min_hz=float(metrics["f_min_hz"]),
            f_max_hz=float(metrics["f_max_hz"]),
            n_frequencies=int(metrics["n_frequencies"]),
            worst_margin=float(metrics["worst_margin"]),
            perturbation_norm=float(metrics["perturbation_norm"]),
            error_delta=float(metrics["error_delta"]),
            iterations=int(metrics["iterations"]),
        )


# --------------------------------------------------------------------------- #
# model conversion
# --------------------------------------------------------------------------- #
def as_pole_residue(model) -> PoleResidueModel:
    """Convert any fitted model into the pole-residue form enforcement edits.

    * :class:`~repro.vectorfitting.rational.PoleResidueModel` passes through,
    * objects carrying a ``.model`` pole-residue attribute (vector-fitting
      results) unwrap,
    * descriptor systems / macromodel results diagonalize through the
      generalized eigendecomposition of ``(A, E)``: with ``A V = E V diag(w)``
      the residues are ``R_n = (C v_n) ((E V)^-1 B)_n`` and the feed-through
      is ``D`` unchanged.

    Raises
    ------
    EnforcementFailed
        When the pencil has infinite eigenvalues (an improper model has a
        polynomial part no residue perturbation can repair) or is too
        defective to diagonalize.
    """
    if isinstance(model, PoleResidueModel):
        return model
    inner = getattr(model, "model", None)
    if isinstance(inner, PoleResidueModel):
        return inner
    system = getattr(model, "system", model)
    for attribute in ("E", "A", "B", "C", "D"):
        if not hasattr(system, attribute):
            raise TypeError(
                f"cannot convert {type(model).__name__} to pole-residue form: "
                "expected a PoleResidueModel or a descriptor system (E, A, B, C, D)"
            )
    import scipy.linalg

    E = np.asarray(system.E)
    A = np.asarray(system.A)
    B = np.asarray(system.B)
    C = np.asarray(system.C)
    D = np.asarray(system.D)
    poles, V = scipy.linalg.eig(A, E)
    if not np.all(np.isfinite(poles)):
        raise EnforcementFailed(
            "the model's (A, E) pencil has infinite eigenvalues: an improper "
            "(polynomial) part cannot be repaired by residue perturbation"
        )
    EV = E @ V
    try:
        G = np.linalg.solve(EV, B)
    except np.linalg.LinAlgError as exc:
        raise EnforcementFailed(
            f"the model's eigenvector basis is numerically singular ({exc}); "
            "cannot form the pole-residue representation"
        ) from exc
    CV = C @ V
    residues = CV.T[:, :, np.newaxis] * G[:, np.newaxis, :]
    return PoleResidueModel(poles, residues, d=D)


# --------------------------------------------------------------------------- #
# margins and adaptive refinement
# --------------------------------------------------------------------------- #
def passivity_margins(model, frequencies_hz, *, representation: str = "S") -> np.ndarray:
    """Signed distance to the passivity boundary at every sweep frequency.

    Positive values mean passive with margin: ``1 - sigma_max(S)`` for
    scattering, ``lambda_min(Herm H)`` for immittance.  One batched kernel
    call per sweep (:func:`~repro.vectorfitting.passivity.scattering_margins`
    / :func:`~repro.vectorfitting.passivity.immittance_margins`).
    """
    freqs = np.asarray(frequencies_hz, dtype=float).ravel()
    response = np.asarray(model.frequency_response(freqs))
    if representation == "S":
        return 1.0 - scattering_margins(response)
    if representation in ("Z", "Y"):
        return immittance_margins(response)
    raise ValueError(f"representation must be 'S', 'Z' or 'Y', got {representation!r}")


def _midpoints(freqs: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Midpoints of the flagged adjacent intervals (log-mid off DC)."""
    lo, hi = freqs[:-1][active], freqs[1:][active]
    positive = lo > 0.0
    mids = np.where(positive, np.sqrt(np.where(positive, lo, 1.0) * hi), 0.5 * (lo + hi))
    return mids


def refine_violation_bands(
    model,
    frequencies_hz,
    *,
    representation: str = "S",
    levels: int = 3,
    threshold: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Adaptively refine a check sweep around passivity-margin sign changes.

    Starting from the (sorted, deduplicated) input sweep, each level inserts
    the log-midpoint of every adjacent frequency pair whose margin crosses
    ``threshold`` or whose endpoints dip below it -- so narrow violation
    bands *between* grid nodes are localized instead of missed.  Returns the
    refined ``(frequencies, margins)`` with margins evaluated through the
    batched kernels; deterministic for fixed inputs.
    """
    freqs = np.unique(np.asarray(frequencies_hz, dtype=float).ravel())
    margins = passivity_margins(model, freqs, representation=representation)
    for _ in range(int(levels)):
        below = margins < threshold
        active = below[:-1] | below[1:]
        if not np.any(active):
            break
        mids = np.setdiff1d(_midpoints(freqs, active), freqs)
        if mids.size == 0:
            break
        new_margins = passivity_margins(model, mids, representation=representation)
        order = np.argsort(np.concatenate([freqs, mids]), kind="stable")
        freqs = np.concatenate([freqs, mids])[order]
        margins = np.concatenate([margins, new_margins])[order]
    return freqs, margins


# --------------------------------------------------------------------------- #
# the residue perturbation
# --------------------------------------------------------------------------- #
def _pole_groups(poles: np.ndarray) -> list[tuple[str, tuple[int, ...]]]:
    """Real / conjugate-pair / free-complex grouping of the pole set.

    Mirrors :meth:`PoleResidueModel._grouped_poles` but treats an unpaired
    complex pole as its own ``"complex"`` group (a complex-valued model is
    legal for enforcement; realness is preserved *per group*, so real models
    stay real).
    """
    used = np.zeros(poles.size, dtype=bool)
    groups: list[tuple[str, tuple[int, ...]]] = []
    for i, pole in enumerate(poles):
        if used[i]:
            continue
        if abs(pole.imag) <= _PAIR_TOLERANCE * max(abs(pole), 1.0):
            groups.append(("real", (i,)))
            used[i] = True
            continue
        partner = None
        for j in range(i + 1, poles.size):
            if used[j]:
                continue
            if np.isclose(poles[j], np.conj(pole), rtol=_PAIR_TOLERANCE, atol=_PAIR_TOLERANCE):
                partner = j
                break
        if partner is None:
            groups.append(("complex", (i,)))
            used[i] = True
        else:
            groups.append(("pair", (i, partner)))
            used[i] = used[partner] = True
    return groups


def _group_bases(groups, poles: np.ndarray, s: np.ndarray) -> list[list[np.ndarray]]:
    """Complex basis functions of every group's free parameters at points ``s``.

    Real group: ``[phi]`` (one real matrix parameter).  Conjugate pair with
    representative ``a``: ``[phi_a + phi_conj(a), j (phi_a - phi_conj(a))]``
    (the real and imaginary parts of the representative residue).  Free
    complex pole: ``[phi, j phi]``.
    """
    bases: list[list[np.ndarray]] = []
    for kind, idx in groups:
        phi = 1.0 / (s - poles[idx[0]])
        if kind == "real":
            bases.append([phi])
        elif kind == "pair":
            phi_conj = 1.0 / (s - poles[idx[1]])
            bases.append([phi + phi_conj, 1j * (phi - phi_conj)])
        else:
            bases.append([phi, 1j * phi])
    return bases


def _apply_update(residues: np.ndarray, groups, updates: list[list[np.ndarray]]):
    """Fold the solved real parameter matrices back into the residue stack."""
    for (kind, idx), group_updates in zip(groups, updates):
        if kind == "real":
            residues[idx[0]] += group_updates[0]
        elif kind == "pair":
            delta = group_updates[0] + 1j * group_updates[1]
            residues[idx[0]] += delta
            residues[idx[1]] += np.conj(delta)
        else:
            residues[idx[0]] += group_updates[0] + 1j * group_updates[1]


def _constraint_directions(
    model: PoleResidueModel, freqs: np.ndarray, representation: str, threshold: float
):
    """Every offending singular/eigen direction at the constraint sweep.

    One constraint per *(frequency, violating direction)* pair: constraining
    only the worst singular value would let the second one rise through the
    ceiling while the first is pushed down.  Returns
    ``(margins, left, right, freq_index)`` flattened over all directions with
    margin below ``threshold`` (the worst direction of each frequency is
    always included); a residue update moves each margin to first order by
    ``-Re(u^H dH v)`` (scattering) resp. ``+Re(q^H dH q)`` (immittance).
    """
    response = np.asarray(model.frequency_response(freqs))
    if representation == "S":
        u_all, sigma, vh_all = np.linalg.svd(response)
        margins_all = 1.0 - sigma  # ascending severity along axis 1
        left_all = np.swapaxes(u_all, 1, 2)
        right_all = np.conj(vh_all)
    else:
        hermitian = 0.5 * (response + np.conj(np.swapaxes(response, 1, 2)))
        eigvals, eigvecs = np.linalg.eigh(hermitian)
        margins_all = eigvals  # ascending: worst first
        left_all = np.swapaxes(eigvecs, 1, 2)
        right_all = left_all
    offending = margins_all < threshold
    offending[:, 0] = True  # each constraint frequency contributes its worst
    freq_index, direction = np.nonzero(offending)
    return (
        margins_all[freq_index, direction],
        left_all[freq_index, direction],
        right_all[freq_index, direction],
        freq_index,
    )


def _solve_perturbation(
    model: PoleResidueModel,
    constraint_freqs: np.ndarray,
    spec: PassivitySpec,
    data_freqs: np.ndarray,
) -> np.ndarray:
    """One least-squares-minimal residue update enforcing the slack targets.

    Builds one real linear constraint per violating frequency (first-order
    margin change through the worst singular/eigen pair) over the per-group
    real residue parameters, scales every column by its basis function's L2
    norm over the *data* frequencies (so minimum-norm in scaled coordinates
    approximately minimizes the fit perturbation), and solves with
    :func:`numpy.linalg.lstsq` (minimum-norm for the underdetermined case).
    Returns the updated residue stack.
    """
    poles = model.poles
    residues = model.residues
    p, m = residues.shape[1], residues.shape[2]
    groups = _pole_groups(poles)

    margins, left, right, freq_index = _constraint_directions(
        model, constraint_freqs, spec.representation, spec.slack
    )
    # target: margin -> slack at every offending direction, stepping at
    # most _MAX_MARGIN_STEP per round (first-order trust region)
    deficits = np.minimum(spec.slack - margins, _MAX_MARGIN_STEP)

    s_constraint = 1j * 2.0 * np.pi * constraint_freqs[freq_index]
    s_data = 1j * 2.0 * np.pi * np.asarray(data_freqs, dtype=float).ravel()
    bases = _group_bases(groups, poles, s_constraint)
    data_bases = _group_bases(groups, poles, s_data)

    # outer[v, a, b] = conj(u_a) * v_b at constraint frequency v: the
    # sensitivity of the active singular value / eigenvalue to dH[a, b]
    outer = np.conj(left)[:, :, np.newaxis] * right[:, np.newaxis, :]
    sign = -1.0 if spec.representation == "S" else 1.0

    columns: list[np.ndarray] = []
    scales: list[float] = []
    layout: list[tuple[int, int]] = []  # (group index, parameter index)
    for g, parameter_bases in enumerate(bases):
        for k, basis in enumerate(parameter_bases):
            # d margin_v / d X_ab = sign * Re(basis_v * conj(u_a) v_b)
            block = sign * np.real(basis[:, np.newaxis, np.newaxis] * outer)
            columns.append(block.reshape(s_constraint.size, p * m))
            norm = float(np.linalg.norm(data_bases[g][k]))
            scales.append(max(norm, float(np.finfo(float).tiny)))
            layout.append((g, k))
    matrix = np.concatenate(columns, axis=1)
    scale_row = np.repeat(np.asarray(scales), p * m)
    solution, *_ = np.linalg.lstsq(matrix / scale_row, deficits, rcond=_LSTSQ_RCOND)
    solution = solution / scale_row

    updates: list[list[np.ndarray]] = [
        [np.zeros((p, m)) for _ in parameter_bases] for parameter_bases in bases
    ]
    offset = 0
    for g, k in layout:
        updates[g][k] = solution[offset : offset + p * m].reshape(p, m)
        offset += p * m
    new_residues = residues.copy()
    _apply_update(new_residues, groups, updates)
    step = float(np.linalg.norm(new_residues - residues))
    scale_limit = _MAX_RELATIVE_STEP * max(
        float(np.linalg.norm(residues)), float(np.finfo(float).tiny)
    )
    if step > scale_limit:
        new_residues = residues + (new_residues - residues) * (scale_limit / step)
    return new_residues


# --------------------------------------------------------------------------- #
# the enforcement loop
# --------------------------------------------------------------------------- #
def _check_band(data_freqs: np.ndarray, spec: PassivitySpec) -> tuple[float, float]:
    positive = data_freqs[data_freqs > 0.0]
    if positive.size == 0:
        raise ValueError("enforcement needs at least one positive data frequency")
    return float(positive.min() / spec.band_factor), float(positive.max() * spec.band_factor)


#: Bandwidth offsets of the pole-anchored check points: every resonance gets
#: samples at ``f0 * (1 + k * zeta)`` for these ``k`` (``zeta`` = relative
#: half-bandwidth), so high-Q dips narrower than the log-grid spacing are
#: sampled instead of straddled.
_ANCHOR_OFFSETS = (-3.0, -2.0, -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 1.0, 2.0, 3.0)


def _pole_anchor_points(
    poles: np.ndarray, f_lo: float, f_hi: float, *, density: int = 1
) -> np.ndarray:
    """Deterministic check frequencies clustered around every pole resonance.

    A pole ``a`` shapes the margin most sharply near ``f0 = |a| / 2 pi`` over
    a relative bandwidth ``zeta ~ |Re a| / |a|``; a log-spaced grid coarser
    than ``zeta`` can straddle the whole dip, which is exactly the failure
    bisection refinement cannot recover from (no node ever sees the
    violation).  ``density`` subdivides the offsets for denser hold-out use.
    """
    anchors = []
    offsets = np.asarray(_ANCHOR_OFFSETS)
    if density > 1:
        fine = np.linspace(offsets.min(), offsets.max(), density * (offsets.size - 1) + 1)
        offsets = np.union1d(offsets, fine)
    for pole in np.asarray(poles, dtype=complex):
        magnitude = abs(pole)
        if magnitude == 0.0:
            continue
        f0 = magnitude / (2.0 * np.pi)
        zeta = min(1.0, abs(pole.real) / magnitude)
        anchors.append(f0 * (1.0 + offsets * zeta))
    if not anchors:
        return np.empty(0)
    points = np.concatenate(anchors)
    return np.unique(points[(points >= f_lo) & (points <= f_hi)])


def _check_grid(
    f_lo: float, f_hi: float, n_points: int, poles: np.ndarray = None, *, anchor_density: int = 1
) -> np.ndarray:
    """DC plus a log-spaced grid over the extended band, plus pole anchors."""
    grid = np.concatenate([[0.0], np.geomspace(f_lo, f_hi, int(n_points))])
    if poles is not None:
        grid = np.union1d(grid, _pole_anchor_points(poles, f_lo, f_hi, density=anchor_density))
    return grid


def _feedthrough_margin(model: PoleResidueModel, representation: str) -> float:
    """Margin of the model at infinite frequency (``H(j inf) = D``)."""
    d = np.atleast_2d(np.asarray(model.d, dtype=complex))
    if representation == "S":
        return 1.0 - float(np.linalg.norm(d, 2))
    hermitian = 0.5 * (d + d.conj().T)
    return float(np.min(np.linalg.eigvalsh(hermitian)))


def _aggregate_error(model, data, responses=None) -> float:
    from repro.metrics.errors import model_aggregate_error

    # the response cache only shares the model-independent reference norms
    # here: every perturbation round evaluates a *new* candidate model, so
    # memoizing those sweeps would only pollute the cache
    norms = responses.reference_norms(data) if responses is not None else None
    return float(model_aggregate_error(model, data, norms=norms))


def enforce_passivity(
    model,
    data,
    spec: PassivitySpec,
    *,
    reference=None,
    responses=None,
) -> tuple[PoleResidueModel, PassivityCertificate]:
    """Repair a fitted model into a certified passive one (or fail loudly).

    Parameters
    ----------
    model:
        The fitted model: a :class:`~repro.vectorfitting.rational.
        PoleResidueModel`, a vector-fitting result, or any descriptor-system
        carrier (:func:`as_pole_residue` handles the conversion).
    data:
        The original fit samples (:class:`~repro.data.dataset.FrequencyData`);
        the checked band derives from its frequency range and the fit-error
        growth budget is measured against it.
    spec:
        The :class:`PassivitySpec` to enforce.
    reference:
        Optional hold-out sweep; when given, the certificate's
        ``error_delta`` is measured against it instead of the fit data.
    responses:
        Optional response tally (see :class:`repro.cache.ResponseTally`);
        shares the reference-norm SVD sweeps of ``data``/``reference`` with
        other jobs in a batch.  Never changes any value.

    Returns
    -------
    (model, certificate):
        The certified passive model (bitwise-identical residues when the
        input already passed every check) and its
        :class:`PassivityCertificate`.

    Raises
    ------
    EnforcementFailed
        See the class docstring; an uncertified model is never returned.
    """
    prm = as_pole_residue(model)
    data_freqs = np.asarray(data.frequencies_hz, dtype=float).ravel()
    f_lo, f_hi = _check_band(data_freqs, spec)
    base = _check_grid(f_lo, f_hi, spec.n_check, prm.poles)
    n_holdout = spec.n_check * spec.holdout_oversample
    holdout = _check_grid(f_lo, f_hi, n_holdout, prm.poles, anchor_density=spec.holdout_oversample)

    error_data = data if reference is None else reference
    original_error = _aggregate_error(prm, error_data, responses)
    original_fit_error = _aggregate_error(prm, data, responses)
    original_norm = float(np.linalg.norm(prm.residues))

    def verified(candidate):
        """Refined-sweep + hold-out verification of one candidate model."""
        freqs, margins = refine_violation_bands(
            candidate,
            base,
            representation=spec.representation,
            levels=spec.refine_levels,
            threshold=spec.slack,
        )
        holdout_margins = passivity_margins(candidate, holdout, representation=spec.representation)
        sweep_clean = bool(np.all(margins >= -spec.tolerance))
        holdout_clean = bool(np.all(holdout_margins >= -spec.tolerance))
        worst = float(min(margins.min(), holdout_margins.min()))
        n_checked = np.union1d(freqs, holdout).size
        return sweep_clean and holdout_clean, freqs, margins, worst, n_checked

    ok, freqs, margins, worst, n_checked = verified(prm)
    if ok:
        certificate = PassivityCertificate(
            representation=spec.representation,
            f_min_hz=f_lo,
            f_max_hz=f_hi,
            n_frequencies=int(n_checked),
            worst_margin=worst,
            perturbation_norm=0.0,
            error_delta=0.0,
            iterations=0,
        )
        return prm, certificate

    if _feedthrough_margin(prm, spec.representation) < 0.0:
        raise EnforcementFailed(
            "the feed-through term D is itself non-passive "
            f"(margin {_feedthrough_margin(prm, spec.representation):.3e} at "
            "infinite frequency); residue perturbation cannot repair the "
            "asymptotic behaviour"
        )

    current = prm
    work_freqs, work_margins = freqs, margins
    for iteration in range(1, spec.max_iterations + 1):
        needs_fix = work_margins < spec.slack
        constraint_freqs = work_freqs[needs_fix]
        if constraint_freqs.size == 0:
            constraint_freqs = work_freqs[np.argsort(work_margins)[:1]]
        new_residues = _solve_perturbation(current, constraint_freqs, spec, data_freqs)
        current = PoleResidueModel(current.poles, new_residues, d=current.d)

        ok, work_freqs, work_margins, worst, n_checked = verified(current)
        if not ok:
            # fold clear hold-out violations into the next round's sweep
            holdout_margins = passivity_margins(
                current, holdout, representation=spec.representation
            )
            bad_mask = holdout_margins < -spec.tolerance
            bad = holdout[bad_mask]
            if bad.size:
                order = np.argsort(np.concatenate([work_freqs, bad]), kind="stable")
                merged = np.concatenate([work_freqs, bad])[order]
                merged_margins = np.concatenate([work_margins, holdout_margins[bad_mask]])[order]
                keep = np.concatenate([[True], np.diff(merged) > 0.0])
                work_freqs, work_margins = merged[keep], merged_margins[keep]
            continue

        enforced_fit_error = _aggregate_error(current, data, responses)
        growth_budget = (
            original_fit_error * (1.0 + spec.max_error_growth)
            + spec.max_error_growth * _ERROR_GROWTH_FLOOR
        )
        if enforced_fit_error > growth_budget + np.finfo(float).eps:
            raise EnforcementFailed(
                f"enforcement inflated the fit error from {original_fit_error:.3e} "
                f"to {enforced_fit_error:.3e}, beyond the allowed growth of "
                f"{spec.max_error_growth:.0%}; loosen max_error_growth or refit "
                "with more poles"
            )
        perturbation = float(
            np.linalg.norm(current.residues - prm.residues)
            / max(original_norm, float(np.finfo(float).tiny))
        )
        error_delta = _aggregate_error(current, error_data, responses) - original_error
        certificate = PassivityCertificate(
            representation=spec.representation,
            f_min_hz=f_lo,
            f_max_hz=f_hi,
            n_frequencies=int(n_checked),
            worst_margin=worst,
            perturbation_norm=perturbation,
            error_delta=float(error_delta),
            iterations=iteration,
        )
        return current, certificate

    raise EnforcementFailed(
        f"passivity violations remain after {spec.max_iterations} perturbation "
        f"round(s) (worst residual margin {float(work_margins.min()):.3e}); "
        "increase max_iterations, loosen slack, or refit with more poles"
    )


def passivity_metrics(
    model, data, spec: PassivitySpec, *, reference=None, responses=None
) -> dict[str, float]:
    """The certificate columns of one enforced model (the batch entry point).

    Runs :func:`enforce_passivity` and flattens the certificate into the
    :data:`PASSIVITY_METRIC_KEYS` dict carried on
    :class:`~repro.batch.jobs.JobRecord`.  An :class:`EnforcementFailed`
    propagates -- in a batch run it fails that job's record loudly instead of
    emitting an uncertified row.
    """
    _, certificate = enforce_passivity(model, data, spec, reference=reference, responses=responses)
    return certificate.to_metrics()
