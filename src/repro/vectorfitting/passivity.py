"""Sampling-based passivity assessment of fitted macromodels.

Macromodels of passive interconnect must themselves be passive if they are to
be used safely in a transient circuit simulation.  A full Hamiltonian-based
passivity test is outside the scope of this reproduction; instead we provide
the pragmatic sweep-based checks that practitioners run first:

* scattering representation: largest singular value of ``S(j w)`` must not
  exceed one,
* immittance (impedance/admittance) representation: the Hermitian part of
  ``H(j w)`` must be positive semi-definite.

Both checks evaluate a dense frequency sweep (optionally log-spaced well past
the fitting band) and report the violations found.

Following the repository's kernel-module convention the per-frequency checks
are vectorized: one stacked :func:`numpy.linalg.svd` (scattering) or
:func:`numpy.linalg.eigvalsh` (immittance) call over the whole sweep replaces
the Python loop, which is kept as :func:`passivity_violations_reference` --
the oracle the equivalence tests pin the batched path against.  The batched
margin primitives (:func:`scattering_margins`, :func:`immittance_margins`)
are the fast building block for a future batched passivity-enforcement stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PassivityViolation",
    "passivity_violations",
    "passivity_violations_reference",
    "scattering_margins",
    "immittance_margins",
    "is_passive_scattering",
    "is_passive_immittance",
]


@dataclass(frozen=True)
class PassivityViolation:
    """A frequency at which the passivity condition is violated.

    Attributes
    ----------
    frequency_hz:
        The offending frequency.
    metric:
        The violating quantity: the largest singular value (scattering) or the
        most negative eigenvalue of the Hermitian part (immittance).
    """

    frequency_hz: float
    metric: float


def _response(model, frequencies_hz: np.ndarray) -> np.ndarray:
    return np.asarray(model.frequency_response(frequencies_hz))


def _validated_sweep(frequencies_hz, tolerance: float) -> np.ndarray:
    """Shared input validation of the passivity checks (both code paths).

    An empty sweep would make every ``is_passive_*`` helper return ``True``
    without checking anything -- a vacuous pass that could certify an
    unchecked model -- and a NaN tolerance makes every violation comparison
    ``False`` with the same silent effect.  Both are caller bugs, so both
    raise instead of passing.
    """
    freqs = np.asarray(frequencies_hz, dtype=float).ravel()
    if freqs.size == 0:
        raise ValueError(
            "passivity check got an empty frequency sweep: an empty sweep "
            "verifies nothing and would report a vacuous pass"
        )
    if not np.isfinite(tolerance) or tolerance < 0.0:
        raise ValueError(
            f"tolerance must be finite and >= 0, got {tolerance!r} "
            "(a NaN tolerance silently passes every frequency)"
        )
    return freqs


def scattering_margins(response: np.ndarray) -> np.ndarray:
    """Largest singular value of every matrix of a stacked sweep.

    One batched (gufunc) SVD over the ``(k, p, m)`` stack -- the per-slice
    LAPACK factorizations are identical to the ones the per-frequency loop
    runs one by one, so the values match the reference loop's bitwise.
    Passivity of scattering data requires every entry to stay ``<= 1``.
    """
    stack = np.asarray(response, dtype=complex)
    if stack.ndim != 3:
        raise ValueError(f"response must have shape (k, p, m), got {stack.shape}")
    if stack.shape[0] == 0:
        return np.empty(0)
    return np.linalg.svd(stack, compute_uv=False)[:, 0]


def immittance_margins(response: np.ndarray) -> np.ndarray:
    """Smallest eigenvalue of the Hermitian part of every matrix of a sweep.

    One batched :func:`numpy.linalg.eigvalsh` over the stacked Hermitian
    parts ``(H + H^*) / 2``.  Positive-real (passive immittance) data keeps
    every entry ``>= 0``.
    """
    stack = np.asarray(response, dtype=complex)
    if stack.ndim != 3:
        raise ValueError(f"response must have shape (k, p, m), got {stack.shape}")
    if stack.shape[1] != stack.shape[2]:
        raise ValueError(f"immittance matrices must be square, got shape {stack.shape[1:]}")
    if stack.shape[0] == 0:
        return np.empty(0)
    hermitian = 0.5 * (stack + np.conj(np.swapaxes(stack, 1, 2)))
    return np.linalg.eigvalsh(hermitian)[:, 0]


def passivity_violations(
    model,
    frequencies_hz,
    *,
    representation: str = "S",
    tolerance: float = 1e-8,
) -> list[PassivityViolation]:
    """List the frequencies at which the model violates passivity.

    The whole sweep is evaluated through the model's vectorized
    ``frequency_response`` and checked with one stacked SVD / eigenvalue
    call (:func:`scattering_margins` / :func:`immittance_margins`); the
    reported violations are identical to the per-frequency reference loop
    (:func:`passivity_violations_reference`).

    Parameters
    ----------
    model:
        Anything with a ``frequency_response(frequencies_hz)`` method
        (descriptor systems, pole-residue models, macromodel results).
    frequencies_hz:
        The sweep to check.
    representation:
        ``"S"`` for scattering data (unit-disc condition) or ``"Z"``/``"Y"``
        for immittance data (positive-real condition).
    tolerance:
        Violations smaller than this are ignored (numerical slack); must be
        finite and non-negative.

    Raises
    ------
    ValueError
        On an empty sweep (a vacuous pass is a caller bug, not a result) or
        a non-finite / negative tolerance.
    """
    freqs = _validated_sweep(frequencies_hz, tolerance)
    response = _response(model, freqs)
    if representation == "S":
        margins = scattering_margins(response)
        offending = margins > 1.0 + tolerance
    elif representation in ("Z", "Y"):
        margins = immittance_margins(response)
        offending = margins < -tolerance
    else:
        raise ValueError(f"representation must be 'S', 'Z' or 'Y', got {representation!r}")
    return [
        PassivityViolation(float(f), float(metric))
        for f, metric in zip(freqs[offending], margins[offending])
    ]


def passivity_violations_reference(
    model,
    frequencies_hz,
    *,
    representation: str = "S",
    tolerance: float = 1e-8,
) -> list[PassivityViolation]:
    """Per-frequency reference loop of :func:`passivity_violations`.

    Kept (and exported) as the oracle the vectorized path is measured
    against, per the kernel-module convention -- including the input
    validation: empty sweeps and non-finite / negative tolerances raise
    here exactly as they do on the batched path.
    """
    freqs = _validated_sweep(frequencies_hz, tolerance)
    response = _response(model, freqs)
    violations: list[PassivityViolation] = []
    if representation == "S":
        for f, matrix in zip(freqs, response):
            sigma_max = float(np.linalg.norm(matrix, 2))
            if sigma_max > 1.0 + tolerance:
                violations.append(PassivityViolation(float(f), sigma_max))
    elif representation in ("Z", "Y"):
        for f, matrix in zip(freqs, response):
            herm = 0.5 * (matrix + matrix.conj().T)
            min_eig = float(np.min(np.linalg.eigvalsh(herm)))
            if min_eig < -tolerance:
                violations.append(PassivityViolation(float(f), min_eig))
    else:
        raise ValueError(f"representation must be 'S', 'Z' or 'Y', got {representation!r}")
    return violations


def is_passive_scattering(model, frequencies_hz, *, tolerance: float = 1e-8) -> bool:
    """True when ``sigma_max(S(j w)) <= 1`` at every checked frequency."""
    return not passivity_violations(model, frequencies_hz, representation="S", tolerance=tolerance)


def is_passive_immittance(model, frequencies_hz, *, tolerance: float = 1e-8) -> bool:
    """True when the Hermitian part of ``H(j w)`` is PSD at every checked frequency."""
    return not passivity_violations(model, frequencies_hz, representation="Z", tolerance=tolerance)
