"""Sampling-based passivity assessment of fitted macromodels.

Macromodels of passive interconnect must themselves be passive if they are to
be used safely in a transient circuit simulation.  A full Hamiltonian-based
passivity test is outside the scope of this reproduction; instead we provide
the pragmatic sweep-based checks that practitioners run first:

* scattering representation: largest singular value of ``S(j w)`` must not
  exceed one,
* immittance (impedance/admittance) representation: the Hermitian part of
  ``H(j w)`` must be positive semi-definite.

Both checks evaluate a dense frequency sweep (optionally log-spaced well past
the fitting band) and report the violations found.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PassivityViolation", "passivity_violations", "is_passive_scattering", "is_passive_immittance"]


@dataclass(frozen=True)
class PassivityViolation:
    """A frequency at which the passivity condition is violated.

    Attributes
    ----------
    frequency_hz:
        The offending frequency.
    metric:
        The violating quantity: the largest singular value (scattering) or the
        most negative eigenvalue of the Hermitian part (immittance).
    """

    frequency_hz: float
    metric: float


def _response(model, frequencies_hz: np.ndarray) -> np.ndarray:
    return np.asarray(model.frequency_response(frequencies_hz))


def passivity_violations(
    model,
    frequencies_hz,
    *,
    representation: str = "S",
    tolerance: float = 1e-8,
) -> list[PassivityViolation]:
    """List the frequencies at which the model violates passivity.

    Parameters
    ----------
    model:
        Anything with a ``frequency_response(frequencies_hz)`` method
        (descriptor systems, pole-residue models, macromodel results).
    frequencies_hz:
        The sweep to check.
    representation:
        ``"S"`` for scattering data (unit-disc condition) or ``"Z"``/``"Y"``
        for immittance data (positive-real condition).
    tolerance:
        Violations smaller than this are ignored (numerical slack).
    """
    freqs = np.asarray(frequencies_hz, dtype=float).ravel()
    response = _response(model, freqs)
    violations: list[PassivityViolation] = []
    if representation == "S":
        for f, matrix in zip(freqs, response):
            sigma_max = float(np.linalg.norm(matrix, 2))
            if sigma_max > 1.0 + tolerance:
                violations.append(PassivityViolation(float(f), sigma_max))
    elif representation in ("Z", "Y"):
        for f, matrix in zip(freqs, response):
            herm = 0.5 * (matrix + matrix.conj().T)
            min_eig = float(np.min(np.linalg.eigvalsh(herm)))
            if min_eig < -tolerance:
                violations.append(PassivityViolation(float(f), min_eig))
    else:
        raise ValueError(f"representation must be 'S', 'Z' or 'Y', got {representation!r}")
    return violations


def is_passive_scattering(model, frequencies_hz, *, tolerance: float = 1e-8) -> bool:
    """True when ``sigma_max(S(j w)) <= 1`` at every checked frequency."""
    return not passivity_violations(model, frequencies_hz, representation="S", tolerance=tolerance)


def is_passive_immittance(model, frequencies_hz, *, tolerance: float = 1e-8) -> bool:
    """True when the Hermitian part of ``H(j w)`` is PSD at every checked frequency."""
    return not passivity_violations(model, frequencies_hz, representation="Z", tolerance=tolerance)
