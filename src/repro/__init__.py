"""MFTI reproduction: matrix-format tangential interpolation for multi-port macromodeling.

This package is a from-scratch Python reproduction of

    Y. Wang, C.-U. Lei, G. K. H. Pang, N. Wong,
    "MFTI: Matrix-Format Tangential Interpolation for Modeling Multi-Port
    Systems", DAC 2010, pp. 683-686.

Top-level layout
----------------
``repro.core``
    The paper's contribution: matrix-format tangential data, block Loewner
    matrices, the real transform, SVD realization, Algorithm 1 (:func:`mfti`),
    Algorithm 2 (:func:`recursive_mfti`) and the VFTI baseline (:func:`vfti`).
``repro.vectorfitting``
    The Vector Fitting baseline used in the paper's Table 1.
``repro.systems``
    Descriptor-system substrate: model classes, analysis, random benchmark
    systems, network-parameter conversions, balanced truncation, simulation.
``repro.circuits``
    Circuit substrate: netlists, MNA assembly, RLC/transmission-line/PDN
    benchmark networks.
``repro.data``
    Frequency grids, samplers, noise models, Touchstone I/O and the
    :class:`~repro.data.dataset.FrequencyData` container.
``repro.metrics``
    The paper's error metrics and model validation.
``repro.batch``
    Batch macromodeling engine: declarative fit jobs run through serial /
    thread / process executors with per-job error capture and JSON reports.
``repro.cache``
    Content-addressed fit cache: dataset/options fingerprints, memory and
    disk stores, transparent replay through ``run_fit`` and the batch engine.
``repro.experiments``
    Drivers that regenerate every figure and table of the paper.
``repro.serve``
    Asyncio fit service (in-flight dedupe, admission control), shard
    dispatcher and the synchronous :class:`Client` / :func:`submit` facade.
``repro.api``
    The stable public surface; what it exports (and this module re-exports)
    is the compatibility contract, everything else is internal.

The umbrella CLI is ``python -m repro {fit,batch,shard,serve}``.

Quickstart
----------
>>> from repro import mfti, sample_scattering, linear_frequencies
>>> from repro.systems import random_stable_system
>>> system = random_stable_system(order=40, n_ports=6, seed=7)
>>> data = sample_scattering(system, linear_frequencies(1e2, 1e5, 10))
>>> model = mfti(data)
>>> round(model.aggregate_error(data), 6) <= 1e-6
True
"""

from repro.api import (
    Client,
    JobRecord,
    merge_shard_results,
    plan_shards,
    submit,
)
from repro.batch import BatchEngine, BatchResult, FitJob
from repro.cache import DiskStore, FitCache, MemoryStore, dataset_fingerprint, fit_key
from repro.core import (
    MacromodelResult,
    MftiOptions,
    RecursiveOptions,
    VftiOptions,
    available_methods,
    mfti,
    minimal_sample_count,
    recursive_mfti,
    run_fit,
    vfti,
)
from repro.data import (
    FrequencyData,
    add_measurement_noise,
    clustered_frequencies,
    linear_frequencies,
    log_frequencies,
    read_touchstone,
    sample_scattering,
    sample_system,
    write_touchstone,
)
from repro.metrics import aggregate_error, relative_error_per_frequency, validate_model
from repro.systems import DescriptorSystem, StateSpace
from repro.vectorfitting import vector_fit

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "mfti",
    "recursive_mfti",
    "vfti",
    "vector_fit",
    "run_fit",
    "available_methods",
    "BatchEngine",
    "BatchResult",
    "FitJob",
    "JobRecord",
    "Client",
    "submit",
    "plan_shards",
    "merge_shard_results",
    "FitCache",
    "MemoryStore",
    "DiskStore",
    "dataset_fingerprint",
    "fit_key",
    "minimal_sample_count",
    "MacromodelResult",
    "MftiOptions",
    "VftiOptions",
    "RecursiveOptions",
    "FrequencyData",
    "linear_frequencies",
    "log_frequencies",
    "clustered_frequencies",
    "sample_system",
    "sample_scattering",
    "add_measurement_noise",
    "read_touchstone",
    "write_touchstone",
    "aggregate_error",
    "relative_error_per_frequency",
    "validate_model",
    "DescriptorSystem",
    "StateSpace",
]
