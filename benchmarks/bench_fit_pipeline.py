"""Fit-pipeline benchmark: batched assembly kernels vs the per-entry loops.

PR 3 vectorized the *evaluation* side; :mod:`repro.core.assembly` does the
same for the *fit* side.  This module measures both halves on the shared
PDN / transmission-line workloads:

* ``vf inner loop`` -- the pole-structured kernels executed on every
  vector-fitting relocation iteration (group walk, partial-fraction basis,
  relocation companion form, residue reconstruction): the looped reference
  implementations (``*_reference``, one Python step per pole group exactly
  like the pre-batched code) against the batched kernels operating on a
  :class:`~repro.core.assembly.PoleGrouping` built once per iteration.
  Acceptance floor: **>= 3x** per workload (reference ~5-7x), with bitwise
  identical outputs.

* ``vf projection`` -- the fast-VF per-entry LS projection, batched into
  two large GEMMs by :func:`~repro.core.assembly.vf_scaling_blocks`.  This
  stage is BLAS-bound (the per-entry GEMMs of the reference are already
  large), so the batching buys a single kernel call per iteration rather
  than flops; the floor is simply "not slower" and the agreement with the
  looped reference is checked to round-off.

* ``recursive assembly`` -- the per-iteration Loewner build of Algorithm 2:
  from-scratch :func:`~repro.core.loewner.build_loewner_pencil` on every
  grown selection against :class:`~repro.core.assembly.IncrementalLoewner`
  reusing the previous iteration's assembled entries.  The grown pencils
  must stay **bitwise identical** to the scratch builds, and the
  incremental path must show a measured per-iteration win (floor: 1.5x,
  reference ~2.5x).

A cold end-to-end ``vector_fit`` and ``recursive_mfti`` run of the PDN
workload is reported alongside for context.  Results land in
``BENCH_fit_pipeline.json``, gated by ``baselines/fit_pipeline.json`` in CI.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits.mna import netlist_to_descriptor
from repro.circuits.transmission_line import lumped_transmission_line
from repro.core.assembly import (
    IncrementalLoewner,
    PoleGrouping,
    partial_fraction_basis,
    partial_fraction_basis_reference,
    prepare_block_directions,
    relocation_matrices,
    relocation_matrices_reference,
    residues_from_coefficients,
    residues_from_coefficients_reference,
    vf_scaling_blocks,
    vf_scaling_blocks_reference,
)
from repro.core.loewner import build_loewner_pencil
from repro.core.options import RecursiveOptions
from repro.core.recursive import recursive_mfti
from repro.core.tangential import build_tangential_data
from repro.data import add_measurement_noise, linear_frequencies, sample_scattering
from repro.experiments.example2 import Example2Config, build_pdn_datasets
from repro.utils.linalg import realify
from repro.vectorfitting.fitting import vector_fit
from repro.vectorfitting.poles import initial_poles, sort_poles

#: Required batched-vs-looped speedup of the pole-structured VF kernels.
MIN_KERNEL_SPEEDUP = 3.0

#: The BLAS-bound projection stage must simply not get slower when batched;
#: the floor is far below the ~1x reference so shared-runner timing noise on
#: this wall-clock ratio cannot flake the build (a real regression -- e.g. an
#: accidental quadratic copy -- lands well under it).
MIN_PROJECTION_SPEEDUP = 0.5

#: Required total speedup of incremental vs scratch pencil assembly.
MIN_INCREMENTAL_SPEEDUP = 1.5

#: Timed repetitions (pole kernels are micro-scale, so they get many rounds).
KERNEL_ROUNDS = 200
PROJECTION_ROUNDS = 10

#: Pole counts per workload (PDN matches the Table-1 setting).
VF_POLES = {"pdn": 24, "tline": 16}


@pytest.fixture(scope="module")
def workloads():
    """The shared noisy PDN and transmission-line measurement sets."""
    cfg = Example2Config(n_samples=100, n_validation=120)
    pdn_data, _, _ = build_pdn_datasets(cfg)
    line = netlist_to_descriptor(lumped_transmission_line(0.1, 40))
    line_data = add_measurement_noise(
        sample_scattering(line, linear_frequencies(1e6, 5e9, 100),
                          label="transmission line"),
        relative_level=1e-6, seed=5)
    return {"pdn": pdn_data, "tline": line_data}


def _timed(fn, rounds=1):
    started = time.perf_counter()
    for _ in range(rounds):
        value = fn()
    return value, (time.perf_counter() - started) / rounds


@pytest.fixture(scope="module")
def recursive_assembly(workloads):
    """Incremental vs scratch pencil assembly over a recursive-style growth."""
    data = workloads["pdn"]
    opts = RecursiveOptions(block_size=2, samples_per_iteration=6, initial_samples=12)
    plan = prepare_block_directions(opts, data.n_samples, data.n_inputs, data.n_outputs)
    full = build_tangential_data(
        data,
        right_directions=plan.right_directions,
        left_directions=plan.left_directions,
        right_indices=plan.right_indices,
        left_indices=plan.left_indices,
    )
    n_groups = min(full.n_right_samples, full.n_left_samples)
    schedule = []
    count = opts.initial_samples
    while count <= n_groups:
        schedule.append(list(range(count)))
        count += opts.samples_per_iteration

    started = time.perf_counter()
    scratch_pencils = [build_loewner_pencil(full.subset(sel, sel)) for sel in schedule]
    scratch_seconds = time.perf_counter() - started

    assembler = IncrementalLoewner(full)
    started = time.perf_counter()
    grown_pencils = [assembler.update(sel, sel)[1] for sel in schedule]
    incremental_seconds = time.perf_counter() - started

    for scratch, grown in zip(scratch_pencils, grown_pencils):
        assert np.array_equal(grown.loewner, scratch.loewner), (
            "incremental pencil is not bitwise identical to the scratch build")
        assert np.array_equal(grown.shifted_loewner, scratch.shifted_loewner)

    rec, rec_seconds = _timed(lambda: recursive_mfti(
        data, block_size=2, samples_per_iteration=6, initial_samples=12,
        rank_method="tolerance", rank_tolerance=Example2Config().rank_tolerance))
    n_iters = len(schedule)
    return {
        "n_iterations": n_iters,
        "initial_groups": int(opts.initial_samples),
        "groups_per_iteration": int(opts.samples_per_iteration),
        "final_pencil_size": int(scratch_pencils[-1].k_left),
        "scratch_seconds": scratch_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": scratch_seconds / incremental_seconds,
        "per_iteration_scratch_ms": 1e3 * scratch_seconds / n_iters,
        "per_iteration_incremental_ms": 1e3 * incremental_seconds / n_iters,
        "min_speedup": MIN_INCREMENTAL_SPEEDUP,
        "end_to_end_seconds": rec_seconds,
        "end_to_end_order": int(rec.order),
        "end_to_end_refinements": len(rec.metadata["recursion"].iterations),
    }


def test_vf_inner_loop_speedup(benchmark, workloads, recursive_assembly,
                               reportable, json_reportable):
    """Batched pole-structured VF kernels beat the per-group loops >=3x."""
    rows = []
    results = {}
    rng = np.random.default_rng(0)
    for name, data in workloads.items():
        n_poles = VF_POLES[name]
        freqs = data.frequencies_hz
        s_points = 1j * 2.0 * np.pi * freqs
        p, m = data.n_outputs, data.n_inputs
        n_entries = p * m
        responses = data.samples.reshape(data.n_samples, n_entries)
        poles = sort_poles(initial_poles(n_poles, float(freqs[0]), float(freqs[-1])))
        coeffs = rng.normal(size=(n_poles + 1, n_entries))

        # --- pole-structured kernels: one grouping + batched ops per iteration
        def run_batched():
            grouping = PoleGrouping.from_poles(poles)
            phi = partial_fraction_basis(s_points, poles, grouping)
            a_mat, b_vec = relocation_matrices(poles, grouping)
            residues = residues_from_coefficients(coeffs, poles, grouping, (p, m))
            return phi, a_mat, b_vec, residues

        # --- the pre-batched cost model: every helper re-walks the pole groups
        def run_reference():
            phi = partial_fraction_basis_reference(s_points, poles)
            a_mat, b_vec = relocation_matrices_reference(poles)
            residues = residues_from_coefficients_reference(coeffs, poles, (p, m))
            return phi, a_mat, b_vec, residues

        batched_out, kernel_batched = _timed(run_batched, KERNEL_ROUNDS)
        reference_out, kernel_looped = _timed(run_reference, KERNEL_ROUNDS)
        for got, want in zip(batched_out, reference_out):
            assert np.array_equal(got, want), (
                f"{name}: batched pole kernels are not bitwise identical to the loops")

        # --- per-entry LS projection (BLAS-bound; batched = one kernel call)
        grouping = PoleGrouping.from_poles(poles)
        phi = partial_fraction_basis(s_points, poles, grouping)
        phi1_real = realify(np.hstack([phi, np.ones((s_points.size, 1))]))
        q1, _ = np.linalg.qr(phi1_real)
        (a_loop, b_loop), proj_looped = _timed(
            lambda: vf_scaling_blocks_reference(phi, responses, q1), PROJECTION_ROUNDS)
        (a_batch, b_batch), proj_batched = _timed(
            lambda: vf_scaling_blocks(phi, responses, q1), PROJECTION_ROUNDS)
        a_scale = max(float(np.max(np.abs(a_loop))), np.finfo(float).tiny)
        b_scale = max(float(np.max(np.abs(b_loop))), np.finfo(float).tiny)
        agreement = max(float(np.max(np.abs(a_batch - a_loop))) / a_scale,
                        float(np.max(np.abs(b_batch - b_loop))) / b_scale)
        assert agreement <= 1e-9, (
            f"{name}: batched projection drifted {agreement:.2e} from the looped reference")

        fit, fit_seconds = _timed(lambda: vector_fit(data, n_poles, n_iterations=5))
        kernel_speedup = kernel_looped / kernel_batched
        projection_speedup = proj_looped / proj_batched
        results[name] = {
            "n_entries": int(n_entries),
            "n_poles": int(n_poles),
            "n_samples": int(data.n_samples),
            "kernel_looped_us": 1e6 * kernel_looped,
            "kernel_batched_us": 1e6 * kernel_batched,
            "kernel_speedup": kernel_speedup,
            "projection_looped_ms": 1e3 * proj_looped,
            "projection_batched_ms": 1e3 * proj_batched,
            "projection_speedup": projection_speedup,
            "projection_agreement_rel": agreement,
            "cold_fit_seconds": fit_seconds,
            "cold_fit_iterations": int(fit.n_iterations),
        }
        rows.append(
            f"{name:6s} entries={n_entries:4d} poles={n_poles:3d}  "
            f"kernels {1e6 * kernel_looped:6.0f}us -> {1e6 * kernel_batched:6.0f}us "
            f"({kernel_speedup:4.1f}x)  projection {1e3 * proj_looped:7.2f}ms -> "
            f"{1e3 * proj_batched:7.2f}ms ({projection_speedup:4.2f}x)  "
            f"cold fit {fit_seconds:6.3f}s"
        )

    benchmark.pedantic(lambda: vector_fit(workloads["pdn"], VF_POLES["pdn"],
                                          n_iterations=3),
                       rounds=2, iterations=1)

    reportable("fit_pipeline_vf.txt", "\n".join(
        ["vector-fitting inner loop: batched kernels vs per-group/per-entry loops"]
        + rows))
    json_reportable("fit_pipeline", {
        "kernel_rounds": KERNEL_ROUNDS,
        "projection_rounds": PROJECTION_ROUNDS,
        "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
        "min_projection_speedup": MIN_PROJECTION_SPEEDUP,
        "vf_inner_loop": results,
        "recursive_assembly": recursive_assembly,
    })
    benchmark.extra_info.update({
        name: f"{entry['kernel_speedup']:.1f}x kernels"
        for name, entry in results.items()
    })

    for name, entry in results.items():
        assert entry["kernel_speedup"] >= MIN_KERNEL_SPEEDUP, (
            f"{name}: batched VF inner-loop kernels only "
            f"{entry['kernel_speedup']:.1f}x faster than the per-group loops "
            f"(required: {MIN_KERNEL_SPEEDUP:.0f}x)")
        assert entry["projection_speedup"] >= MIN_PROJECTION_SPEEDUP


def test_recursive_incremental_assembly_speedup(recursive_assembly, reportable):
    """Incremental pencil growth beats per-iteration scratch rebuilds."""
    entry = recursive_assembly
    reportable("fit_pipeline_recursive.txt", "\n".join([
        "recursive MFTI: incremental vs scratch pencil assembly",
        (f"iterations={entry['n_iterations']}  final pencil k={entry['final_pencil_size']}  "
         f"scratch {entry['per_iteration_scratch_ms']:.2f}ms/iter  "
         f"incremental {entry['per_iteration_incremental_ms']:.2f}ms/iter  "
         f"({entry['speedup']:.1f}x)"),
        (f"end-to-end recursive_mfti: {entry['end_to_end_seconds']:.3f}s, "
         f"order {entry['end_to_end_order']}, "
         f"{entry['end_to_end_refinements']} refinements"),
    ]))
    assert entry["speedup"] >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental assembly only {entry['speedup']:.2f}x faster than scratch "
        f"rebuilds (required: {MIN_INCREMENTAL_SPEEDUP:.1f}x)")
