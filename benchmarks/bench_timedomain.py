"""Time-domain benchmark: batched spectral pathway vs the integrator loop.

The spectral pathway (:mod:`repro.systems.spectral`) turns time-domain
evaluation of a whole model population into one batched ``np.fft.irfft``:
every model's transfer function is evaluated over the conjugate-symmetric
rfft grid through the shared sweep kernel, the spectra are stacked and the
entire stack is transformed at once.  The per-model alternative is the
trapezoidal integrator (:mod:`repro.systems.timedomain`): one implicit
solve per time step, per model, per input column.

This module measures both on a population of banded random systems (band
1e3 .. 1e5 Hz, so the time grid's Nyquist sits well above the dynamics --
the regime the spectral pathway is documented for):

* ``integrator`` -- per-model, per-input ``step_response`` loop,
* ``spectral``   -- a single ``batch_time_responses`` call for the whole
  population (impulse *and* step responses of every input/output pair).

The acceptance floor (enforced here and by the CI perf gate through
``benchmarks/baselines/timedomain.json``): the batched spectral pass is at
least **10x** faster than the integrator loop while agreeing with it within
the documented tolerance band (sup-normalized step difference below
``5e-2``; the residual is the integrator's own accumulated phase error, see
``tests/test_spectral.py``).  Results land in ``BENCH_timedomain.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.systems.random_systems import random_stable_system
from repro.systems.spectral import build_spectral_grid, batch_time_responses
from repro.systems.timedomain import step_response

#: Required batched-spectral speedup over the per-model integrator loop.
MIN_SPEEDUP = 10.0

#: Documented FFT-vs-integrator agreement band (see tests/test_spectral.py:
#: the residual is dominated by the integrator's per-step phase error).
STEP_AGREEMENT_BAND = 5e-2

#: Population of banded systems: dynamics inside 1e3 .. 1e5 Hz so the time
#: grid resolves every resonance and the periodization tail has decayed.
N_MODELS = 6
ORDER = 20
N_PORTS = 2
T_FINAL = 2e-3
N_POINTS = 8001
OVERSAMPLE = 4


def _population():
    return [
        random_stable_system(ORDER, N_PORTS, feedthrough=0.1,
                             freq_min_hz=1e3, freq_max_hz=1e5,
                             damping_min=0.1, seed=100 + index)
        for index in range(N_MODELS)
    ]


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_batched_spectral_beats_integrator_loop(benchmark, reportable,
                                                json_reportable):
    """One batched IFFT across the population >=10x the integrator loop."""
    models = _population()
    grid = build_spectral_grid(T_FINAL, N_POINTS, oversample=OVERSAMPLE)

    def integrator_loop():
        steps = np.empty((N_MODELS, N_POINTS, N_PORTS, N_PORTS))
        for i, model in enumerate(models):
            for j in range(N_PORTS):
                _, out = step_response(model, T_FINAL, N_POINTS, input_index=j)
                steps[i, :, :, j] = out
        return steps

    reference, loop_seconds = _timed(integrator_loop)
    (_, spectral_step), spectral_seconds = _timed(
        lambda: batch_time_responses(models, grid))

    # agreement inside the documented band, per model (sup over the grid,
    # normalized by the model's own step-response scale)
    agreements = []
    for i in range(N_MODELS):
        scale = np.max(np.abs(reference[i]))
        agreements.append(
            float(np.max(np.abs(spectral_step[i] - reference[i])) / scale))
    worst_agreement = max(agreements)
    assert worst_agreement < STEP_AGREEMENT_BAND, (
        f"spectral step drifted {worst_agreement:.2e} from the integrator "
        f"(documented band: {STEP_AGREEMENT_BAND:.0e})"
    )

    speedup = loop_seconds / spectral_seconds
    results = {
        "n_models": N_MODELS,
        "order": ORDER,
        "n_ports": N_PORTS,
        "n_points": N_POINTS,
        "oversample": OVERSAMPLE,
        "t_final": T_FINAL,
        "integrator_seconds": loop_seconds,
        "spectral_seconds": spectral_seconds,
        "speedup": speedup,
        "worst_step_agreement": worst_agreement,
    }
    reportable("timedomain.txt", "\n".join([
        "time domain: batched spectral pathway vs per-model integrator loop",
        f"population  {N_MODELS} models, order {ORDER}, {N_PORTS} ports, "
        f"{N_POINTS} samples to t={T_FINAL:g}s",
        f"integrator  {loop_seconds:7.3f}s   spectral {spectral_seconds:7.3f}s   "
        f"({speedup:5.1f}x)   agree {worst_agreement:.1e}",
    ]))
    json_reportable("timedomain", results)
    benchmark.extra_info["speedup"] = f"{speedup:.1f}x"
    benchmark.pedantic(lambda: batch_time_responses(models, grid),
                       rounds=3, iterations=1)

    assert speedup >= MIN_SPEEDUP, (
        f"batched spectral pass only {speedup:.1f}x faster than the "
        f"integrator loop (required: {MIN_SPEEDUP:.0f}x)"
    )
