"""Passivity benchmark: batched margin kernels + enforcement vs the loop.

The passivity-enforcement stage (:mod:`repro.vectorfitting.enforcement`)
leans entirely on the batched margin kernels of
:mod:`repro.vectorfitting.passivity`: every sweep of every perturbation
round is one stacked ``np.linalg.svd`` (scattering) or ``eigvalsh``
(immittance) call.  The per-frequency alternative is
:func:`~repro.vectorfitting.passivity.passivity_violations_reference` --
one small LAPACK factorization per frequency inside a Python loop, kept as
the equivalence oracle.

This module measures both on a population of seeded pole-residue models
with genuine (normalized) passivity violations over a dense log sweep:

* ``reference`` -- the per-frequency oracle loop over every model,
* ``batched``   -- :func:`~repro.vectorfitting.passivity.
  passivity_violations` (identical violation lists, one stacked kernel
  call per model),

and then walks one violating model through the full enforcement stage
(:func:`~repro.vectorfitting.enforcement.enforce_passivity`), verifying the
certificate against a sweep 10x denser than the enforcement grid.

The acceptance floors (enforced here and by the CI perf gate through
``benchmarks/baselines/passivity.json``): the batched margin sweep is at
least **3x** faster than the reference loop with identical violations, and
enforcement certifies the violating model (negative margin before, margin
above ``-tolerance`` after) within the iteration budget.  Results land in
``BENCH_passivity.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.dataset import FrequencyData
from repro.vectorfitting.enforcement import (
    PassivitySpec,
    enforce_passivity,
    passivity_margins,
)
from repro.vectorfitting.passivity import (
    passivity_violations,
    passivity_violations_reference,
)
from repro.vectorfitting.rational import PoleResidueModel

#: Required batched-margin speedup over the per-frequency reference loop.
MIN_SPEEDUP = 3.0

#: Agreement demanded between the two violation lists (relative, on the
#: reported metric; the stacked gufunc SVD and the per-matrix norm run the
#: same factorization up to reduction order).
METRIC_AGREEMENT = 1e-10

N_MODELS = 4
N_PAIRS = 10
N_PORTS = 4
N_FREQS = 4096
SWEEP = (1e5, 5e9)

#: Normalized worst singular value of every generated model: a few percent
#: above the passivity boundary, the regime enforcement is documented for.
TARGET_SIGMA = 1.05


def _violating_model(seed: int) -> PoleResidueModel:
    """A seeded stable pole-residue model normalized to sigma_max ~ 1.05."""
    rng = np.random.default_rng(seed)
    f0 = rng.uniform(1e6, 1e9, N_PAIRS)
    zeta = rng.uniform(0.02, 0.3, N_PAIRS)
    w0 = 2.0 * np.pi * f0
    half = -zeta * w0 + 1j * w0 * np.sqrt(1.0 - zeta**2)
    poles = np.concatenate([half, half.conj()])
    shape = (N_PAIRS, N_PORTS, N_PORTS)
    r_half = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    residues = np.concatenate([r_half, r_half.conj()]) * 1e8
    d = 0.2 * np.eye(N_PORTS)
    model = PoleResidueModel(poles, residues, d=d)
    probe = np.geomspace(*SWEEP, 2048)
    response = np.asarray(model.frequency_response(probe))
    sigma_max = float(np.linalg.svd(response, compute_uv=False)[:, 0].max())
    return PoleResidueModel(poles, residues * (TARGET_SIGMA / sigma_max), d=d)


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_batched_margins_beat_reference_loop(benchmark, reportable, json_reportable):
    """Stacked-SVD margin sweeps >=3x the per-frequency loop, then enforce."""
    models = [_violating_model(seed) for seed in range(N_MODELS)]
    freqs = np.geomspace(*SWEEP, N_FREQS)

    for model in models:  # warm the evaluation plans out of the timed section
        passivity_violations(model, freqs)

    reference_lists, loop_seconds = _timed(
        lambda: [passivity_violations_reference(m, freqs) for m in models]
    )
    batched_lists, batched_seconds = _timed(
        lambda: [passivity_violations(m, freqs) for m in models]
    )

    n_violations = 0
    for ref_list, fast_list in zip(reference_lists, batched_lists):
        assert len(ref_list) == len(fast_list), (
            f"batched sweep found {len(fast_list)} violations where the "
            f"reference loop found {len(ref_list)}"
        )
        n_violations += len(ref_list)
        for ref, fast in zip(ref_list, fast_list):
            assert ref.frequency_hz == fast.frequency_hz
            assert abs(ref.metric - fast.metric) <= METRIC_AGREEMENT * abs(ref.metric)
    assert n_violations > 0, "the benchmark population must actually violate"

    speedup = loop_seconds / batched_seconds

    # the full enforcement stage on one violating model, certified against a
    # sweep 10x denser than the enforcement grid
    model = models[0]
    data_freqs = np.geomspace(1e6, 1e9, 60)
    data = FrequencyData(data_freqs, np.asarray(model.frequency_response(data_freqs)), kind="S")
    spec = PassivitySpec(
        n_check=96, band_factor=2.0, max_iterations=30, max_error_growth=5.0, holdout_oversample=2
    )
    pre_margin = float(passivity_margins(model, np.geomspace(*SWEEP, 1024)).min())
    (enforced, certificate), enforce_seconds = _timed(lambda: enforce_passivity(model, data, spec))
    dense_freqs = np.geomspace(certificate.f_min_hz, certificate.f_max_hz, 10 * spec.n_check)
    dense = np.concatenate([[0.0], dense_freqs])
    residual = float(passivity_margins(enforced, dense, representation=spec.representation).min())
    assert residual >= -spec.tolerance, (
        f"enforced model still dips to {residual:.3e} on the 10x sweep"
    )

    results = {
        "n_models": N_MODELS,
        "n_ports": N_PORTS,
        "n_poles": 2 * N_PAIRS,
        "n_frequencies": N_FREQS,
        "n_violations": n_violations,
        "reference_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
        "pre_margin": pre_margin,
        "enforce_seconds": enforce_seconds,
        "enforce_iterations": certificate.iterations,
        "certificate_margin": certificate.worst_margin,
        "dense_residual_margin": residual,
        "perturbation_norm": certificate.perturbation_norm,
    }
    lines = [
        "passivity: batched margin kernels vs per-frequency reference loop",
        f"population  {N_MODELS} models, {N_PORTS} ports, {2 * N_PAIRS} poles, "
        f"{N_FREQS} frequencies, {n_violations} violations",
        f"reference   {loop_seconds:7.3f}s   batched {batched_seconds:7.3f}s   ({speedup:5.1f}x)",
        f"enforcement pre-margin {pre_margin:+.3e} -> residual {residual:+.3e} "
        f"in {certificate.iterations} round(s), {enforce_seconds:.3f}s",
    ]
    reportable("passivity.txt", "\n".join(lines))
    json_reportable("passivity", results)
    benchmark.extra_info["speedup"] = f"{speedup:.1f}x"
    benchmark.pedantic(
        lambda: [passivity_violations(m, freqs) for m in models],
        rounds=3,
        iterations=1,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched margin sweep only {speedup:.1f}x faster than the "
        f"per-frequency loop (required: {MIN_SPEEDUP:.0f}x)"
    )
