"""Figure 1 -- singular-value pattern of the VFTI and MFTI Loewner pencils.

Paper setting: 8 scattering matrices sampled from an order-150, 30-port
system.  The paper's observation is that the MFTI profiles (of ``L``, ``sL``
and ``x*L - sL``) show a sharp drop at the underlying order (150 / 180 / 180)
while the VFTI profiles show no usable drop.  The benchmark times the two
model builds and regenerates the singular-value series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mfti, vfti
from repro.experiments.example1 import Example1Config, singular_value_experiment
from repro.experiments.reporting import format_series


@pytest.fixture(scope="module")
def example1_data():
    config = Example1Config()
    return config, config.sample_data()


def test_figure1_mfti_pencil_build(benchmark, example1_data, reportable, json_reportable):
    """Time the MFTI pencil construction + realization on the 8-sample workload."""
    config, data = example1_data
    result = benchmark(lambda: mfti(data))
    figure = singular_value_experiment(config)
    series = {
        "mfti_loewner": figure.mfti_singular_values["loewner"],
        "mfti_shifted": figure.mfti_singular_values["shifted_loewner"],
        "mfti_pencil": figure.mfti_singular_values["pencil"],
    }
    index = np.arange(1, len(series["mfti_pencil"]) + 1)
    reportable("figure1_mfti.txt", format_series(
        index, series, x_label="index",
        title="Figure 1 (MFTI): singular values of L, sL, xL - sL"))
    benchmark.extra_info["detected_order"] = int(figure.mfti_detected_order)
    benchmark.extra_info["true_order_plus_rankD"] = int(figure.true_order_with_feedthrough)
    benchmark.extra_info["drop_ratio"] = float(figure.mfti_drop_ratio())
    json_reportable("figure1", {
        "mfti": {
            "order": int(result.order),
            "fit_seconds": float(result.elapsed_seconds),
            "detected_order": int(figure.mfti_detected_order),
            "drop_ratio": float(figure.mfti_drop_ratio()),
        },
        "vfti": {"drop_ratio": float(figure.vfti_drop_ratio())},
        "true_order_plus_rankD": int(figure.true_order_with_feedthrough),
    })
    assert figure.mfti_detected_order == figure.true_order_with_feedthrough
    assert result.order == figure.true_order_with_feedthrough


def test_figure1_vfti_pencil_build(benchmark, example1_data, reportable):
    """Time the VFTI build on the same 8 samples; no sharp singular-value drop appears."""
    config, data = example1_data
    benchmark(lambda: vfti(data))
    figure = singular_value_experiment(config)
    series = {
        "vfti_loewner": figure.vfti_singular_values["loewner"],
        "vfti_shifted": figure.vfti_singular_values["shifted_loewner"],
        "vfti_pencil": figure.vfti_singular_values["pencil"],
    }
    index = np.arange(1, len(series["vfti_pencil"]) + 1)
    reportable("figure1_vfti.txt", format_series(
        index, series, x_label="index",
        title="Figure 1 (VFTI): singular values of L, sL, xL - sL"))
    benchmark.extra_info["largest_drop_ratio"] = float(figure.vfti_drop_ratio())
    # the VFTI profile has no drop anywhere near the MFTI one
    assert figure.vfti_drop_ratio() < figure.mfti_drop_ratio() / 1e3
