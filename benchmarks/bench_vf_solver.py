"""Fast-VF solve-stage benchmark: compact Cholesky-QR reduction vs stacked lstsq.

Each vector-fitting iteration solves one tall least-squares system for the
shared scaling coefficients: ``E`` projected per-entry blocks of ``2N`` rows
stacked into an ``E*2N x n`` matrix.  The compact path
(:func:`repro.core.assembly._vf_compact_reduce`) reduces every block to its
small R-factor through one batched GEMM + batched Cholesky and solves a
``E(n+1) x n`` system instead -- the ``repro.core.assembly`` docstrings
explain why the R-stack shares the stacked system's singular values.

This module gates exactly that solve stage: both solvers are timed on
**precomputed** projected inputs (the fast-VF projection is shared by both
public paths and is excluded), at the paper's Table-1 port counts:

* ``pdn14``  -- 14 ports (196 matrix entries), the Table-1 PDN scale,
* ``ports20`` -- 20 ports (400 entries), the largest Table-1 system.

The acceptance floor (enforced here and by the CI perf gate through
``benchmarks/baselines/vf_solver.json``): the compact reduction is at least
**2x** faster than the stacked ``lstsq`` on each workload while agreeing
with it to ``1e-10`` relative.  Results land in ``BENCH_vf_solver.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends import get_backend
from repro.core.assembly import (
    VF_COMPACT_CONDITION_LIMIT,
    PoleGrouping,
    _vf_compact_reduce,
    _vf_scaling_projected,
    partial_fraction_basis,
    vf_scaling_blocks,
)
from repro.utils.linalg import realify

#: Required compact-vs-stacked speedup of the solve stage per workload.
MIN_SOLVE_SPEEDUP = 2.0

#: Required relative agreement between the compact and stacked solutions.
MAX_AGREEMENT_ERROR = 1e-10

#: Frequency samples per workload (the paper's sweeps use ~100).
N_SAMPLES = 100

#: Common poles per workload (Table-1 orders land at 10-30 poles).
N_POLES = 22

#: Timing repeats; the minimum is reported (robust to scheduler noise).
N_REPEATS = 3

WORKLOADS = {"pdn14": 14, "ports20": 20}


def _workload(n_ports: int, seed: int):
    """Projected fast-VF inputs for one synthetic ``n_ports``-port system."""
    rng = np.random.default_rng(seed)
    n_pairs = N_POLES // 2
    alpha = -0.5 - rng.random(n_pairs)
    beta = 1.0 + 29.0 * rng.random(n_pairs)
    poles = np.empty(N_POLES, dtype=complex)
    poles[0::2] = alpha + 1j * beta
    poles[1::2] = alpha - 1j * beta
    s_points = 1j * np.linspace(0.5, 30.0, N_SAMPLES)
    n_entries = n_ports * n_ports
    responses = rng.standard_normal((N_SAMPLES, n_entries)) + 1j * rng.standard_normal(
        (N_SAMPLES, n_entries)
    )

    grouping = PoleGrouping.from_poles(poles)
    phi = partial_fraction_basis(s_points, poles, grouping)
    phi1_real = realify(np.hstack([phi, np.ones((N_SAMPLES, 1))]))
    q1, _ = np.linalg.qr(phi1_real)
    return phi, responses, q1


def _min_seconds(fn) -> tuple:
    """(last value, best wall-clock over ``N_REPEATS`` runs)."""
    best = np.inf
    value = None
    for _ in range(N_REPEATS):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return value, best


def test_vf_solver_speedup(benchmark, reportable, json_reportable):
    """The compact solve stage beats the stacked lstsq >=2x on both workloads."""
    bk = get_backend("numpy")
    rows = []
    results = {}
    for name, n_ports in WORKLOADS.items():
        phi, responses, q1 = _workload(n_ports, seed=20260808 + n_ports)

        # precompute both solver inputs: the shared projection is not timed
        a_stacked, b_stacked = vf_scaling_blocks(phi, responses, q1)
        projected, rhs_projected = _vf_scaling_projected(phi, responses, q1, bk)
        blocks = np.ascontiguousarray(np.transpose(projected, (1, 0, 2)))
        rhs = np.ascontiguousarray(rhs_projected.T)

        reference, stacked_seconds = _min_seconds(
            lambda: np.linalg.lstsq(a_stacked, b_stacked, rcond=None)[0]
        )
        compact, compact_seconds = _min_seconds(
            lambda: _vf_compact_reduce(blocks, rhs, bk, VF_COMPACT_CONDITION_LIMIT)
        )

        agreement = float(
            np.linalg.norm(compact - reference) / np.linalg.norm(reference)
        )
        assert agreement <= MAX_AGREEMENT_ERROR, (
            f"{name}: compact solution drifted {agreement:.2e} from the "
            f"stacked lstsq reference"
        )

        speedup = stacked_seconds / compact_seconds
        results[name] = {
            "n_ports": n_ports,
            "n_entries": int(responses.shape[1]),
            "n_samples": N_SAMPLES,
            "n_poles": N_POLES,
            "stacked_rows": int(a_stacked.shape[0]),
            "stacked_seconds": stacked_seconds,
            "compact_seconds": compact_seconds,
            "speedup": speedup,
            "agreement_rel": agreement,
        }
        rows.append(
            f"{name:8s} E={responses.shape[1]:4d} rows={a_stacked.shape[0]:6d}  "
            f"lstsq {stacked_seconds:7.4f}s  compact {compact_seconds:7.4f}s "
            f"({speedup:4.1f}x)  agree {agreement:.1e}"
        )

    # the pytest-benchmark record: the compact stage on the larger workload
    phi, responses, q1 = _workload(WORKLOADS["ports20"], seed=20260808 + 20)
    projected, rhs_projected = _vf_scaling_projected(phi, responses, q1, bk)
    blocks = np.ascontiguousarray(np.transpose(projected, (1, 0, 2)))
    rhs = np.ascontiguousarray(rhs_projected.T)
    benchmark.pedantic(
        lambda: _vf_compact_reduce(blocks, rhs, bk, VF_COMPACT_CONDITION_LIMIT),
        rounds=3,
        iterations=1,
    )

    reportable(
        "vf_solver.txt",
        "\n".join(["fast-VF solve stage: compact reduction vs stacked lstsq"] + rows),
    )
    json_reportable(
        "vf_solver",
        {
            "min_solve_speedup": MIN_SOLVE_SPEEDUP,
            "max_agreement_error": MAX_AGREEMENT_ERROR,
            "workloads": results,
        },
    )
    benchmark.extra_info.update(
        {name: f"{entry['speedup']:.1f}x" for name, entry in results.items()}
    )

    for name, entry in results.items():
        assert entry["speedup"] >= MIN_SOLVE_SPEEDUP, (
            f"{name}: compact solve stage only {entry['speedup']:.2f}x faster "
            f"than the stacked lstsq (required: {MIN_SOLVE_SPEEDUP:.0f}x)"
        )
