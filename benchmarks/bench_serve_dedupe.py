"""Serve-dedupe smoke: K identical sweeps against one fit server ~ 1 cold fit.

The serving story of :mod:`repro.serve` -- "many users sweep the same board
at once" -- made measurable: a small port-sweep grid is fitted once locally
(the cold reference), then submitted to a live :class:`ThreadedServer` eight
times over, and in-flight dedupe must collapse the eight sweeps onto one set
of underlying fits.

Two phases, two different guarantees:

1. **Deterministic dedupe** -- one ``/submit`` carrying all eight copies of
   the grid.  Admission and task creation are synchronous, so exactly
   ``n_jobs`` computations start and every duplicate coalesces: the
   ``computed`` / ``coalesced`` counters are *exact* numbers, gated as such.
2. **Concurrent cost** -- eight client threads released by a barrier, each
   submitting the full grid.  Every served result must equal the local
   reference through :func:`comparable_json`, and the wall clock of all
   eight sweeps together is gated against the single cold fit
   (``overhead_ratio``) -- the ISSUE's "K sweeps cost ~ 1 cold fit plus
   overhead" acceptance line.

The service runs *cacheless* on purpose: records then carry ``cache: None``
exactly like the local reference (string-equal exports), and any dedupe
failure shows up as real recomputation in the counters and the wall clock
instead of hiding behind a cache hit.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.batch import BatchEngine, comparable_json
from repro.experiments.workloads import port_sweep_jobs
from repro.serve import Client, FitService, ThreadedServer

#: Reduced port-sweep grid (5 jobs: VFTI, MFTI t=1..3, MFTI full) -- large
#: enough that fit time dominates the HTTP round-trips, small enough for the
#: CI smoke budget.
GRID_KWARGS = dict(port_counts=[4], block_sizes=[1, 2, 3], order=24,
                   n_samples=30, n_validation=60)

#: Number of identical sweeps submitted against the server.
K_SWEEPS = 8


@pytest.fixture(scope="module")
def job_grid():
    return port_sweep_jobs(**GRID_KWARGS)


def test_serve_dedupe_k_sweeps_cost_one_fit(benchmark, job_grid, reportable,
                                            json_reportable):
    """Eight identical served sweeps: one set of fits, reference-equal results."""
    engine = BatchEngine(executor="thread", max_workers=4)
    cold_started = time.perf_counter()
    reference = BatchEngine().run(job_grid)
    cold_seconds = time.perf_counter() - cold_started
    assert reference.n_failed == 0, reference.failures
    reference_json = comparable_json(reference)

    n_jobs = len(job_grid)
    # sized so even a total dedupe failure hits the counters, never admission
    service = FitService(engine, max_pending=2 * K_SWEEPS * n_jobs)
    with ThreadedServer(service) as server:
        client = Client(server.host, server.port)

        # -- phase 1: deterministic dedupe (one batch of K copies) ----------
        single_batch = client.submit([job for _ in range(K_SWEEPS)
                                      for job in job_grid])
        assert single_batch.n_failed == 0, single_batch.failures
        phase1 = client.stats()["counters"]

        # -- phase 2: concurrent cost (K clients, barrier start, timed) -----
        barrier = threading.Barrier(K_SWEEPS)
        results: list = [None] * K_SWEEPS
        errors: list = []

        def sweep(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                results[slot] = Client(server.host, server.port).submit(job_grid)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def concurrent_sweeps() -> float:
            started = time.perf_counter()
            threads = [threading.Thread(target=sweep, args=(slot,))
                       for slot in range(K_SWEEPS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            return time.perf_counter() - started

        dedupe_wall_seconds = benchmark.pedantic(concurrent_sweeps,
                                                 rounds=1, iterations=1)
        assert not errors, errors
        final = client.stats()["counters"]

    json_equal = all(result is not None and comparable_json(result) == reference_json
                     for result in results)
    concurrent = {key: final[key] - phase1[key] for key in final}
    overhead_ratio = dedupe_wall_seconds / cold_seconds

    assert json_equal
    assert phase1["computed"] == n_jobs
    assert phase1["coalesced"] == (K_SWEEPS - 1) * n_jobs

    reportable("serve_dedupe.txt", "\n\n".join([
        reference.summary_table(title="serve dedupe: local cold reference"),
        single_batch.summary_table(
            title=f"serve dedupe: one batch of {K_SWEEPS} identical sweeps"),
        f"concurrent phase: {K_SWEEPS} clients, computed={concurrent['computed']}"
        f" coalesced={concurrent['coalesced']}"
        f" overhead_ratio={overhead_ratio:.3f}",
    ]))
    json_reportable("serve_dedupe", {
        "n_jobs": n_jobs,
        "k_sweeps": K_SWEEPS,
        "n_submitted": K_SWEEPS * n_jobs,
        "n_duplicate_jobs": (K_SWEEPS - 1) * n_jobs,
        "json_equal": int(json_equal),
        "n_failed": single_batch.n_failed + sum(
            result.n_failed for result in results if result is not None),
        "dedupe_computed": phase1["computed"],
        "dedupe_coalesced": phase1["coalesced"],
        "rejected": final["rejected"],
        "concurrent_computed": concurrent["computed"],
        "concurrent_coalesced": concurrent["coalesced"],
        "cold_fit_seconds": cold_seconds,
        "dedupe_wall_seconds": dedupe_wall_seconds,
        "overhead_ratio": overhead_ratio,
        "jobs": [record.to_dict() for record in single_batch.records],
    })
    benchmark.extra_info.update({
        "json_equal": json_equal,
        "dedupe_computed": phase1["computed"],
        "overhead_ratio": overhead_ratio,
    })
