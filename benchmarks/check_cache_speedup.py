"""CI perf-smoke gate: warm cache sweeps must actually be faster.

Reads a ``BENCH_fit_cache.json`` export (written by ``bench_fit_cache.py``),
diffs the warm vs cold wall-clock timings, and exits non-zero when the warm
sweep is not at least ``--min-speedup`` times faster (default 5x, the cache's
acceptance floor) or when any warm job missed the cache.

Usage::

    python benchmarks/check_cache_speedup.py benchmarks/results/BENCH_fit_cache.json
    python benchmarks/check_cache_speedup.py --min-speedup 3 path/to/BENCH_fit_cache.json
"""

from __future__ import annotations

import argparse
import json
import sys


def check(path: str, min_speedup: float) -> list[str]:
    """Every violated expectation in the export, as human-readable strings."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    problems = []
    cold = payload.get("cold_wall_seconds")
    warm = payload.get("warm_wall_seconds")
    if not isinstance(cold, (int, float)) or not isinstance(warm, (int, float)):
        return [f"{path}: missing cold/warm wall-clock timings"]
    if warm >= cold:
        problems.append(
            f"warm sweep ({warm:.3f}s) is not faster than cold ({cold:.3f}s)"
        )
    speedup = cold / warm if warm > 0 else float("inf")
    if speedup < min_speedup:
        problems.append(
            f"warm speedup {speedup:.2f}x below the {min_speedup:g}x floor "
            f"(cold {cold:.3f}s, warm {warm:.3f}s)"
        )
    n_jobs = payload.get("n_jobs", 0)
    if payload.get("warm_cache_hits") != n_jobs:
        problems.append(
            f"warm sweep hit the cache on {payload.get('warm_cache_hits')}/{n_jobs} jobs"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to BENCH_fit_cache.json")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required warm-vs-cold speedup factor (default: 5)")
    args = parser.parse_args(argv)
    problems = check(args.report, args.min_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    with open(args.report, encoding="utf-8") as handle:
        payload = json.load(handle)
    print(f"ok: warm sweep {payload['speedup_warm_vs_cold']:.1f}x faster than cold "
          f"({payload['warm_cache_hits']}/{payload['n_jobs']} cache hits)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
