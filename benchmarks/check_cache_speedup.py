"""Back-compat wrapper: cache-speedup gate via the generic perf-regression gate.

This script predates ``check_perf_regression.py`` and is kept as a thin CLI
shim so existing invocations keep working.  It applies the fit-cache rules
(warm sweep >= ``--min-speedup`` x faster than cold, zero warm misses, every
warm job a cache hit) to a single ``BENCH_fit_cache.json`` export through
the shared rule engine.  New gates belong in ``benchmarks/baselines/`` and
run through ``check_perf_regression.py`` directly.

Usage::

    python benchmarks/check_cache_speedup.py benchmarks/results/BENCH_fit_cache.json
    python benchmarks/check_cache_speedup.py --min-speedup 3 path/to/BENCH_fit_cache.json
"""

from __future__ import annotations

import argparse
import json
import sys

from check_perf_regression import check_export


def check(path: str, min_speedup: float) -> list[str]:
    """Every violated expectation in the export, as human-readable strings."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    baseline = {
        "benchmark": "fit_cache",
        "rules": {
            "speedup_warm_vs_cold": {"min": min_speedup},
            "warm_cache_misses": {"max": 0},
            "warm_cache_hits": {"equals_field": "n_jobs"},
        },
    }
    return [
        record.get("detail",
                   f"{record['field']} = {record.get('value')} violates "
                   f"{record['check']} {record.get('limit')}")
        for record in check_export(payload, baseline)
        if not record["ok"]
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to BENCH_fit_cache.json")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required warm-vs-cold speedup factor (default: 5)")
    args = parser.parse_args(argv)
    problems = check(args.report, args.min_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    with open(args.report, encoding="utf-8") as handle:
        payload = json.load(handle)
    print(f"ok: warm sweep {payload['speedup_warm_vs_cold']:.1f}x faster than cold "
          f"({payload['warm_cache_hits']}/{payload['n_jobs']} cache hits)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
