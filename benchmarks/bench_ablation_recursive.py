"""Ablation A3 -- recursive MFTI parameters (``k0`` and ``Th``).

Algorithm 2 adds ``k0`` samples per iteration and stops once the mean hold-out
tangential error drops below ``Th``.  This ablation sweeps both on the noisy
PDN workload and reports model size, cost and accuracy, making the
cost/accuracy trade-off the paper describes explicit.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine
from repro.experiments.ablations import recursive_parameter_ablation
from repro.experiments.example2 import Example2Config, build_pdn_datasets
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def pdn_workload():
    config = Example2Config()
    test1, _, validation = build_pdn_datasets(config)
    return config, test1, validation


def test_ablation_recursive_parameters(benchmark, pdn_workload, reportable, json_reportable):
    """Sweep k0 in {4, 8, 16} and Th in {5e-2, 1e-2, 2e-3} on the noisy PDN data."""
    config, data, validation = pdn_workload
    engine = BatchEngine.from_env()
    rows = benchmark.pedantic(
        lambda: recursive_parameter_ablation(
            data, validation,
            samples_per_iteration=(4, 8, 16),
            thresholds=(5e-2, 1e-2, 2e-3),
            block_size=2,
            rank_tolerance=config.rank_tolerance,
            engine=engine,
        ),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["setting", "order", "time (s)", "error vs ground truth", "iterations"],
        [[r.setting, r.order, r.time_seconds, r.error, r.extra] for r in rows],
        title="Ablation A3: recursive MFTI parameters (noisy PDN, uniform sampling)",
    )
    reportable("ablation_recursive.txt", table)
    json_reportable("ablation_recursive", {
        "executor": engine.executor,
        "rows": [r.to_dict() for r in rows],
    })
    benchmark.extra_info["errors"] = {r.setting: r.error for r in rows}
    # tightening the threshold (at fixed k0) never increases the hold-out-driven model error
    by_k0 = {}
    for r in rows:
        k0 = r.setting.split(",")[0]
        by_k0.setdefault(k0, []).append(r.error)
    for errors in by_k0.values():
        assert errors[-1] <= errors[0] * 1.5
