"""Batch engine -- throughput and backend-equivalence on a mixed job grid.

The grid mixes MFTI (two block sizes), VFTI and recursive MFTI over two
workload families: the noisy 14-port PDN of Example 2 and a lossy lumped
transmission line -- eight jobs in total.  The benchmark checks the engine's
two core guarantees:

* the ``process`` backend reproduces the ``serial`` reference **bitwise**
  (identical system matrices and errors, record for record), and
* with >= 2 workers on a multi-core machine the batch finishes faster than
  the serial reference.

Timings and per-job errors land in ``BENCH_batch_engine.json`` -- the CI
bench-smoke artifact.
"""

from __future__ import annotations

import os

import pytest

from repro.batch import BatchEngine, numerical_differences
from repro.experiments.workloads import mixed_batch_jobs


@pytest.fixture(scope="module")
def job_grid():
    """Eight mixed MFTI/VFTI jobs over the PDN and a transmission-line dataset.

    The grid is shared with ``examples/batch_sweep.py`` (same builder), at
    the builder's default sizes (140-sample PDN sweep, 40-section line) so
    each job carries enough work for the pooled backends' speedup to
    dominate their fork/pickle overhead.
    """
    return mixed_batch_jobs()


def test_batch_engine_backends(benchmark, job_grid, reportable, json_reportable):
    """Serial vs process on the 8-job grid: bitwise-equal, faster when multi-core."""
    serial = BatchEngine(executor="serial").run(job_grid)
    assert serial.n_failed == 0, serial.failures

    process_engine = BatchEngine(executor="process", max_workers=2, chunk_size=2)
    process = benchmark.pedantic(lambda: process_engine.run(job_grid),
                                 rounds=1, iterations=1)
    assert process.n_failed == 0, process.failures
    assert not numerical_differences(serial, process)

    thread = BatchEngine(executor="thread", max_workers=2).run(job_grid)
    assert not numerical_differences(serial, thread)

    reportable("batch_engine.txt", "\n\n".join([
        serial.summary_table(title="batch engine: serial reference"),
        process.summary_table(title="batch engine: process backend (2 workers)"),
    ]))
    json_reportable("batch_engine", {
        "n_jobs": serial.n_jobs,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": serial.wall_seconds,
        "process_wall_seconds": process.wall_seconds,
        "thread_wall_seconds": thread.wall_seconds,
        "speedup_process_vs_serial": serial.wall_seconds / process.wall_seconds,
        "jobs": [record.to_dict() for record in serial.records],
    })
    benchmark.extra_info.update({
        "serial_wall_seconds": serial.wall_seconds,
        "speedup_process_vs_serial": serial.wall_seconds / process.wall_seconds,
    })
    if (os.cpu_count() or 1) >= 2 and serial.wall_seconds > 0.5:
        # the grid is embarrassingly parallel; with 2 workers the process
        # backend must beat the serial wall clock on a multi-core machine
        # (skipped when the serial baseline is too short to measure reliably;
        # CI additionally pins BLAS to one thread to keep the race fair)
        assert process.wall_seconds < serial.wall_seconds
