"""Dataset-interning acceptance: shared datasets ship once, evaluate once.

The scenario the interning layer exists for, made measurable: a 24-job
option sweep over *one* board -- every job fits the same noisy measurement
against the same clean reference (same frequency grid).  Without interning
each transport boundary ships 48 dataset copies and each job re-runs the
reference SVD sweep; with it, two.

Three exact gates, one timing gate:

1. **Wire bytes** -- the version-2 ``/submit`` document (batch-level dataset
   table, jobs carry fingerprint refs) against the legacy version-1 inline
   shape, both JSON-encoded.  Gated at >= 10x reduction (structurally ~20x:
   48 inline dataset documents collapse to 2 table entries); the decoded
   batch must round-trip to fingerprint-identical jobs.
2. **Response-cache counters** -- the serial run's hit/miss tally must equal
   what the sharing structure predicts *exactly*: 2 unique datasets across
   48 norm consultations (``2 * (n_jobs - 1)`` hits) and one shared grid
   across 48 sweep consultations (``2 * n_jobs - n_unique_systems`` hits).
   Off-by-one here means a fingerprint unexpectedly collided or missed.
3. **Bitwise identity** -- ``comparable_json`` of the responses-on and
   responses-off runs must be string-equal: the cache may only ever return
   what the direct computation produces.
4. **Chunk shipping** -- :class:`~repro.cache.JobTable` (what the process
   executor pickles per chunk) against naively pickling the chunk with
   per-job dataset copies (what a decoded wire batch looks like): gated on
   byte reduction (>= 10x) and on not being slower to round-trip.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest

from repro.batch import BatchEngine, FitJob, comparable_json, job_fingerprint
from repro.cache import JobTable, dataset_fingerprint, system_fingerprint
from repro.core.options import MftiOptions
from repro.data import log_frequencies, sample_scattering
from repro.data.noise import add_measurement_noise
from repro.serve.protocol import decode_batch, encode_batch
from repro.systems.random_systems import random_stable_system

#: One shared board: a 4-port order-16 system sampled on one 64-point grid.
BOARD = dict(order=16, n_ports=4, feedthrough=0.1, seed=7)
GRID = dict(start=1e2, stop=1e6, n_samples=64)

#: 24 deterministic option variants (4 block sizes x (identity + 5 seeds)).
BLOCK_SIZES = (1, 2, 3, 4)
RANDOM_SEEDS = (0, 1, 2, 3, 4)


def shared_dataset_jobs() -> list[FitJob]:
    """The 24-job sweep: every job shares one dataset and one reference."""
    system = random_stable_system(**BOARD)
    freqs = log_frequencies(GRID["start"], GRID["stop"], GRID["n_samples"])
    clean = sample_scattering(system, freqs, label="clean reference")
    noisy = add_measurement_noise(clean, relative_level=1e-4, seed=11)
    jobs = []
    for block in BLOCK_SIZES:
        jobs.append(FitJob(noisy, method="mfti",
                           options=MftiOptions(block_size=block),
                           reference=clean, label=f"b{block}/identity",
                           tags={"block": block, "directions": "identity"}))
        for seed in RANDOM_SEEDS:
            jobs.append(FitJob(noisy, method="mfti",
                               options=MftiOptions(block_size=block,
                                                   direction_kind="random",
                                                   direction_seed=seed),
                               reference=clean, label=f"b{block}/s{seed}",
                               tags={"block": block, "seed": seed}))
    return jobs


def distinct_copy_chunk(jobs: list[FitJob]) -> list[tuple]:
    """The chunk as cross-process transports see it: per-job dataset copies.

    Pickle memoizes *object-identical* datasets, so the honest baseline for
    the chunk codec is a chunk whose jobs hold equal-but-distinct copies --
    exactly what decoding a legacy wire batch produces.
    """
    import numpy as np

    return [
        (index, FitJob(
            job.data.with_samples(np.array(job.data.samples, copy=True)),
            method=job.method, options=job.options, label=job.label,
            tags=job.tags,
            reference=job.reference.with_samples(
                np.array(job.reference.samples, copy=True)),
        ))
        for index, job in enumerate(jobs)
    ]


def round_trip_seconds(ship, rounds: int = 5) -> float:
    """Best-of-N wall time of one ship() round trip (pack/dumps/loads/unpack)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        ship()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def job_grid():
    return shared_dataset_jobs()


def test_dataset_dedup_ships_once_evaluates_once(benchmark, job_grid,
                                                 reportable, json_reportable):
    """24 jobs, one dataset pair: 10x wire bytes, exact response counters."""
    n_jobs = len(job_grid)

    # -- wire bytes: version-2 dataset table vs. legacy inline ------------- #
    v2_document = encode_batch(job_grid)
    v1_document = encode_batch(job_grid, inline=True)
    v2_bytes = len(json.dumps(v2_document).encode())
    v1_bytes = len(json.dumps(v1_document).encode())
    wire_reduction = v1_bytes / v2_bytes
    fingerprints = [job_fingerprint(job) for job in job_grid]
    decoded_equal = (
        [job_fingerprint(job) for job in decode_batch(v2_document)] == fingerprints
        and [job_fingerprint(job) for job in decode_batch(v1_document)] == fingerprints
    )

    # -- response cache: serial run, counters predicted exactly ------------ #
    def serial_run():
        return BatchEngine().run(job_grid)

    result = benchmark.pedantic(serial_run, rounds=1, iterations=1)
    assert result.n_failed == 0, result.failures
    n_unique_datasets = len({dataset_fingerprint(data)
                             for job in job_grid
                             for data in (job.data, job.reference)})
    n_unique_systems = len({system_fingerprint(record.result.system)
                            for record in result.records})
    # per job: 2 norm + 2 sweep consultations (error_vs_data + _reference);
    # data and reference share one grid, so each fitted system sweeps once
    expected_norm_hits = 2 * n_jobs - n_unique_datasets
    expected_sweep_hits = 2 * n_jobs - n_unique_systems
    expected_hits = expected_norm_hits + expected_sweep_hits
    expected_misses = n_unique_datasets + n_unique_systems

    # -- bitwise identity: the cache may not change a single byte ---------- #
    plain = BatchEngine(response_cache=False).run(job_grid)
    json_equal = comparable_json(result) == comparable_json(plain)

    # -- chunk shipping: JobTable vs. naive per-copy pickle ---------------- #
    chunk = distinct_copy_chunk(job_grid)
    packed_bytes = JobTable.pack(chunk).payload_nbytes()
    naive_blob = pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
    naive_bytes = len(naive_blob)
    chunk_bytes_reduction = naive_bytes / packed_bytes

    def ship_packed():
        table = pickle.loads(pickle.dumps(JobTable.pack(chunk),
                                          protocol=pickle.HIGHEST_PROTOCOL))
        return table.unpack()

    def ship_naive():
        return pickle.loads(pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL))

    packed_seconds = round_trip_seconds(ship_packed)
    naive_seconds = round_trip_seconds(ship_naive)
    chunk_ship_speedup = naive_seconds / packed_seconds

    assert decoded_equal and json_equal
    assert (result.n_response_hits, result.n_response_misses) == \
           (expected_hits, expected_misses)

    reportable("dataset_dedup.txt", "\n\n".join([
        result.summary_table(title=f"dataset dedup: {n_jobs} jobs, "
                                   f"{n_unique_datasets} unique datasets"),
        f"wire bytes: v1 inline={v1_bytes} v2 table={v2_bytes} "
        f"reduction={wire_reduction:.1f}x",
        f"chunk bytes: naive={naive_bytes} packed={packed_bytes} "
        f"reduction={chunk_bytes_reduction:.1f}x "
        f"ship speedup={chunk_ship_speedup:.1f}x",
        f"response cache: hits={result.n_response_hits} "
        f"misses={result.n_response_misses} (expected exactly "
        f"{expected_hits}/{expected_misses})",
    ]))
    json_reportable("dataset_dedup", {
        "n_jobs": n_jobs,
        "n_unique_datasets": n_unique_datasets,
        "n_unique_systems": n_unique_systems,
        "n_failed": result.n_failed + plain.n_failed,
        "decoded_equal": int(decoded_equal),
        "json_equal": int(json_equal),
        "v1_wire_bytes": v1_bytes,
        "v2_wire_bytes": v2_bytes,
        "wire_reduction": wire_reduction,
        "response_hits": result.n_response_hits,
        "response_misses": result.n_response_misses,
        "expected_response_hits": expected_hits,
        "expected_response_misses": expected_misses,
        "naive_chunk_bytes": naive_bytes,
        "packed_chunk_bytes": packed_bytes,
        "chunk_bytes_reduction": chunk_bytes_reduction,
        "packed_ship_seconds": packed_seconds,
        "naive_ship_seconds": naive_seconds,
        "chunk_ship_speedup": chunk_ship_speedup,
        "jobs": [record.to_dict() for record in result.records],
    })
    benchmark.extra_info.update({
        "wire_reduction": round(wire_reduction, 2),
        "chunk_bytes_reduction": round(chunk_bytes_reduction, 2),
        "response_hits": result.n_response_hits,
    })
