"""Figure 2 -- Bode magnitude (port 1 -> 1) of the original and recovered systems.

Paper setting: same 8-sample workload as Fig. 1; the MFTI model overlays the
original response while the VFTI model visibly deviates.  The benchmark times
the validation sweep of both recovered models and regenerates the three Bode
magnitude series.
"""

from __future__ import annotations

import pytest

from repro.experiments.example1 import Example1Config, bode_experiment
from repro.experiments.reporting import format_series


@pytest.fixture(scope="module")
def figure2():
    return bode_experiment(Example1Config(), n_validation=200)


def test_figure2_bode_comparison(benchmark, figure2, reportable, json_reportable):
    """Time re-evaluating both recovered models over the 200-point Bode grid."""
    def sweep():
        mfti_mag = figure2.mfti_result.frequency_response(figure2.frequencies_hz)
        vfti_mag = figure2.vfti_result.frequency_response(figure2.frequencies_hz)
        return mfti_mag, vfti_mag

    benchmark(sweep)
    reportable("figure2_bode.txt", format_series(
        figure2.frequencies_hz,
        {
            "original": figure2.original_magnitude,
            "mfti_model": figure2.mfti_magnitude,
            "vfti_model": figure2.vfti_magnitude,
        },
        x_label="frequency_hz",
        title="Figure 2: |S11| of original vs MFTI vs VFTI models",
    ))
    benchmark.extra_info["mfti_error"] = figure2.mfti_error
    benchmark.extra_info["vfti_error"] = figure2.vfti_error
    json_reportable("figure2", {
        "mfti": {"order": int(figure2.mfti_result.order),
                 "fit_seconds": float(figure2.mfti_result.elapsed_seconds),
                 "error": float(figure2.mfti_error)},
        "vfti": {"order": int(figure2.vfti_result.order),
                 "fit_seconds": float(figure2.vfti_result.elapsed_seconds),
                 "error": float(figure2.vfti_error)},
    })
    # shape of the paper's figure: MFTI follows the original, VFTI does not
    assert figure2.mfti_error < 1e-6
    assert figure2.vfti_error > 1e-2
