"""Table 1 -- interpolation of noisy data on the 14-port PDN workload.

Paper setting: 100 noisy scattering samples of a 14-port power-distribution
network, once uniformly distributed over the band (Test 1) and once
concentrated in the high-frequency band (Test 2, ill-conditioned).  Compared
algorithms: Vector Fitting (10 iterations, n = 140 and n = 280), VFTI, MFTI-1
with ``t_i = 2`` and ``t_i = 3``, and the recursive MFTI-2.  Columns: reduced
order, CPU time, relative error.

The measured INC-board data of the paper is proprietary; the workload here is
the synthetic PDN documented in ``DESIGN.md``.  The Loewner rows of both
tests run as one :class:`~repro.batch.engine.BatchEngine` job grid (set
``REPRO_BATCH_EXECUTOR=thread|process`` to run them pooled); the VF rows are
timed individually because vector fitting is not a Loewner front-end.  The
aggregated table (the reproduction of Table 1) is printed and written to
``benchmarks/results/table1.txt`` plus ``BENCH_table1.json`` once all rows
have run.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine
from repro.experiments.example2 import Example2Config, build_pdn_datasets, loewner_table1_jobs
from repro.experiments.reporting import format_table
from repro.metrics import aggregate_error
from repro.vectorfitting import vector_fit

_CONFIG = Example2Config()
_ROWS: list[list] = []
_BATCH_INFO: dict = {}


@pytest.fixture(scope="module")
def workloads():
    test1, test2, validation = build_pdn_datasets(_CONFIG)
    return {"test1": test1, "test2": test2, "validation": validation}


@pytest.mark.parametrize("test", ["test1", "test2"])
@pytest.mark.parametrize("n_poles", list(_CONFIG.vf_pole_counts))
def test_table1_vector_fitting(benchmark, workloads, test, n_poles):
    """Vector fitting rows of Table 1 (10 relocation iterations)."""
    data = workloads[test]
    result = benchmark.pedantic(
        lambda: vector_fit(data, n_poles, n_iterations=_CONFIG.vf_iterations),
        rounds=1, iterations=1,
    )
    err_meas = aggregate_error(result.frequency_response(data.frequencies_hz), data.samples)
    err_truth = aggregate_error(
        result.frequency_response(workloads["validation"].frequencies_hz),
        workloads["validation"].samples,
    )
    _ROWS.append([test, f"VF(10 it) n={n_poles}", result.n_poles,
                  result.elapsed_seconds, err_meas, err_truth])
    benchmark.extra_info.update({"order": result.n_poles, "err_measurement": err_meas,
                                 "err_truth": err_truth})


def test_table1_loewner_batch(benchmark, workloads):
    """All Loewner rows of Table 1 (VFTI, MFTI-1 t=2/3, MFTI-2) as one batch."""
    jobs = [
        job
        for test in ("test1", "test2")
        for job in loewner_table1_jobs(_CONFIG, test, workloads[test],
                                       workloads["validation"])
    ]
    engine = BatchEngine.from_env()
    batch = benchmark.pedantic(lambda: engine.run(jobs), rounds=1, iterations=1)
    assert batch.n_failed == 0, batch.failures
    for record in batch.records:
        _ROWS.append([record.tags["test"], record.label, record.order,
                      record.result.elapsed_seconds, record.error_vs_data,
                      record.error_vs_reference])
    _BATCH_INFO.update({
        "executor": batch.executor,
        "n_workers": batch.n_workers,
        "chunk_size": batch.chunk_size,
        "wall_seconds": batch.wall_seconds,
        "total_fit_seconds": batch.total_fit_seconds,
    })
    benchmark.extra_info.update(_BATCH_INFO)


def test_table1_report(benchmark, workloads, reportable, json_reportable):
    """Assemble and print the full Table-1 reproduction from the recorded rows."""
    assert _ROWS, "the algorithm benchmarks must run before the report"
    rows = sorted(_ROWS, key=lambda r: (r[0], r[1]))
    text = benchmark.pedantic(
        lambda: format_table(
            ["test", "algorithm", "reduced order", "time (s)",
             "rel. error vs measurement", "rel. error vs ground truth"],
            rows,
            title="Table 1 (reproduction): interpolation of noisy PDN data",
        ),
        rounds=1, iterations=1,
    )
    reportable("table1.txt", text)
    json_reportable("table1", {
        "batch": _BATCH_INFO,
        "rows": [
            {"test": r[0], "algorithm": r[1], "order": int(r[2]),
             "time_seconds": float(r[3]), "err_measurement": float(r[4]),
             "err_truth": float(r[5])}
            for r in rows
        ],
    })
    # shape assertions of the paper's table: MFTI beats VFTI on both tests,
    # and accuracy improves from t=2 to t=3
    by_key = {(r[0], r[1]): r for r in rows}
    for test in ("test1", "test2"):
        assert by_key[(test, "MFTI-1 t=3")][4] < by_key[(test, "VFTI")][4]
        assert by_key[(test, "MFTI-1 t=3")][4] <= by_key[(test, "MFTI-1 t=2")][4]
        assert by_key[(test, "MFTI-2 (recursive)")][4] < by_key[(test, "VFTI")][4]
