"""Table 1 -- interpolation of noisy data on the 14-port PDN workload.

Paper setting: 100 noisy scattering samples of a 14-port power-distribution
network, once uniformly distributed over the band (Test 1) and once
concentrated in the high-frequency band (Test 2, ill-conditioned).  Compared
algorithms: Vector Fitting (10 iterations, n = 140 and n = 280), VFTI, MFTI-1
with ``t_i = 2`` and ``t_i = 3``, and the recursive MFTI-2.  Columns: reduced
order, CPU time, relative error.

The measured INC-board data of the paper is proprietary; the workload here is
the synthetic PDN documented in ``DESIGN.md``.  Each benchmark times one
algorithm on one test; the aggregated table (the reproduction of Table 1) is
printed and written to ``benchmarks/results/table1.txt`` once all rows have
run.
"""

from __future__ import annotations

import pytest

from repro.core import mfti, recursive_mfti, vfti
from repro.core.options import MftiOptions, VftiOptions
from repro.experiments.example2 import Example2Config, build_pdn_datasets
from repro.experiments.reporting import format_table
from repro.metrics import aggregate_error
from repro.vectorfitting import vector_fit

_CONFIG = Example2Config()
_ROWS: list[list] = []


@pytest.fixture(scope="module")
def workloads():
    test1, test2, validation = build_pdn_datasets(_CONFIG)
    return {"test1": test1, "test2": test2, "validation": validation}


def _record(test, algorithm, order, elapsed, data, validation, response_fn):
    err_meas = aggregate_error(response_fn(data.frequencies_hz), data.samples)
    err_truth = aggregate_error(response_fn(validation.frequencies_hz), validation.samples)
    _ROWS.append([test, algorithm, order, elapsed, err_meas, err_truth])
    return err_meas, err_truth


def _loewner_options(block_size=None):
    if block_size is None:
        return VftiOptions(rank_method="tolerance", rank_tolerance=_CONFIG.rank_tolerance)
    return MftiOptions(block_size=block_size, rank_method="tolerance",
                       rank_tolerance=_CONFIG.rank_tolerance)


@pytest.mark.parametrize("test", ["test1", "test2"])
@pytest.mark.parametrize("n_poles", list(_CONFIG.vf_pole_counts))
def test_table1_vector_fitting(benchmark, workloads, test, n_poles):
    """Vector fitting rows of Table 1 (10 relocation iterations)."""
    data = workloads[test]
    result = benchmark.pedantic(
        lambda: vector_fit(data, n_poles, n_iterations=_CONFIG.vf_iterations),
        rounds=1, iterations=1,
    )
    err_meas, err_truth = _record(
        test, f"VF(10 it) n={n_poles}", result.n_poles, result.elapsed_seconds,
        data, workloads["validation"], result.frequency_response,
    )
    benchmark.extra_info.update({"order": result.n_poles, "err_measurement": err_meas,
                                 "err_truth": err_truth})


@pytest.mark.parametrize("test", ["test1", "test2"])
def test_table1_vfti(benchmark, workloads, test):
    """VFTI rows of Table 1."""
    data = workloads[test]
    result = benchmark(lambda: vfti(data, options=_loewner_options()))
    err_meas, err_truth = _record(
        test, "VFTI", result.order, result.elapsed_seconds,
        data, workloads["validation"], result.frequency_response,
    )
    benchmark.extra_info.update({"order": result.order, "err_measurement": err_meas,
                                 "err_truth": err_truth})


@pytest.mark.parametrize("test", ["test1", "test2"])
@pytest.mark.parametrize("block_size", list(_CONFIG.mfti_block_sizes))
def test_table1_mfti1(benchmark, workloads, test, block_size):
    """MFTI-1 rows of Table 1 (Algorithm 1 with t_i = 2 and t_i = 3)."""
    data = workloads[test]
    result = benchmark(lambda: mfti(data, options=_loewner_options(block_size)))
    err_meas, err_truth = _record(
        test, f"MFTI-1 t={block_size}", result.order, result.elapsed_seconds,
        data, workloads["validation"], result.frequency_response,
    )
    benchmark.extra_info.update({"order": result.order, "err_measurement": err_meas,
                                 "err_truth": err_truth})


@pytest.mark.parametrize("test", ["test1", "test2"])
def test_table1_mfti2_recursive(benchmark, workloads, test):
    """MFTI-2 (recursive Algorithm 2) rows of Table 1."""
    data = workloads[test]
    result = benchmark(lambda: recursive_mfti(data, options=_CONFIG.recursive))
    err_meas, err_truth = _record(
        test, "MFTI-2 (recursive)", result.order, result.elapsed_seconds,
        data, workloads["validation"], result.frequency_response,
    )
    benchmark.extra_info.update({"order": result.order, "err_measurement": err_meas,
                                 "err_truth": err_truth,
                                 "samples_used": result.n_samples_used})


def test_table1_report(benchmark, workloads, reportable):
    """Assemble and print the full Table-1 reproduction from the recorded rows."""
    assert _ROWS, "the algorithm benchmarks must run before the report"
    rows = sorted(_ROWS, key=lambda r: (r[0], r[1]))
    text = benchmark.pedantic(
        lambda: format_table(
            ["test", "algorithm", "reduced order", "time (s)",
             "rel. error vs measurement", "rel. error vs ground truth"],
            rows,
            title="Table 1 (reproduction): interpolation of noisy PDN data",
        ),
        rounds=1, iterations=1,
    )
    reportable("table1.txt", text)
    # shape assertions of the paper's table: MFTI beats VFTI on both tests,
    # and accuracy improves from t=2 to t=3
    by_key = {(r[0], r[1]): r for r in rows}
    for test in ("test1", "test2"):
        assert by_key[(test, "MFTI-1 t=3")][4] < by_key[(test, "VFTI")][4]
        assert by_key[(test, "MFTI-1 t=3")][4] <= by_key[(test, "MFTI-1 t=2")][4]
        assert by_key[(test, "MFTI-2 (recursive)")][4] < by_key[(test, "VFTI")][4]
