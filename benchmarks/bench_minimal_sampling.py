"""Theorem 3.5 -- minimal sampling requirement of MFTI vs VFTI.

The paper reports (Example 1, in-text) that VFTI needs roughly 30x the samples
of MFTI to recover the order-150, 30-port system, and that the singular values
of ``L`` / ``sL`` / ``xL - sL`` drop at 150 / 180 / 180 -- confirming the
empirical rule ``k_min = (order + rank(D)) / min(m, p)``.

The benchmark sweeps the sample count for both methods on a (smaller) known
system so the full sweep stays fast, times the sweep, and prints the measured
requirements next to the theorem's predictions.
"""

from __future__ import annotations

from repro.experiments.minimal_sampling import minimal_sampling_experiment
from repro.experiments.example1 import Example1Config, sample_requirement_sweep
from repro.experiments.reporting import format_table


def test_minimal_sampling_sweep(benchmark, reportable, json_reportable):
    """Sample-count sweep on an order-60, 10-port system (Theorem 3.5)."""
    result = benchmark.pedantic(
        lambda: minimal_sampling_experiment(order=60, n_ports=10, seed=11, tolerance=1e-6),
        rounds=1, iterations=1,
    )
    rows = [["MFTI (predicted)", result.predicted_mfti_samples, ""],
            ["MFTI (measured)", result.mfti_samples_needed, min(result.mfti_errors.values())],
            ["VFTI (predicted)", result.predicted_vfti_samples, ""],
            ["VFTI (measured)", result.vfti_samples_needed
             if result.vfti_samples_needed is not None else "> tried", min(result.vfti_errors.values())]]
    text = format_table(["method", "samples needed", "best error"], rows,
                        title="Theorem 3.5: minimal sampling (order 60, 10 ports)")
    text += (f"\nrank drops: L -> {result.loewner_rank}, sL/pencil -> {result.pencil_rank} "
             f"(order = {result.system_order}, order + rank(D) = "
             f"{result.system_order + result.feedthrough_rank})")
    reportable("minimal_sampling.txt", text)
    json_reportable("minimal_sampling", {
        "predicted_mfti_samples": int(result.predicted_mfti_samples),
        "measured_mfti_samples": (
            None if result.mfti_samples_needed is None else int(result.mfti_samples_needed)
        ),
        "predicted_vfti_samples": int(result.predicted_vfti_samples),
        "measured_vfti_samples": (
            None if result.vfti_samples_needed is None else int(result.vfti_samples_needed)
        ),
        "best_mfti_error": float(min(result.mfti_errors.values())),
        "best_vfti_error": float(min(result.vfti_errors.values())),
        "saving_factor": float(result.saving_factor),
    })
    benchmark.extra_info["saving_factor"] = result.saving_factor
    assert result.mfti_samples_needed is not None
    assert result.mfti_samples_needed <= result.predicted_mfti_samples + 2
    assert (result.vfti_samples_needed is None
            or result.vfti_samples_needed > 3 * result.mfti_samples_needed)


def test_example1_sample_requirement(benchmark, reportable):
    """The paper's '~30x fewer samples' claim on a scaled Example-1 system."""
    config = Example1Config(order=60, n_ports=12, seed=7)
    results = benchmark.pedantic(
        lambda: sample_requirement_sweep(
            config, tolerance=1e-6,
            mfti_counts=[6, 8, 10],
            vfti_counts=[30, 60, 72, 132],
            n_validation=40,
        ),
        rounds=1, iterations=1,
    )
    rows = [[name, res.samples_needed, res.error_at_requirement]
            for name, res in results.items()]
    reportable("example1_sample_requirement.txt", format_table(
        ["method", "samples needed", "error at requirement"], rows,
        title="Example 1: samples needed to recover an order-60, 12-port system"))
    mfti_needed = results["mfti"].samples_needed
    vfti_needed = results["vfti"].samples_needed
    assert mfti_needed is not None
    if vfti_needed is not None:
        benchmark.extra_info["measured_saving"] = vfti_needed / mfti_needed
        assert vfti_needed >= 6 * mfti_needed
