"""Evaluation-kernel benchmark: vectorized sweeps vs the per-point loop.

The shared sweep-evaluation kernel (:mod:`repro.systems.evaluation`) is the
one code path every layer uses to evaluate transfer functions.  This module
measures it on the same two workload systems as the shared batch grid
(:func:`repro.experiments.workloads.mixed_batch_jobs`) -- the 14-port PDN
and the lossy lumped transmission line -- over dense validation sweeps:

* ``loop``        -- the per-point reference (one dense solve per point),
* ``solve``       -- batched stacked-pencil solves (bitwise equal to loop),
* ``kernel cold`` -- ``auto`` on a fresh system: eigendecomposition plan
  construction *included* in the timing,
* ``kernel warm`` -- ``auto`` with the plan already cached.

The acceptance floor (enforced here and by the CI perf gate through
``benchmarks/baselines/eval_kernel.json``): the cold kernel sweep is at
least **5x** faster than the loop on each workload, while agreeing with it
to a tiny relative error (reported; typically ``1e-11`` .. ``1e-8``).
Results land in ``BENCH_eval_kernel.json`` for the perf-regression gate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits.mna import netlist_to_descriptor
from repro.circuits.pdn import power_distribution_network
from repro.circuits.transmission_line import lumped_transmission_line
from repro.experiments.example2 import Example2Config
from repro.data import linear_frequencies
from repro.systems.evaluation import evaluate_pointwise

#: Required cold-sweep (plan construction included) speedup per workload.
MIN_COLD_SPEEDUP = 5.0

#: Required sup per-point relative agreement between kernel and loop.
MAX_AGREEMENT_ERROR = 1e-6

#: Dense validation sweep length per workload.
N_POINTS = 480


def _workloads():
    """The shared PDN + transmission-line systems with dense sweeps."""
    cfg = Example2Config()
    pdn = power_distribution_network(cfg.pdn)
    tline = netlist_to_descriptor(lumped_transmission_line(0.1, 40))
    return {
        "pdn": (pdn, linear_frequencies(cfg.f_min_hz, cfg.f_max_hz, N_POINTS)),
        "tline": (tline, linear_frequencies(1e6, 5e9, N_POINTS)),
    }


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _sup_relative(got: np.ndarray, want: np.ndarray) -> float:
    k = want.shape[0]
    scale = np.maximum(np.linalg.norm(want.reshape(k, -1), axis=1), np.finfo(float).tiny)
    return float(np.max(np.linalg.norm((got - want).reshape(k, -1), axis=1) / scale))


def test_eval_kernel_speedup(benchmark, reportable, json_reportable):
    """Cold vectorized sweeps beat the per-point loop >=5x on both workloads."""
    rows = []
    results = {}
    for name, (system, freqs) in _workloads().items():
        points = 1j * 2.0 * np.pi * freqs

        reference, loop_seconds = _timed(lambda: evaluate_pointwise(
            system.E, system.A, system.B, system.C, system.D, points))
        solve_out, solve_seconds = _timed(
            lambda: system.evaluate_many(points, method="solve"))
        assert np.array_equal(solve_out, reference), (
            f"{name}: batched solve is not bitwise identical to the loop")

        cold_system = system.copy()  # fresh plan cache: plan build is timed
        cold_out, cold_seconds = _timed(lambda: cold_system.evaluate_many(points))
        warm_out, warm_seconds = _timed(lambda: cold_system.evaluate_many(points))
        assert np.array_equal(cold_out, warm_out)

        agreement = _sup_relative(cold_out, reference)
        assert agreement <= MAX_AGREEMENT_ERROR, (
            f"{name}: kernel drifted {agreement:.2e} from the loop reference")

        speedup_cold = loop_seconds / cold_seconds
        speedup_warm = loop_seconds / warm_seconds
        results[name] = {
            "n_states": system.order,
            "n_ports": system.n_inputs,
            "n_points": int(points.size),
            "loop_seconds": loop_seconds,
            "solve_seconds": solve_seconds,
            "kernel_cold_seconds": cold_seconds,
            "kernel_warm_seconds": warm_seconds,
            "speedup_cold": speedup_cold,
            "speedup_warm": speedup_warm,
            "agreement_rel": agreement,
        }
        rows.append(
            f"{name:6s} n={system.order:4d} k={points.size:5d}  "
            f"loop {loop_seconds:7.3f}s  solve {solve_seconds:7.3f}s  "
            f"cold {cold_seconds:7.3f}s ({speedup_cold:5.1f}x)  "
            f"warm {warm_seconds:7.3f}s ({speedup_warm:5.1f}x)  "
            f"agree {agreement:.1e}"
        )

    # the pytest-benchmark record: one extra warm sweep of the larger system
    pdn_system, pdn_freqs = _workloads()["pdn"]
    pdn_points = 1j * 2.0 * np.pi * pdn_freqs
    pdn_system.evaluate_many(pdn_points)  # build the plan outside the timer
    benchmark.pedantic(lambda: pdn_system.evaluate_many(pdn_points),
                       rounds=3, iterations=1)

    reportable("eval_kernel.txt", "\n".join(
        ["evaluation kernel: vectorized sweeps vs per-point loop"] + rows))
    json_reportable("eval_kernel", {
        "n_points": N_POINTS,
        "min_cold_speedup": MIN_COLD_SPEEDUP,
        "max_agreement_error": MAX_AGREEMENT_ERROR,
        "workloads": results,
    })
    benchmark.extra_info.update({
        name: f"{entry['speedup_cold']:.1f}x cold" for name, entry in results.items()
    })

    for name, entry in results.items():
        assert entry["speedup_cold"] >= MIN_COLD_SPEEDUP, (
            f"{name}: cold kernel sweep only {entry['speedup_cold']:.1f}x faster "
            f"than the loop (required: {MIN_COLD_SPEEDUP:.0f}x)"
        )


@pytest.mark.parametrize("workload", ["pdn", "tline"])
def test_kernel_matches_loop_on_validation_sweeps(workload):
    """Equivalence guard at benchmark scale (independent of the timings)."""
    system, freqs = _workloads()[workload]
    points = 1j * 2.0 * np.pi * freqs[:64]
    reference = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                   system.D, points)
    assert np.array_equal(system.evaluate_many(points, method="solve"), reference)
    assert _sup_relative(system.evaluate_many(points), reference) <= MAX_AGREEMENT_ERROR
