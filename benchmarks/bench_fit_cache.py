"""Fit cache -- warm-sweep speedup and cold/warm equivalence on the mixed grid.

The cache's acceptance contract: a second, identical ``BatchEngine`` sweep
over a shared :class:`~repro.cache.DiskStore` must

* report **100 % cache hits** (every fit and every model evaluation replays),
* reproduce the cold sweep **bitwise** (checked through the engine's own
  ``numerical_differences`` contract), and
* run at least **5x faster** wall-clock than the cold sweep.

The workload is the same eight-job PDN + transmission-line grid as
``bench_batch_engine.py``.  Timings land in ``BENCH_fit_cache.json``; the CI
perf-smoke step (``benchmarks/check_cache_speedup.py``) diffs the warm vs
cold numbers and fails the build when warm sweeps stop being faster.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine, numerical_differences
from repro.cache import FitCache
from repro.experiments.workloads import mixed_batch_jobs

#: The acceptance floor; observed warm speedups are an order of magnitude
#: higher (the warm path only hashes datasets and loads NPZ payloads).
MIN_WARM_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def job_grid():
    """The eight-job mixed MFTI/VFTI grid shared with bench_batch_engine."""
    return mixed_batch_jobs()


def test_warm_sweep_speedup(benchmark, job_grid, fit_cache_dir, reportable,
                            json_reportable):
    """Cold vs fully-warm sweep over one DiskStore: all hits, equal, >=5x."""
    cache = FitCache.on_disk(fit_cache_dir / "bench-fit-cache")
    engine = BatchEngine(cache=cache)

    cold = engine.run(job_grid)
    assert cold.n_failed == 0, cold.failures
    assert cold.n_cache_misses == cold.n_jobs  # nothing pre-warmed

    warm = benchmark.pedantic(lambda: engine.run(job_grid), rounds=1, iterations=1)
    assert warm.n_failed == 0, warm.failures
    assert warm.n_cache_hits == warm.n_jobs  # 100 % hits
    assert not numerical_differences(cold, warm)  # bitwise-equal payloads

    stats = cache.stats()
    assert stats.eval_hits == 2 * warm.n_jobs  # measurement + validation errors

    speedup = cold.wall_seconds / warm.wall_seconds
    reportable("fit_cache.txt", "\n\n".join([
        cold.summary_table(title="fit cache: cold sweep (populates the store)"),
        warm.summary_table(title=f"fit cache: warm sweep ({speedup:.1f}x faster)"),
    ]))
    json_reportable("fit_cache", {
        "n_jobs": cold.n_jobs,
        "cold_wall_seconds": cold.wall_seconds,
        "warm_wall_seconds": warm.wall_seconds,
        "speedup_warm_vs_cold": speedup,
        "warm_cache_hits": warm.n_cache_hits,
        "warm_cache_misses": warm.n_cache_misses,
        "cache_stats": stats.to_dict(),
        "jobs": [record.to_dict() for record in warm.records],
    })
    benchmark.extra_info.update({
        "cold_wall_seconds": cold.wall_seconds,
        "speedup_warm_vs_cold": speedup,
    })
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x faster than cold "
        f"(required: {MIN_WARM_SPEEDUP:.0f}x)"
    )


def test_process_workers_share_disk_cache(job_grid, fit_cache_dir):
    """A warm process-executor sweep replays a serial cold sweep via disk."""
    cache = FitCache.on_disk(fit_cache_dir / "bench-fit-cache-process")
    cold = BatchEngine(cache=cache).run(job_grid)
    warm = BatchEngine(executor="process", max_workers=2, chunk_size=2,
                       cache=cache).run(job_grid)
    assert warm.n_cache_hits == warm.n_jobs
    assert not numerical_differences(cold, warm)
