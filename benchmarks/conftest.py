"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one evaluation artifact of the paper
(Fig. 1, Fig. 2, Table 1, the Theorem-3.5 sweep) or one ablation.  Workload
construction (building the benchmark system, sampling, adding noise) happens
in module-scoped fixtures so the timed section contains only the algorithm
under study; the regenerated tables/series are printed so a plain
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's artifacts
textually and written to ``benchmarks/results/`` for later inspection.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, text: str) -> str:
    """Write a formatted report under ``benchmarks/results`` and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def reportable():
    """Print-and-save helper shared by all benchmark modules."""
    def _report(name: str, text: str) -> None:
        path = save_report(name, text)
        print(f"\n{text}\n[saved to {path}]")
    return _report
