"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one evaluation artifact of the paper
(Fig. 1, Fig. 2, Table 1, the Theorem-3.5 sweep) or one ablation.  Workload
construction (building the benchmark system, sampling, adding noise) happens
in module-scoped fixtures so the timed section contains only the algorithm
under study; the regenerated tables/series are printed so a plain
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's artifacts
textually and written to ``benchmarks/results/`` for later inspection.

Besides the human-readable text reports every module also writes a
machine-readable ``BENCH_<name>.json`` (timings + model errors, stable
schema) through the ``json_reportable`` fixture; CI uploads these as the
benchmark artifact and future perf-regression gates diff them.
"""

from __future__ import annotations

import json
import math
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Schema of the ``BENCH_*.json`` exports; bump when the envelope changes.
BENCH_SCHEMA_VERSION = 1


def save_report(name: str, text: str) -> str:
    """Write a formatted report under ``benchmarks/results`` and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def _json_safe(value):
    """Map non-finite floats to ``None`` so the export stays RFC-valid JSON."""
    if isinstance(value, dict):
        return {key: _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def save_json_report(name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results`` and return its path.

    The payload is wrapped in a stable envelope (benchmark name + schema
    version) so downstream tooling can validate what it is diffing; ``nan``
    and ``inf`` values (e.g. a saving factor when one method never converged)
    are exported as ``null`` because strict JSON parsers reject the bare
    ``NaN`` / ``Infinity`` tokens Python would otherwise emit.
    """
    document = _json_safe({
        "benchmark": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        **payload,
    })
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def reportable():
    """Print-and-save helper shared by all benchmark modules."""
    def _report(name: str, text: str) -> None:
        path = save_report(name, text)
        print(f"\n{text}\n[saved to {path}]")
    return _report


@pytest.fixture(scope="session")
def json_reportable():
    """Save a machine-readable ``BENCH_<name>.json`` next to the text report."""
    def _report(name: str, payload: dict) -> None:
        path = save_json_report(name, payload)
        print(f"[machine-readable report saved to {path}]")
    return _report


@pytest.fixture(scope="session")
def fit_cache_dir(tmp_path_factory):
    """Session-unique root directory for on-disk fit caches.

    Shared (same name, same semantics) with ``tests/conftest.py``.
    ``tmp_path_factory`` derives from pytest's numbered, lock-protected
    basetemp, so concurrent pytest runs on one machine each get their own
    store and never collide; within a session the path is stable, so every
    benchmark reuses one deterministic cache location.
    """
    return tmp_path_factory.mktemp("fit-cache")
