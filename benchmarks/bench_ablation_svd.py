"""Ablation A2 -- SVD realization mode and the choice of the shift ``x0``.

Algorithm 1 step 5 performs one SVD of ``x0*L - sL`` for an ``x0`` chosen from
the sample points; the Loewner literature also uses the two-sided projection
from the SVDs of ``[L, sL]`` and ``[L; sL]``.  This ablation compares both on
the Example-1 workload, including several choices of ``x0``.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine
from repro.data import log_frequencies, sample_scattering
from repro.experiments.ablations import svd_mode_ablation
from repro.experiments.example1 import Example1Config
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def example1_workload():
    config = Example1Config(order=80, n_ports=16, n_samples=10, seed=12)
    system = config.system()
    data = config.sample_data()
    reference = sample_scattering(system, log_frequencies(config.f_min_hz, config.f_max_hz, 80))
    return data, reference


def test_ablation_svd_modes(benchmark, example1_workload, reportable, json_reportable):
    """Compare two-sided projection against the pencil SVD with three shifts."""
    data, reference = example1_workload
    engine = BatchEngine.from_env()
    rows = benchmark.pedantic(
        lambda: svd_mode_ablation(data, reference, rank_tolerance=1e-9, engine=engine),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["setting", "order", "time (s)", "error vs ground truth"],
        [[r.setting, r.order, r.time_seconds, r.error] for r in rows],
        title="Ablation A2: SVD realization mode / shift x0 (Example-1 workload)",
    )
    reportable("ablation_svd.txt", table)
    json_reportable("ablation_svd", {
        "executor": engine.executor,
        "rows": [r.to_dict() for r in rows],
    })
    benchmark.extra_info["errors"] = {r.setting: r.error for r in rows}
    # every realization variant recovers the (noise-free, sufficiently sampled) system
    assert all(r.error < 1e-5 for r in rows)
