"""Ablation A1 -- effect of the tangential block size ``t`` (per-sample weighting).

The paper motivates ``t_i`` as a knob trading accuracy against cost and as a
weighting device for ill-conditioned samples; Table 1 only reports ``t = 2``
and ``t = 3``.  This ablation sweeps ``t`` from 1 (the VFTI information
content) to ``min(m, p)`` on the PDN workload and reports order / time /
error for every setting.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine
from repro.experiments.ablations import weighting_ablation
from repro.experiments.example2 import Example2Config, build_pdn_datasets
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def pdn_workload():
    config = Example2Config()
    test1, _, validation = build_pdn_datasets(config)
    return config, test1, validation


def test_ablation_block_size_sweep(benchmark, pdn_workload, reportable, json_reportable):
    """Sweep t in {1, 2, 3, 5, 8, 14} on the uniform-grid PDN data."""
    config, data, validation = pdn_workload
    sizes = [1, 2, 3, 5, 8, 14]
    engine = BatchEngine.from_env()
    rows = benchmark.pedantic(
        lambda: weighting_ablation(data, validation, block_sizes=sizes,
                                   rank_tolerance=config.rank_tolerance,
                                   engine=engine),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["setting", "order", "time (s)", "error vs ground truth"],
        [[r.setting, r.order, r.time_seconds, r.error] for r in rows],
        title="Ablation A1: tangential block size t (PDN, uniform sampling)",
    )
    reportable("ablation_weighting.txt", table)
    json_reportable("ablation_weighting", {
        "executor": engine.executor,
        "rows": [r.to_dict() for r in rows],
    })
    errors = [r.error for r in rows]
    orders = [r.order for r in rows]
    benchmark.extra_info["errors"] = {r.setting: r.error for r in rows}
    # accuracy improves (and model size grows) as more of each sample matrix is used
    assert errors[-1] < errors[0]
    assert orders[-1] >= orders[0]
    assert min(errors[1:]) < errors[0] / 2
