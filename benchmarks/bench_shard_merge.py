"""Sharded-run smoke: plan -> run 2 shards through the CLI -> merge -> equal.

The cross-machine acceptance contract of :mod:`repro.batch.sharding`,
exercised end-to-end exactly as an operator would: the shared mixed
MFTI/VFTI grid is planned into two shard manifests, each shard runs in its
own ``python -m repro.batch.shard run`` subprocess (rebuilding the workload
from the manifest, sharing one ``DiskStore``), and the merged result must
reproduce the single-process reference bitwise -- record order, numerical
payloads, JSON export and cache counters.

``BENCH_shard_merge.json`` records the equivalence verdict (``n_diffs``,
``json_equal``) and the cache counters; ``benchmarks/baselines/
shard_merge.json`` gates them in CI, so a sharding regression that breaks
merge equivalence fails the build even if every unit test still passes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.batch import (
    BatchEngine,
    comparable_json,
    merge_shard_results,
    numerical_differences,
)
from repro.batch.shard import cli_subprocess as run_cli
from repro.cache import FitCache
from repro.experiments.workloads import mixed_batch_jobs

#: Reduced copy of the shared grid: same 8-job structure as the full
#: ``bench_batch_engine`` grid, scaled so the two CLI subprocesses (which
#: each rebuild the workload) keep the smoke step quick.
GRID_KWARGS = dict(pdn_samples=60, pdn_validation=80, line_sections=20,
                   line_samples=60, line_validation=80)


@pytest.fixture(scope="module")
def job_grid():
    return mixed_batch_jobs(**GRID_KWARGS)


def test_shard_plan_run_merge_equivalence(benchmark, job_grid, reportable,
                                          json_reportable, tmp_path):
    """2-shard CLI cycle reproduces the cached single-process run bitwise."""
    reference_cache = FitCache.on_disk(tmp_path / "store-reference")
    reference = BatchEngine(cache=reference_cache).run(job_grid)
    assert reference.n_failed == 0, reference.failures

    shard_dir = tmp_path / "shards"
    shared_store = tmp_path / "store-sharded"

    def sharded_cycle():
        plan = run_cli("plan", "--workload", "mixed_batch_jobs",
                       "--workload-args", json.dumps(GRID_KWARGS),
                       "--shards", "2", "--out-dir", str(shard_dir),
                       "--cache-dir", str(shared_store))
        assert plan.returncode == 0, plan.stderr
        shard_files = []
        for name in sorted(os.listdir(shard_dir)):
            if not name.endswith(".manifest.json"):
                continue
            run = run_cli("run", str(shard_dir / name))
            assert run.returncode == 0, run.stderr
            shard_files.append(
                str(shard_dir / name).replace(".manifest.json", ".result.npz"))
        return merge_shard_results(shard_files)

    merged = benchmark.pedantic(sharded_cycle, rounds=1, iterations=1)

    diffs = numerical_differences(reference, merged)
    json_equal = comparable_json(reference) == comparable_json(merged)
    assert not diffs, diffs
    assert json_equal

    reportable("shard_merge.txt", "\n\n".join([
        reference.summary_table(title="shard smoke: single-process reference"),
        merged.summary_table(title="shard smoke: merged 2-shard CLI run"),
    ]))
    json_reportable("shard_merge", {
        "n_jobs": reference.n_jobs,
        "n_shards": 2,
        "n_diffs": len(diffs),
        "json_equal": int(json_equal),
        "merged_n_ok": merged.n_ok,
        "merged_n_failed": merged.n_failed,
        "merged_cache_hits": merged.n_cache_hits,
        "merged_cache_misses": merged.n_cache_misses,
        "reference_wall_seconds": reference.wall_seconds,
        "merged_wall_seconds": merged.wall_seconds,
        "jobs": [record.to_dict() for record in merged.records],
    })
    benchmark.extra_info.update({
        "n_diffs": len(diffs),
        "json_equal": json_equal,
    })
