"""CI serve-smoke: real server subprocess -> Table-1 grid -> bitwise equal.

The end-to-end acceptance walk of the serving stack, exactly as an operator
would run it -- no in-process shortcuts:

1. fit the (scaled-down) Table-1 Loewner grid locally with a
   :class:`~repro.batch.engine.BatchEngine` (the reference),
2. start a **real** ``python -m repro serve`` subprocess on an ephemeral
   port and wait for its announce line,
3. submit the same grid over HTTP through :class:`repro.Client`,
4. assert the served result is string-identical to the reference through
   :func:`~repro.batch.results.comparable_json` (the same bitwise contract
   the sharded smoke enforces),
5. ``POST /shutdown`` and require a clean exit code.

Run from the repository root::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

from repro.batch import BatchEngine, comparable_json
from repro.circuits.pdn import PdnConfiguration
from repro.experiments.example2 import (
    Example2Config,
    build_pdn_datasets,
    loewner_table1_jobs,
)
from repro.serve import Client

#: Scaled-down Table-1 configuration (same shape as the full Example-2 grid:
#: VFTI + two MFTI block sizes + recursive MFTI on the noisy PDN sweep).
CONFIG = Example2Config(
    pdn=PdnConfiguration(n_ports=6, grid_rows=4, grid_cols=5,
                         n_decaps=5, n_bulk_caps=1),
    n_samples=40,
    n_validation=60,
)

ANNOUNCE = re.compile(r"serving on http://([\d.]+):(\d+)")


def main() -> int:
    test1, _, validation = build_pdn_datasets(CONFIG)
    jobs = loewner_table1_jobs(CONFIG, "test1", test1, validation)

    reference = BatchEngine().run(jobs)
    assert reference.n_failed == 0, reference.failures
    print(f"local reference: {reference.n_ok}/{reference.n_jobs} ok")

    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        path for path in ("src", environment.get("PYTHONPATH", "")) if path)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--executor", "thread", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=environment,
    )
    try:
        announce = server.stdout.readline()
        match = ANNOUNCE.search(announce)
        assert match, f"server did not announce a port: {announce!r}"
        host, port = match.group(1), int(match.group(2))
        print(announce.strip())

        client = Client(host, port)
        assert client.healthz()["status"] == "ok"
        served = client.submit(jobs)
        assert served.n_failed == 0, served.failures
        assert comparable_json(served) == comparable_json(reference), (
            "served result differs from the local reference")
        print(f"served result: {served.n_ok}/{served.n_jobs} ok, "
              "comparable JSON identical to the local reference")

        client.shutdown()
        returncode = server.wait(timeout=30)
        assert returncode == 0, f"server exited with {returncode}"
        print("clean shutdown: serve smoke ok")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
