"""Consolidate every ``BENCH_*.json`` export into one ``BENCH_summary.json``.

CI runs the benchmark smokes one file at a time; each writes its own
machine-readable export.  This script rolls the scalar measurements of all
of them into a single document -- one artifact to download, one file to diff
between runs -- without repeating the bulky per-job/row payloads.

The summary is an *aggregate*, not a measurement: it carries no rules of its
own and :mod:`check_perf_regression` explicitly skips it (every value in it
is already gated through the export it came from).

Usage::

    python benchmarks/collect_summary.py benchmarks/results
    python benchmarks/collect_summary.py benchmarks/results --out path.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Any

#: Schema of the summary envelope; bump when its shape changes.
SUMMARY_SCHEMA_VERSION = 1

#: The summary's own filename -- never folded into itself.
SUMMARY_BASENAME = "BENCH_summary.json"


def scalar_fields(payload: dict) -> dict[str, Any]:
    """The flat scalar measurements of one export (lists/dicts dropped)."""
    return {
        key: value
        for key, value in payload.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }


def collect(results_dir: str) -> dict[str, Any]:
    """The summary document for every export under ``results_dir``."""
    benchmarks: dict[str, Any] = {}
    sources: list[str] = []
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        if os.path.basename(path) == SUMMARY_BASENAME:
            continue
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        name = payload.get("benchmark", os.path.basename(path))
        benchmarks[name] = scalar_fields(payload)
        sources.append(os.path.basename(path))
    return {
        "benchmark": "summary",
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "n_benchmarks": len(benchmarks),
        "sources": sources,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="directory containing BENCH_*.json exports")
    parser.add_argument("--out", default=None,
                        help="where to write the summary (default: "
                             "BENCH_summary.json inside the results directory)")
    args = parser.parse_args(argv)

    summary = collect(args.results)
    out = args.out or os.path.join(args.results, SUMMARY_BASENAME)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"summarised {summary['n_benchmarks']} exports -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
