"""CI perf-regression gate: diff ``BENCH_*.json`` exports against baselines.

Generalisation of the original ``check_cache_speedup.py`` (which only knew
the fit-cache export): any machine-readable benchmark export can now be
gated by a committed baseline under ``benchmarks/baselines/<name>.json``.
A baseline names the benchmark it applies to and a set of *rules* over
(dotted-path) fields of the export::

    {
      "benchmark": "fit_cache",
      "rules": {
        "speedup_warm_vs_cold": {"min": 5.0},
        "warm_cache_misses":    {"max": 0},
        "warm_cache_hits":      {"equals_field": "n_jobs"},
        "cold_wall_seconds":    {"baseline": 3.0, "rtol": 2.0, "direction": "lower"}
      }
    }

Rule semantics (any combination may appear in one rule):

``min`` / ``max``
    Hard bounds on the measured value.
``equals_field``
    The measured value must equal another (dotted-path) field of the same
    export -- e.g. *every* warm job must have hit the cache.
``baseline`` + ``rtol`` + ``direction``
    Tolerance band around a committed reference measurement.
    ``direction: "lower"`` means lower-is-better (timings): fail when the
    value exceeds ``baseline * (1 + rtol)``.  ``direction: "higher"`` means
    higher-is-better (speedups): fail when the value drops below
    ``baseline * (1 - rtol)``.  Generous ``rtol`` values absorb CI-runner
    noise while still catching order-of-magnitude regressions.

Usage::

    python benchmarks/check_perf_regression.py benchmarks/results
    python benchmarks/check_perf_regression.py benchmarks/results/BENCH_fit_cache.json
    python benchmarks/check_perf_regression.py benchmarks/results --report results/PERF_DIFF.json

With a directory argument every baseline is checked against its matching
``BENCH_<benchmark>.json`` (a missing report fails unless
``--allow-missing``); exports without a baseline fail with the baseline
path that would gate them (``--allow-unchecked`` downgrades that to a
note), and a baseline file without a ``benchmark`` key is reported by path
instead of crashing the gate.
The machine-readable diff (``--report``, default ``PERF_DIFF.json`` next to
the exports) records every rule with its measured value and verdict and is
uploaded as a CI artifact alongside the raw ``BENCH_*.json`` files.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any

DEFAULT_BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

_RULE_KEYS = {"min", "max", "equals_field", "baseline", "rtol", "direction"}


def resolve_field(payload: dict, path: str):
    """Resolve a dotted path (``workloads.pdn.speedup_cold``) in an export.

    Integer segments index into lists (``rows.3.error`` is the ``error``
    field of the fourth row), which is how baselines gate the row-structured
    exports (Table 1, the ablations) whose row order is deterministic.
    """
    value: Any = payload
    for part in path.split("."):
        if isinstance(value, list):
            try:
                index = int(part)
            except ValueError:
                return None
            if not -len(value) <= index < len(value):
                return None
            value = value[index]
        elif isinstance(value, dict) and part in value:
            value = value[part]
        else:
            return None
    return value


def check_rule(payload: dict, field: str, rule: dict) -> list[dict]:
    """Evaluate one baseline rule; returns the individual check records."""
    unknown = set(rule) - _RULE_KEYS
    if unknown:
        return [{"field": field, "check": "rule", "ok": False,
                 "detail": f"unknown rule keys {sorted(unknown)}"}]
    if not set(rule) & {"min", "max", "equals_field", "baseline"}:
        # a rule of only rtol/direction would produce zero checks and pass
        # vacuously -- a silently inert gate is itself a failure
        return [{"field": field, "check": "rule", "ok": False,
                 "detail": "rule enforces nothing: needs at least one of "
                           "min/max/equals_field/baseline"}]
    if ("rtol" in rule or "direction" in rule) and "baseline" not in rule:
        return [{"field": field, "check": "rule", "ok": False,
                 "detail": "rtol/direction only apply to a baseline band; "
                           "add the baseline value"}]
    value = resolve_field(payload, field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return [{"field": field, "check": "present", "ok": False,
                 "detail": f"missing or non-numeric field (got {value!r})"}]
    records = []
    if "min" in rule:
        ok = value >= rule["min"]
        records.append({"field": field, "check": "min", "limit": rule["min"],
                        "value": value, "ok": ok})
    if "max" in rule:
        ok = value <= rule["max"]
        records.append({"field": field, "check": "max", "limit": rule["max"],
                        "value": value, "ok": ok})
    if "equals_field" in rule:
        other = resolve_field(payload, rule["equals_field"])
        ok = other is not None and value == other
        records.append({"field": field, "check": "equals_field",
                        "limit": rule["equals_field"], "value": value,
                        "other_value": other, "ok": ok})
    if "baseline" in rule:
        rtol = float(rule.get("rtol", 0.0))
        direction = rule.get("direction", "lower")
        if direction not in ("lower", "higher"):
            records.append({"field": field, "check": "baseline", "ok": False,
                            "detail": f"direction must be lower/higher, got {direction!r}"})
        elif direction == "lower":
            limit = rule["baseline"] * (1.0 + rtol)
            records.append({"field": field, "check": "baseline(lower)",
                            "limit": limit, "value": value, "ok": value <= limit})
        else:
            limit = rule["baseline"] * (1.0 - rtol)
            records.append({"field": field, "check": "baseline(higher)",
                            "limit": limit, "value": value, "ok": value >= limit})
    return records


def check_export(payload: dict, baseline: dict) -> list[dict]:
    """All rule records of one baseline applied to one export payload."""
    records = []
    for field, rule in baseline.get("rules", {}).items():
        records.extend(check_rule(payload, field, rule))
    return records


def load_json(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def run(results: str, baseline_dir: str, *, allow_missing: bool = False,
        allow_unchecked: bool = False) -> dict:
    """Check every applicable baseline; returns the diff-report document."""
    if os.path.isdir(results):
        exports = {}
        for path in sorted(glob.glob(os.path.join(results, "BENCH_*.json"))):
            # BENCH_summary.json (collect_summary.py) is an aggregate of the
            # other exports, not a measurement: every value in it is already
            # gated through the export it came from
            if os.path.basename(path) == "BENCH_summary.json":
                continue
            payload = load_json(path)
            exports[payload.get("benchmark", os.path.basename(path))] = (path, payload)
    else:
        payload = load_json(results)
        exports = {payload.get("benchmark", os.path.basename(results)): (results, payload)}

    checked, problems = [], []
    baselines = {}
    for path in sorted(glob.glob(os.path.join(baseline_dir, "*.json"))):
        baseline = load_json(path)
        name = baseline.get("benchmark")
        if not name:
            # a KeyError here used to crash the whole gate; name the file so
            # the broken baseline is fixable without reading a traceback
            problems.append(f"baseline {path} names no benchmark "
                            "(missing the 'benchmark' key)")
            continue
        baselines[name] = (path, baseline)

    for name, (baseline_path, baseline) in baselines.items():
        if name not in exports:
            if os.path.isdir(results) and not allow_missing:
                problems.append(f"baseline {baseline_path} has no BENCH_{name}.json export")
            continue
        export_path, payload = exports[name]
        records = check_export(payload, baseline)
        checked.append({"benchmark": name, "export": export_path,
                        "baseline": baseline_path, "checks": records})
        for record in records:
            if not record["ok"]:
                detail = record.get(
                    "detail",
                    f"{record['field']} {record.get('value')} violates "
                    f"{record['check']} {record.get('limit')}",
                )
                problems.append(f"{name}: {detail}")
    unchecked = sorted(set(exports) - set(baselines))
    if not allow_unchecked:
        # an export nobody gates is a silently inert benchmark: fail it with
        # the exact baseline path that would wire it up
        for name in unchecked:
            problems.append(
                f"export {name!r} has no baseline: add "
                f"{os.path.join(baseline_dir, name + '.json')} or pass "
                "--allow-unchecked"
            )
    return {
        "checked": checked,
        "unchecked_exports": unchecked,
        "problems": problems,
        "ok": not problems,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results",
                        help="BENCH_*.json file or a directory of exports")
    parser.add_argument("--baselines", default=DEFAULT_BASELINE_DIR,
                        help="directory of committed baseline rule files "
                             "(default: benchmarks/baselines)")
    parser.add_argument("--report", default=None,
                        help="where to write the machine-readable diff "
                             "(default: PERF_DIFF.json next to the exports)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline has no matching export")
    parser.add_argument("--allow-unchecked", action="store_true",
                        help="do not fail when an export has no baseline")
    args = parser.parse_args(argv)

    report = run(args.results, args.baselines, allow_missing=args.allow_missing,
                 allow_unchecked=args.allow_unchecked)
    report_path = args.report or os.path.join(
        args.results if os.path.isdir(args.results) else os.path.dirname(args.results),
        "PERF_DIFF.json",
    )
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for entry in report["checked"]:
        passed = sum(1 for c in entry["checks"] if c["ok"])
        print(f"{entry['benchmark']}: {passed}/{len(entry['checks'])} checks ok "
              f"(baseline {os.path.basename(entry['baseline'])})")
    for name in report["unchecked_exports"]:
        print(f"note: export {name!r} has no baseline (unchecked)")
    if report["problems"]:
        for problem in report["problems"]:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"ok: perf gates passed ({report_path})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
