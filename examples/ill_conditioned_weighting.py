"""Weighting ill-conditioned samples through per-sample block sizes.

The paper's Test 2 concerns *poorly distributed* sampling: most frequencies
crowd into the top of the band, so the low-frequency behaviour is represented
by only a few samples.  MFTI's per-sample block size ``t_i`` acts as a weight:
assigning larger blocks to the scarce low-frequency samples spends more of the
interpolation budget where information is scarce.

This script compares three strategies on a clustered, noisy sweep of the
14-port PDN workload of Example 2:

* uniform small blocks (``t_i = 2`` everywhere),
* uniform large blocks (``t_i = 3`` everywhere),
* weighted blocks (``t_i = 4`` for the sparse low-frequency samples,
  ``t_i = 2`` for the crowded high-frequency ones).

Run with ``python examples/ill_conditioned_weighting.py`` (about 20 seconds).
"""

from __future__ import annotations

import numpy as np

from repro import add_measurement_noise, mfti, sample_scattering
from repro.circuits.pdn import PdnConfiguration, power_distribution_network
from repro.core.options import MftiOptions
from repro.data import clustered_frequencies, linear_frequencies
from repro.experiments.reporting import format_table

F_MIN, F_MAX = 1e6, 2.5e9
N_SAMPLES = 100
NOISE_LEVEL = 2e-4
RANK_TOLERANCE = 2e-4


def main() -> None:
    pdn = power_distribution_network(PdnConfiguration(grid_rows=6, grid_cols=6))
    print(f"workload: synthetic 14-port PDN, order {pdn.order}")

    frequencies = clustered_frequencies(F_MIN, F_MAX, N_SAMPLES)
    clean = sample_scattering(pdn, frequencies, system_kind="Z", label="clustered sweep")
    data = add_measurement_noise(clean, relative_level=NOISE_LEVEL, seed=3)
    validation = sample_scattering(pdn, linear_frequencies(F_MIN, F_MAX, 250),
                                   system_kind="Z")

    split = F_MIN + 0.7 * (F_MAX - F_MIN)
    n_low = int(np.count_nonzero(frequencies < split))
    print(f"clustered grid: only {n_low} of {N_SAMPLES} samples below {split:.1e} Hz\n")

    weighted_sizes = [4 if f < split else 2 for f in frequencies]
    strategies = {
        "uniform t=2": MftiOptions(block_size=2, rank_method="tolerance",
                                   rank_tolerance=RANK_TOLERANCE),
        "uniform t=3": MftiOptions(block_size=3, rank_method="tolerance",
                                   rank_tolerance=RANK_TOLERANCE),
        "weighted (t=4 low band, t=2 high band)": MftiOptions(
            block_size=weighted_sizes, rank_method="tolerance",
            rank_tolerance=RANK_TOLERANCE),
    }

    rows = []
    for name, options in strategies.items():
        result = mfti(data, options=options)
        rows.append([name, result.order, result.elapsed_seconds,
                     result.aggregate_error(validation)])
    print(format_table(
        ["strategy", "model order", "time (s)", "error vs ground truth"],
        rows,
        title="Per-sample weighting on ill-conditioned (clustered) sampling",
    ))
    print("\nGiving extra tangential columns to the scarce low-frequency samples recovers "
          "accuracy that uniform small blocks cannot, without paying the full cost of "
          "large blocks everywhere -- the weighting option the paper describes for "
          "ill-conditioned data.")


if __name__ == "__main__":
    main()
