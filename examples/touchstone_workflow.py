"""End-to-end Touchstone workflow: file in, macromodel out, checks, time domain.

A typical signal-integrity flow starts from S-parameters stored in a
Touchstone file (exported by a VNA or an EM solver) and ends with a compact
model that can be checked for passivity and simulated in the time domain.
This script exercises that entire path using only the library:

1. generate "measurement" data from a circuit substrate and write it to
   ``.s4p`` (stand-in for the external file),
2. read the Touchstone file back,
3. recover a macromodel with MFTI,
4. check scattering passivity of the model over an extended band,
5. compute its step response port-to-port.

Run with ``python examples/touchstone_workflow.py``.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import mfti, read_touchstone, sample_scattering, write_touchstone
from repro.circuits import coupled_rlc_lines, netlist_to_descriptor
from repro.data import log_frequencies
from repro.systems import step_response
from repro.vectorfitting.passivity import passivity_violations


def main() -> None:
    # 1. the "device": two coupled RLC lines with ports at both ends (4 ports)
    device = netlist_to_descriptor(coupled_rlc_lines(2, 8))
    frequencies = log_frequencies(1e7, 2e10, 40)
    measurement = sample_scattering(device, frequencies, system_kind="Z",
                                    label="coupled lines")

    workdir = tempfile.mkdtemp(prefix="mfti_touchstone_")
    path = os.path.join(workdir, "coupled_lines.s4p")
    write_touchstone(measurement, path, fmt="RI", freq_unit="GHZ",
                     comment="synthetic measurement of a coupled RLC line pair")
    print(f"wrote {measurement.n_samples} samples to {path}")

    # 2. read the file back -- from here on the flow is file-driven
    data = read_touchstone(path)
    print(f"read back: {data}")

    # 3. recover the macromodel
    model = mfti(data, rank_method="tolerance", rank_tolerance=1e-8)
    print(f"recovered model: {model.summary()}")
    print(f"in-band fit error (vs file data): {model.aggregate_error(data):.2e}")

    # 4. passivity check over an extended band (2 extra octaves on both sides)
    check_freqs = log_frequencies(2.5e6, 8e10, 200)
    violations = passivity_violations(model.system, check_freqs, representation="S")
    if violations:
        worst = max(violations, key=lambda v: v.metric)
        print(f"passivity: {len(violations)} violating frequencies, "
              f"worst sigma_max = {worst.metric:.4f} at {worst.frequency_hz:.3e} Hz")
    else:
        print("passivity: no violations found on the extended sweep")

    # 5. time-domain step response of the recovered model (port 1 -> far end)
    time, outputs = step_response(model.system.to_real(), t_final=5e-9, n_points=400,
                                  input_index=0)
    far_end = outputs[:, 1]
    print("\nstep response (input port 1, far-end port 2):")
    print(f"  settled value ~ {far_end[-1]:.4f}")
    print(f"  peak value    ~ {np.max(far_end):.4f} "
          f"(overshoot {100 * (np.max(far_end) / far_end[-1] - 1):.1f} %)"
          if abs(far_end[-1]) > 1e-12 else "")
    print(f"  samples: {time.size} over {time[-1]:.1e} s")


if __name__ == "__main__":
    main()
