"""Example 2 of the paper: macromodeling a noisy 14-port power-distribution network.

Builds the synthetic PDN (the substitute for the paper's measured INC board,
see ``DESIGN.md``), samples 100 noisy scattering matrices on a uniform and on
an ill-conditioned (high-frequency-clustered) grid, and compares VFTI, MFTI-1
(t = 2, 3) and the recursive MFTI-2 -- the Loewner rows of Table 1.  Set
``INCLUDE_VECTOR_FITTING = True`` to add the (slower) VF rows.

All Loewner fits run as one grid through the batch engine; set
``REPRO_BATCH_EXECUTOR=thread`` (or ``process``) to fit both tests' rows in
parallel instead of serially.

Run with ``python examples/pdn_noisy_modeling.py`` (about half a minute).
"""

from __future__ import annotations

from repro.batch import BatchEngine
from repro.experiments.example2 import Example2Config, table1_experiment
from repro.experiments.reporting import format_table

#: Add the Vector Fitting rows (n = 140 and n = 280, 10 iterations); roughly
#: 30 extra seconds.
INCLUDE_VECTOR_FITTING = False


def main() -> None:
    config = Example2Config()
    engine = BatchEngine.from_env()
    print("Example 2 workload: synthetic 14-port PDN, "
          f"{config.n_samples} samples per test over "
          f"[{config.f_min_hz:.0e}, {config.f_max_hz:.0e}] Hz, "
          f"noise level {config.noise_level:.0e}")
    print(f"batch executor: {engine.executor} ({engine.n_workers} worker(s))\n")

    table = table1_experiment(config, include_vector_fitting=INCLUDE_VECTOR_FITTING,
                              engine=engine)

    for test, description in (("test1", "Test 1 -- 100 uniformly distributed samples"),
                              ("test2", "Test 2 -- 100 ill-conditioned (clustered) samples")):
        rows = table.rows_for(test)
        print(format_table(
            ["algorithm", "reduced order", "time (s)", "error vs measurement",
             "error vs ground truth"],
            [[r.algorithm, r.reduced_order, r.time_seconds, r.error_vs_measurement,
              r.error_vs_truth] for r in rows],
            title=description,
        ))
        best = table.best_error(test)
        print(f"best ground-truth accuracy: {best.algorithm} "
              f"({best.error_vs_truth:.2e})\n")

    print("Shape of the paper's Table 1: MFTI is one to two orders of magnitude more "
          "accurate than VFTI on both tests, accuracy improves from t=2 to t=3, and the "
          "recursive MFTI-2 reaches near-MFTI accuracy with a smaller model.")


if __name__ == "__main__":
    main()
