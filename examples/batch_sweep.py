"""Batch macromodeling: fit a mixed method/dataset grid with parallel backends.

This example shows the production-style workflow behind every large sweep in
the repository (port sweeps, noise studies, ablation grids):

1. describe each fit declaratively as a :class:`~repro.batch.FitJob`
   (dataset + method + options + tags + validation data),
2. hand the whole grid to a :class:`~repro.batch.BatchEngine` and pick an
   executor -- ``serial``, ``thread`` or ``process``,
3. read the aggregate report and export the machine-readable JSON,
4. re-run the sweep over a shared on-disk :class:`~repro.cache.FitCache`
   and watch every job replay instead of recompute.

The grid here is the acceptance workload of the batch layer: eight jobs
mixing MFTI and VFTI over a noisy 14-port PDN and a lossy transmission line.
One job is deliberately broken (a single-frequency dataset) to show that the
engine records the failure instead of aborting the sweep.

Run with ``python examples/batch_sweep.py``.
"""

from __future__ import annotations

import os
import tempfile

from repro.batch import BatchEngine, FitJob
from repro.cache import FitCache
from repro.experiments.workloads import mixed_batch_jobs


def build_jobs() -> list[FitJob]:
    # the mixed PDN + transmission-line grid shared with
    # benchmarks/bench_batch_engine.py (smaller PDN sweep here for speed)
    jobs = mixed_batch_jobs(pdn_samples=60, pdn_validation=80)
    # a poison job: one sampled frequency is not enough for any front-end;
    # the engine must record the failure and keep going
    jobs.append(FitJob(jobs[0].data.subset([0]), method="mfti", label="poison/mfti"))
    return jobs


def main() -> None:
    jobs = build_jobs()

    executor = "process" if (os.cpu_count() or 1) >= 2 else "serial"
    with tempfile.TemporaryDirectory(prefix="repro-fit-cache-") as cache_dir:
        # a DiskStore-backed cache is shared across executors and re-runs;
        # set REPRO_FIT_CACHE=off to switch caching off without code changes
        cache = FitCache.on_disk(cache_dir)
        engine = BatchEngine(executor=executor, max_workers=2, cache=cache)
        print(f"running {len(jobs)} jobs with the {engine.executor!r} executor "
              f"({engine.n_workers} workers, chunk size "
              f"{engine.resolve_chunk_size(len(jobs))})\n")

        result = engine.run(jobs)
        print(result.summary_table())

        for failure in result.failures:
            print(f"\ncaptured failure in {failure.label!r}: "
                  f"{failure.error_type}: {failure.error_message}")

        best = result.best()
        print(f"\nmost accurate fit: {best.label} "
              f"(order {best.order}, error {best.error_vs_reference:.2e})")
        print(f"serial-equivalent cost {result.total_fit_seconds:.2f}s, "
              f"wall {result.wall_seconds:.2f}s")

        path = result.save_json(os.path.join("benchmarks", "results", "batch_sweep.json"))
        print(f"JSON export saved to {path}")

        # identical re-sweep: every fit and model evaluation replays from disk
        rerun = engine.run(jobs)
        print(f"\nre-sweep over the warm cache: "
              f"{rerun.n_cache_hits}/{rerun.n_jobs} cache hits, "
              f"wall {rerun.wall_seconds:.2f}s "
              f"({result.wall_seconds / max(rerun.wall_seconds, 1e-9):.0f}x faster)")


if __name__ == "__main__":
    main()
