"""Quickstart: recover a multi-port macromodel from a handful of frequency samples.

This script walks through the core workflow of the library:

1. build a reference multi-port system (stand-in for a measured device),
2. sample its scattering matrices at a few frequencies,
3. recover a descriptor-system macromodel with MFTI (Algorithm 1 of the paper),
4. validate the model on a dense sweep and compare against the VFTI baseline.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import linear_frequencies, log_frequencies, mfti, sample_scattering, validate_model, vfti
from repro.core import minimal_sample_count
from repro.systems import random_stable_system


def main() -> None:
    # 1. a reference system: order 36, 6 ports, resonances between 10 Hz and 100 kHz
    system = random_stable_system(order=36, n_ports=6, feedthrough=0.1, seed=2024)
    print(f"reference system: order {system.order}, {system.n_ports} ports")

    # How many sampled matrices does Theorem 3.5 say we need?
    rank_d = int(np.linalg.matrix_rank(system.D))
    estimate = minimal_sample_count(system.order, system.n_inputs, system.n_outputs,
                                    rank_d=rank_d)
    print(f"theorem 3.5: MFTI needs ~{estimate.empirical} samples, "
          f"VFTI needs ~{estimate.vfti_requirement} "
          f"(saving factor {estimate.saving_factor:.1f}x)")

    # 2. sample the scattering matrices (this is the expensive measurement step)
    n_samples = estimate.empirical + estimate.empirical % 2 + 2
    frequencies = log_frequencies(1e1, 1e5, n_samples)
    data = sample_scattering(system, frequencies, label="quickstart measurement")
    print(f"sampled {data.n_samples} scattering matrices: {data}")

    # 3. recover the macromodel with MFTI
    model = mfti(data)
    print(f"MFTI model: {model.summary()}")

    # 4. validate on a dense sweep and compare with VFTI on the same samples
    validation = sample_scattering(system, linear_frequencies(1e1, 1e5, 200))
    report = validate_model(model.system, validation)
    print(f"MFTI validation: {report.summary()}")

    baseline = vfti(data)
    baseline_report = validate_model(baseline.system, validation)
    print(f"VFTI validation: {baseline_report.summary()}")

    improvement = baseline_report.aggregate_error / max(report.aggregate_error, 1e-300)
    print(f"\nWith only {data.n_samples} samples, MFTI is {improvement:.1e}x more accurate "
          "than the vector-format baseline on this workload.")


if __name__ == "__main__":
    main()
