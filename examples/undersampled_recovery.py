"""Example 1 of the paper: under-sampled recovery of a large multi-port system.

Reproduces (at an adjustable scale) the paper's Figures 1 and 2: only 8
scattering matrices are sampled from a high-order, many-port system; the MFTI
Loewner pencil exhibits a sharp singular-value drop at the underlying order
and the recovered model overlays the original Bode response, while the VFTI
baseline fails on the same data.

Run with ``python examples/undersampled_recovery.py`` (takes a few seconds);
set ``FULL_SCALE = True`` for the paper's order-150 / 30-port setting.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.example1 import Example1Config, bode_experiment, singular_value_experiment
from repro.experiments.reporting import format_series, format_table

#: Use the paper's full order-150, 30-port configuration (slower) instead of a
#: scaled-down one.
FULL_SCALE = True


def main() -> None:
    if FULL_SCALE:
        config = Example1Config()
    else:
        config = Example1Config(order=60, n_ports=12, n_samples=8)
    print(f"Example 1 workload: order {config.order}, {config.n_ports} ports, "
          f"{config.n_samples} sampled scattering matrices\n")

    # --- Figure 1: singular-value patterns -------------------------------- #
    figure1 = singular_value_experiment(config)
    print("Figure 1 -- singular-value drop of the Loewner pencils")
    print(format_table(
        ["method", "detected order", "drop ratio at detected order"],
        [
            ["MFTI", figure1.mfti_detected_order, figure1.mfti_drop_ratio()],
            ["VFTI", figure1.vfti_detected_order, figure1.vfti_drop_ratio()],
        ],
    ))
    print(f"(true order = {figure1.true_order}, order + rank(D) = "
          f"{figure1.true_order_with_feedthrough})\n")

    mfti_pencil = figure1.mfti_singular_values["pencil"]
    around = slice(max(0, figure1.mfti_detected_order - 3), figure1.mfti_detected_order + 3)
    print("MFTI pencil singular values around the drop:")
    print(np.array2string(mfti_pencil[around], precision=3))
    print()

    # --- Figure 2: Bode comparison --------------------------------------- #
    figure2 = bode_experiment(config, n_validation=40)
    print("Figure 2 -- |S11| of the original system and both recovered models")
    print(format_series(
        figure2.frequencies_hz,
        {
            "original": figure2.original_magnitude,
            "MFTI": figure2.mfti_magnitude,
            "VFTI": figure2.vfti_magnitude,
        },
        x_label="frequency (Hz)",
    ))
    print(f"\naggregate relative error: MFTI {figure2.mfti_error:.2e}, "
          f"VFTI {figure2.vfti_error:.2e}")
    print("As in the paper, the 8 samples are adequate for MFTI but inadequate for VFTI.")


if __name__ == "__main__":
    main()
