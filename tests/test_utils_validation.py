"""Tests for :mod:`repro.utils.validation` and :mod:`repro.utils.rng`."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_nonnegative_integer,
    check_positive_integer,
    check_probability,
    check_square,
    ensure_1d,
    ensure_2d,
    ensure_complex_array,
    ensure_real_array,
)


class TestIntegerChecks:
    def test_positive_integer_ok(self):
        assert check_positive_integer(np.int64(4), "n") == 4

    def test_positive_integer_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_integer(0, "n")

    def test_positive_integer_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_integer(True, "n")

    def test_positive_integer_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_integer(2.0, "n")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative_integer(0, "n") == 0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_integer(-1, "n")


class TestProbabilityAndFinite:
    def test_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_probability_type(self):
        with pytest.raises(TypeError):
            check_probability("0.5", "p")

    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite(np.array([1.0, np.nan]), "x")

    def test_check_finite_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]), "x")


class TestArrayCoercion:
    def test_ensure_1d_from_scalar(self):
        assert ensure_1d(3.0, "x").shape == (1,)

    def test_ensure_1d_rejects_matrix(self):
        with pytest.raises(ValueError):
            ensure_1d(np.eye(2), "x")

    def test_ensure_2d_from_vector(self):
        assert ensure_2d([1.0, 2.0], "x").shape == (1, 2)

    def test_ensure_2d_from_scalar(self):
        assert ensure_2d(5.0, "x").shape == (1, 1)

    def test_ensure_2d_rejects_3d(self):
        with pytest.raises(ValueError):
            ensure_2d(np.zeros((2, 2, 2)), "x")

    def test_ensure_complex(self):
        out = ensure_complex_array([[1, 2]], "x")
        assert out.dtype == complex

    def test_ensure_real_rejects_complex(self):
        with pytest.raises(ValueError):
            ensure_real_array(np.array([1.0 + 1j]), "x")

    def test_ensure_real_accepts_tiny_imaginary(self):
        out = ensure_real_array(np.array([1.0 + 1e-15j]), "x")
        assert out.dtype == float

    def test_check_square(self):
        assert check_square(np.eye(3), "m").shape == (3, 3)
        with pytest.raises(ValueError):
            check_square(np.ones((2, 3)), "m")


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_reproducible(self):
        a = ensure_rng(42).normal(size=5)
        b = ensure_rng(42).normal(size=5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        assert len(children) == 3
        draws = [c.normal() for c in children]
        assert len(set(np.round(draws, 12))) == 3

    def test_spawn_rngs_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
