"""Tests for :mod:`repro.data.frequency` and :mod:`repro.data.dataset`."""

import numpy as np
import pytest

from repro.data.dataset import FrequencyData
from repro.data.frequency import (
    clustered_frequencies,
    linear_frequencies,
    log_frequencies,
    split_frequencies,
)


class TestFrequencyGrids:
    def test_linear_endpoints(self):
        freqs = linear_frequencies(1e3, 1e6, 10)
        assert freqs[0] == pytest.approx(1e3)
        assert freqs[-1] == pytest.approx(1e6)
        assert freqs.size == 10
        assert np.allclose(np.diff(freqs), np.diff(freqs)[0])

    def test_log_endpoints(self):
        freqs = log_frequencies(1e2, 1e8, 7)
        assert freqs[0] == pytest.approx(1e2)
        assert freqs[-1] == pytest.approx(1e8)
        assert np.allclose(np.diff(np.log10(freqs)), 1.0)

    def test_clustered_density(self):
        freqs = clustered_frequencies(1e6, 1e9, 100, cluster_fraction=0.85,
                                      cluster_start_fraction=0.7)
        assert freqs.size == 100
        assert np.all(np.diff(freqs) > 0)
        split = 1e6 + 0.7 * (1e9 - 1e6)
        high = np.count_nonzero(freqs >= split)
        assert high >= 80  # most samples in the top 30 % of the band

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_frequencies(1e6, 1e9, 10, cluster_fraction=1.5)
        with pytest.raises(ValueError):
            clustered_frequencies(1e9, 1e6, 10)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            linear_frequencies(0.0, 1e3, 5)
        with pytest.raises(ValueError):
            log_frequencies(1e3, 1e2, 5)

    def test_split_interleaves(self):
        freqs = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        right, left = split_frequencies(freqs)
        assert np.allclose(right, [1.0, 3.0, 5.0])
        assert np.allclose(left, [2.0, 4.0])

    def test_split_rejects_duplicates(self):
        with pytest.raises(ValueError):
            split_frequencies(np.array([1.0, 1.0, 2.0]))


@pytest.fixture
def toy_data(rng):
    freqs = np.array([1e3, 2e3, 4e3, 8e3])
    samples = rng.normal(size=(4, 2, 2)) + 1j * rng.normal(size=(4, 2, 2))
    return FrequencyData(freqs, samples, kind="S", label="toy")


class TestFrequencyData:
    def test_basic_properties(self, toy_data):
        assert toy_data.n_samples == 4
        assert len(toy_data) == 4
        assert toy_data.n_ports == 2
        assert toy_data.n_inputs == 2
        assert toy_data.n_outputs == 2
        assert np.allclose(toy_data.omega, 2 * np.pi * toy_data.frequencies_hz)
        assert np.allclose(toy_data.s_points.real, 0.0)

    def test_single_matrix_convenience(self):
        data = FrequencyData(np.array([1e3]), np.eye(2))
        assert data.samples.shape == (1, 2, 2)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            FrequencyData(np.array([1e3, 2e3]), np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            FrequencyData(np.array([2e3, 1e3]), np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            FrequencyData(np.array([-1.0]), np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            FrequencyData(np.array([1e3]), np.zeros((1, 2, 2)), kind="X")
        with pytest.raises(ValueError):
            FrequencyData(np.array([1e3]), np.full((1, 2, 2), np.nan))

    def test_samples_readonly(self, toy_data):
        with pytest.raises(ValueError):
            toy_data.samples[0, 0, 0] = 1.0

    def test_iteration(self, toy_data):
        items = list(toy_data)
        assert len(items) == 4
        freq, matrix = items[0]
        assert freq == pytest.approx(1e3)
        assert matrix.shape == (2, 2)

    def test_subset_sorts(self, toy_data):
        sub = toy_data.subset([3, 0])
        assert np.allclose(sub.frequencies_hz, [1e3, 8e3])
        assert np.allclose(sub.samples[0], toy_data.samples[0])

    def test_band_selection(self, toy_data):
        band = toy_data.band(1.5e3, 5e3)
        assert band.n_samples == 2

    def test_band_empty_raises(self, toy_data):
        with pytest.raises(ValueError):
            toy_data.band(1e6, 2e6)

    def test_decimate(self, toy_data):
        assert toy_data.decimate(2).n_samples == 2

    def test_with_samples_replaces(self, toy_data):
        new = toy_data.with_samples(np.zeros((4, 2, 2)), label="zeros")
        assert np.allclose(new.samples, 0.0)
        assert new.label == "zeros"

    def test_merge(self, toy_data):
        other = FrequencyData(np.array([3e3]), np.ones((1, 2, 2)), kind="S")
        merged = toy_data.merged_with(other)
        assert merged.n_samples == 5
        assert np.all(np.diff(merged.frequencies_hz) > 0)

    def test_merge_rejects_kind_mismatch(self, toy_data):
        other = FrequencyData(np.array([3e3]), np.ones((1, 2, 2)), kind="Z")
        with pytest.raises(ValueError):
            toy_data.merged_with(other)

    def test_conversion_roundtrip(self, rng):
        freqs = np.array([1e6, 1e7])
        z = rng.normal(size=(2, 3, 3)) + 1j * rng.normal(size=(2, 3, 3)) + 20 * np.eye(3)
        data = FrequencyData(freqs, z, kind="Z")
        s = data.converted("S")
        back = s.converted("Z")
        assert s.kind == "S"
        assert np.allclose(back.samples, data.samples)

    def test_conversion_rejects_generic(self, toy_data):
        h = FrequencyData(toy_data.frequencies_hz, toy_data.samples, kind="H")
        with pytest.raises(ValueError):
            h.converted("S")

    def test_magnitude_entry(self, toy_data):
        mag = toy_data.magnitude(1, 0)
        assert np.allclose(mag, np.abs(toy_data.samples[:, 1, 0]))
