"""Tests for Theorem 3.5 helpers and the result value objects."""

import numpy as np
import pytest

from repro.core import mfti
from repro.core.results import MacromodelResult, RecursiveDiagnostics, RecursiveIteration
from repro.core.sampling import minimal_sample_count, recommend_sample_count


class TestMinimalSampleCount:
    def test_empirical_value_matches_theorem(self):
        estimate = minimal_sample_count(150, 30, 30, rank_d=30)
        assert estimate.empirical == 6  # (150 + 30) / 30
        assert estimate.lower_bound == 5
        assert estimate.upper_bound == 6
        assert estimate.vfti_requirement == 150
        assert estimate.saving_factor == pytest.approx(25.0)

    def test_rectangular_uses_min_dimension(self):
        estimate = minimal_sample_count(20, 4, 10, rank_d=0)
        assert estimate.empirical == 5

    def test_block_size_rescales(self):
        full = minimal_sample_count(24, 6, 6, rank_d=0)
        half = minimal_sample_count(24, 6, 6, rank_d=0, block_size=3)
        assert full.empirical == 4
        assert half.empirical == 8

    def test_block_size_bounds(self):
        with pytest.raises(ValueError):
            minimal_sample_count(10, 4, 4, block_size=5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            minimal_sample_count(0, 2, 2)
        with pytest.raises(ValueError):
            minimal_sample_count(10, 2, 2, rank_d=-1)

    def test_recommend_sample_count_even_and_sufficient(self, small_system):
        count = recommend_sample_count(small_system)
        # empirical = (20 + 4) / 4 = 6, times the 1.25 safety factor, rounded even
        assert count % 2 == 0
        assert count >= 6

    def test_recommend_respects_block_size(self, small_system):
        assert recommend_sample_count(small_system, block_size=2) > recommend_sample_count(small_system)

    def test_recommend_safety_factor_validation(self, small_system):
        with pytest.raises(ValueError):
            recommend_sample_count(small_system, safety_factor=0.5)


class TestMacromodelResult:
    def test_errors_and_aggregate(self, small_data, dense_data):
        result = mfti(small_data)
        errors = result.errors_against(dense_data)
        assert errors.shape == (dense_data.n_samples,)
        agg = result.aggregate_error(dense_data)
        assert agg == pytest.approx(float(np.linalg.norm(errors) / np.sqrt(errors.size)))

    def test_frequency_response_shape(self, small_data):
        result = mfti(small_data)
        response = result.frequency_response([1e2, 1e3])
        assert response.shape == (2, 4, 4)

    def test_order_property(self, small_data):
        result = mfti(small_data)
        assert result.order == result.system.order

    def test_summary_mentions_method(self, small_data):
        assert "mfti" in mfti(small_data).summary()


class TestRecursiveDiagnostics:
    def _history(self):
        return (
            RecursiveIteration(0, 4, 20, 1e-1, 2e-1),
            RecursiveIteration(1, 8, 30, 1e-3, 2e-3),
        )

    def test_properties(self):
        diag = RecursiveDiagnostics(iterations=self._history(), converged=True, threshold=1e-2)
        assert diag.n_iterations == 2
        assert diag.final_holdout_error == pytest.approx(1e-3)

    def test_empty_history(self):
        diag = RecursiveDiagnostics(iterations=(), converged=False, threshold=1e-2)
        assert np.isnan(diag.final_holdout_error)
