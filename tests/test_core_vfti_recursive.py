"""Tests for the VFTI baseline and the recursive Algorithm 2."""

import pytest

from repro.core import RecursiveOptions, VftiOptions, mfti, recursive_mfti, vfti
from repro.data import add_measurement_noise, log_frequencies, sample_scattering
from repro.systems.random_systems import random_stable_system


class TestVfti:
    def test_undersampled_data_fails_for_vfti_but_not_mfti(self, small_data, dense_data):
        """The paper's core comparison: 8 samples recover the system via MFTI only."""
        mfti_err = mfti(small_data).aggregate_error(dense_data)
        vfti_err = vfti(small_data).aggregate_error(dense_data)
        assert mfti_err < 1e-8
        assert vfti_err > 1e-2
        assert vfti_err / max(mfti_err, 1e-300) > 1e4

    def test_vfti_recovers_with_enough_samples(self, dense_data):
        """Given ~order(Gamma) samples VFTI does recover the system."""
        system = random_stable_system(order=12, n_ports=3, feedthrough=0.1, seed=13)
        reference = sample_scattering(system, log_frequencies(1e1, 1e5, 40))
        count = 2 * (system.order + 3)  # comfortably above order + rank(D)
        data = sample_scattering(system, log_frequencies(1e1, 1e5, count))
        result = vfti(data)
        assert result.aggregate_error(reference) < 1e-7

    def test_vfti_is_mfti_with_unit_blocks(self, small_data):
        """VFTI and MFTI with t=1 and matching directions build pencils of the same size."""
        v = vfti(small_data)
        m = mfti(small_data, block_size=1)
        assert v.pencil.loewner.shape == m.pencil.loewner.shape

    def test_vfti_metadata(self, small_data):
        result = vfti(small_data, options=VftiOptions(direction_start=1))
        assert result.method == "vfti"
        assert result.metadata["direction_start"] == 1

    def test_vfti_interface_errors(self, small_data, small_system):
        with pytest.raises(ValueError):
            vfti(small_data, options=VftiOptions(), direction_start=1)
        with pytest.raises(ValueError):
            vfti(sample_scattering(small_system, [1e3]))
        with pytest.raises(ValueError):
            VftiOptions(direction_start=-1)


class TestRecursiveMfti:
    @pytest.fixture(scope="class")
    def noisy_oversampled(self):
        system = random_stable_system(order=16, n_ports=4, feedthrough=0.1, seed=23)
        clean = sample_scattering(system, log_frequencies(1e1, 1e5, 30))
        reference = sample_scattering(system, log_frequencies(1e1, 1e5, 60))
        noisy = add_measurement_noise(clean, relative_level=1e-4, seed=5)
        return system, noisy, reference

    def test_converges_below_threshold(self, noisy_oversampled):
        _, noisy, reference = noisy_oversampled
        options = RecursiveOptions(block_size=2, samples_per_iteration=3,
                                   error_threshold=1e-3,
                                   rank_method="tolerance", rank_tolerance=1e-4)
        result = recursive_mfti(noisy, options=options)
        recursion = result.metadata["recursion"]
        assert recursion.n_iterations >= 1
        assert recursion.converged
        assert result.aggregate_error(reference) < 5e-2

    def test_reports_only_pencil_singular_values(self, noisy_oversampled):
        """The recursive front-end skips the L / sL SVDs per iteration."""
        _, noisy, _ = noisy_oversampled
        result = recursive_mfti(noisy, options=RecursiveOptions(
            block_size=2, samples_per_iteration=3, error_threshold=1e-3,
            rank_method="tolerance", rank_tolerance=1e-4))
        assert set(result.singular_values) == {"pencil"}

    def test_uses_fewer_samples_than_available(self, noisy_oversampled):
        _, noisy, _ = noisy_oversampled
        options = RecursiveOptions(block_size=2, samples_per_iteration=2,
                                   error_threshold=5e-2,
                                   rank_method="tolerance", rank_tolerance=1e-4)
        result = recursive_mfti(noisy, options=options)
        assert result.n_samples_used < noisy.n_samples // 2

    def test_tight_threshold_uses_more_samples(self, noisy_oversampled):
        _, noisy, _ = noisy_oversampled
        loose = recursive_mfti(noisy, options=RecursiveOptions(
            block_size=2, samples_per_iteration=2, error_threshold=1e-1,
            rank_method="tolerance", rank_tolerance=1e-4))
        tight = recursive_mfti(noisy, options=RecursiveOptions(
            block_size=2, samples_per_iteration=2, error_threshold=1e-6,
            rank_method="tolerance", rank_tolerance=1e-4))
        assert tight.n_samples_used >= loose.n_samples_used

    def test_iteration_history_is_recorded(self, noisy_oversampled):
        _, noisy, _ = noisy_oversampled
        result = recursive_mfti(noisy, options=RecursiveOptions(
            block_size=2, samples_per_iteration=2, error_threshold=1e-6,
            max_iterations=3, rank_method="tolerance", rank_tolerance=1e-4))
        recursion = result.metadata["recursion"]
        assert recursion.n_iterations == 3
        assert not recursion.converged
        counts = [it.n_samples_used for it in recursion.iterations]
        assert counts == sorted(counts)

    def test_spread_selection_mode(self, noisy_oversampled):
        _, noisy, reference = noisy_oversampled
        result = recursive_mfti(noisy, options=RecursiveOptions(
            block_size=2, samples_per_iteration=3, error_threshold=1e-3,
            selection="spread", rank_method="tolerance", rank_tolerance=1e-4))
        assert result.aggregate_error(reference) < 1e-1

    def test_selected_pairs_recorded(self, noisy_oversampled):
        _, noisy, _ = noisy_oversampled
        result = recursive_mfti(noisy, options=RecursiveOptions(
            block_size=1, samples_per_iteration=2, error_threshold=1e-2,
            rank_method="tolerance", rank_tolerance=1e-4))
        pairs = result.metadata["selected_pairs"]
        assert len(pairs) == result.n_samples_used
        assert len(set(pairs)) == len(pairs)

    def test_interface_validation(self, small_data, noisy_data):
        with pytest.raises(ValueError):
            recursive_mfti(noisy_data, options=RecursiveOptions(), error_threshold=1e-3)
        with pytest.raises(ValueError):
            RecursiveOptions(samples_per_iteration=0)
        with pytest.raises(ValueError):
            RecursiveOptions(selection="random")
        with pytest.raises(ValueError):
            RecursiveOptions(max_iterations=0)
        with pytest.raises(ValueError):
            RecursiveOptions(error_threshold=-1.0)

    def test_requires_at_least_four_samples(self, small_system):
        data = sample_scattering(small_system, log_frequencies(1e2, 1e3, 3))
        with pytest.raises(ValueError):
            recursive_mfti(data)
