"""Tests for :mod:`repro.systems.analysis` and :mod:`repro.systems.balanced`."""

import numpy as np
import pytest

from repro.systems.analysis import (
    controllability_gramian,
    finite_poles,
    hankel_singular_values,
    is_stable,
    minimality_defect,
    observability_gramian,
    poles,
    spectral_abscissa,
)
from repro.systems.balanced import balanced_truncation
from repro.systems.statespace import DescriptorSystem, StateSpace


@pytest.fixture
def two_pole_system():
    """Two real poles at -1 and -3."""
    return StateSpace(np.diag([-1.0, -3.0]), [[1.0], [1.0]], [[1.0, 1.0]])


class TestPoles:
    def test_explicit_poles(self, two_pole_system):
        p = np.sort(finite_poles(two_pole_system).real)
        assert np.allclose(p, [-3.0, -1.0])

    def test_descriptor_infinite_pole(self):
        # singular E produces an infinite eigenvalue
        e = np.diag([1.0, 0.0])
        a = np.diag([-1.0, -1.0])
        sys_ = DescriptorSystem(e, a, np.ones((2, 1)), np.ones((1, 2)))
        all_poles = poles(sys_)
        assert np.sum(np.isinf(all_poles)) == 1
        assert np.allclose(finite_poles(sys_), [-1.0])

    def test_random_system_is_stable(self, small_system):
        assert is_stable(small_system)
        assert spectral_abscissa(small_system) < 0

    def test_spectral_abscissa_matches_max_real(self, two_pole_system):
        assert spectral_abscissa(two_pole_system) == pytest.approx(-1.0)

    def test_unstable_detected(self):
        sys_ = StateSpace([[1.0]], [[1.0]], [[1.0]])
        assert not is_stable(sys_)


class TestGramians:
    def test_controllability_lyapunov_residual(self, two_pole_system):
        p = controllability_gramian(two_pole_system)
        a, b = two_pole_system.A, two_pole_system.B
        residual = a @ p + p @ a.T + b @ b.T
        assert np.allclose(residual, 0.0, atol=1e-10)

    def test_observability_lyapunov_residual(self, two_pole_system):
        q = observability_gramian(two_pole_system)
        a, c = two_pole_system.A, two_pole_system.C
        residual = a.T @ q + q @ a + c.T @ c
        assert np.allclose(residual, 0.0, atol=1e-10)

    def test_gramian_requires_stability(self):
        unstable = StateSpace([[1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            controllability_gramian(unstable)
        with pytest.raises(ValueError):
            observability_gramian(unstable)

    def test_hankel_singular_values_sorted(self, small_system):
        hsv = hankel_singular_values(small_system)
        assert hsv.size == small_system.order
        assert np.all(np.diff(hsv) <= 1e-12)
        assert np.all(hsv >= 0)

    def test_minimality_defect_zero_for_minimal(self, two_pole_system):
        assert minimality_defect(two_pole_system) == 0

    def test_minimality_defect_detects_uncontrollable_state(self):
        a = np.diag([-1.0, -2.0])
        b = np.array([[1.0], [0.0]])  # second state uncontrollable
        c = np.array([[1.0, 1.0]])
        assert minimality_defect(StateSpace(a, b, c)) == 1


class TestBalancedTruncation:
    def test_reduces_order(self, small_system):
        reduced = balanced_truncation(small_system, 8)
        assert reduced.order == 8

    def test_error_within_bound(self, small_system):
        reduced, bound = balanced_truncation(small_system, 10, return_error_bound=True)
        freqs = np.logspace(1, 5, 25)
        full = small_system.frequency_response(freqs)
        approx = reduced.frequency_response(freqs)
        worst = max(np.linalg.norm(full[i] - approx[i], 2) for i in range(len(freqs)))
        assert worst <= bound * (1.0 + 1e-6)

    def test_full_order_is_near_exact(self, two_pole_system):
        reduced = balanced_truncation(two_pole_system, 2)
        s = 1j * 0.5
        assert np.allclose(reduced.transfer_function(s), two_pole_system.transfer_function(s),
                           atol=1e-8)

    def test_invalid_order_rejected(self, two_pole_system):
        with pytest.raises(ValueError):
            balanced_truncation(two_pole_system, 0)
        with pytest.raises(ValueError):
            balanced_truncation(two_pole_system, 5)
