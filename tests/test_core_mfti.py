"""Tests for Algorithm 1 (:func:`repro.core.mfti.mfti`) and its options."""

import numpy as np
import pytest

from repro.core import MftiOptions, mfti
from repro.core.mfti import resolve_block_sizes
from repro.core.sampling import minimal_sample_count
from repro.data import log_frequencies, sample_scattering
from repro.systems.random_systems import random_stable_system


class TestBlockSizeResolution:
    def test_none_uses_full_width(self):
        assert resolve_block_sizes(None, 4, 3) == [3, 3, 3, 3]

    def test_integer_broadcast(self):
        assert resolve_block_sizes(2, 3, 5) == [2, 2, 2]

    def test_sequence_passthrough(self):
        assert resolve_block_sizes([1, 2, 3], 3, 3) == [1, 2, 3]

    def test_sequence_length_mismatch(self):
        with pytest.raises(ValueError):
            resolve_block_sizes([1, 2], 3, 3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            resolve_block_sizes(5, 3, 4)
        with pytest.raises(ValueError):
            resolve_block_sizes([0, 1, 1], 3, 4)


class TestMftiRecovery:
    def test_exact_recovery_from_few_samples(self, small_system, small_data, dense_data):
        """The headline claim: recover an order-20+D system from 8 matrix samples."""
        result = mfti(small_data)
        expected_order = small_system.order + np.linalg.matrix_rank(small_system.D)
        assert result.order == expected_order
        assert result.aggregate_error(dense_data) < 1e-8

    def test_model_is_real_and_stable_enough(self, small_data):
        result = mfti(small_data)
        assert result.system.is_real

    def test_minimal_sampling_count_sufficient(self, small_system, dense_data):
        """Sampling exactly the Theorem-3.5 empirical count recovers the system."""
        estimate = minimal_sample_count(small_system.order, 4, 4, rank_d=4)
        count = estimate.empirical + estimate.empirical % 2
        data = sample_scattering(small_system, log_frequencies(1e1, 1e5, count))
        result = mfti(data)
        assert result.aggregate_error(dense_data) < 1e-6

    def test_smaller_block_size_needs_more_samples(self, small_system, dense_data):
        """With t=1 (the VFTI amount of information) 8 samples are not enough."""
        data = sample_scattering(small_system, log_frequencies(1e1, 1e5, 8))
        full = mfti(data)
        starved = mfti(data, block_size=1)
        assert full.aggregate_error(dense_data) < 1e-8
        assert starved.aggregate_error(dense_data) > 1e-3

    def test_per_sample_block_sizes(self, small_data, dense_data):
        sizes = [4, 4, 4, 4, 2, 2, 2, 2]
        result = mfti(small_data, block_size=sizes)
        assert result.metadata["block_sizes"] == tuple(sizes)
        assert result.aggregate_error(dense_data) < 1e-2

    def test_random_directions(self, small_data, dense_data):
        result = mfti(small_data, options=MftiOptions(direction_kind="random", direction_seed=3))
        assert result.aggregate_error(dense_data) < 1e-7

    def test_explicit_order(self, small_data):
        result = mfti(small_data, order=10)
        assert result.order == 10

    def test_oversampled_data_still_recovers(self, small_system, many_sample_data, dense_data):
        result = mfti(many_sample_data)
        assert result.order == small_system.order + np.linalg.matrix_rank(small_system.D)
        assert result.aggregate_error(dense_data) < 1e-7

    def test_result_metadata(self, small_data):
        result = mfti(small_data)
        assert result.method == "mfti"
        assert result.n_samples_used == small_data.n_samples
        assert result.elapsed_seconds > 0
        assert set(result.singular_values) == {"loewner", "shifted_loewner", "pencil"}
        assert result.pencil is not None and result.pencil.is_real
        assert result.realization.mode == "two-sided"
        assert "order=" in result.summary() or "order" in result.summary()

    def test_interpolation_conditions_hold(self, small_data):
        """Eq. (10): the recovered model satisfies the tangential constraints."""
        result = mfti(small_data)
        right, left = result.tangential.interpolation_residuals(result.system)
        scale = np.linalg.norm(result.tangential.W)
        assert np.max(right) / scale < 1e-8
        assert np.max(left) / scale < 1e-8

    def test_full_matrix_match_when_square(self, small_data):
        """Lemma 3.1: with t = m = p the model matches every sampled matrix (eq. 3)."""
        result = mfti(small_data)
        for freq, sample in small_data:
            h = result.system.transfer_function(1j * 2 * np.pi * freq)
            assert np.linalg.norm(h - sample) / np.linalg.norm(sample) < 1e-8


class TestMftiInterface:
    def test_options_and_kwargs_exclusive(self, small_data):
        with pytest.raises(ValueError):
            mfti(small_data, options=MftiOptions(), block_size=2)

    def test_needs_two_samples(self, small_system):
        data = sample_scattering(small_system, [1e3])
        with pytest.raises(ValueError):
            mfti(data)

    def test_invalid_option_values(self):
        with pytest.raises(ValueError):
            MftiOptions(svd_mode="nope")
        with pytest.raises(ValueError):
            MftiOptions(rank_method="nope")
        with pytest.raises(ValueError):
            MftiOptions(rank_tolerance=-1.0)
        with pytest.raises(ValueError):
            MftiOptions(order=0)
        with pytest.raises(ValueError):
            MftiOptions(direction_kind="diagonal")
        with pytest.raises(ValueError):
            MftiOptions(real_output=True, include_conjugates=False)

    def test_rectangular_data_supported(self, dense_data):
        """Non-square sample matrices (more outputs than inputs) still interpolate."""
        system = random_stable_system(order=10, n_ports=3, feedthrough=0.1, seed=8)
        rect = system.subsystem(outputs=[0, 1, 2], inputs=[0, 1])
        data = sample_scattering(rect, log_frequencies(1e1, 1e5, 10))
        result = mfti(data)
        reference = rect.frequency_response(data.frequencies_hz)
        err = np.linalg.norm(result.frequency_response(data.frequencies_hz) - reference)
        assert err / np.linalg.norm(reference) < 1e-6
