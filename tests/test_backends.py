"""Tests of the pluggable array-backend shim (:mod:`repro.backends`).

The contract under test has three legs:

* **registry** -- name resolution, availability probing, and the
  kwarg > scope > environment > numpy precedence order,
* **bitwise pinning** -- the ``numpy`` backend executes the exact call
  sequence of the pre-shim kernels, so explicit ``backend="numpy"``,
  no backend at all, and hand-inlined pre-shim replicas all agree to the
  byte (property-tested across random workloads),
* **compact fast-VF solver** -- agreement with the stacked-``lstsq``
  oracle on well-conditioned systems and the automatic fallback on
  near-rank-deficient bases.

Optional cupy/torch backends are covered by equivalence tests that skip
(visibly, not silently) when the library is absent.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import (
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailableError,
    ENV_VARIABLE,
    available_backends,
    get_backend,
    resolve_backend,
    use_backend,
)
from repro.core.assembly import (
    VF_COMPACT_CONDITION_LIMIT,
    PoleGrouping,
    partial_fraction_basis,
    vf_scaling_blocks,
    vf_scaling_solve,
    vf_scaling_solve_reference,
)
from repro.utils.linalg import realify

BACKEND_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _vf_workload(seed: int, n_ports: int = 3, n_poles: int = 6, n_samples: int = 40):
    """A small well-conditioned fast-VF workload (phi, responses, q1)."""
    rng = np.random.default_rng(seed)
    n_pairs = n_poles // 2
    alpha = -0.5 - rng.random(n_pairs)
    beta = 1.0 + 29.0 * rng.random(n_pairs)
    poles = np.empty(2 * n_pairs, dtype=complex)
    poles[0::2] = alpha + 1j * beta
    poles[1::2] = alpha - 1j * beta
    s_points = 1j * np.linspace(0.5, 30.0, n_samples)
    n_entries = n_ports * n_ports
    responses = rng.standard_normal((n_samples, n_entries)) + 1j * rng.standard_normal(
        (n_samples, n_entries)
    )
    grouping = PoleGrouping.from_poles(poles)
    phi = partial_fraction_basis(s_points, poles, grouping)
    phi1_real = realify(np.hstack([phi, np.ones((n_samples, 1))]))
    q1, _ = np.linalg.qr(phi1_real)
    return phi, responses, q1


class TestRegistry:
    def test_numpy_backend_always_available(self):
        backend = get_backend("numpy")
        assert isinstance(backend, ArrayBackend)
        assert backend.name == "numpy"
        assert backend.is_numpy
        assert backend.xp is np
        assert "numpy" in available_backends()

    def test_backend_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("dask")

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_optional_backends_probe_cleanly(self, name):
        """An absent optional backend raises the clean unavailable error."""
        if name in available_backends():
            assert get_backend(name).name == name
        else:
            with pytest.raises(BackendUnavailableError, match=name):
                get_backend(name)

    def test_backend_passthrough(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend
        assert resolve_backend(backend) is backend


class TestPrecedence:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VARIABLE, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_variable_is_read(self, monkeypatch):
        monkeypatch.setenv(ENV_VARIABLE, "numpy")
        assert resolve_backend(None) is get_backend("numpy")
        monkeypatch.setenv(ENV_VARIABLE, "dask")
        with pytest.raises(ValueError, match="unknown array backend"):
            resolve_backend(None)

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VARIABLE, "numpy")
        scoped = dataclasses.replace(get_backend("numpy"), name="scoped")
        with use_backend(scoped):
            assert resolve_backend(None) is scoped
        assert resolve_backend(None) is get_backend("numpy")

    def test_explicit_argument_beats_scope(self):
        explicit = dataclasses.replace(get_backend("numpy"), name="explicit")
        scoped = dataclasses.replace(get_backend("numpy"), name="scoped")
        with use_backend(scoped):
            assert resolve_backend(explicit) is explicit

    def test_none_scope_is_noop(self, monkeypatch):
        monkeypatch.delenv(ENV_VARIABLE, raising=False)
        with use_backend(None) as backend:
            assert backend.name == "numpy"
            assert resolve_backend(None) is get_backend("numpy")

    def test_scopes_nest(self):
        outer = dataclasses.replace(get_backend("numpy"), name="outer")
        inner = dataclasses.replace(get_backend("numpy"), name="inner")
        with use_backend(outer):
            with use_backend(inner):
                assert resolve_backend(None) is inner
            assert resolve_backend(None) is outer


class TestNumpyBitwise:
    """The numpy backend is byte-identical to the pre-shim kernels."""

    @staticmethod
    def _blocks_preshim(phi, responses, q1):
        """The stacked fast-VF projection exactly as assembled before the shim."""
        n_samples, n_entries = responses.shape
        weighted = -responses[:, :, np.newaxis] * phi[:, np.newaxis, :]
        weighted = np.concatenate([weighted.real, weighted.imag], axis=0)
        rhs = np.concatenate([responses.real, responses.imag], axis=0)
        flat = weighted.reshape(2 * n_samples, -1)
        projected = flat - q1 @ (q1.T @ flat)
        projected = projected.reshape(2 * n_samples, n_entries, -1)
        rhs_projected = rhs - q1 @ (q1.T @ rhs)
        a_stacked = np.transpose(projected, (1, 0, 2)).reshape(
            n_entries * 2 * n_samples, -1
        )
        b_stacked = rhs_projected.T.reshape(-1)
        return a_stacked, b_stacked

    @BACKEND_SETTINGS
    @given(seed=st.integers(0, 2**16), n_ports=st.integers(1, 4))
    def test_vf_blocks_bitwise(self, seed, n_ports):
        phi, responses, q1 = _vf_workload(seed, n_ports=n_ports)
        want_a, want_b = self._blocks_preshim(phi, responses, q1)
        for backend in (None, "numpy", get_backend("numpy")):
            got_a, got_b = vf_scaling_blocks(phi, responses, q1, backend=backend)
            assert np.array_equal(got_a, want_a)
            assert np.array_equal(got_b, want_b)

    @BACKEND_SETTINGS
    @given(seed=st.integers(0, 2**16))
    def test_basis_bitwise_across_selection(self, seed):
        phi, _, _ = _vf_workload(seed)
        rng = np.random.default_rng(seed)
        poles = -rng.random(4) - 1.0
        grouping = PoleGrouping.from_poles(poles)
        s_points = 1j * np.linspace(1.0, 10.0, 16)
        default = partial_fraction_basis(s_points, poles, grouping)
        explicit = partial_fraction_basis(s_points, poles, grouping, backend="numpy")
        assert np.array_equal(default, explicit)
        assert phi.dtype == np.complex128

    @BACKEND_SETTINGS
    @given(seed=st.integers(0, 2**16))
    def test_evaluation_bitwise_across_selection(self, seed):
        from repro.systems.evaluation import evaluate_descriptor, evaluate_pointwise
        from repro.systems.random_systems import random_stable_system

        system = random_stable_system(order=8, n_ports=2, feedthrough=0.1,
                                      seed=seed % 1000)
        points = 1j * np.linspace(1.0, 1e4, 12)
        default = evaluate_descriptor(system.E, system.A, system.B, system.C,
                                      system.D, points, method="solve")
        explicit = evaluate_descriptor(system.E, system.A, system.B, system.C,
                                       system.D, points, method="solve",
                                       backend="numpy")
        scoped_backend = get_backend("numpy")
        with use_backend(scoped_backend):
            scoped = evaluate_descriptor(system.E, system.A, system.B, system.C,
                                         system.D, points, method="solve")
        assert np.array_equal(default, explicit)
        assert np.array_equal(default, scoped)
        loop = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                  system.D, points)
        assert np.array_equal(default, loop)

    def test_spectral_bitwise_across_selection(self):
        from repro.systems.spectral import build_spectral_grid, impulse_from_spectrum

        rng = np.random.default_rng(7)
        grid = build_spectral_grid(1e-6, 16)
        n_freq = grid.n_fft // 2 + 1
        spectrum = rng.standard_normal((n_freq, 2, 2)) + 1j * rng.standard_normal(
            (n_freq, 2, 2)
        )
        default = impulse_from_spectrum(spectrum, grid)
        explicit = impulse_from_spectrum(spectrum, grid, backend="numpy")
        preshim = (np.fft.irfft(spectrum, n=grid.n_fft, axis=-3)
                   / grid.dt)[..., :grid.n_points, :, :]
        assert np.array_equal(default, explicit)
        assert np.array_equal(default, preshim)


class TestCompactSolver:
    @BACKEND_SETTINGS
    @given(seed=st.integers(0, 2**16), n_ports=st.integers(2, 5))
    def test_agrees_with_reference_when_well_conditioned(self, seed, n_ports):
        phi, responses, q1 = _vf_workload(seed, n_ports=n_ports)
        reference = vf_scaling_solve_reference(phi, responses, q1)
        compact = vf_scaling_solve(phi, responses, q1)
        relative = np.linalg.norm(compact - reference) / np.linalg.norm(reference)
        assert relative <= 1e-10, f"compact solution drifted {relative:.2e}"

    def test_degenerate_basis_falls_back_to_reference(self):
        """A duplicated basis column defeats the Cholesky: exact fallback."""
        phi, responses, q1 = _vf_workload(3, n_ports=2)
        phi_bad = phi.copy()
        phi_bad[:, 1] = phi_bad[:, 0]  # rank-deficient weighted blocks
        fallback = vf_scaling_solve(phi_bad, responses, q1)
        reference = vf_scaling_solve_reference(phi_bad, responses, q1)
        assert np.array_equal(fallback, reference)

    def test_near_rank_deficient_basis_falls_back(self):
        """Clustered poles push the conditioning gate: exact fallback."""
        rng = np.random.default_rng(11)
        n_samples, n_entries = 40, 4
        poles = np.array([-1.0, -1.0 - 1e-13, -2.0, -2.0 - 1e-13])
        grouping = PoleGrouping.from_poles(poles)
        s_points = 1j * np.linspace(0.5, 30.0, n_samples)
        phi = partial_fraction_basis(s_points, poles, grouping)
        responses = rng.standard_normal((n_samples, n_entries)) + (
            1j * rng.standard_normal((n_samples, n_entries))
        )
        phi1_real = realify(np.hstack([phi, np.ones((n_samples, 1))]))
        q1, _ = np.linalg.qr(phi1_real)
        fallback = vf_scaling_solve(phi, responses, q1)
        reference = vf_scaling_solve_reference(phi, responses, q1)
        assert np.array_equal(fallback, reference)

    def test_tight_condition_limit_forces_fallback(self):
        phi, responses, q1 = _vf_workload(5)
        forced = vf_scaling_solve(phi, responses, q1, condition_limit=1.0)
        reference = vf_scaling_solve_reference(phi, responses, q1)
        assert np.array_equal(forced, reference)
        assert VF_COMPACT_CONDITION_LIMIT > 1.0


class TestResidueQrReuse:
    def test_qr_reuse_matches_lstsq(self):
        from repro.vectorfitting.fitting import _solve_residue_system

        phi, responses, _ = _vf_workload(9, n_ports=2)
        phi1_real = realify(np.hstack([phi, np.ones((phi.shape[0], 1))]))
        responses_real = realify(responses)
        q1, r1 = np.linalg.qr(phi1_real)
        via_qr = _solve_residue_system(phi1_real, responses_real, (q1, r1))
        via_lstsq = _solve_residue_system(phi1_real, responses_real, None)
        assert np.allclose(via_qr, via_lstsq, rtol=0, atol=1e-11)

    def test_wide_basis_falls_back_to_minimum_norm(self):
        """More poles than realified samples: reduced R is not square, so
        the reuse path must defer to lstsq's minimum-norm solve (this is
        the Table-1 280-pole VF configuration)."""
        from repro.vectorfitting.fitting import _solve_residue_system

        phi, responses, _ = _vf_workload(13, n_ports=2, n_poles=30, n_samples=10)
        phi1_real = realify(np.hstack([phi, np.ones((phi.shape[0], 1))]))
        responses_real = realify(responses)
        assert phi1_real.shape[0] < phi1_real.shape[1]
        q1, r1 = np.linalg.qr(phi1_real)
        guarded = _solve_residue_system(phi1_real, responses_real, (q1, r1))
        minimum_norm = np.linalg.lstsq(phi1_real, responses_real, rcond=None)[0]
        assert np.array_equal(guarded, minimum_norm)

    def test_rank_deficient_basis_falls_back_to_lstsq(self):
        phi, responses, _ = _vf_workload(9, n_ports=2)
        phi1_real = realify(np.hstack([phi, np.ones((phi.shape[0], 1))]))
        phi1_real[:, 2] = phi1_real[:, 1]  # exactly rank-deficient
        responses_real = realify(responses)
        from repro.vectorfitting.fitting import _solve_residue_system

        q1, r1 = np.linalg.qr(phi1_real)
        guarded = _solve_residue_system(phi1_real, responses_real, (q1, r1))
        minimum_norm = np.linalg.lstsq(phi1_real, responses_real, rcond=None)[0]
        assert np.array_equal(guarded, minimum_norm)


class TestEngineIntegration:
    def test_engine_validates_backend_name(self):
        from repro.batch.engine import BatchEngine

        with pytest.raises(ValueError, match="backend"):
            BatchEngine(backend="dask")

    def test_engine_config_round_trips_backend(self):
        from repro.batch.engine import BatchEngine

        engine = BatchEngine(executor="serial", backend="numpy")
        config = engine.to_config()
        assert config["backend"] == "numpy"
        rebuilt = BatchEngine.from_config(config)
        assert rebuilt.backend == "numpy"
        assert "backend" not in BatchEngine(executor="serial").to_config()

    def test_engine_from_env_reads_backend(self, monkeypatch):
        from repro.batch.engine import BatchEngine

        monkeypatch.setenv(ENV_VARIABLE, "numpy")
        assert BatchEngine.from_env().backend == "numpy"
        monkeypatch.delenv(ENV_VARIABLE)
        assert BatchEngine.from_env().backend is None

    def test_run_job_backend_is_bitwise_and_key_invariant(self, small_data):
        from repro.batch.jobs import FitJob, run_job
        from repro.batch.sharding import job_fingerprint
        from repro.serve.protocol import request_key

        job = FitJob(small_data, method="mfti")
        plain = run_job(0, job)
        selected = run_job(0, job, backend="numpy")
        assert plain.ok and selected.ok
        assert plain.error_vs_data == selected.error_vs_data
        assert np.array_equal(plain.result.system.A, selected.result.system.A)
        assert np.array_equal(plain.result.system.C, selected.result.system.C)

        # the backend is an execution detail: fingerprints and request keys
        # are functions of the job alone and must not move under a scope
        key = request_key(job)
        fingerprint = job_fingerprint(job)
        with use_backend("numpy"):
            assert request_key(job) == key
            assert job_fingerprint(job) == fingerprint

    def test_run_job_unavailable_backend_fails_the_job_not_the_batch(self, small_data):
        from repro.batch.jobs import FitJob, run_job

        missing = [name for name in BACKEND_NAMES if name not in available_backends()]
        if not missing:
            pytest.skip("every optional backend is installed here")
        record = run_job(0, FitJob(small_data, method="mfti"), backend=missing[0])
        assert not record.ok
        assert record.error_type == "BackendUnavailableError"

    def test_cli_parses_backend_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["fit", "x.s2p", "--backend", "numpy"],
            ["batch", "--workload", "w", "--backend", "numpy"],
            ["serve", "--backend", "numpy"],
            ["shard", "run", "m.json", "--backend", "numpy"],
            ["shard", "dispatch", "--workload", "w", "--shards", "1",
             "--out-dir", "d", "--backend", "numpy"],
        ):
            assert parser.parse_args(argv).backend == "numpy"
        with pytest.raises(SystemExit):
            parser.parse_args(["batch", "--workload", "w", "--backend", "dask"])


@pytest.mark.parametrize("name", ["cupy", "torch"])
class TestOptionalBackendEquivalence:
    """Device backends agree with numpy to tolerance (skip when absent)."""

    def _backend_or_skip(self, name):
        if name not in available_backends():
            pytest.skip(f"optional array backend {name!r} is not installed")
        return get_backend(name)

    def test_vf_blocks_close(self, name):
        backend = self._backend_or_skip(name)
        phi, responses, q1 = _vf_workload(21)
        want_a, want_b = vf_scaling_blocks(phi, responses, q1)
        got_a, got_b = vf_scaling_blocks(phi, responses, q1, backend=backend)
        assert np.allclose(got_a, want_a, rtol=1e-8, atol=1e-10)
        assert np.allclose(got_b, want_b, rtol=1e-8, atol=1e-10)

    def test_compact_solve_close(self, name):
        backend = self._backend_or_skip(name)
        phi, responses, q1 = _vf_workload(22)
        want = vf_scaling_solve(phi, responses, q1)
        got = vf_scaling_solve(phi, responses, q1, backend=backend)
        assert np.allclose(got, want, rtol=1e-6, atol=1e-9)

    def test_evaluation_close(self, name):
        from repro.systems.evaluation import evaluate_descriptor
        from repro.systems.random_systems import random_stable_system

        backend = self._backend_or_skip(name)
        system = random_stable_system(order=8, n_ports=2, feedthrough=0.1, seed=23)
        points = 1j * np.linspace(1.0, 1e4, 12)
        want = evaluate_descriptor(system.E, system.A, system.B, system.C,
                                   system.D, points, method="solve")
        got = evaluate_descriptor(system.E, system.A, system.B, system.C,
                                  system.D, points, method="solve",
                                  backend=backend)
        assert np.allclose(got, want, rtol=1e-6, atol=1e-9)

    def test_spectral_close(self, name):
        from repro.systems.spectral import build_spectral_grid, impulse_from_spectrum

        backend = self._backend_or_skip(name)
        rng = np.random.default_rng(29)
        grid = build_spectral_grid(1e-6, 16)
        n_freq = grid.n_fft // 2 + 1
        spectrum = rng.standard_normal((n_freq, 2, 2)) + 1j * rng.standard_normal(
            (n_freq, 2, 2)
        )
        want = impulse_from_spectrum(spectrum, grid)
        got = impulse_from_spectrum(spectrum, grid, backend=backend)
        assert np.allclose(got, want, rtol=1e-8, atol=1e-12)
