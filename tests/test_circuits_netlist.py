"""Tests for :mod:`repro.circuits.elements` and :mod:`repro.circuits.netlist`."""

import pytest

from repro.circuits.elements import (
    Capacitor,
    CurrentProbePort,
    Inductor,
    MutualInductance,
    Port,
    Resistor,
)
from repro.circuits.netlist import Netlist


class TestElements:
    def test_resistor_positive_value(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", -1.0)

    def test_capacitor_positive_value(self):
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "b", 0.0)

    def test_inductor_positive_value(self):
        with pytest.raises(ValueError):
            Inductor("L1", "a", "b", -1e-9)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "a", 1.0)

    def test_mutual_coupling_range(self):
        with pytest.raises(ValueError):
            MutualInductance("K1", "L1", "L2", 1.5)
        with pytest.raises(ValueError):
            MutualInductance("K1", "L1", "L1", 0.5)

    def test_port_terminals_distinct(self):
        with pytest.raises(ValueError):
            Port("P1", "a", "a")

    def test_port_reference_impedance_positive(self):
        with pytest.raises(ValueError):
            Port("P1", "a", "0", reference_impedance=-50.0)

    def test_nodes_property(self):
        r = Resistor("R1", "a", "b", 1.0)
        assert r.nodes == ("a", "b")
        p = Port("P1", "x", "0")
        assert p.nodes == ("x", "0")


class TestNetlist:
    def test_builder_methods_autoname(self):
        net = Netlist()
        net.add_resistor("a", "0", 10.0)
        net.add_capacitor("a", "0", 1e-12)
        net.add_inductor("a", "b", 1e-9)
        net.add_port("a")
        assert len(net) == 4
        names = [e.name for e in net]
        assert names == ["R1", "C1", "L1", "P1"]

    def test_duplicate_name_rejected(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0, name="R1")
        with pytest.raises(ValueError):
            net.add_resistor("b", "0", 1.0, name="R1")

    def test_nodes_exclude_ground(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0)
        net.add_resistor("a", "b", 1.0)
        assert net.nodes == ("a", "b")

    def test_node_index_order(self):
        net = Netlist()
        net.add_resistor("x", "y", 1.0)
        net.add_resistor("y", "z", 1.0)
        assert net.node_index() == {"x": 0, "y": 1, "z": 2}

    def test_ports_and_inductor_views(self):
        net = Netlist()
        net.add_inductor("a", "0", 1e-9)
        net.add_port("a")
        net.add_probe_port("a")
        assert len(net.ports) == 2
        assert len(net.inductors) == 1
        assert net.n_ports == 2
        assert isinstance(net.ports[1], CurrentProbePort)

    def test_validate_requires_port(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0)
        with pytest.raises(ValueError, match="no ports"):
            net.validate()

    def test_validate_mutual_references(self):
        net = Netlist()
        net.add_inductor("a", "0", 1e-9, name="L1")
        net.add_mutual("L1", "L2", 0.5)
        net.add_port("a")
        with pytest.raises(ValueError, match="unknown inductor"):
            net.validate()

    def test_validate_floating_port(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0)
        net.add_port("floating")
        with pytest.raises(ValueError, match="not connected"):
            net.validate()

    def test_validate_passes_for_consistent_netlist(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0)
        net.add_port("a")
        net.validate()

    def test_add_rejects_non_element(self):
        net = Netlist()
        with pytest.raises(TypeError):
            net.add("not an element")

    def test_summary_mentions_counts(self):
        net = Netlist(title="demo")
        net.add_resistor("a", "0", 1.0)
        net.add_port("a")
        text = net.summary()
        assert "demo" in text
        assert "1 Resistor" in text
