"""Equivalence and structure tests for the batched fit-assembly layer.

The contract of :mod:`repro.core.assembly` is that the refactor is
*numerically invisible*: every batched kernel agrees with its looped
reference (bitwise where the operations are elementwise, to round-off where
GEMM batching reorders summations), the slicing-stable product makes the
incrementally grown Loewner pencil bitwise identical to the from-scratch
build, and ``sort_poles`` always produces a groupable pole array -- including
on the previously untested "numerically unpaired complex pole" leftover path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.assembly import (
    IncrementalLoewner,
    PoleGrouping,
    partial_fraction_basis,
    partial_fraction_basis_reference,
    relocation_matrices,
    relocation_matrices_reference,
    residues_from_coefficients,
    residues_from_coefficients_reference,
    vf_scaling_blocks,
    vf_scaling_blocks_reference,
)
from repro.core.loewner import build_loewner_pencil
from repro.core.tangential import LeftBlock, RightBlock, TangentialData
from repro.utils.linalg import realify, rowcol_product
from repro.vectorfitting.poles import initial_poles, sort_poles

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
def _make_poles(n_reals: int, n_pairs: int, seed: int) -> np.ndarray:
    """A well-formed pole array: real singles + adjacent conjugate pairs."""
    rng = np.random.default_rng(seed)
    poles: list[complex] = [complex(-float(r), 0.0) for r in rng.uniform(0.1, 50.0, n_reals)]
    for _ in range(n_pairs):
        a = complex(-rng.uniform(0.1, 10.0), rng.uniform(0.5, 100.0))
        if rng.uniform() < 0.5:
            poles.extend([a, np.conj(a)])
        else:
            poles.extend([np.conj(a), a])
    return np.asarray(poles, dtype=complex)


pole_shapes = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
).filter(lambda shape: shape[0] + shape[1] > 0)


def _make_tangential(n_right: int, n_left: int, n_ports: int, block: int,
                     seed: int) -> TangentialData:
    """Random conjugate-paired tangential data with disjoint point sets."""
    rng = np.random.default_rng(seed)
    t = min(block, n_ports)

    def _right(i):
        point = 1j * (1.0 + 2.0 * i)
        directions = rng.normal(size=(n_ports, t)) + 1j * rng.normal(size=(n_ports, t))
        values = rng.normal(size=(n_ports, t)) + 1j * rng.normal(size=(n_ports, t))
        blk = RightBlock(point, directions, values)
        return [blk, blk.conjugate()]

    def _left(i):
        point = 1j * (2.0 + 2.0 * i)
        directions = rng.normal(size=(t, n_ports)) + 1j * rng.normal(size=(t, n_ports))
        values = rng.normal(size=(t, n_ports)) + 1j * rng.normal(size=(t, n_ports))
        blk = LeftBlock(point, directions, values)
        return [blk, blk.conjugate()]

    rights = [blk for i in range(n_right) for blk in _right(i)]
    lefts = [blk for i in range(n_left) for blk in _left(i)]
    return TangentialData(rights, lefts, conjugate_pairs=True)


# --------------------------------------------------------------------- #
# sort_poles / PoleGrouping round trips
# --------------------------------------------------------------------- #
class TestSortPolesProperties:
    @given(pole_shapes)
    @common_settings
    def test_sorted_poles_are_always_groupable(self, shape):
        n_reals, n_pairs, seed = shape
        rng = np.random.default_rng(seed)
        poles = _make_poles(n_reals, n_pairs, seed)
        poles = poles[rng.permutation(poles.size)]
        ordered = sort_poles(poles)
        grouping = PoleGrouping.from_poles(ordered)  # must not raise
        assert ordered.size == poles.size
        assert grouping.real_indices.size + 2 * grouping.pair_first.size == poles.size

    @given(pole_shapes)
    @common_settings
    def test_sort_is_idempotent(self, shape):
        n_reals, n_pairs, seed = shape
        poles = _make_poles(n_reals, n_pairs, seed)
        ordered = sort_poles(poles)
        assert np.array_equal(sort_poles(ordered), ordered)

    @given(pole_shapes)
    @common_settings
    def test_sort_preserves_multiset_of_paired_input(self, shape):
        n_reals, n_pairs, seed = shape
        rng = np.random.default_rng(seed)
        poles = _make_poles(n_reals, n_pairs, seed)
        shuffled = poles[rng.permutation(poles.size)]
        ordered = sort_poles(shuffled)
        assert np.array_equal(np.sort_complex(ordered), np.sort_complex(poles))

    @given(pole_shapes)
    @common_settings
    def test_conjugate_pairs_adjacent_positive_first(self, shape):
        n_reals, n_pairs, seed = shape
        poles = _make_poles(n_reals, n_pairs, seed)
        ordered = sort_poles(poles)
        grouping = PoleGrouping.from_poles(ordered)
        first = ordered[grouping.pair_first]
        second = ordered[grouping.pair_second]
        assert np.all(first.imag > 0)
        assert np.array_equal(second, np.conj(first))

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=2**31 - 1))
    @common_settings
    def test_unpaired_leftovers_become_real_poles(self, n_reals, n_pairs, seed):
        """The leftover path: a dangling positive-imag pole must not survive."""
        poles = _make_poles(n_reals, n_pairs, seed).tolist()
        poles.append(complex(-0.5, 7.25))  # unpaired, positive imaginary part
        ordered = sort_poles(np.asarray(poles))
        grouping = PoleGrouping.from_poles(ordered)  # must not raise
        assert ordered.size == len(poles)
        # the dangling pole was replaced by a real pole (odd complex count)
        n_complex = ordered.size - grouping.real_indices.size
        assert n_complex % 2 == 0

    def test_upper_half_plane_input_is_auto_mirrored(self):
        """The public-API convention: unpaired positives gain mirrors while room allows."""
        poles = np.array([-1.0 + 2.0j, -1.0 - 2.0j, -3.0 + 5.0j, -4.0 + 6.0j])
        ordered = sort_poles(poles)
        assert np.array_equal(
            ordered, np.array([-1.0 + 2.0j, -1.0 - 2.0j, -3.0 + 5.0j, -3.0 - 5.0j]))

    def test_leftover_fills_are_distinct(self):
        """Each leftover pole is realified at its own real part (no duplicate columns)."""
        poles = np.array([-2.0 + 1.0j, -6.0 - 9.0j, -7.0 - 8.0j, -8.0 - 3.0j])
        ordered = sort_poles(poles)
        assert ordered.size == 4
        assert complex(-2.0, 1.0) in ordered and complex(-2.0, -1.0) in ordered
        fills = sorted(p.real for p in ordered if p.imag == 0.0)
        assert fills == [-7.0, -6.0]  # distinct, own real parts

    def test_dangling_pole_never_displaces_a_genuine_pair(self):
        """A leftover pole with smaller |Im| must not evict a valid pair."""
        poles = np.array([-1.0 + 5.0j, -1.0 - 5.0j, -2.0 + 1.0j])
        ordered = sort_poles(poles)
        assert complex(-1.0, 5.0) in ordered and complex(-1.0, -5.0) in ordered
        replaced = [p for p in ordered if p.imag == 0.0]
        assert len(replaced) == 1  # the dangling -2+1j became a real fill

    @given(pole_shapes)
    @common_settings
    def test_dangling_pole_property_pairs_survive(self, shape):
        """Appending a dangling pole to any paired set keeps every pair."""
        n_reals, n_pairs, seed = shape
        base = _make_poles(n_reals, n_pairs, seed).tolist()
        with_dangling = np.asarray(base + [complex(-0.25, 0.125)])
        ordered = sort_poles(with_dangling)
        for pole in base:
            assert pole in ordered
        assert PoleGrouping.from_poles(ordered).pair_first.size == n_pairs

    def test_single_unpaired_positive_pole_is_replaced(self):
        ordered = sort_poles(np.array([complex(-0.1, 2.0)]))
        assert ordered.size == 1
        assert ordered[0].imag == 0.0
        assert ordered[0].real == pytest.approx(-0.1)

    def test_single_unpaired_negative_pole_is_replaced(self):
        ordered = sort_poles(np.array([complex(-0.3, -2.0)]))
        assert ordered.size == 1
        assert ordered[0] == complex(-0.3, 0.0)

    def test_grouping_rejects_dangling_complex_pole(self):
        with pytest.raises(ValueError):
            PoleGrouping.from_poles(np.array([complex(-1.0, 2.0), complex(-1.0, 3.0)]))

    def test_grouping_partitions_the_pole_indices(self):
        poles = sort_poles(initial_poles(7, 1e2, 1e5))
        grouping = PoleGrouping.from_poles(poles)
        assert grouping.real_indices.size == 1
        assert grouping.pair_first.size == 3
        covered = np.concatenate(
            [grouping.real_indices, grouping.pair_first, grouping.pair_second])
        assert sorted(covered.tolist()) == list(range(poles.size))


# --------------------------------------------------------------------- #
# vector-fitting kernels vs their looped references
# --------------------------------------------------------------------- #
class TestVectorFitKernels:
    @given(pole_shapes, st.integers(min_value=1, max_value=40))
    @common_settings
    def test_basis_batched_equals_looped_bitwise(self, shape, n_points):
        n_reals, n_pairs, seed = shape
        poles = sort_poles(_make_poles(n_reals, n_pairs, seed))
        grouping = PoleGrouping.from_poles(poles)
        s_points = 1j * np.linspace(0.5, 120.0, n_points)
        batched = partial_fraction_basis(s_points, poles, grouping)
        looped = partial_fraction_basis_reference(s_points, poles)
        assert np.array_equal(batched, looped)

    @given(pole_shapes)
    @common_settings
    def test_relocation_matrices_batched_equals_looped_bitwise(self, shape):
        n_reals, n_pairs, seed = shape
        poles = sort_poles(_make_poles(n_reals, n_pairs, seed))
        grouping = PoleGrouping.from_poles(poles)
        a_batched, b_batched = relocation_matrices(poles, grouping)
        a_looped, b_looped = relocation_matrices_reference(poles)
        assert np.array_equal(a_batched, a_looped)
        assert np.array_equal(b_batched, b_looped)

    @given(pole_shapes, st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=3))
    @common_settings
    def test_residues_batched_equals_looped_bitwise(self, shape, p, m):
        n_reals, n_pairs, seed = shape
        # exercise both pair orientations: raw (unsorted) pole arrays keep
        # whichever of (+, -) ordering the generator produced
        poles = _make_poles(n_reals, n_pairs, seed)
        grouping = PoleGrouping.from_poles(poles)
        rng = np.random.default_rng(seed)
        coeffs = rng.normal(size=(poles.size + 1, p * m))
        batched = residues_from_coefficients(coeffs, poles, grouping, (p, m))
        looped = residues_from_coefficients_reference(coeffs, poles, (p, m))
        assert np.array_equal(batched, looped)

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=2**31 - 1))
    @common_settings
    def test_scaling_blocks_batched_matches_looped(self, n_pairs, n_ports, seed):
        poles = sort_poles(_make_poles(1, n_pairs, seed))
        grouping = PoleGrouping.from_poles(poles)
        rng = np.random.default_rng(seed)
        n_samples = 12
        s_points = 1j * np.linspace(0.5, 120.0, n_samples)
        responses = (rng.normal(size=(n_samples, n_ports * n_ports))
                     + 1j * rng.normal(size=(n_samples, n_ports * n_ports)))
        phi = partial_fraction_basis(s_points, poles, grouping)
        phi1_real = realify(np.hstack([phi, np.ones((n_samples, 1))]))
        q1, _ = np.linalg.qr(phi1_real)
        a_batched, b_batched = vf_scaling_blocks(phi, responses, q1)
        a_looped, b_looped = vf_scaling_blocks_reference(phi, responses, q1)
        assert a_batched.shape == a_looped.shape
        # GEMM batching reorders the projection summations, so agreement is
        # to round-off rather than bitwise
        scale = max(float(np.max(np.abs(a_looped))), 1.0)
        assert np.allclose(a_batched, a_looped, rtol=1e-10, atol=1e-12 * scale)
        assert np.allclose(b_batched, b_looped, rtol=1e-10, atol=1e-12 * scale)


# --------------------------------------------------------------------- #
# slicing-stable products and incremental pencil growth
# --------------------------------------------------------------------- #
class TestRowcolProduct:
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=2**31 - 1))
    @common_settings
    def test_matches_matmul(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(rows, inner)) + 1j * rng.normal(size=(rows, inner))
        b = rng.normal(size=(inner, cols)) + 1j * rng.normal(size=(inner, cols))
        assert np.allclose(rowcol_product(a, b), a @ b, rtol=1e-12, atol=1e-14)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=6),
           st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=2**31 - 1))
    @common_settings
    def test_slicing_stability_bitwise(self, rows, inner, cols, seed):
        """The determinism contract the incremental assembly relies on."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(rows, inner)) + 1j * rng.normal(size=(rows, inner))
        b = rng.normal(size=(inner, cols)) + 1j * rng.normal(size=(inner, cols))
        full = rowcol_product(a, b)
        row_idx = rng.permutation(rows)[: max(1, rows // 2)]
        col_idx = rng.permutation(cols)[: max(1, cols // 2)]
        sub = rowcol_product(a[row_idx], b[:, col_idx])
        assert np.array_equal(sub, full[np.ix_(row_idx, col_idx)])

    def test_slicing_stability_at_pencil_scale(self):
        """Same contract at the size of a real PDN pencil (k ~ 300, m = 14)."""
        rng = np.random.default_rng(42)
        a = rng.normal(size=(300, 14)) + 1j * rng.normal(size=(300, 14))
        b = rng.normal(size=(14, 280)) + 1j * rng.normal(size=(14, 280))
        full = rowcol_product(a, b)
        row_idx = rng.permutation(300)[:120]
        col_idx = rng.permutation(280)[:100]
        sub = rowcol_product(a[row_idx], b[:, col_idx])
        assert np.array_equal(sub, full[np.ix_(row_idx, col_idx)])

    def test_mixed_dtypes_promote_like_matmul(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(6, 5)) + 1j * rng.normal(size=(6, 5))
        b = rng.normal(size=(5, 4))  # real directions against complex values
        out = rowcol_product(a, b)
        assert out.dtype == (a @ b).dtype
        assert np.allclose(out, a @ b, rtol=1e-12, atol=1e-14)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rowcol_product(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            rowcol_product(np.zeros(3), np.zeros((3, 2)))


class TestIncrementalLoewner:
    @given(st.integers(min_value=4, max_value=8), st.integers(min_value=4, max_value=8),
           st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2**31 - 1))
    @common_settings
    def test_grown_pencil_is_bitwise_identical_to_scratch(self, n_right, n_left,
                                                          n_ports, seed):
        """Random selection orders: incremental growth == from-scratch build."""
        rng = np.random.default_rng(seed)
        full = _make_tangential(n_right, n_left, n_ports, block=2, seed=seed)
        assembler = IncrementalLoewner(full)

        right_order = rng.permutation(n_right).tolist()
        left_order = rng.permutation(n_left).tolist()
        start_r = rng.integers(1, n_right + 1)
        start_l = rng.integers(1, n_left + 1)
        right_sel = right_order[:start_r]
        left_sel = left_order[:start_l]
        while True:
            subset, grown = assembler.update(right_sel, left_sel)
            scratch = build_loewner_pencil(full.subset(right_sel, left_sel))
            assert np.array_equal(grown.loewner, scratch.loewner)
            assert np.array_equal(grown.shifted_loewner, scratch.shifted_loewner)
            assert np.array_equal(grown.W, scratch.W)
            assert np.array_equal(grown.V, scratch.V)
            assert np.array_equal(grown.lambda_points, scratch.lambda_points)
            assert np.array_equal(grown.mu_points, scratch.mu_points)
            if len(right_sel) == n_right and len(left_sel) == n_left:
                break
            grow_r = int(rng.integers(0, 3))
            grow_l = int(rng.integers(0, 3))
            if len(right_sel) < n_right and (grow_r or len(left_sel) == n_left):
                right_sel = right_sel + right_order[len(right_sel):len(right_sel) + max(grow_r, 1)]
            if len(left_sel) < n_left and (grow_l or len(right_sel) == n_right):
                left_sel = left_sel + left_order[len(left_sel):len(left_sel) + max(grow_l, 1)]

    def test_non_monotone_selection_falls_back_to_scratch(self):
        full = _make_tangential(5, 5, 2, block=2, seed=3)
        assembler = IncrementalLoewner(full)
        assembler.update([0, 1, 2], [0, 1, 2])
        subset, grown = assembler.update([2, 3], [1, 4])  # shrinks: scratch path
        scratch = build_loewner_pencil(full.subset([2, 3], [1, 4]))
        assert np.array_equal(grown.loewner, scratch.loewner)
        assert np.array_equal(grown.shifted_loewner, scratch.shifted_loewner)

    def test_update_preserves_block_structure(self):
        full = _make_tangential(4, 4, 3, block=2, seed=11)
        assembler = IncrementalLoewner(full)
        subset, pencil = assembler.update([1, 3], [0, 2])
        assert pencil.right_block_sizes == subset.right_block_sizes
        assert pencil.left_block_sizes == subset.left_block_sizes
        assert assembler.full is full
