"""Tests for :mod:`repro.systems.timedomain`."""

import numpy as np
import pytest
from scipy.linalg import hilbert

from repro.systems.statespace import DescriptorSystem, StateSpace
from repro.systems.timedomain import impulse_response, simulate_lsim, step_response


@pytest.fixture
def lowpass():
    """H(s) = 1 / (s + 1): step response 1 - exp(-t)."""
    return StateSpace([[-1.0]], [[1.0]], [[1.0]])


class TestSimulate:
    def test_step_response_matches_analytic(self, lowpass):
        time, output = step_response(lowpass, t_final=5.0, n_points=2001)
        expected = 1.0 - np.exp(-time)
        assert np.max(np.abs(output[:, 0] - expected)) < 1e-3

    def test_impulse_response_matches_analytic(self, lowpass):
        time, output = impulse_response(lowpass, t_final=5.0, n_points=4001)
        expected = np.exp(-time)
        # skip the first few samples where the discrete impulse approximation dominates
        assert np.max(np.abs(output[5:, 0] - expected[5:])) < 5e-3

    def test_zero_input_zero_output(self, lowpass):
        time = np.linspace(0.0, 1.0, 50)
        output = simulate_lsim(lowpass, np.zeros((50, 1)), time)
        assert np.allclose(output, 0.0)

    def test_feedthrough_appears_instantaneously(self):
        sys_ = StateSpace([[-1.0]], [[0.0]], [[0.0]], [[2.0]])
        time = np.linspace(0.0, 1.0, 10)
        output = simulate_lsim(sys_, np.ones((10, 1)), time)
        assert np.allclose(output, 2.0)

    def test_descriptor_static_system(self):
        """Purely algebraic descriptor system: y follows the input through -A^{-1}B."""
        sys_ = DescriptorSystem([[0.0]], [[-1.0]], [[1.0]], [[1.0]])
        time = np.linspace(0.0, 1.0, 20)
        u = np.sin(time).reshape(-1, 1)
        output = simulate_lsim(sys_, u, time)
        assert np.allclose(output[:, 0], np.sin(time), atol=1e-12)

    def test_mimo_shapes(self, small_system):
        time = np.linspace(0.0, 1e-4, 64)
        u = np.zeros((64, small_system.n_inputs))
        u[:, 0] = 1.0
        output = simulate_lsim(small_system, u, time)
        assert output.shape == (64, small_system.n_outputs)
        assert np.all(np.isfinite(output))


class TestValidation:
    def test_nonuniform_grid_rejected(self, lowpass):
        time = np.array([0.0, 0.1, 0.3])
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((3, 1)), time)

    def test_wrong_input_shape_rejected(self, lowpass):
        time = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((5, 3)), time)

    def test_wrong_initial_state_rejected(self, lowpass):
        time = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((5, 1)), time, x0=np.zeros(3))

    def test_bad_time_grid(self, lowpass):
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((1, 1)), np.array([0.0]))

    def test_impulse_invalid_inputs(self, lowpass):
        with pytest.raises(ValueError):
            impulse_response(lowpass, t_final=-1.0)
        with pytest.raises(ValueError):
            impulse_response(lowpass, t_final=1.0, input_index=5)

    def test_step_invalid_inputs(self, lowpass):
        with pytest.raises(ValueError):
            step_response(lowpass, t_final=0.0)
        with pytest.raises(ValueError):
            step_response(lowpass, t_final=1.0, input_index=-1)

    @pytest.mark.parametrize("response", [impulse_response, step_response])
    def test_single_point_grid_rejected_up_front(self, lowpass, response):
        # n_points=1 used to build a one-point grid and die later inside
        # simulate_lsim with an unrelated "time grid" error
        with pytest.raises(ValueError, match="n_points must be at least 2"):
            response(lowpass, t_final=1.0, n_points=1)

    def test_complex_inputs_rejected(self, lowpass):
        # a silent complex -> float cast used to drop the imaginary part
        time = np.linspace(0.0, 1.0, 5)
        with pytest.raises(TypeError, match="inputs must be real-valued"):
            simulate_lsim(lowpass, np.ones((5, 1), dtype=complex), time)

    def test_complex_initial_state_rejected(self, lowpass):
        time = np.linspace(0.0, 1.0, 5)
        with pytest.raises(TypeError, match="x0 must be real-valued"):
            simulate_lsim(lowpass, np.zeros((5, 1)), time,
                          x0=np.array([1.0 + 1.0j]))


class TestIllConditionedPencil:
    """Regression for the explicit-inverse hot-loop bug (`lu_piv = inv(left)`).

    With an ill-conditioned ``E - (h/2) A`` pencil, multiplying by the
    explicit inverse loses roughly ``cond(left) * eps`` digits per step while
    the LU-factored solve stays backward stable (residual ~ ``eps``).  The
    system below is engineered so the pencil *is* a Hilbert matrix
    (``E = H + (h/2) I``, ``A = -I``), whose condition number at order 10 is
    ~``1e13``.
    """

    ORDER = 10
    H_STEP = 0.1

    def _system_and_left(self):
        left = hilbert(self.ORDER)
        a = -np.eye(self.ORDER)
        e = left - 0.5 * self.H_STEP * np.eye(self.ORDER)
        b = np.ones((self.ORDER, 1))
        c = np.eye(self.ORDER)  # expose the full state as outputs
        return DescriptorSystem(e, a, b, c), left

    def test_factored_solve_keeps_residual_at_roundoff(self):
        system, left = self._system_and_left()
        e, a, b = (np.asarray(m, float) for m in (system.E, system.A, system.B))
        right = e + 0.5 * self.H_STEP * a
        time = self.H_STEP * np.arange(6)
        rng = np.random.default_rng(7)
        u = rng.standard_normal((time.size, 1))
        states = simulate_lsim(system, u, time)  # C = I: outputs are states
        scale = np.linalg.norm(left, 2)
        for k in range(time.size - 1):
            rhs = right @ states[k] + 0.5 * self.H_STEP * b @ (u[k] + u[k + 1])
            residual = np.linalg.norm(left @ states[k + 1] - rhs)
            # backward-stable solve: residual at roundoff level regardless of
            # cond(left); the former inverse-multiply sat ~1e9 above this
            assert residual <= 1e-12 * max(scale * np.linalg.norm(states[k + 1]), 1.0)

    def test_explicit_inverse_would_fail_this_bound(self):
        """The bound above genuinely discriminates: the old code's
        inverse-multiply violates it on the same step."""
        system, left = self._system_and_left()
        e, a, b = (np.asarray(m, float) for m in (system.E, system.A, system.B))
        right = e + 0.5 * self.H_STEP * a
        rng = np.random.default_rng(7)
        u = rng.standard_normal((2, 1))
        x0 = np.zeros(self.ORDER)
        rhs = right @ x0 + 0.5 * self.H_STEP * b @ (u[0] + u[1])
        x_inv = np.linalg.inv(left) @ rhs  # the buggy path, reproduced inline
        residual = np.linalg.norm(left @ x_inv - rhs)
        scale = np.linalg.norm(left, 2)
        assert residual > 1e-12 * max(scale * np.linalg.norm(x_inv), 1.0)
