"""Tests for :mod:`repro.systems.timedomain`."""

import numpy as np
import pytest

from repro.systems.statespace import DescriptorSystem, StateSpace
from repro.systems.timedomain import impulse_response, simulate_lsim, step_response


@pytest.fixture
def lowpass():
    """H(s) = 1 / (s + 1): step response 1 - exp(-t)."""
    return StateSpace([[-1.0]], [[1.0]], [[1.0]])


class TestSimulate:
    def test_step_response_matches_analytic(self, lowpass):
        time, output = step_response(lowpass, t_final=5.0, n_points=2001)
        expected = 1.0 - np.exp(-time)
        assert np.max(np.abs(output[:, 0] - expected)) < 1e-3

    def test_impulse_response_matches_analytic(self, lowpass):
        time, output = impulse_response(lowpass, t_final=5.0, n_points=4001)
        expected = np.exp(-time)
        # skip the first few samples where the discrete impulse approximation dominates
        assert np.max(np.abs(output[5:, 0] - expected[5:])) < 5e-3

    def test_zero_input_zero_output(self, lowpass):
        time = np.linspace(0.0, 1.0, 50)
        output = simulate_lsim(lowpass, np.zeros((50, 1)), time)
        assert np.allclose(output, 0.0)

    def test_feedthrough_appears_instantaneously(self):
        sys_ = StateSpace([[-1.0]], [[0.0]], [[0.0]], [[2.0]])
        time = np.linspace(0.0, 1.0, 10)
        output = simulate_lsim(sys_, np.ones((10, 1)), time)
        assert np.allclose(output, 2.0)

    def test_descriptor_static_system(self):
        """Purely algebraic descriptor system: y follows the input through -A^{-1}B."""
        sys_ = DescriptorSystem([[0.0]], [[-1.0]], [[1.0]], [[1.0]])
        time = np.linspace(0.0, 1.0, 20)
        u = np.sin(time).reshape(-1, 1)
        output = simulate_lsim(sys_, u, time)
        assert np.allclose(output[:, 0], np.sin(time), atol=1e-12)

    def test_mimo_shapes(self, small_system):
        time = np.linspace(0.0, 1e-4, 64)
        u = np.zeros((64, small_system.n_inputs))
        u[:, 0] = 1.0
        output = simulate_lsim(small_system, u, time)
        assert output.shape == (64, small_system.n_outputs)
        assert np.all(np.isfinite(output))


class TestValidation:
    def test_nonuniform_grid_rejected(self, lowpass):
        time = np.array([0.0, 0.1, 0.3])
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((3, 1)), time)

    def test_wrong_input_shape_rejected(self, lowpass):
        time = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((5, 3)), time)

    def test_wrong_initial_state_rejected(self, lowpass):
        time = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((5, 1)), time, x0=np.zeros(3))

    def test_bad_time_grid(self, lowpass):
        with pytest.raises(ValueError):
            simulate_lsim(lowpass, np.zeros((1, 1)), np.array([0.0]))

    def test_impulse_invalid_inputs(self, lowpass):
        with pytest.raises(ValueError):
            impulse_response(lowpass, t_final=-1.0)
        with pytest.raises(ValueError):
            impulse_response(lowpass, t_final=1.0, input_index=5)

    def test_step_invalid_inputs(self, lowpass):
        with pytest.raises(ValueError):
            step_response(lowpass, t_final=0.0)
        with pytest.raises(ValueError):
            step_response(lowpass, t_final=1.0, input_index=-1)
