"""Golden regression tests: committed reference results for the shared grid.

The cache can only claim "hits are identical to fresh fits" if fresh fits
themselves are stable, so this module pins the repository's first golden
fixtures: for every job of the shared PDN + transmission-line grid
(:func:`repro.experiments.workloads.mixed_batch_jobs`, at reduced test-suite
sizes) the committed ``tests/golden/golden_fits.json`` records

* the dataset fingerprint (so silent drift in the *workload generators* is
  caught separately from drift in the *solvers*),
* the options fingerprint (pinning the method configuration),
* the recovered model order (compared exactly), and
* the error norms vs measurement and vs ground truth (compared within a
  small relative tolerance that absorbs BLAS/LAPACK rounding differences
  but fails on real numerical drift).

Regenerate after an *intentional* numerical change with::

    PYTHONPATH=src python tests/test_golden_fits.py --regenerate

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.batch import BatchEngine
from repro.cache import dataset_fingerprint, options_fingerprint

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_fits.json")

#: Relative tolerance on the recorded error norms.  Well above cross-platform
#: BLAS rounding (observed < 1e-9 on the reference grids), far below any
#: behavioural change (method edits move these norms by percents or more).
ERROR_RTOL = 1e-3

#: Reduced sizes of the shared grid -- same builder as the benchmarks and
#: ``examples/batch_sweep.py``, small enough for the tier-1 suite.
GRID_KWARGS = dict(pdn_samples=60, pdn_validation=80, line_sections=20,
                   line_samples=60, line_validation=80)


def _build_jobs():
    from repro.experiments.workloads import mixed_batch_jobs

    return mixed_batch_jobs(**GRID_KWARGS)


def _record_case(job, record) -> dict:
    return {
        "label": record.label,
        "method": record.method,
        "dataset_fingerprint": dataset_fingerprint(job.data),
        "options_fingerprint": options_fingerprint(job.method, job.options),
        "order": record.order,
        "error_vs_data": record.error_vs_data,
        "error_vs_reference": record.error_vs_reference,
    }


def regenerate() -> str:
    """Re-run the grid and rewrite the golden fixture (manual, reviewed step)."""
    jobs = _build_jobs()
    batch = BatchEngine().run(jobs).raise_failures(context="golden job")
    document = {
        "description": "golden references for the shared PDN + transmission-line grid",
        "grid_kwargs": GRID_KWARGS,
        "error_rtol": ERROR_RTOL,
        "cases": [_record_case(job, record) for job, record in zip(jobs, batch.records)],
    }
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return GOLDEN_PATH


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(f"golden fixture missing: {GOLDEN_PATH} "
                    "(run `python tests/test_golden_fits.py --regenerate`)")
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def fresh_batch():
    jobs = _build_jobs()
    return jobs, BatchEngine().run(jobs).raise_failures(context="golden job")


def test_fixture_matches_grid_shape(golden, fresh_batch):
    jobs, batch = fresh_batch
    assert golden["grid_kwargs"] == GRID_KWARGS
    assert [case["label"] for case in golden["cases"]] == [r.label for r in batch.records]


def test_dataset_fingerprints_unchanged(golden, fresh_batch):
    """Workload generators (PDN, transmission line, noise) are bit-stable."""
    jobs, _ = fresh_batch
    for case, job in zip(golden["cases"], jobs):
        assert case["dataset_fingerprint"] == dataset_fingerprint(job.data), (
            f"{case['label']}: the generated dataset drifted -- the workload "
            "builders changed behaviour (not just the solvers)"
        )
        assert case["options_fingerprint"] == options_fingerprint(job.method, job.options)


def test_orders_and_errors_within_tolerance(golden, fresh_batch):
    """The committed orders are exact; error norms stay within ERROR_RTOL."""
    _, batch = fresh_batch
    failures = []
    for case, record in zip(golden["cases"], batch.records):
        if record.order != case["order"]:
            failures.append(f"{case['label']}: order {record.order} != {case['order']}")
        for field in ("error_vs_data", "error_vs_reference"):
            expected, got = case[field], getattr(record, field)
            if math.isnan(expected) and math.isnan(got):
                continue
            if not math.isclose(got, expected, rel_tol=golden["error_rtol"]):
                failures.append(
                    f"{case['label']}: {field} {got:.9e} drifted from "
                    f"{expected:.9e} (rtol {golden['error_rtol']:g})"
                )
    assert not failures, "numerical drift beyond tolerance:\n  " + "\n  ".join(failures)


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        print(f"golden fixture written to {regenerate()}")
    else:
        print(__doc__)
